#!/bin/sh
# Runs the repository's benchmark suites and writes the machine-readable
# baseline. The output file is BENCH_OUT (or the first argument), defaulting
# to BENCH_PR7.json; the comparison baseline is BENCH_BASELINE, defaulting
# to the committed BENCH_PR6.json. The same recipe produced the numbers in
# docs/PERFORMANCE.md; re-run it after any hot-path change and diff the
# JSON. When the baseline file exists, a per-benchmark ns/op comparison
# against it is printed after the run (benchjson -compare); set
# BENCH_THRESHOLD to make a regression beyond that percentage fail the
# script (benchjson -threshold).
#
# Environment knobs:
#   BENCH_OUT             output JSON path (default BENCH_PR7.json)
#   BENCH_BASELINE        comparison baseline (default BENCH_PR6.json)
#   BENCH_THRESHOLD       fail if any benchmark regresses more than this
#                         percent vs the baseline (default 0 = report only)
#   UNTANGLE_BENCH_SCALE  workload scale for the experiment benchmarks
#                         (default 0.002; paper fidelity is 1.0)
#   UNTANGLE_BENCH_JOBS   worker-pool size (default 0 = GOMAXPROCS;
#                         set 1 to measure the sequential engine)
#   BENCH_COUNT           -count passed to go test (default 1; use 5+
#                         for publication-grade numbers)
set -eu

cd "$(dirname "$0")/.."
out="${BENCH_OUT:-${1:-BENCH_PR7.json}}"
baseline="${BENCH_BASELINE:-BENCH_PR6.json}"
count="${BENCH_COUNT:-1}"
threshold="${BENCH_THRESHOLD:-0}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The end-to-end experiment benchmarks take seconds per iteration; one
# timed iteration per -count is the useful measurement. The cache
# microbenchmarks are nanoseconds per op and need Go's default benchtime
# to stabilize.
go test -run '^$' -bench . -benchtime 1x -count "$count" -timeout 60m . | tee "$tmp"
go test -run '^$' -bench . -count "$count" -timeout 20m ./internal/cache | tee -a "$tmp"
go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
if [ -f "$baseline" ] && [ "$out" != "$baseline" ]; then
    echo
    echo "comparison against $baseline:"
    go run ./cmd/benchjson -compare -threshold "$threshold" "$baseline" "$out"
fi
