#!/bin/sh
# Runs the repository's benchmark suites and writes the machine-readable
# baseline. The output file is BENCH_OUT (or the first argument), defaulting
# to BENCH_PR10.json; the comparison baseline is BENCH_BASELINE, defaulting
# to the committed BENCH_PR9.json. The same recipe produced the numbers in
# docs/PERFORMANCE.md; re-run it after any hot-path change and diff the
# JSON. A per-benchmark ns/op comparison against the baseline is printed
# after the run (benchjson -compare); set BENCH_THRESHOLD to make a
# regression beyond that percentage fail the script (benchjson -threshold).
# A missing or unreadable baseline fails the script — comparing against
# nothing is a silent no-op that can mask a regression; pass
# BENCH_BASELINE=none to skip the comparison explicitly.
#
# Environment knobs:
#   BENCH_OUT             output JSON path (default BENCH_PR10.json)
#   BENCH_BASELINE        comparison baseline (default BENCH_PR9.json);
#                         "none" skips the comparison explicitly
#   BENCH_THRESHOLD       fail if any benchmark regresses more than this
#                         percent vs the baseline (default 0 = report only)
#   UNTANGLE_BENCH_SCALE  workload scale for the experiment benchmarks
#                         (default 0.002; paper fidelity is 1.0)
#   UNTANGLE_BENCH_JOBS   worker-pool size (default 0 = GOMAXPROCS;
#                         set 1 to measure the sequential engine)
#   BENCH_COUNT           -count passed to go test (default 1; use 5+
#                         for publication-grade numbers)
set -eu

cd "$(dirname "$0")/.."
out="${BENCH_OUT:-${1:-BENCH_PR10.json}}"
baseline="${BENCH_BASELINE:-BENCH_PR9.json}"
count="${BENCH_COUNT:-1}"
threshold="${BENCH_THRESHOLD:-0}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Fail before the (long) benchmark run, not after: a baseline that cannot
# be read would silently skip the comparison that is the point of the run.
if [ "$baseline" != "none" ] && [ "$out" != "$baseline" ] && ! [ -r "$baseline" ]; then
    echo "bench.sh: baseline $baseline missing or unreadable" >&2
    echo "bench.sh: set BENCH_BASELINE to an existing baseline JSON, or BENCH_BASELINE=none to skip the comparison" >&2
    exit 1
fi

# The end-to-end experiment benchmarks take seconds per iteration; one
# timed iteration per -count is the useful measurement. The cache
# microbenchmarks are nanoseconds per op and need Go's default benchtime
# to stabilize.
go test -run '^$' -bench . -benchtime 1x -count "$count" -timeout 60m . | tee "$tmp"
go test -run '^$' -bench . -count "$count" -timeout 20m ./internal/cache | tee -a "$tmp"
go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
if [ "$baseline" != "none" ] && [ "$out" != "$baseline" ]; then
    echo
    echo "comparison against $baseline:"
    go run ./cmd/benchjson -compare -threshold "$threshold" "$baseline" "$out"
fi
