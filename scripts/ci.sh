#!/bin/sh
# The repository's verification gate, in two tiers:
#
#   tier 1  build + vet + the fast (-short) test suite — what every change
#           must keep green (see ROADMAP.md)
#   tier 2  the race detector over the concurrency-bearing packages: the
#           worker pool, the shard coordinator, the campaign service's
#           bounded priority queue, the fault-injection harness, the
#           checkpoint journal, the front-end trace cache, the
#           observability layer, the experiment engine's resilience
#           layer, the fused-mix-engine equivalence (clean runs and a
#           mid-mix kill-and-resume), and the cmd-level kill-and-resume,
#           sharded worker-kill-and-merge, dead-letter-and-replay,
#           serve-mode drain-and-restart, warm-cache, and
#           observability-equivalence tests
#
# Everything is hermetic (no network, no external services); the whole
# script runs in a few minutes on a laptop. CI=full additionally runs the
# long-form (non-short) suite.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -short ./..."
go test -short ./...

echo "==> go test -race (concurrency-bearing packages)"
go test -race -short \
    ./internal/parallel/... \
    ./internal/shard/... \
    ./internal/fsutil/... \
    ./internal/faultinject/... \
    ./internal/checkpoint/... \
    ./internal/telemetry/... \
    ./internal/tracecache/... \
    ./internal/obs/... \
    ./internal/campaign/...

echo "==> go test -race (kill-and-resume + trace cache + observability equivalence)"
go test -race -run 'TestCheckpointResumeEquivalence|TestStudyCheckpointResume|TestTransientFault|TestObservabilityDoesNotPerturbOutputs|TestUnitObserverSeam|TestTraceCacheWarmColdEquivalence|TestTraceCacheKeyMismatchFailsLoudly|TestTraceCacheCorruptEntry|TestTraceCacheLaneOutcomeSidecar|TestWarmFrontEndCache' \
    ./internal/experiments/ ./cmd/experiments/

echo "==> go test -race (sharded worker-kill-and-merge equivalence)"
go test -race -run 'TestShardedCampaignEquivalence|TestShardedStudyEquivalence' \
    ./cmd/experiments/ ./cmd/sensitivity/

echo "==> go test -race (dead-letter-and-replay + serve drain-and-restart)"
# The tentpole robustness guarantees: a poisoned campaign completes
# degraded with the unit dead-lettered and -replay restores byte-identical
# outputs; a resident service drained mid-campaign commits a valid partial
# and a restarted service resumes to byte-identical outputs.
go test -race -run 'TestDeadLetterCampaignEquivalence|TestDeadLetterPanickingUnit|TestServeDrainRestartEquivalence' \
    ./cmd/experiments/

echo "==> go test -race (mix-fusion equivalence: clean + mid-mix kill)"
# -short limits the engine-level bitwise check to two mixes (the full
# 16-mix raced sweep takes ~3.5 min and runs under CI=full); the
# campaign-level check covers cold, warm-cache, and a checkpointed
# mid-mix kill-and-resume through the fused path.
go test -race -short -run 'TestMixFusionMatchesOracle|TestMixFusionUnderrunRegenerates' \
    ./internal/experiments/
go test -race -run 'TestMixFusionCampaignOutputsMatchOracle' ./cmd/experiments/

echo "==> benchjson gate (committed baselines)"
# Committed-baseline deltas on sub-second single-iteration benchmarks
# peak around +37% (shared-tenancy noise; the seconds-scale benchmarks
# stay within ~+-10%), so the default threshold is 40 — tight enough to
# catch a real hot-path regression, loose enough not to trip on the
# measured noise band. See docs/PERFORMANCE.md.
if [ -f BENCH_PR10.json ] && [ -f BENCH_PR9.json ]; then
    go run ./cmd/benchjson -compare -threshold "${BENCH_GATE_THRESHOLD:-40}" BENCH_PR9.json BENCH_PR10.json
fi

if [ "${CI:-}" = "full" ]; then
    echo "==> go test ./... (long suite)"
    go test -timeout 60m ./...
fi

echo "ci: all green"
