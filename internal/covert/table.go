package covert

import (
	"fmt"
	"sync"
	"time"
)

// TableConfig describes the discretization of the covert channel used to
// precompute the leakage-rate table of Section 7. All durations are expressed
// in Unit granularity; the paper's evaluation uses Tc = 1 ms and
// δ ~ U[0, 1ms).
type TableConfig struct {
	// Unit is the time resolution at which the attacker measures durations.
	Unit time.Duration
	// Cooldown is Tc, the minimum wait between assessments (Mechanism 1).
	Cooldown time.Duration
	// DelayWidth is the width of the uniform random delay (Mechanism 2);
	// zero disables the random delay.
	DelayWidth time.Duration
	// MaxSpreadUnits bounds the input alphabet: candidate durations range
	// from the cooldown to cooldown + MaxSpreadUnits time units. Zero picks
	// a default of 16x the delay width (the optimizer's mass is negligible
	// beyond a few delay widths).
	MaxSpreadUnits int
	// GridStep is the spacing between candidate durations in time units;
	// zero picks a default that keeps the alphabet near 128 symbols.
	GridStep int
	// MaxMaintains is the table capacity: the largest run of consecutive
	// Maintain actions with a dedicated entry (Section 7). Runs beyond the
	// capacity conservatively reuse the last entry.
	MaxMaintains int
	// Solver configures the Dinkelbach iteration.
	Solver SolverConfig
}

// DefaultTableConfig mirrors the paper's evaluation parameters (Tc = 1 ms,
// δ ~ U[0, 1ms)) at a 25 µs resolution, which keeps table precomputation
// fast while remaining faithful to the model.
func DefaultTableConfig() TableConfig {
	return TableConfig{
		Unit:         25 * time.Microsecond,
		Cooldown:     time.Millisecond,
		DelayWidth:   time.Millisecond,
		MaxMaintains: 16,
		Solver:       DefaultSolverConfig(),
	}
}

func (cfg TableConfig) withDefaults() TableConfig {
	if cfg.Unit <= 0 {
		cfg.Unit = 25 * time.Microsecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Millisecond
	}
	if cfg.MaxMaintains < 0 {
		cfg.MaxMaintains = 0
	}
	if cfg.Solver.MaxDinkelbachRounds <= 0 {
		cfg.Solver = DefaultSolverConfig()
	}
	return cfg
}

// units converts a duration to integer time units, rounding up so bounds
// remain conservative.
func (cfg TableConfig) units(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	u := int((d + cfg.Unit - 1) / cfg.Unit)
	if u < 1 {
		u = 1
	}
	return u
}

// RateEntry is one row of the precomputed table: the channel bound for a run
// of m consecutive Maintains (i.e., an effective cooldown of (m+1)Tc).
type RateEntry struct {
	// Maintains is m.
	Maintains int
	// RatePerSecond is R'max in bits per second.
	RatePerSecond float64
	// BitsPerTransmission is the per-visible-resize information at the
	// rate-optimal input distribution.
	BitsPerTransmission float64
	// AvgTime is the optimal Tavg.
	AvgTime time.Duration
	// Verified reports whether F(q') <= 0 was confirmed for this entry.
	Verified bool
}

// RateTable is the precomputed leakage-rate table of Section 7: entry i
// stores Rmax_i, the maximum channel rate when i consecutive Maintains
// precede a visible resize, which is equivalent to a cooldown of (i+1)Tc
// (Figure 8).
type RateTable struct {
	cfg     TableConfig
	entries []RateEntry
}

// NewRateTable precomputes entries 0..cfg.MaxMaintains. It is deterministic
// and moderately expensive; share one table per configuration (see Shared).
func NewRateTable(cfg TableConfig) (*RateTable, error) {
	cfg = cfg.withDefaults()
	t := &RateTable{cfg: cfg}
	t.entries = make([]RateEntry, cfg.MaxMaintains+1)
	for m := 0; m <= cfg.MaxMaintains; m++ {
		e, err := cfg.solveEntry(m)
		if err != nil {
			return nil, fmt.Errorf("covert: table entry %d: %w", m, err)
		}
		t.entries[m] = e
	}
	return t, nil
}

// solveEntry builds the channel for m consecutive Maintains and runs the
// Dinkelbach computation.
func (cfg TableConfig) solveEntry(m int) (RateEntry, error) {
	cooldownUnits := cfg.units(cfg.Cooldown) * (m + 1)
	noiseUnits := cfg.units(cfg.DelayWidth)
	if cfg.DelayWidth <= 0 {
		noiseUnits = 1
	}
	spread := cfg.MaxSpreadUnits
	if spread <= 0 {
		spread = 16 * noiseUnits
		if spread < 64 {
			spread = 64
		}
	}
	step := cfg.GridStep
	if step <= 0 {
		step = spread / 128
		if step < 1 {
			step = 1
		}
	}
	var durations []int
	for d := cooldownUnits; d <= cooldownUnits+spread; d += step {
		durations = append(durations, d)
	}
	ch, err := NewChannel(durations, UniformNoise(noiseUnits))
	if err != nil {
		return RateEntry{}, err
	}
	res := ch.MaxRate(cfg.Solver)
	perSecond := res.UpperBound / cfg.Unit.Seconds()
	return RateEntry{
		Maintains:           m,
		RatePerSecond:       perSecond,
		BitsPerTransmission: res.BitsPerTransmission,
		AvgTime:             time.Duration(res.AvgTime * float64(cfg.Unit)),
		Verified:            res.Verified,
	}, nil
}

// Entry returns the table row for m consecutive Maintains, clamping to the
// table capacity as Section 7 prescribes.
func (t *RateTable) Entry(m int) RateEntry {
	if m < 0 {
		m = 0
	}
	if m >= len(t.entries) {
		m = len(t.entries) - 1
	}
	return t.entries[m]
}

// Len returns the number of table rows (capacity + 1).
func (t *RateTable) Len() int { return len(t.entries) }

// Config returns the configuration the table was built with.
func (t *RateTable) Config() TableConfig { return t.cfg }

// LeakagePerResize returns the bits charged for one visible resize that
// arrives after m consecutive Maintains: the per-transmission information of
// the rate-optimal covert channel whose cooldown is the effective (m+1)Tc
// (Section 7: "use the rate Rmax_m to compute the leakage for that
// resizing"). Maintains themselves are invisible and charge nothing.
func (t *RateTable) LeakagePerResize(m int) float64 {
	return t.Entry(m).BitsPerTransmission
}

// LeakageForGap returns the bits accrued by the rate-budget view of the
// channel: Rmax_m applied over a wall-clock gap (Section 6.2 uses this form
// to accumulate leakage across victim replays). The gap is clamped below at
// the schedule's guaranteed minimum (m+1)Tc so rounding can never
// under-charge.
func (t *RateTable) LeakageForGap(m int, gap time.Duration) float64 {
	e := t.Entry(m)
	g := gap.Seconds()
	min := (time.Duration(m+1) * t.cfg.Cooldown).Seconds()
	if g < min {
		g = min
	}
	return e.RatePerSecond * g
}

var (
	sharedMu     sync.Mutex
	sharedTables = map[TableConfig]*RateTable{}
)

// Shared returns a process-wide cached table for cfg, computing it on first
// use. The zero-iteration cost of reuse matters because every simulated
// domain consults the table.
func Shared(cfg TableConfig) (*RateTable, error) {
	cfg = cfg.withDefaults()
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if t, ok := sharedTables[cfg]; ok {
		return t, nil
	}
	t, err := NewRateTable(cfg)
	if err != nil {
		return nil, err
	}
	sharedTables[cfg] = t
	return t, nil
}
