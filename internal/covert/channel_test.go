package covert

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"untangle/internal/info"
)

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(nil, nil); err == nil {
		t.Error("empty durations accepted")
	}
	if _, err := NewChannel([]int{0, 1}, nil); err == nil {
		t.Error("non-positive duration accepted")
	}
	if _, err := NewChannel([]int{5, 5}, nil); err == nil {
		t.Error("non-increasing durations accepted")
	}
	if _, err := NewChannel([]int{1, 2}, info.Dist{0.5, 0.6}); err == nil {
		t.Error("invalid noise accepted")
	}
	if _, err := NewChannel([]int{1, 2, 3}, nil); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
}

func TestStrategyExampleSection531(t *testing.T) {
	// Strategy 1: four symbols at 1,2,3,4 ms, uniform -> 2 bits / 2.5 ms
	// = 800 bits/s. Strategy 2: eight symbols at 1..8 ms, uniform ->
	// 3 bits / 4.5 ms ≈ 667 bits/s. Time unit: 1 ms.
	r1, err := NoiselessRate([]int{1, 2, 3, 4}, info.NewUniform(4))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 2.5; math.Abs(r1-want) > 1e-12 {
		t.Errorf("strategy 1 rate = %v bits/ms, want %v", r1, want)
	}
	r2, err := NoiselessRate([]int{1, 2, 3, 4, 5, 6, 7, 8}, info.NewUniform(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0 / 4.5; math.Abs(r2-want) > 1e-12 {
		t.Errorf("strategy 2 rate = %v bits/ms, want %v", r2, want)
	}
	if r1 <= r2 {
		t.Errorf("paper: strategy 1 (%v) should beat strategy 2 (%v)", r1, r2)
	}
	// In bits per second (1 unit = 1 ms):
	if bps := r1 * 1000; math.Abs(bps-800) > 1e-9 {
		t.Errorf("strategy 1 = %v bits/s, want 800", bps)
	}
}

func TestAutocorrelateUniformIsTriangular(t *testing.T) {
	tri := autocorrelate(info.NewUniform(4))
	if len(tri) != 7 {
		t.Fatalf("len = %d, want 7", len(tri))
	}
	want := []float64{1, 2, 3, 4, 3, 2, 1}
	for i, w := range want {
		if math.Abs(tri[i]-w/16) > 1e-12 {
			t.Errorf("tri[%d] = %v, want %v", i, tri[i], w/16)
		}
	}
}

func TestOutputDistIsDistribution(t *testing.T) {
	ch, err := NewChannel([]int{10, 12, 17}, UniformNoise(5))
	if err != nil {
		t.Fatal(err)
	}
	py := ch.OutputDist(info.Dist{0.2, 0.3, 0.5})
	if err := py.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoiselessChannelInfoEqualsInputEntropy(t *testing.T) {
	// With no random delay, Y = X, so H(Y) - H(δ) = H(X).
	ch, err := NewChannel([]int{3, 5, 9, 14}, nil)
	if err != nil {
		t.Fatal(err)
	}
	px := info.Dist{0.1, 0.2, 0.3, 0.4}
	if got, want := ch.InfoPerTransmission(px), px.Entropy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("info = %v, want H(X) = %v", got, want)
	}
}

func TestNoiseReducesInformation(t *testing.T) {
	durations := []int{10, 11, 12, 13}
	px := info.NewUniform(4)
	clean, _ := NewChannel(durations, nil)
	noisy, _ := NewChannel(durations, UniformNoise(8))
	if ni, ci := noisy.InfoPerTransmission(px), clean.InfoPerTransmission(px); ni >= ci {
		t.Errorf("noise should reduce per-transmission info: noisy %v >= clean %v", ni, ci)
	}
}

func TestPointMassBoundIsResidualNoiseSpread(t *testing.T) {
	// The A.10 bound is conservative: even a single input symbol scores
	// H(δ_i - δ_{i-1}) - H(δ) > 0, because the bound charges the spread of
	// the delay *difference* seen by the receiver. It must equal exactly
	// that residual, be identical for every symbol (shift invariance), and
	// be strictly below the bound for an informative input.
	ch, _ := NewChannel([]int{10, 20, 30}, UniformNoise(4))
	want := info.Dist(autocorrelate(UniformNoise(4))).Entropy() - ch.NoiseEntropy()
	for i := 0; i < 3; i++ {
		got := ch.InfoPerTransmission(info.NewPoint(3, i))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("point mass %d bound = %v, want residual %v", i, got, want)
		}
	}
	if uni := ch.InfoPerTransmission(info.NewUniform(3)); uni <= want {
		t.Errorf("uniform input bound %v should exceed point-mass residual %v", uni, want)
	}
}

func TestAvgTime(t *testing.T) {
	ch, _ := NewChannel([]int{1, 2, 3, 4}, nil)
	if got := ch.AvgTime(info.NewUniform(4)); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Tavg = %v, want 2.5", got)
	}
}

func TestMaxRateBeatsUniformAndHonorsBound(t *testing.T) {
	ch, err := NewChannel([]int{20, 22, 24, 26, 28, 30, 34, 38, 46, 62}, UniformNoise(10))
	if err != nil {
		t.Fatal(err)
	}
	res := ch.MaxRate(DefaultSolverConfig())
	if err := res.Input.Validate(); err != nil {
		t.Fatalf("optimal input not a distribution: %v", err)
	}
	uniform := ch.Rate(info.NewUniform(len(ch.Durations)))
	if res.Rate < uniform-1e-9 {
		t.Errorf("optimized rate %v below uniform rate %v", res.Rate, uniform)
	}
	if !res.Verified {
		t.Error("upper bound not verified")
	}
	if res.UpperBound < res.Rate {
		t.Errorf("upper bound %v below converged rate %v", res.UpperBound, res.Rate)
	}
	// The bound must dominate any particular strategy we can write down.
	for _, px := range []info.Dist{
		info.NewPoint(10, 0),
		info.NewUniform(10),
		{0.5, 0, 0, 0, 0, 0, 0, 0, 0, 0.5},
	} {
		if r := ch.Rate(px); r > res.UpperBound+1e-9 {
			t.Errorf("strategy rate %v exceeds verified bound %v", r, res.UpperBound)
		}
	}
}

func TestMaxRateMonotoneInCooldown(t *testing.T) {
	// Longer cooldowns must lower the maximum rate (Mechanism 1).
	mk := func(cool int) float64 {
		var durations []int
		for d := cool; d <= cool+40; d += 2 {
			durations = append(durations, d)
		}
		ch, err := NewChannel(durations, UniformNoise(8))
		if err != nil {
			t.Fatal(err)
		}
		return ch.MaxRate(DefaultSolverConfig()).Rate
	}
	r1, r2, r4 := mk(10), mk(20), mk(40)
	if !(r1 > r2 && r2 > r4) {
		t.Errorf("rates not decreasing with cooldown: %v, %v, %v", r1, r2, r4)
	}
}

func TestWiderDelayLowersRate(t *testing.T) {
	// Mechanism 2: a wider random delay must not increase the max rate.
	mk := func(w int) float64 {
		var durations []int
		for d := 20; d <= 80; d += 2 {
			durations = append(durations, d)
		}
		ch, err := NewChannel(durations, UniformNoise(w))
		if err != nil {
			t.Fatal(err)
		}
		return ch.MaxRate(DefaultSolverConfig()).Rate
	}
	narrow, wide := mk(2), mk(16)
	if wide >= narrow {
		t.Errorf("wider delay should lower rate: wide %v >= narrow %v", wide, narrow)
	}
}

func TestPropertyRateBelowVerifiedBound(t *testing.T) {
	var durations []int
	for d := 15; d <= 45; d += 3 {
		durations = append(durations, d)
	}
	ch, err := NewChannel(durations, UniformNoise(6))
	if err != nil {
		t.Fatal(err)
	}
	res := ch.MaxRate(DefaultSolverConfig())
	f := func(raw []float64) bool {
		if len(raw) != len(durations) {
			return true
		}
		px := make(info.Dist, len(raw))
		sum := 0.0
		for i, v := range raw {
			px[i] = math.Abs(v)
			if math.IsNaN(px[i]) || math.IsInf(px[i], 0) {
				return true
			}
			sum += px[i]
		}
		if sum == 0 || math.IsInf(sum, 0) {
			return true
		}
		px.Normalize()
		if px.Validate() != nil {
			return true
		}
		return ch.Rate(px) <= res.UpperBound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func testTableConfig() TableConfig {
	return TableConfig{
		Unit:         100 * time.Microsecond,
		Cooldown:     time.Millisecond,
		DelayWidth:   time.Millisecond,
		MaxMaintains: 4,
		Solver: SolverConfig{
			MaxDinkelbachRounds: 8,
			Tolerance:           1e-5,
			InnerIterations:     150,
			InnerStep:           0.3,
			UpperBoundSlack:     1e-3,
			VerifyIterations:    300,
		},
	}
}

func TestRateTableMonotone(t *testing.T) {
	tbl, err := NewRateTable(testTableConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Section 5.3.4: more consecutive Maintains => longer effective cooldown
	// => strictly lower leakage rate.
	for m := 1; m < tbl.Len(); m++ {
		prev, cur := tbl.Entry(m-1), tbl.Entry(m)
		if cur.RatePerSecond >= prev.RatePerSecond {
			t.Errorf("Rmax_%d = %v >= Rmax_%d = %v", m, cur.RatePerSecond, m-1, prev.RatePerSecond)
		}
	}
}

func TestRateTableClampsBeyondCapacity(t *testing.T) {
	tbl, err := NewRateTable(testTableConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Entry(tbl.Len() - 1)
	if got := tbl.Entry(tbl.Len() + 5); got != last {
		t.Error("beyond-capacity lookup should reuse the last entry")
	}
	if got := tbl.Entry(-3); got != tbl.Entry(0) {
		t.Error("negative lookup should clamp to entry 0")
	}
}

func TestLeakageForGapChargesAtLeastMinimumGap(t *testing.T) {
	tbl, err := NewRateTable(testTableConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A reported gap below (m+1)Tc must be clamped up, never under-charged.
	leak := tbl.LeakageForGap(2, time.Microsecond)
	want := tbl.Entry(2).RatePerSecond * (3 * time.Millisecond).Seconds()
	if math.Abs(leak-want) > 1e-9 {
		t.Errorf("leak = %v, want clamped %v", leak, want)
	}
	// Longer gaps charge proportionally more.
	if l10 := tbl.LeakageForGap(0, 10*time.Millisecond); l10 <= tbl.LeakageForGap(0, 2*time.Millisecond) {
		t.Error("longer gap should charge more bits at a fixed rate")
	}
}

func TestSharedTableIsCached(t *testing.T) {
	cfg := testTableConfig()
	a, err := Shared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Shared returned distinct tables for identical configs")
	}
}

func TestTableEntriesVerified(t *testing.T) {
	tbl, err := NewRateTable(testTableConfig())
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < tbl.Len(); m++ {
		if !tbl.Entry(m).Verified {
			t.Errorf("entry %d not verified", m)
		}
	}
}

func TestLeakagePerResizeMatchesEntry(t *testing.T) {
	tbl, err := NewRateTable(testTableConfig())
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < tbl.Len(); m++ {
		if got, want := tbl.LeakagePerResize(m), tbl.Entry(m).BitsPerTransmission; got != want {
			t.Errorf("m=%d: %v != %v", m, got, want)
		}
	}
	// Beyond capacity clamps, like Entry.
	if tbl.LeakagePerResize(100) != tbl.LeakagePerResize(tbl.Len()-1) {
		t.Error("beyond-capacity per-resize charge not clamped")
	}
	// Monotone non-decreasing in m: longer effective cooldowns let a single
	// resize carry more bits (while the RATE falls).
	for m := 1; m < tbl.Len(); m++ {
		if tbl.LeakagePerResize(m) < tbl.LeakagePerResize(m-1) {
			t.Errorf("bits per resize decreased at m=%d", m)
		}
	}
}

func TestDefaultTableConfigIsUsable(t *testing.T) {
	cfg := DefaultTableConfig()
	if cfg.Cooldown != time.Millisecond || cfg.DelayWidth != time.Millisecond {
		t.Errorf("defaults = %+v, want the paper's Tc = 1ms, delay 1ms", cfg)
	}
	if cfg.MaxMaintains != 16 {
		t.Errorf("table capacity = %d", cfg.MaxMaintains)
	}
	if cfg.units(0) != 0 || cfg.units(cfg.Unit) != 1 || cfg.units(cfg.Unit+1) != 2 {
		t.Error("units rounding wrong")
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	cfg := TableConfig{MaxMaintains: -3}
	got := cfg.withDefaults()
	if got.Unit <= 0 || got.Cooldown <= 0 || got.MaxMaintains != 0 {
		t.Errorf("defaults not applied: %+v", got)
	}
	if got.Solver.MaxDinkelbachRounds <= 0 {
		t.Error("solver defaults not applied")
	}
}

func TestTableConfigAccessor(t *testing.T) {
	cfg := testTableConfig()
	tbl, err := NewRateTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Config().Cooldown != cfg.Cooldown {
		t.Error("Config() does not round-trip")
	}
}

func TestUniformNoiseClampsWidth(t *testing.T) {
	if got := UniformNoise(0); len(got) != 1 {
		t.Errorf("width 0 -> %d entries, want 1", len(got))
	}
	if got := UniformNoise(-5); len(got) != 1 {
		t.Errorf("negative width -> %d entries", len(got))
	}
	if got := UniformNoise(7); len(got) != 7 || got[3] != 1.0/7 {
		t.Errorf("width 7 -> %v", got)
	}
}

func TestNoiselessRateRejectsBadDurations(t *testing.T) {
	if _, err := NoiselessRate(nil, nil); err == nil {
		t.Error("empty durations accepted")
	}
}

func TestMaxRateBlahutZeroConfigUsesDefaults(t *testing.T) {
	ch, err := NewChannel([]int{4, 6, 9}, UniformNoise(2))
	if err != nil {
		t.Fatal(err)
	}
	res := ch.MaxRateBlahut(SolverConfig{})
	if res.Rate <= 0 || !res.Verified {
		t.Errorf("zero-config Blahut run: %+v", res)
	}
}
