package covert

import (
	"math"

	"untangle/internal/info"
)

// This file provides an independent solver for the Dinkelbach helper
// problem, used to cross-validate the exponentiated-gradient solver of
// dinkelbach.go.
//
// Observe that for this channel Y = X + (δ_i - δ_{i-1}) with the delay
// difference independent of X, so H(Y|X) = H(δ_i - δ_{i-1}) is a constant.
// The helper objective therefore decomposes as
//
//	N(p) - q D(p) = I(X;Y) + [H(δ_i - δ_{i-1}) - H(δ)] - q E[d_X]
//
// whose maximization over p is the classic capacity-with-input-cost problem,
// solvable with Blahut's algorithm: alternating exact updates
//
//	p'(x) ∝ p(x) · exp( D(k(·|x) || p_Y) - q·d_x·ln2 )        (nats)
//
// which converge monotonically to the optimum. Agreement between the two
// solvers (tested in blahut_test.go) is strong evidence that the verified
// R'max bounds are correct.

// constShift returns H(δ_i - δ_{i-1}) - H(δ) in bits, the constant by which
// the helper objective exceeds I(X;Y) - q·Tavg.
func (c *Channel) constShift() float64 {
	return info.Dist(c.noiseDiff).Entropy() - c.hNoise
}

// blahutHelper solves max_p { N(p) - q D(p) } with Blahut's iteration,
// returning the optimal distribution and the objective value.
func (c *Channel) blahutHelper(q float64, iters int, tol float64) (info.Dist, float64) {
	px := info.NewUniform(len(c.Durations))
	w := len(c.Noise)
	lo, _ := c.outputSpan()
	logW := make([]float64, len(px))
	prev := math.Inf(-1)
	for it := 0; it < iters; it++ {
		py := c.OutputDist(px)
		// D(k(·|x) || p_Y) in nats, minus the cost term.
		for x := range px {
			base := c.Durations[x] - (w - 1) - lo
			d := 0.0
			for k, kq := range c.noiseDiff {
				if kq > 0 {
					d += kq * math.Log(kq/py[base+k])
				}
			}
			logW[x] = d - q*float64(c.Durations[x])*math.Ln2
		}
		// p'(x) ∝ p(x) exp(logW[x]); normalize in log space.
		maxW := math.Inf(-1)
		for x := range px {
			if px[x] > 0 && logW[x] > maxW {
				maxW = logW[x]
			}
		}
		sum := 0.0
		for x := range px {
			if px[x] > 0 {
				px[x] *= math.Exp(logW[x] - maxW)
				sum += px[x]
			}
		}
		if sum <= 0 || math.IsNaN(sum) {
			px = info.NewUniform(len(px))
			continue
		}
		for x := range px {
			px[x] /= sum
		}
		obj := c.objective(px, q)
		if math.Abs(obj-prev) < tol {
			break
		}
		prev = obj
	}
	return px, c.objective(px, q)
}

// MaxRateBlahut computes R'max with Dinkelbach's outer loop and Blahut's
// inner solver. It mirrors MaxRate and exists for cross-validation and as a
// faster inner solver for large alphabets (the update is exact rather than
// gradient-based).
func (c *Channel) MaxRateBlahut(cfg SolverConfig) Result {
	if cfg.MaxDinkelbachRounds <= 0 {
		cfg = DefaultSolverConfig()
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	q := 0.0
	var px info.Dist
	rounds := 0
	for ; rounds < cfg.MaxDinkelbachRounds; rounds++ {
		var f float64
		px, f = c.blahutHelper(q, cfg.InnerIterations, tol)
		qNext := c.InfoPerTransmission(px) / c.AvgTime(px)
		if f < cfg.Tolerance && rounds > 0 {
			break
		}
		q = qNext
	}
	res := Result{
		Rate:                c.Rate(px),
		Input:               px.Clone(),
		BitsPerTransmission: c.InfoPerTransmission(px),
		AvgTime:             c.AvgTime(px),
		Rounds:              rounds,
	}
	slack := cfg.UpperBoundSlack
	if slack <= 0 {
		slack = 1e-4
	}
	for attempt := 0; attempt < 20; attempt++ {
		qPrime := res.Rate + slack
		if _, f := c.blahutHelper(qPrime, cfg.VerifyIterations, tol); f <= 0 {
			res.UpperBound = qPrime
			res.Verified = true
			return res
		}
		slack *= 2
	}
	res.UpperBound = res.Rate + slack
	return res
}
