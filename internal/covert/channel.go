// Package covert implements the covert-channel model of Section 5.3.3 of the
// Untangle paper and the maximum-data-rate computation of Appendix A.
//
// The model: information is encoded as the time a victim spends in an
// observable state (a partition size). The sender picks an input symbol x,
// represented by a duration d_x measured in integer time units; the cooldown
// mechanism (Mechanism 1) forces d_x >= Tc. The resizing action that ends the
// duration is delayed by a random δ drawn from a known distribution
// (Mechanism 2), so the receiver observes
//
//	d_y = d_x + δ_i - δ_{i-1}                     (Equation 5.8)
//
// The per-transmission information is bounded by H(Y) - H(δ) (Equation A.10)
// and the channel's data rate by
//
//	R'max = max_{p(x)} (H(Y) - H(δ)) / Tavg       (Problem A.11)
//
// which this package solves with Dinkelbach's transform (Appendix A), using a
// pure-Go exponentiated-gradient concave maximizer in place of the paper's
// PyTorch Adam optimizer.
package covert

import (
	"errors"
	"fmt"
	"math"

	"untangle/internal/info"
)

// Channel is a fully-specified covert channel: a set of candidate input
// durations and the random-delay distribution.
type Channel struct {
	// Durations holds d_x for every input symbol, in integer time units,
	// strictly increasing. Mechanism 1 requires Durations[0] >= cooldown.
	Durations []int
	// Noise is the distribution of the random delay δ over offsets
	// 0..len(Noise)-1 time units. A single-point distribution means no
	// random delay (Mechanism 2 disabled).
	Noise info.Dist

	// noiseDiff is p(δ_i - δ_{i-1}), the autocorrelation of Noise, over
	// offsets -(W-1)..W-1 stored at index k+(W-1).
	noiseDiff []float64
	// hNoise is H(δ) in bits.
	hNoise float64
}

// NewChannel validates and precomputes a channel.
func NewChannel(durations []int, noise info.Dist) (*Channel, error) {
	if len(durations) == 0 {
		return nil, errors.New("covert: no input durations")
	}
	for i, d := range durations {
		if d <= 0 {
			return nil, fmt.Errorf("covert: duration %d is %d, must be positive", i, d)
		}
		if i > 0 && durations[i] <= durations[i-1] {
			return nil, fmt.Errorf("covert: durations must be strictly increasing (index %d)", i)
		}
	}
	if len(noise) == 0 {
		noise = info.Dist{1}
	}
	if err := noise.Validate(); err != nil {
		return nil, fmt.Errorf("covert: noise: %w", err)
	}
	c := &Channel{
		Durations: append([]int(nil), durations...),
		Noise:     noise.Clone(),
		hNoise:    noise.Entropy(),
	}
	c.noiseDiff = autocorrelate(c.Noise)
	return c, nil
}

// UniformNoise returns a uniform random-delay distribution over width time
// units, the paper's δ ~ U[0, 1ms) configuration at the chosen resolution.
func UniformNoise(width int) info.Dist {
	if width < 1 {
		width = 1
	}
	return info.NewUniform(width)
}

// autocorrelate returns p(δ_i - δ_{i-1}) for IID δ: the cross-correlation of
// the noise distribution with itself, indexed k + (W-1) for k in
// [-(W-1), W-1]. For uniform noise this is the triangular distribution.
func autocorrelate(noise info.Dist) []float64 {
	w := len(noise)
	out := make([]float64, 2*w-1)
	for i, pi := range noise {
		if pi == 0 {
			continue
		}
		for j, pj := range noise {
			out[i-j+w-1] += pi * pj
		}
	}
	return out
}

// NoiseEntropy returns H(δ) in bits.
func (c *Channel) NoiseEntropy() float64 { return c.hNoise }

// outputSpan returns the inclusive range [lo, hi] of possible observed
// durations d_y.
func (c *Channel) outputSpan() (lo, hi int) {
	w := len(c.Noise)
	return c.Durations[0] - (w - 1), c.Durations[len(c.Durations)-1] + (w - 1)
}

// OutputDist computes p(y) for the given input distribution: the mixture of
// the noise-difference kernel shifted to each input duration. The returned
// slice is indexed by y - lo where lo is the smallest possible output.
func (c *Channel) OutputDist(px info.Dist) info.Dist {
	lo, hi := c.outputSpan()
	py := make(info.Dist, hi-lo+1)
	w := len(c.Noise)
	for x, p := range px {
		if p == 0 {
			continue
		}
		base := c.Durations[x] - (w - 1) - lo
		for k, q := range c.noiseDiff {
			if q > 0 {
				py[base+k] += p * q
			}
		}
	}
	return py
}

// InfoPerTransmission returns the conservative per-transmission information
// bound H(Y) - H(δ) of Equation A.10, in bits, for input distribution px.
func (c *Channel) InfoPerTransmission(px info.Dist) float64 {
	v := c.OutputDist(px).Entropy() - c.hNoise
	if v < 0 {
		// H(Y) >= H(δ_i - δ_{i-1}) >= H(δ) for every input distribution, so
		// the bound is non-negative; clamp floating-point rounding residue.
		v = 0
	}
	return v
}

// AvgTime returns Tavg = sum p(x) d_x (Equation 5.7), in time units.
func (c *Channel) AvgTime(px info.Dist) float64 {
	t := 0.0
	for x, p := range px {
		t += p * float64(c.Durations[x])
	}
	return t
}

// Rate returns the data-rate bound (H(Y)-H(δ))/Tavg in bits per time unit
// for input distribution px (the objective of Problem A.11).
func (c *Channel) Rate(px info.Dist) float64 {
	return c.InfoPerTransmission(px) / c.AvgTime(px)
}

// NoiselessRate returns H(X)/Tavg for a channel with no random delay — the
// quantity used in the worked strategy example of Section 5.3.1 (Strategy 1:
// 2 bits / 2.5 ms = 800 bits/s; Strategy 2: 3 bits / 4.5 ms ≈ 667 bits/s).
func NoiselessRate(durations []int, px info.Dist) (bitsPerUnit float64, err error) {
	ch, err := NewChannel(durations, info.Dist{1})
	if err != nil {
		return 0, err
	}
	return ch.Rate(px), nil
}

// objectiveGrad computes the gradient of N(p) - q*D(p) with respect to p,
// where N(p) = H(Y) - H(δ) and D(p) = Tavg. Used by the Dinkelbach inner
// solver. The gradient of H(Y) w.r.t. p(x) is
//
//	-Σ_y k(y - d_x) (log2 p(y) + 1/ln 2)
//
// with k the noise-difference kernel.
func (c *Channel) objectiveGrad(px info.Dist, q float64, grad []float64) {
	py := c.OutputDist(px)
	lo, _ := c.outputSpan()
	w := len(c.Noise)
	const invLn2 = 1 / math.Ln2
	logPy := make([]float64, len(py))
	for y, p := range py {
		if p > 0 {
			logPy[y] = math.Log2(p)
		}
	}
	for x := range px {
		g := 0.0
		base := c.Durations[x] - (w - 1) - lo
		for k, kq := range c.noiseDiff {
			if kq > 0 {
				g -= kq * (logPy[base+k] + invLn2)
			}
		}
		grad[x] = g - q*float64(c.Durations[x])
	}
}

// objective evaluates N(p) - q*D(p).
func (c *Channel) objective(px info.Dist, q float64) float64 {
	return c.InfoPerTransmission(px) - q*c.AvgTime(px)
}
