package covert

import (
	"math"

	"untangle/internal/info"
)

// SolverConfig controls the Dinkelbach iteration of Appendix A and the inner
// concave maximizer.
type SolverConfig struct {
	// MaxDinkelbachRounds bounds the number of outer q updates.
	MaxDinkelbachRounds int
	// Tolerance ε: the outer loop stops once F(q_i) < ε.
	Tolerance float64
	// InnerIterations is the number of exponentiated-gradient steps used to
	// solve each helper problem F(q) = max_p { N(p) - q D(p) }.
	InnerIterations int
	// InnerStep is the mirror-descent step size.
	InnerStep float64
	// UpperBoundSlack is the initial δ added to q_n when guessing the upper
	// bound q' = q_n + δ; it doubles until F(q') <= 0 is verified.
	UpperBoundSlack float64
	// VerifyIterations is the iteration budget used to verify F(q') <= 0
	// (the paper uses 10,000 Adam iterations).
	VerifyIterations int
}

// DefaultSolverConfig returns parameters that converge on every channel used
// in the evaluation while keeping table precomputation fast.
func DefaultSolverConfig() SolverConfig {
	return SolverConfig{
		MaxDinkelbachRounds: 12,
		Tolerance:           1e-6,
		InnerIterations:     400,
		InnerStep:           0.25,
		UpperBoundSlack:     1e-4,
		VerifyIterations:    1200,
	}
}

// Result describes the outcome of the Rmax computation for one channel.
type Result struct {
	// Rate is the converged data-rate bound R'max in bits per time unit.
	Rate float64
	// UpperBound is the verified upper bound q' >= R'max with F(q') <= 0.
	UpperBound float64
	// Input is the optimal input distribution p(x).
	Input info.Dist
	// BitsPerTransmission is H(Y)-H(δ) at the optimal input: the information
	// the receiver learns from a single observed resize.
	BitsPerTransmission float64
	// AvgTime is Tavg at the optimal input, in time units.
	AvgTime float64
	// Rounds is the number of Dinkelbach rounds executed.
	Rounds int
	// Verified reports whether F(UpperBound) <= 0 was confirmed.
	Verified bool
}

// maximizeHelper solves the Dinkelbach helper problem
//
//	F(q) = max_p { N(p) - q D(p) }      (Equation A.13)
//
// over the probability simplex using exponentiated-gradient ascent, starting
// from the provided distribution (which it mutates and returns). The target
// is concave in p (Appendix A), so mirror descent converges to the maximum.
func (c *Channel) maximizeHelper(px info.Dist, q float64, iters int, step float64) (info.Dist, float64) {
	grad := make([]float64, len(px))
	for it := 0; it < iters; it++ {
		c.objectiveGrad(px, q, grad)
		// Exponentiated gradient: p <- p * exp(step * g), renormalized.
		// Subtract the max gradient for numerical stability.
		gmax := math.Inf(-1)
		for _, g := range grad {
			if g > gmax {
				gmax = g
			}
		}
		sum := 0.0
		for x := range px {
			px[x] *= math.Exp(step * (grad[x] - gmax))
			sum += px[x]
		}
		if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
			// Restart from uniform if the update degenerated.
			px = info.NewUniform(len(px))
			continue
		}
		for x := range px {
			px[x] /= sum
		}
	}
	return px, c.objective(px, q)
}

// MaxRate computes R'max for the channel via Dinkelbach's transform:
//
//  1. q_1 = 0
//  2. solve F(q_i) for p_i
//  3. q_{i+1} = N(p_i)/D(p_i); repeat until F(q_i) < ε
//
// then guesses q' = q_n + δ and verifies F(q') <= 0, doubling δ as needed
// (Appendix A). The returned Result carries both the converged rate and the
// verified upper bound.
func (c *Channel) MaxRate(cfg SolverConfig) Result {
	if cfg.MaxDinkelbachRounds <= 0 {
		cfg = DefaultSolverConfig()
	}
	px := info.NewUniform(len(c.Durations))
	q := 0.0
	rounds := 0
	for ; rounds < cfg.MaxDinkelbachRounds; rounds++ {
		var f float64
		px, f = c.maximizeHelper(px, q, cfg.InnerIterations, cfg.InnerStep)
		qNext := c.InfoPerTransmission(px) / c.AvgTime(px)
		if f < cfg.Tolerance && rounds > 0 {
			break
		}
		q = qNext
	}
	res := Result{
		Rate:                c.Rate(px),
		Input:               px.Clone(),
		BitsPerTransmission: c.InfoPerTransmission(px),
		AvgTime:             c.AvgTime(px),
		Rounds:              rounds,
	}
	// Guess-and-verify the upper bound q' = q_n + δ with F(q') <= 0.
	slack := cfg.UpperBoundSlack
	if slack <= 0 {
		slack = 1e-4
	}
	for attempt := 0; attempt < 20; attempt++ {
		qPrime := res.Rate + slack
		trial := info.NewUniform(len(c.Durations))
		_, f := c.maximizeHelper(trial, qPrime, cfg.VerifyIterations, cfg.InnerStep)
		if f <= 0 {
			res.UpperBound = qPrime
			res.Verified = true
			return res
		}
		slack *= 2
	}
	// Verification failed within budget; fall back to the unverified rate
	// with the last slack (still conservative relative to the converged q).
	res.UpperBound = res.Rate + slack
	return res
}
