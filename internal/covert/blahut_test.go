package covert

import (
	"math"
	"testing"

	"untangle/internal/info"
)

func TestConstShiftNonNegative(t *testing.T) {
	// H(δ_i - δ_{i-1}) >= H(δ): convolving with an independent copy cannot
	// reduce entropy.
	for _, w := range []int{1, 2, 4, 16, 40} {
		ch, err := NewChannel([]int{10, 20}, UniformNoise(w))
		if err != nil {
			t.Fatal(err)
		}
		if s := ch.constShift(); s < -1e-12 {
			t.Errorf("width %d: shift = %v", w, s)
		}
	}
}

func TestBlahutAgreesWithMirrorDescent(t *testing.T) {
	cfgs := []struct {
		name      string
		durations []int
		noise     int
	}{
		{"noiseless", []int{5, 7, 11, 16}, 1},
		{"narrow-noise", []int{20, 24, 28, 36, 52}, 6},
		{"paper-like", rangeDur(40, 400, 8), 40},
	}
	solver := DefaultSolverConfig()
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			ch, err := NewChannel(c.durations, UniformNoise(c.noise))
			if err != nil {
				t.Fatal(err)
			}
			a := ch.MaxRate(solver)
			b := ch.MaxRateBlahut(solver)
			if rel := math.Abs(a.Rate-b.Rate) / math.Max(a.Rate, 1e-12); rel > 0.01 {
				t.Errorf("solvers disagree: mirror %v vs blahut %v (rel %v)", a.Rate, b.Rate, rel)
			}
			if !b.Verified {
				t.Error("blahut bound not verified")
			}
			// Each solver's achieved rate must respect the other's verified
			// upper bound.
			if a.Rate > b.UpperBound+1e-9 || b.Rate > a.UpperBound+1e-9 {
				t.Errorf("rates exceed cross bounds: %v/%v vs bounds %v/%v",
					a.Rate, b.Rate, a.UpperBound, b.UpperBound)
			}
		})
	}
}

func rangeDur(lo, hi, step int) []int {
	var out []int
	for d := lo; d <= hi; d += step {
		out = append(out, d)
	}
	return out
}

func TestBlahutHelperImprovesObjective(t *testing.T) {
	ch, err := NewChannel(rangeDur(20, 120, 4), UniformNoise(10))
	if err != nil {
		t.Fatal(err)
	}
	q := 0.02
	uniformObj := ch.objective(info.NewUniform(len(ch.Durations)), q)
	_, solved := ch.blahutHelper(q, 200, 1e-10)
	if solved < uniformObj-1e-9 {
		t.Errorf("helper objective %v below uniform starting point %v", solved, uniformObj)
	}
}

func TestBlahutNoiselessMatchesExactCapacityTradeoff(t *testing.T) {
	// For a noiseless channel, R'max = max_p H(X)/E[d_X]. For two symbols
	// with durations d1, d2 the optimum is known to satisfy
	// R = log2(z)/d1 where z solves z^{-d1} + z^{-d2} = 1 (Shannon's
	// combinatorial capacity of timing codes). Check against a numerically
	// solved instance: d = {1, 2} gives R = log2(golden ratio) ≈ 0.6942.
	ch, err := NewChannel([]int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ch.MaxRateBlahut(DefaultSolverConfig())
	want := math.Log2((1 + math.Sqrt(5)) / 2)
	if math.Abs(res.Rate-want) > 0.01 {
		t.Errorf("noiseless {1,2} rate = %v, want log2(phi) = %v", res.Rate, want)
	}
}
