package mrc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"untangle/internal/cache"
	"untangle/internal/isa"
	"untangle/internal/monitor"
	"untangle/internal/workload"
)

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(0); err == nil {
		t.Error("zero maxLines accepted")
	}
}

func TestCyclicScanCliff(t *testing.T) {
	// A cyclic scan over W lines under LRU: 0% hits below W, 100% at W
	// (after the first pass). The stack-distance histogram captures the
	// cliff exactly.
	p, err := NewProfile(4096)
	if err != nil {
		t.Fatal(err)
	}
	const w = 100
	for pass := 0; pass < 50; pass++ {
		for i := 0; i < w; i++ {
			p.Observe(uint64(i) * cache.LineBytes)
		}
	}
	if hr := p.HitRate(w - 1); hr != 0 {
		t.Errorf("hit rate below the working set = %v, want 0", hr)
	}
	// At capacity w: every access after the first pass hits.
	want := float64(49*w) / float64(50*w)
	if hr := p.HitRate(w); math.Abs(hr-want) > 1e-12 {
		t.Errorf("hit rate at the working set = %v, want %v", hr, want)
	}
	if p.Distinct() != w {
		t.Errorf("distinct = %d", p.Distinct())
	}
}

func TestHotLoopHitsAtTinySize(t *testing.T) {
	p, _ := NewProfile(1024)
	for i := 0; i < 10000; i++ {
		p.Observe(uint64(i%2) * cache.LineBytes)
	}
	if hr := p.HitRate(2); hr < 0.999 {
		t.Errorf("two-line loop at 2-line cache: hit rate %v", hr)
	}
	if hr := p.HitRate(1); hr > 0.001 {
		t.Errorf("alternating pair at 1-line cache: hit rate %v, want ~0", hr)
	}
}

func TestMonotoneInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, _ := NewProfile(512)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			p.Observe(uint64(r.Intn(600)) * cache.LineBytes)
		}
		prev := 0.0
		for lines := 1; lines <= 512; lines *= 2 {
			hr := p.HitRate(lines)
			if hr < prev-1e-12 {
				return false
			}
			prev = hr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAgainstFullyAssociativeGroundTruth(t *testing.T) {
	// The profile's hit rate at capacity C must match a real C-line
	// fully-associative LRU cache run over the same stream.
	const lines = 64
	p, _ := NewProfile(4096)
	// One set with `lines` ways = a fully associative LRU cache. Use a
	// single-set geometry: sets = 1 requires size = ways*64.
	fa := cache.MustNew(cache.Config{SizeBytes: lines * cache.LineBytes, Ways: lines})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		addr := uint64(r.Intn(200)) * cache.LineBytes
		p.Observe(addr)
		fa.Access(addr, false)
	}
	got := p.HitRate(lines)
	want := fa.Stats().HitRate()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("stack-distance hit rate %v != fully-associative LRU %v", got, want)
	}
}

func TestCurveMatchesMonitorShape(t *testing.T) {
	// The UMON monitor approximates these curves with sampled
	// set-associative shadows; across the supported sizes the two must
	// agree on the SHAPE (same saturation point within one size step).
	params, err := workload.SPECByName("deepsjeng_0") // 320kB cold set
	if err != nil {
		t.Fatal(err)
	}
	mkStream := func() isa.Stream {
		g, err := workload.NewGenerator(params)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	p, _ := NewProfile((16 << 20) / cache.LineBytes)
	p.ObserveStream(mkStream(), 200_000)

	mon, err := monitor.New(monitor.Config{
		Sizes: monitor.DefaultSizes(), Ways: 16, Window: 200_000, SampleLog2: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mkStream()
	buf := make([]isa.Op, 4096)
	var seen uint64
	for seen < 200_000 {
		n := s.Fill(buf)
		for _, op := range buf[:n] {
			if op.IsMem() {
				mon.Observe(op.Addr, op.IsWrite())
				seen++
			}
		}
	}
	exact := p.Curve(monitor.DefaultSizes())
	approx := mon.Utilities()
	// Find each curve's saturation index (first size reaching 95% of max).
	sat := func(vals []float64) int {
		max := vals[len(vals)-1]
		for i, v := range vals {
			if v >= 0.95*max {
				return i
			}
		}
		return len(vals) - 1
	}
	approxVals := make([]float64, len(approx))
	for i, u := range approx {
		approxVals[i] = u.Hits
	}
	if a, b := sat(exact), sat(approxVals); a-b > 1 || b-a > 1 {
		t.Errorf("saturation points disagree: exact %d vs monitor %d\nexact %v\nmonitor %v",
			a, b, exact, approxVals)
	}
}

func TestObserveStreamSkipsSecretAccesses(t *testing.T) {
	params, err := workload.CryptoByName("AES-128") // fully secret
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(params)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile(1024)
	if n := p.ObserveStream(isa.NewLimited(g, 50_000), 0); n != 0 {
		t.Errorf("observed %d secret accesses, want 0", n)
	}
}

func TestTreeInvariants(t *testing.T) {
	tr := newOstree()
	keys := []uint64{5, 1, 9, 3, 7}
	for _, k := range keys {
		tr.insert(k)
	}
	if got := tr.rankBefore(5); got != 2 {
		t.Errorf("rankBefore(5) = %d, want 2", got)
	}
	if got := tr.rankBefore(0); got != 0 {
		t.Errorf("rankBefore(0) = %d", got)
	}
	if got := tr.rankBefore(100); got != 5 {
		t.Errorf("rankBefore(100) = %d", got)
	}
	tr.delete(3)
	tr.delete(9)
	if got := len(tr.sortedKeys()); got != 3 {
		t.Errorf("size after deletes = %d", got)
	}
	if got := tr.rankBefore(100); got != 3 {
		t.Errorf("rankBefore after deletes = %d", got)
	}
}

func TestPropertyTreeMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := newOstree()
		ref := map[uint64]bool{}
		for i := 0; i < 300; i++ {
			k := uint64(r.Intn(100))
			if ref[k] {
				tr.delete(k)
				delete(ref, k)
			} else {
				tr.insert(k)
				ref[k] = true
			}
			// Check a random rank query against the reference.
			q := uint64(r.Intn(110))
			var want uint64
			for rk := range ref {
				if rk < q {
					want++
				}
			}
			if tr.rankBefore(q) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	p, _ := NewProfile((16 << 20) / cache.LineBytes)
	r := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1<<18)) * cache.LineBytes
	}
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		p.Observe(addrs[i&(1<<16-1)])
	}
}
