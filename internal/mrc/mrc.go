// Package mrc computes miss-rate curves with Mattson's stack-distance
// algorithm: a single pass over an access stream yields, for every cache
// size at once, the hit rate a fully-associative LRU cache of that size
// would achieve (the inclusion property of stack algorithms).
//
// In this repository the curves serve two purposes:
//
//   - validating the UMON-style monitor (its sampled set-associative shadow
//     tags approximate exactly these curves; the tests check the
//     approximation), and
//   - profiling workload generators and recorded traces (cmd/tracegen) so
//     users can see a victim's LLC demand curve before simulating it.
//
// The implementation uses an order-statistics tree over the LRU stack, so a
// pass over n accesses with u distinct lines costs O(n log u).
package mrc

import (
	"fmt"
	"sort"

	"untangle/internal/cache"
	"untangle/internal/isa"
)

// Profile accumulates a stack-distance histogram.
type Profile struct {
	// hist[d] counts accesses with stack distance d (0 = re-access of the
	// most recently used line); distances beyond the tracked maximum and
	// cold misses land in misses.
	hist []uint64
	// cold counts first-touch accesses (infinite distance).
	cold uint64
	// total counts all observed accesses.
	total uint64

	tree *ostree
	pos  map[uint64]uint64 // lineAddr -> current key in the tree
	next uint64            // decreasing key counter (newest = smallest)
}

// NewProfile tracks distances up to maxLines (the largest cache size of
// interest, in lines).
func NewProfile(maxLines int) (*Profile, error) {
	if maxLines <= 0 {
		return nil, fmt.Errorf("mrc: maxLines = %d", maxLines)
	}
	return &Profile{
		hist: make([]uint64, maxLines),
		tree: newOstree(),
		pos:  map[uint64]uint64{},
		next: ^uint64(0),
	}, nil
}

// Observe records one access to the line containing addr.
func (p *Profile) Observe(addr uint64) {
	line := addr / cache.LineBytes
	p.total++
	if key, ok := p.pos[line]; ok {
		// Stack distance = number of keys smaller than this one (lines
		// accessed more recently).
		d := p.tree.rankBefore(key)
		if d < uint64(len(p.hist)) {
			p.hist[d]++
		} else {
			p.cold++ // beyond the tracked range: counts as a miss everywhere
		}
		p.tree.delete(key)
	} else {
		p.cold++
	}
	key := p.next
	p.next--
	p.tree.insert(key)
	p.pos[line] = key
}

// ObserveStream drains a stream through the profile, observing public memory
// accesses only (the monitor's view); it returns the number observed.
func (p *Profile) ObserveStream(s isa.Stream, maxOps uint64) uint64 {
	buf := make([]isa.Op, 4096)
	var n uint64
	for maxOps == 0 || n < maxOps {
		c := s.Fill(buf)
		if c == 0 {
			break
		}
		for _, op := range buf[:c] {
			if op.IsMem() && !op.SecretUse() {
				p.Observe(op.Addr)
				n++
				if maxOps > 0 && n >= maxOps {
					break
				}
			}
		}
	}
	return n
}

// Total returns the number of observed accesses.
func (p *Profile) Total() uint64 { return p.total }

// Distinct returns the number of distinct lines seen.
func (p *Profile) Distinct() int { return len(p.pos) }

// HitRate returns the exact hit rate of a fully-associative LRU cache with
// the given capacity in lines (the inclusion property makes this a prefix
// sum of the histogram).
func (p *Profile) HitRate(lines int) float64 {
	if p.total == 0 {
		return 0
	}
	if lines > len(p.hist) {
		lines = len(p.hist)
	}
	var hits uint64
	for d := 0; d < lines; d++ {
		hits += p.hist[d]
	}
	return float64(hits) / float64(p.total)
}

// Curve returns hit rates for a list of capacities in bytes.
func (p *Profile) Curve(sizes []int64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = p.HitRate(int(s / cache.LineBytes))
	}
	return out
}

// --- order-statistics tree ---------------------------------------------
//
// A simple treap keyed by uint64 with subtree sizes, supporting insert,
// delete, and rank queries. Priorities come from a deterministic hash of the
// key, which keeps runs reproducible.

type node struct {
	key         uint64
	prio        uint64
	size        int
	left, right *node
}

type ostree struct{ root *node }

func newOstree() *ostree { return &ostree{} }

func prioOf(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	return h ^ (h >> 32)
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() { n.size = 1 + size(n.left) + size(n.right) }

// split divides the tree into keys < k and keys >= k.
func split(n *node, k uint64) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if n.key < k {
		n.right, r = split(n.right, k)
		n.update()
		return n, r
	}
	l, n.left = split(n.left, k)
	n.update()
	return l, n
}

func merge(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

func (t *ostree) insert(key uint64) {
	l, r := split(t.root, key)
	n := &node{key: key, prio: prioOf(key), size: 1}
	t.root = merge(merge(l, n), r)
}

func (t *ostree) delete(key uint64) {
	l, r := split(t.root, key)
	_, r = split(r, key+1)
	t.root = merge(l, r)
}

// rankBefore returns the number of keys strictly smaller than key.
func (t *ostree) rankBefore(key uint64) uint64 {
	var rank uint64
	n := t.root
	for n != nil {
		if key <= n.key {
			n = n.left
		} else {
			rank += uint64(size(n.left)) + 1
			n = n.right
		}
	}
	return rank
}

// sortedKeys returns all keys in order (tests only).
func (t *ostree) sortedKeys() []uint64 {
	var out []uint64
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.key)
		walk(n.right)
	}
	walk(t.root)
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		panic("mrc: tree invariant violated")
	}
	return out
}
