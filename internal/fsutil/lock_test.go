package fsutil

import (
	"path/filepath"
	"testing"
	"time"
)

// Two independent acquisitions of the same lock path (distinct
// descriptors, as two processes would hold) must exclude each other — this
// is the cross-process single-flight guarantee sharded campaign workers
// rely on to avoid generating the same trace-cache entry twice.
func TestLockFileExcludes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "entry.fetrace.lock")

	unlock1, err := LockFile(path)
	if err != nil {
		t.Fatal(err)
	}

	acquired := make(chan func() error, 1)
	go func() {
		unlock2, err := LockFile(path)
		if err != nil {
			t.Error(err)
			acquired <- func() error { return nil }
			return
		}
		acquired <- unlock2
	}()

	select {
	case <-acquired:
		t.Fatal("second acquisition succeeded while first lock held")
	case <-time.After(100 * time.Millisecond):
	}

	if err := unlock1(); err != nil {
		t.Fatal(err)
	}
	select {
	case unlock2 := <-acquired:
		if err := unlock2(); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second acquisition never completed after release")
	}
}

// Re-acquiring after a full acquire/release cycle must work — the unlock
// func releases both the lock and the descriptor.
func TestLockFileReacquire(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	for i := 0; i < 3; i++ {
		unlock, err := LockFile(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := unlock(); err != nil {
			t.Fatalf("cycle %d unlock: %v", i, err)
		}
	}
}
