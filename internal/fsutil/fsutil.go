// Package fsutil provides crash-safe file output for the experiment
// commands. Every result file in this repository — reports, traces, JSON
// exports, checkpoints — is either complete or absent: writers stage their
// bytes in a temporary file in the destination directory, fsync it, and
// atomically rename it over the target. A crash (or an injected fault — see
// internal/faultinject) at any instant leaves either the old file or the
// new one at the destination path, never a torn hybrid, because rename(2)
// within one directory is atomic on POSIX systems.
package fsutil

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path with the durability and atomicity
// guarantees described in the package comment. It is the drop-in
// replacement for os.WriteFile at every result-writing site.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if _, err := a.Write(data); err != nil {
		a.Close()
		return err
	}
	if err := a.f.Chmod(perm); err != nil {
		a.Close()
		return err
	}
	return a.Commit()
}

// AtomicFile is a streaming writer with transactional semantics: bytes go
// to a hidden temporary file next to the destination, Commit publishes them
// at the destination path in one atomic step, and Close without Commit
// discards them. The destination is never observable in a partial state.
type AtomicFile struct {
	f         *os.File
	path      string
	committed bool
}

// CreateAtomic starts an atomic write of path. The temporary file is
// created in path's directory (rename across filesystems is not atomic),
// with a name derived from the target so interrupted runs are easy to
// identify and clean up.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer, appending to the staged temporary file.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.committed {
		return 0, fmt.Errorf("fsutil: write to %s after Commit", a.path)
	}
	return a.f.Write(p)
}

// Name returns the destination path the file will be committed to.
func (a *AtomicFile) Name() string { return a.path }

// Commit makes the staged bytes the content of the destination path:
// fsync the temporary file (so the rename never publishes an empty or
// partial file after a power failure), close it, and rename it over the
// target. After Commit the AtomicFile is spent; Close becomes a no-op.
func (a *AtomicFile) Commit() error {
	if a.committed {
		return nil
	}
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.Close()
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return err
	}
	a.committed = true
	// Best effort: make the rename itself durable. A failure here means
	// the new file exists but the directory entry may revert to the old
	// one after a crash — both are complete files, so the atomicity
	// contract still holds.
	if dirf, err := os.Open(filepath.Dir(a.path)); err == nil {
		dirf.Sync()
		dirf.Close()
	}
	return nil
}

// Close aborts an uncommitted write, removing the temporary file; after
// Commit it is a no-op. It is safe (and intended) to defer Close
// unconditionally next to a conditional Commit.
func (a *AtomicFile) Close() error {
	if a.committed {
		return nil
	}
	a.committed = true
	err := a.f.Close()
	if rmErr := os.Remove(a.f.Name()); err == nil {
		err = rmErr
	}
	return err
}

var _ io.WriteCloser = (*AtomicFile)(nil)
