package fsutil

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"untangle/internal/faultinject"
)

// listDir returns the names in dir, for asserting no temp-file debris.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("temp debris left behind: %v", names)
	}
	// Overwrite.
	if err := WriteFileAtomic(path, []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "world" {
		t.Errorf("after overwrite: %q", got)
	}
}

// The atomicity contract: a write that never commits — a crash, an abort,
// an injected fault — leaves the previous file byte-identical, and a
// commit publishes the whole new content. The destination is never torn.
func TestAbortPreservesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	if err := os.WriteFile(path, []byte("old report"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("new repo")); err != nil { // torn mid-"report"
		t.Fatal(err)
	}
	// Old content stays visible while the new write is staged.
	if got, _ := os.ReadFile(path); string(got) != "old report" {
		t.Errorf("destination changed before commit: %q", got)
	}
	if err := a.Close(); err != nil { // the "crash": never committed
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old report" {
		t.Errorf("aborted write tore the destination: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("abort left temp debris: %v", names)
	}
}

// An injected device fault mid-stream (short write, then persistent
// failure) aborts the transaction; the destination keeps the old content.
func TestInjectedShortWriteLeavesOldOrNew(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(path, []byte("line1\nline2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	fw := &faultinject.Writer{W: a, FailAt: 2, Short: true}
	_, err1 := io.WriteString(fw, "newline1\n")
	_, err2 := io.WriteString(fw, "newline2\n")
	if err1 != nil || err2 == nil {
		t.Fatalf("injector misfired: %v, %v", err1, err2)
	}
	a.Close() // writer failed; the command aborts instead of committing
	got, _ := os.ReadFile(path)
	if string(got) != "line1\nline2\n" {
		t.Errorf("fault tore the destination: %q", got)
	}
}

func TestCommitThenCloseAndLateWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(a, "done")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // no-op after Commit
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("late")); err == nil || !strings.Contains(err.Error(), "after Commit") {
		t.Errorf("write after Commit: err = %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "done" {
		t.Errorf("content %q", got)
	}
}
