package fsutil

// LockFile acquires an exclusive advisory lock on path, creating the file
// if needed, and blocks until the lock is available. It returns an unlock
// func that releases the lock and closes the underlying descriptor.
//
// The lock is cross-process where the platform supports it (flock(2) on
// unix): two processes locking the same path exclude each other, and the
// kernel releases the lock automatically if the holder dies — no stale
// lock files to clean up, which matters for sharded campaign workers that
// may be killed at any instant. On platforms without advisory locking the
// call succeeds without providing exclusion; callers must therefore use it
// only for single-flight deduplication (avoiding duplicate work), never
// for correctness — anything published under the lock must still be
// crash-safe on its own (see AtomicFile).
func LockFile(path string) (func() error, error) {
	return lockFile(path)
}
