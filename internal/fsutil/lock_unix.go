//go:build unix

package fsutil

import (
	"os"
	"syscall"
)

func lockFile(path string) (func() error, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		// Closing the descriptor releases the flock, but release
		// explicitly first so the unlock is not at the mercy of close
		// semantics.
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}
