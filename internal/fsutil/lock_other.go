//go:build !unix

package fsutil

// No advisory locking on this platform: the lock degrades to a no-op, so
// concurrent processes may duplicate work but never corrupt state (see
// LockFile's contract — correctness always rests on atomic publication).
func lockFile(path string) (func() error, error) {
	return func() error { return nil }, nil
}
