// Package attacker implements the adversary models of the paper's threat
// model (Section 4) and attack discussions (Sections 6.2 and 9):
//
//   - Observer: the idealized passive attacker that sees the victim's exact
//     resizing trace (what actions, and when).
//   - Squeezer: the active attacker that pressures the shared LLC to force
//     the victim into attacker-visible resizes at every assessment.
//   - Replay: the replay attacker that runs the victim many times and
//     accumulates scheduling leakage across runs until the victim's budget
//     freezes further resizing.
//   - Sender/DecodeDurations: a cooperating covert-channel sender and
//     receiver used to validate empirically that no transmission strategy
//     beats the Appendix A bound.
package attacker

import (
	"fmt"
	"math"
	"time"

	"untangle/internal/covert"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/workload"
)

// Observation is one attacker-visible event: the victim adopted a new
// partition size at a point in time. Maintains are invisible (Section 5.3.4)
// and never appear here.
type Observation struct {
	At   time.Duration
	Size int64
}

// Observer extracts what the idealized attacker of Section 4 learns from a
// victim's resizing trace: the visible actions and their times.
func Observer(trace partition.Trace) []Observation {
	var out []Observation
	for _, a := range trace {
		if a.Visible {
			out = append(out, Observation{At: a.ApplyAt, Size: a.Size})
		}
	}
	return out
}

// Durations returns the inter-observation durations the covert-channel model
// reasons about (the d_y of Equation 5.8).
func Durations(obs []Observation) []time.Duration {
	if len(obs) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(obs)-1)
	for i := 1; i < len(obs); i++ {
		out = append(out, obs[i].At-obs[i-1].At)
	}
	return out
}

// InferFromSamples reconstructs the attacker-visible resizing events a
// *realistic* attacker can recover (Section 4: "an attacker can only
// indirectly estimate the victim's resizing trace by probing its own
// partition size and observing how it changes over time"). samples[i] is
// the partition size the attacker observed at times[i]; every change is one
// inferred event, timestamped at the sample that revealed it. The estimate
// is quantized to the probing period and misses events the allocator did not
// propagate into the attacker's partition — which is why the paper's
// idealized attacker (Observer) upper-bounds the realistic one.
func InferFromSamples(times []time.Duration, samples []int64) []Observation {
	n := len(times)
	if len(samples) < n {
		n = len(samples)
	}
	var out []Observation
	for i := 1; i < n; i++ {
		if samples[i] != samples[i-1] {
			out = append(out, Observation{At: times[i], Size: samples[i]})
		}
	}
	return out
}

// EstimateObservedBits computes an empirical estimate of the information the
// attacker's observations actually carry: the entropy of the observed
// inter-action duration histogram at the given measurement resolution,
// times the number of observations. It is a plug-in estimate over one
// trace — a lower-bound-ish diagnostic, not a sound bound — and exists to
// check that the accountant's charges dominate what a real observation
// sequence empirically contains.
func EstimateObservedBits(durations []time.Duration, resolution time.Duration) float64 {
	if len(durations) == 0 || resolution <= 0 {
		return 0
	}
	counts := map[int64]int{}
	for _, d := range durations {
		counts[int64(d/resolution)]++
	}
	n := float64(len(durations))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h * n
}

// SqueezerParams configures the active attacker's workload.
type SqueezerParams struct {
	// Seed makes the squeezer deterministic.
	Seed uint64
	// DemandBytes is the working set the squeezer claims (default 8MB: the
	// maximum supported partition size).
	DemandBytes uint64
	// MemFraction is the squeezer's memory intensity (default 0.45; an
	// attacker maximizes pressure).
	MemFraction float64
}

// Squeezer returns the active attacker's workload: an endless stream with a
// huge, heavily re-scanned working set. Run in its own domain, it drives the
// allocator to take capacity from other domains ("squeezing" them), forcing
// the victim's assessments to become visible actions (Figure 9).
func Squeezer(p SqueezerParams) (isa.Stream, workload.Params, error) {
	wp := workload.Params{
		Name:        "squeezer",
		Seed:        p.Seed + 0x5EED,
		MemFraction: p.MemFraction,
		HotBytes:    16 * workload.KB,
		HotProb:     0.1,
		ColdBytes:   p.DemandBytes,
		ScanFrac:    0.5,
		WriteFrac:   0.3,
		MLP:         8,
		BaseCPI:     0.2,
	}
	if wp.MemFraction <= 0 {
		wp.MemFraction = 0.45
	}
	if wp.ColdBytes == 0 {
		wp.ColdBytes = 8 * workload.MB
	}
	g, err := workload.NewGenerator(wp)
	if err != nil {
		return nil, workload.Params{}, err
	}
	return g, wp, nil
}

// PulsingSqueezer returns an attacker workload that alternates between a
// heavy-pressure phase and a near-idle phase every period instructions.
// Because the allocator keeps reassigning the capacity the attacker claims
// and releases, a co-located victim is forced through repeated Expand and
// Shrink actions — the Figure 9 squeeze. Several pulsing squeezers in
// distinct domains amplify the effect (a single domain can claim at most the
// largest supported partition).
func PulsingSqueezer(p SqueezerParams, period uint64) (isa.Stream, workload.Params, error) {
	heavy, params, err := Squeezer(p)
	if err != nil {
		return nil, workload.Params{}, err
	}
	idle := workload.Params{
		Name:        "squeezer-idle",
		Seed:        p.Seed + 0x1D1E,
		MemFraction: 0.05,
		HotBytes:    8 * workload.KB,
		HotProb:     0.95,
		ColdBytes:   16 * workload.KB,
		WriteFrac:   0.1,
		MLP:         4,
		BaseCPI:     0.3,
	}
	ig, err := workload.NewGenerator(idle)
	if err != nil {
		return nil, workload.Params{}, err
	}
	if period == 0 {
		period = 1_000_000
	}
	return isa.NewLoop(heavy, period, ig, period), params, nil
}

// ReplayResult summarizes a replay attack (Section 6.2): the attacker replays
// the victim RunLeakage-bits-per-run program until the accumulated leakage
// reaches the victim's threshold, after which the OS freezes resizing.
type ReplayResult struct {
	// RunsUntilFrozen is how many complete replays the attacker gets before
	// the budget is exhausted.
	RunsUntilFrozen int
	// TotalLeakage is the accumulated leakage when the freeze engages.
	TotalLeakage float64
}

// Replay models the cross-run accumulation: each replay leaks perRun bits
// (as measured by the Untangle accountant for one run); the OS accumulates
// and freezes at the threshold. It returns an error for non-positive rates.
func Replay(perRun, threshold float64) (ReplayResult, error) {
	if perRun <= 0 {
		return ReplayResult{}, fmt.Errorf("attacker: per-run leakage must be positive")
	}
	if threshold <= 0 {
		return ReplayResult{}, fmt.Errorf("attacker: threshold must be positive")
	}
	runs := int(threshold / perRun)
	return ReplayResult{
		RunsUntilFrozen: runs,
		TotalLeakage:    math.Min(threshold, float64(runs+1)*perRun),
	}, nil
}

// Sender produces the covert-channel input timings for a cooperative victim:
// it maps each symbol of message (values in [0, len(durations))) to its
// duration and emits the absolute transmission times.
type Sender struct {
	// Durations maps symbols to inter-action durations; all must be at
	// least the scheme's cooldown.
	Durations []time.Duration
}

// Schedule returns the absolute times at which the sender performs visible
// actions to transmit message, starting at start.
func (s Sender) Schedule(start time.Duration, message []int) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(message)+1)
	t := start
	out = append(out, t)
	for i, sym := range message {
		if sym < 0 || sym >= len(s.Durations) {
			return nil, fmt.Errorf("attacker: symbol %d at %d out of alphabet", sym, i)
		}
		t += s.Durations[sym]
		out = append(out, t)
	}
	return out, nil
}

// DecodeDurations is the receiver: it maps each observed duration to the
// nearest symbol duration (maximum-likelihood for symmetric unimodal noise).
func (s Sender) DecodeDurations(observed []time.Duration) []int {
	out := make([]int, len(observed))
	for i, d := range observed {
		best, bestDist := 0, time.Duration(math.MaxInt64)
		for sym, sd := range s.Durations {
			dist := d - sd
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				best, bestDist = sym, dist
			}
		}
		out[i] = best
	}
	return out
}

// SymbolErrorRate compares sent and decoded messages.
func SymbolErrorRate(sent, decoded []int) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(sent)
	if len(decoded) < n {
		n = len(decoded)
	}
	errs := len(sent) - n // missing symbols count as errors
	for i := 0; i < n; i++ {
		if sent[i] != decoded[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

// EmpiricalRate estimates the information rate actually achieved by a
// sender/receiver pair over a run: symbols carry log2(alphabet) bits, errors
// are discounted via the binary-symmetric-channel style penalty, and the
// result is divided by the elapsed time. It is used to check that practical
// strategies stay below the Appendix A bound.
func EmpiricalRate(alphabet int, sent, decoded []int, elapsed time.Duration) float64 {
	if len(sent) == 0 || elapsed <= 0 || alphabet < 2 {
		return 0
	}
	ser := SymbolErrorRate(sent, decoded)
	bitsPerSymbol := math.Log2(float64(alphabet))
	// Fano-style discount: a symbol error destroys at most bitsPerSymbol
	// plus the binary entropy of the error indicator.
	h := 0.0
	if ser > 0 && ser < 1 {
		h = -ser*math.Log2(ser) - (1-ser)*math.Log2(1-ser)
	}
	goodput := bitsPerSymbol - h - ser*bitsPerSymbol
	if goodput < 0 {
		goodput = 0
	}
	return goodput * float64(len(sent)) / elapsed.Seconds()
}

// BoundFor returns the verified Appendix A rate bound (bits/second) for a
// scheme's cooldown and delay at the given table configuration.
func BoundFor(cfg covert.TableConfig) (float64, error) {
	tbl, err := covert.Shared(cfg)
	if err != nil {
		return 0, err
	}
	return tbl.Entry(0).RatePerSecond, nil
}
