package attacker

import (
	"testing"
	"time"

	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

func TestInferFromSamples(t *testing.T) {
	times := []time.Duration{0, 1e6, 2e6, 3e6, 4e6}
	samples := []int64{2 << 20, 2 << 20, 4 << 20, 4 << 20, 2 << 20}
	obs := InferFromSamples(times, samples)
	if len(obs) != 2 {
		t.Fatalf("inferred %d events, want 2", len(obs))
	}
	if obs[0].At != 2e6 || obs[0].Size != 4<<20 {
		t.Errorf("first event = %+v", obs[0])
	}
	if obs[1].At != 4e6 || obs[1].Size != 2<<20 {
		t.Errorf("second event = %+v", obs[1])
	}
	if got := InferFromSamples(times[:1], samples[:1]); got != nil {
		t.Error("single sample should infer nothing")
	}
	// Mismatched lengths use the shorter prefix.
	if got := InferFromSamples(times, samples[:3]); len(got) != 1 {
		t.Errorf("prefix inference = %v", got)
	}
}

// TestRealisticAttackerUnderestimatesIdealized runs a two-domain simulation
// and compares what the realistic attacker reconstructs from its own
// partition samples against the idealized attacker's exact view of the
// victim trace. The realistic estimate must (a) be non-empty when the victim
// visibly resizes in a contended LLC, and (b) never contain more events than
// the idealized view plus the attacker's own resizes — the idealized model
// of Section 4 is the upper bound.
func TestRealisticAttackerUnderestimatesIdealized(t *testing.T) {
	cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), 0.002)
	victimP, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	vg, err := workload.NewGenerator(victimP)
	if err != nil {
		t.Fatal(err)
	}
	attP, err := workload.SPECByName("parest_0") // contends for capacity
	if err != nil {
		t.Fatal(err)
	}
	ag, err := workload.NewGenerator(attP)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, []sim.DomainSpec{
		{Name: "victim", Stream: isa.NewLimited(vg, 800_000), CPU: victimP.CPUParams()},
		{Name: "attacker", Stream: isa.NewLimited(ag, 800_000), CPU: attP.CPUParams()},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ideal := Observer(res.Domains[0].Trace)
	attSamples := res.Domains[1].PartitionSamples
	times := make([]time.Duration, len(attSamples))
	for i := range times {
		times[i] = time.Duration(i+1) * cfg.SampleEvery
	}
	inferred := InferFromSamples(times, attSamples)
	attOwn := res.Domains[1].Trace.VisibleCount()
	if len(inferred) > len(ideal)+attOwn {
		t.Errorf("realistic attacker inferred %d events, idealized saw %d (+%d own resizes)",
			len(inferred), len(ideal), attOwn)
	}
	if len(ideal) > 0 && len(inferred) == 0 && attOwn == 0 {
		t.Error("contended run produced no observable signal at all; squeeze modelling broken")
	}
}

func TestEstimateObservedBits(t *testing.T) {
	if EstimateObservedBits(nil, time.Millisecond) != 0 {
		t.Error("empty observations estimate nonzero")
	}
	if EstimateObservedBits([]time.Duration{1e6}, 0) != 0 {
		t.Error("zero resolution estimate nonzero")
	}
	// Four uniform distinct durations: 2 bits each.
	d := []time.Duration{1e6, 2e6, 3e6, 4e6, 1e6, 2e6, 3e6, 4e6}
	if got := EstimateObservedBits(d, time.Millisecond); got != 16 {
		t.Errorf("estimate = %v, want 8*2", got)
	}
	// All identical: zero bits.
	same := []time.Duration{5e6, 5e6, 5e6}
	if got := EstimateObservedBits(same, time.Millisecond); got != 0 {
		t.Errorf("constant durations estimate %v", got)
	}
	// Coarser resolution cannot increase the estimate.
	fine := EstimateObservedBits(d, time.Microsecond)
	coarse := EstimateObservedBits(d, 10*time.Millisecond)
	if coarse > fine {
		t.Errorf("coarser resolution raised the estimate: %v > %v", coarse, fine)
	}
}

func TestAccountantDominatesEmpiricalObservation(t *testing.T) {
	// Run a victim under Untangle, reconstruct the idealized attacker's
	// observations, and compare the empirical information content of the
	// observed durations (at the covert model's resolution) against the
	// accountant's charge: the charge should dominate on a benign run.
	cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), 0.002)
	victimP, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	vg, err := workload.NewGenerator(victimP)
	if err != nil {
		t.Fatal(err)
	}
	coP, err := workload.SPECByName("parest_0")
	if err != nil {
		t.Fatal(err)
	}
	cg, err := workload.NewGenerator(coP)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, []sim.DomainSpec{
		{Name: "victim", Stream: isa.NewLimited(vg, 900_000), CPU: victimP.CPUParams()},
		{Name: "co", Stream: isa.NewLimited(cg, 900_000), CPU: coP.CPUParams()},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Domains[0]
	obs := Observer(v.Trace)
	if len(obs) < 2 {
		t.Skip("too few visible actions for an empirical estimate")
	}
	resolution := cfg.Scheme.Cooldown / 40 // the covert table's unit
	empirical := EstimateObservedBits(Durations(obs), resolution)
	if v.Leakage.TotalBits < empirical {
		t.Errorf("accountant charged %v bits but the observations empirically carry %v",
			v.Leakage.TotalBits, empirical)
	}
}
