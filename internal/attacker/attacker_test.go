package attacker

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"untangle/internal/covert"
	"untangle/internal/isa"
	"untangle/internal/partition"
)

func TestObserverSeesOnlyVisibleActions(t *testing.T) {
	trace := partition.Trace{
		{ApplyAt: 1 * time.Millisecond, Prev: 2 << 20, Size: 4 << 20, Visible: true},
		{ApplyAt: 2 * time.Millisecond, Prev: 4 << 20, Size: 4 << 20, Visible: false},
		{ApplyAt: 3 * time.Millisecond, Prev: 4 << 20, Size: 2 << 20, Visible: true},
	}
	obs := Observer(trace)
	if len(obs) != 2 {
		t.Fatalf("observed %d events, want 2", len(obs))
	}
	if obs[0].Size != 4<<20 || obs[1].At != 3*time.Millisecond {
		t.Errorf("observations = %+v", obs)
	}
	d := Durations(obs)
	if len(d) != 1 || d[0] != 2*time.Millisecond {
		t.Errorf("durations = %v", d)
	}
	if Durations(obs[:1]) != nil {
		t.Error("single observation should yield no durations")
	}
}

func TestSqueezerStreamIsHeavy(t *testing.T) {
	s, params, err := Squeezer(SqueezerParams{Seed: 1, DemandBytes: 8 << 20, MemFraction: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if params.ColdBytes != 8<<20 {
		t.Errorf("demand = %d", params.ColdBytes)
	}
	buf := make([]isa.Op, 4096)
	n := s.Fill(buf)
	if n == 0 {
		t.Fatal("squeezer stream empty")
	}
	var mem, instr uint64
	for _, op := range buf[:n] {
		instr += op.Instructions()
		if op.IsMem() {
			mem++
		}
	}
	if frac := float64(mem) / float64(instr); frac < 0.3 {
		t.Errorf("squeezer memory fraction %v too low to pressure the LLC", frac)
	}
}

func TestSqueezerDefaults(t *testing.T) {
	_, params, err := Squeezer(SqueezerParams{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if params.ColdBytes != 8<<20 || params.MemFraction != 0.45 {
		t.Errorf("defaults not applied: %+v", params)
	}
}

func TestReplay(t *testing.T) {
	r, err := Replay(38.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.RunsUntilFrozen != 25 {
		t.Errorf("runs = %d, want 25", r.RunsUntilFrozen)
	}
	if r.TotalLeakage > 1000 {
		t.Errorf("accumulated %v exceeds threshold", r.TotalLeakage)
	}
	if _, err := Replay(0, 10); err == nil {
		t.Error("zero per-run accepted")
	}
	if _, err := Replay(1, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestSenderScheduleAndDecodeRoundTrip(t *testing.T) {
	s := Sender{Durations: []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond}}
	msg := []int{0, 3, 1, 2, 2, 0}
	times, err := s.Schedule(0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(msg)+1 {
		t.Fatalf("times = %d", len(times))
	}
	// Convert to observations and decode without noise: perfect recovery.
	obs := make([]Observation, len(times))
	for i, at := range times {
		obs[i] = Observation{At: at}
	}
	decoded := s.DecodeDurations(Durations(obs))
	if SymbolErrorRate(msg, decoded) != 0 {
		t.Errorf("noiseless decode failed: sent %v, got %v", msg, decoded)
	}
	if _, err := s.Schedule(0, []int{9}); err == nil {
		t.Error("out-of-alphabet symbol accepted")
	}
}

func TestDecodeWithNoiseDegradesGracefully(t *testing.T) {
	s := Sender{Durations: []time.Duration{time.Millisecond, 2 * time.Millisecond}}
	r := rand.New(rand.NewSource(5))
	msg := make([]int, 200)
	for i := range msg {
		msg[i] = r.Intn(2)
	}
	times, _ := s.Schedule(0, msg)
	// Add uniform delay noise of width 1ms (the paper's Mechanism 2).
	noisy := make([]Observation, len(times))
	for i, at := range times {
		noisy[i] = Observation{At: at + time.Duration(r.Int63n(int64(time.Millisecond)))}
	}
	decoded := s.DecodeDurations(Durations(noisy))
	ser := SymbolErrorRate(msg, decoded)
	if ser == 0 {
		t.Error("1ms noise on 1ms-separated symbols should cause some errors")
	}
	if ser > 0.5 {
		t.Errorf("error rate %v worse than guessing", ser)
	}
}

func TestSymbolErrorRate(t *testing.T) {
	if got := SymbolErrorRate([]int{1, 2, 3}, []int{1, 0, 3}); got != 1.0/3 {
		t.Errorf("SER = %v", got)
	}
	if got := SymbolErrorRate([]int{1, 2, 3}, []int{1}); got != 2.0/3 {
		t.Errorf("missing symbols SER = %v", got)
	}
	if got := SymbolErrorRate(nil, nil); got != 0 {
		t.Errorf("empty SER = %v", got)
	}
}

func TestEmpiricalRateStrategiesStayUnderBound(t *testing.T) {
	// Run several concrete transmission strategies through noise and check
	// every achieved rate stays below the verified Appendix A bound.
	cfg := covert.TableConfig{
		Unit:         50 * time.Microsecond,
		Cooldown:     time.Millisecond,
		DelayWidth:   time.Millisecond,
		MaxMaintains: 0,
		Solver: covert.SolverConfig{
			MaxDinkelbachRounds: 10,
			Tolerance:           1e-6,
			InnerIterations:     250,
			InnerStep:           0.3,
			UpperBoundSlack:     1e-3,
			VerifyIterations:    500,
		},
	}
	bound, err := BoundFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	strategies := []Sender{
		{Durations: []time.Duration{time.Millisecond, 2 * time.Millisecond}},
		{Durations: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}},
		{Durations: []time.Duration{time.Millisecond, 5 * time.Millisecond}},
		{Durations: []time.Duration{time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond}},
	}
	for si, s := range strategies {
		msg := make([]int, 400)
		for i := range msg {
			msg[i] = r.Intn(len(s.Durations))
		}
		times, err := s.Schedule(0, msg)
		if err != nil {
			t.Fatal(err)
		}
		noisy := make([]Observation, len(times))
		for i, at := range times {
			noisy[i] = Observation{At: at + time.Duration(r.Int63n(int64(time.Millisecond)))}
		}
		decoded := s.DecodeDurations(Durations(noisy))
		elapsed := noisy[len(noisy)-1].At - noisy[0].At
		rate := EmpiricalRate(len(s.Durations), msg, decoded, elapsed)
		if rate > bound {
			t.Errorf("strategy %d achieved %v bits/s, exceeding the bound %v", si, rate, bound)
		}
		if rate <= 0 {
			t.Errorf("strategy %d achieved no information flow", si)
		}
	}
}

func TestEmpiricalRateEdgeCases(t *testing.T) {
	if EmpiricalRate(2, nil, nil, time.Second) != 0 {
		t.Error("empty message should rate 0")
	}
	if EmpiricalRate(1, []int{0}, []int{0}, time.Second) != 0 {
		t.Error("unary alphabet should rate 0")
	}
	if EmpiricalRate(2, []int{0}, []int{0}, 0) != 0 {
		t.Error("zero elapsed should rate 0")
	}
}

func TestPropertyDecodeIsNearest(t *testing.T) {
	s := Sender{Durations: []time.Duration{time.Millisecond, 4 * time.Millisecond, 10 * time.Millisecond}}
	f := func(raw uint32) bool {
		d := time.Duration(uint64(raw)) % (12 * time.Millisecond)
		sym := s.DecodeDurations([]time.Duration{d})[0]
		// Verify no other symbol is strictly closer.
		chosen := absDur(d - s.Durations[sym])
		for _, sd := range s.Durations {
			if absDur(d-sd) < chosen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestPulsingSqueezerAlternates(t *testing.T) {
	s, params, err := PulsingSqueezer(SqueezerParams{Seed: 3}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if params.ColdBytes != 8<<20 {
		t.Errorf("heavy-phase demand = %d", params.ColdBytes)
	}
	// Walk two full periods: the distinct-line footprint per 5000-instruction
	// window must alternate between large (heavy) and tiny (idle).
	buf := make([]isa.Op, 512)
	window := func() int {
		lines := map[uint64]bool{}
		var instr uint64
		for instr < 5000 {
			n := s.Fill(buf)
			if n == 0 {
				t.Fatal("squeezer ran dry")
			}
			for _, op := range buf[:n] {
				instr += op.Instructions()
				if op.IsMem() {
					lines[op.Addr/64] = true
				}
			}
		}
		return len(lines)
	}
	heavy1 := window()
	idle1 := window()
	heavy2 := window()
	if heavy1 < 4*idle1 || heavy2 < 4*idle1 {
		t.Errorf("phases not alternating: heavy %d/%d vs idle %d", heavy1, heavy2, idle1)
	}
	// Default period applies when zero.
	if _, _, err := PulsingSqueezer(SqueezerParams{Seed: 4}, 0); err != nil {
		t.Fatal(err)
	}
}
