package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"untangle/internal/isa"
	"untangle/internal/partition"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Entries: 128, Ways: 8}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{Entries: 0, Ways: 8}, {Entries: 100, Ways: 8}, {Entries: 128, Ways: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	for _, s := range DefaultEntrySizes() {
		if err := (Config{Entries: s, Ways: 8}).Validate(); err != nil {
			t.Errorf("supported size %d: %v", s, err)
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	tl, err := New(Config{Entries: 64, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Access(0x1000) {
		t.Error("cold translation hit")
	}
	if !tl.Access(0x1ABC) {
		t.Error("same-page access missed")
	}
	if tl.Access(0x2000) {
		t.Error("next page hit")
	}
	if tl.Entries() != 64 {
		t.Errorf("entries = %d", tl.Entries())
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTLBCapacityBehaviour(t *testing.T) {
	tl, _ := New(Config{Entries: 64, Ways: 8})
	// Touch 32 pages, retouch: all hits.
	for p := uint64(0); p < 32; p++ {
		tl.Access(p * PageBytes)
	}
	for p := uint64(0); p < 32; p++ {
		if !tl.Access(p * PageBytes) {
			t.Fatalf("page %d evicted below capacity", p)
		}
	}
	// Touch 1024 pages cyclically: LRU thrashes, hit rate collapses.
	big, _ := New(Config{Entries: 64, Ways: 8})
	hits := 0
	for i := 0; i < 4096; i++ {
		if big.Access(uint64(i%1024) * PageBytes) {
			hits++
		}
	}
	if hits > 400 {
		t.Errorf("cyclic over-capacity scan hit %d times; LRU should thrash", hits)
	}
}

func TestTLBResize(t *testing.T) {
	tl, _ := New(Config{Entries: 128, Ways: 8})
	for p := uint64(0); p < 64; p++ {
		tl.Access(p * PageBytes)
	}
	if err := tl.Resize(512); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 64; p++ {
		if !tl.Contains(p * PageBytes) {
			t.Fatalf("page %d lost on grow", p)
		}
	}
	if err := tl.Resize(16); err != nil {
		t.Fatal(err)
	}
	if tl.Entries() != 16 {
		t.Errorf("entries = %d after shrink", tl.Entries())
	}
	if err := tl.Resize(100); err == nil {
		t.Error("invalid entry count accepted")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Ways: 8, Window: 100}); err == nil {
		t.Error("no sizes accepted")
	}
	if _, err := NewMonitor(MonitorConfig{Sizes: []int{64, 32}, Ways: 8, Window: 100}); err == nil {
		t.Error("decreasing sizes accepted")
	}
	if _, err := NewMonitor(MonitorConfig{Sizes: []int{32, 64}, Ways: 8}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMonitorUtilitiesSaturateAtFootprint(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{Sizes: DefaultEntrySizes(), Ways: 8, Window: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	// A 96-page footprint: candidates >= 96 entries should hit nearly
	// always, tiny candidates should not.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 60000; i++ {
		m.Observe(uint64(r.Intn(96)) * PageBytes)
	}
	u := m.Utilities()
	sizes := m.Sizes()
	if u[len(u)-1] <= 2*u[0] {
		t.Errorf("512-entry hits %v should dwarf 16-entry hits %v for a 96-page set", u[len(u)-1], u[0])
	}
	// Monotone in size up to set-indexing noise: changing the set count
	// remaps conflicts, so small (<2%) local dips are genuine LRU
	// artifacts, not accounting bugs.
	for i := 1; i < len(u); i++ {
		if u[i] < 0.98*u[i-1] {
			t.Errorf("utilities decreased: %v@%d -> %v@%d", u[i-1], sizes[i-1], u[i], sizes[i])
		}
	}
}

func TestMonitorFeedsAllocator(t *testing.T) {
	// The resource-agnostic allocator consumes TLB utilities unchanged:
	// partition a 1024-entry shared TLB between a page-hungry domain and a
	// tiny one.
	sizes := DefaultEntrySizes()
	sizeBytes := make([]int64, len(sizes))
	for i, s := range sizes {
		sizeBytes[i] = int64(s) // allocator units are opaque
	}
	alloc, err := partition.NewAllocator(sizeBytes, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mkMon := func(pages int, seed int64) *Monitor {
		m, err := NewMonitor(MonitorConfig{Sizes: sizes, Ways: 8, Window: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 60000; i++ {
			m.Observe(uint64(r.Intn(pages)) * PageBytes)
		}
		return m
	}
	utilities := [][]float64{
		mkMon(400, 1).Utilities(),
		mkMon(20, 2).Utilities(),
	}
	got := alloc.GlobalAllocate(utilities)
	if got[0] <= got[1] {
		t.Errorf("page-hungry domain got %d entries, tiny domain %d", got[0], got[1])
	}
	if got[0]+got[1] > 1024 {
		t.Errorf("allocation %v exceeds the shared TLB", got)
	}
}

func TestObserveOpAppliesPrinciple1(t *testing.T) {
	m, _ := NewMonitor(MonitorConfig{Sizes: []int{16, 32}, Ways: 8, Window: 1024})
	// Secret-annotated and non-memory ops must be invisible to the metric.
	m.ObserveOp(isa.Op{Flags: isa.FlagMem | isa.FlagSecretUse, Addr: 0x1000})
	m.ObserveOp(isa.Op{Flags: isa.FlagMem | isa.FlagTimingDep, Addr: 0x1000})
	m.ObserveOp(isa.Op{NonMem: 5})
	m.ObserveOp(isa.Op{Flags: isa.FlagMem, Addr: 0x1000})
	m.ObserveOp(isa.Op{Flags: isa.FlagMem, Addr: 0x1000})
	u := m.Utilities()
	if u[0] != 1 {
		t.Errorf("hits = %v; exactly the second public access should hit", u[0])
	}
}

func TestPropertyTimingIndependentMetric(t *testing.T) {
	// Identical public access sequences yield identical utilities whatever
	// interleaving of (excluded) secret accesses occurred.
	f := func(seed int64) bool {
		mk := func(withSecret bool) []float64 {
			m, err := NewMonitor(MonitorConfig{Sizes: []int{16, 64}, Ways: 8, Window: 2048})
			if err != nil {
				return nil
			}
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				addr := uint64(r.Intn(128)) * PageBytes
				if withSecret && i%3 == 0 {
					m.ObserveOp(isa.Op{Flags: isa.FlagMem | isa.FlagSecretUse, Addr: addr ^ 0xFFFF000})
				}
				m.ObserveOp(isa.Op{Flags: isa.FlagMem, Addr: addr})
			}
			return m.Utilities()
		}
		a, b := mk(false), mk(true)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
