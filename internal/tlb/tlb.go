// Package tlb applies the Untangle framework to a second hardware resource,
// as Section 6.3 prescribes: a shared, set-associative second-level TLB that
// is partitioned by entry count among security domains.
//
// The package demonstrates the two ingredients Section 6.3 requires for a
// new resource:
//
//  1. a timing-independent utilization metric — here, shadow-TLB hits over
//     the last Mw retired public memory instructions, with the same
//     annotations-based exclusion of secret-dependent accesses ("we can
//     trivially extend the LLC utilization metric to the TLB"), and
//  2. reuse of the static analyses for caches to annotate secret-dependent
//     usage (the isa flags carry over unchanged).
//
// The hit-maximizing allocator, schedule mechanisms and leakage accounting
// from the partition, sim and core packages apply unchanged because they
// never inspect what resource the utilities describe.
package tlb

import (
	"fmt"

	"untangle/internal/cache"
	"untangle/internal/isa"
)

// PageBytes is the translation granularity (4 KiB pages).
const PageBytes = 4096

// DefaultEntrySizes returns the supported per-domain TLB partition sizes in
// entries, mirroring the 9-step geometric ladder of the LLC evaluation.
func DefaultEntrySizes() []int {
	return []int{16, 32, 64, 96, 128, 192, 256, 384, 512}
}

// TLB is a set-associative translation buffer partitioned by entries. It is
// backed by the cache package's set-associative array: one TLB entry is
// represented as one line, with the page number as the line address.
type TLB struct {
	ways  int
	inner *cache.Cache
}

// Config describes a TLB partition.
type Config struct {
	// Entries is the partition's capacity in translations.
	Entries int
	// Ways is the associativity.
	Ways int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("tlb: ways = %d", c.Ways)
	}
	if c.Entries <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: %d entries not divisible into %d ways", c.Entries, c.Ways)
	}
	return nil
}

// New builds a TLB partition.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := cache.New(cache.Config{
		SizeBytes: int64(cfg.Entries) * cache.LineBytes,
		Ways:      cfg.Ways,
	})
	if err != nil {
		return nil, err
	}
	return &TLB{ways: cfg.Ways, inner: inner}, nil
}

// pageKey maps a byte address to the synthetic line address that represents
// its page in the backing array.
func pageKey(addr uint64) uint64 {
	return (addr / PageBytes) * cache.LineBytes
}

// Access translates the page containing addr, returning true on TLB hit.
func (t *TLB) Access(addr uint64) bool {
	return t.inner.Access(pageKey(addr), false)
}

// Contains probes without updating replacement state.
func (t *TLB) Contains(addr uint64) bool {
	return t.inner.Contains(pageKey(addr))
}

// Entries returns the current capacity in translations.
func (t *TLB) Entries() int {
	return int(t.inner.SizeBytes() / cache.LineBytes)
}

// Resize changes the partition to the given entry count, preserving
// translations whose new set has room — the same semantics as the LLC
// partitions.
func (t *TLB) Resize(entries int) error {
	if err := (Config{Entries: entries, Ways: t.ways}).Validate(); err != nil {
		return err
	}
	return t.inner.Resize(int64(entries) * cache.LineBytes)
}

// Stats returns hit/miss counters.
func (t *TLB) Stats() cache.Stats { return t.inner.Stats() }

// Monitor is the timing-independent TLB utilization metric: per candidate
// entry count, the TLB hits the domain would have had over the last Window
// retired public memory instructions. Accesses annotated secret-dependent
// must not be passed in (Principle 1), exactly as with the LLC monitor.
type Monitor struct {
	sizes    []int
	shadows  []*TLB
	ring     [][]uint64
	bucket   uint64
	cur      int
	curCount uint64
}

// MonitorConfig configures the metric.
type MonitorConfig struct {
	// Sizes are candidate entry counts, strictly increasing.
	Sizes []int
	// Ways is the associativity of the shadow TLBs.
	Ways int
	// Window is Mw in retired public memory instructions.
	Window uint64
	// Buckets subdivides the window (default 8).
	Buckets int
}

// NewMonitor builds the metric.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("tlb: no candidate sizes")
	}
	if cfg.Window == 0 {
		return nil, fmt.Errorf("tlb: zero window")
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 8
	}
	m := &Monitor{sizes: append([]int(nil), cfg.Sizes...)}
	for i, s := range cfg.Sizes {
		if i > 0 && s <= cfg.Sizes[i-1] {
			return nil, fmt.Errorf("tlb: sizes must be strictly increasing")
		}
		sh, err := New(Config{Entries: s, Ways: cfg.Ways})
		if err != nil {
			return nil, err
		}
		m.shadows = append(m.shadows, sh)
	}
	m.ring = make([][]uint64, cfg.Buckets)
	for i := range m.ring {
		m.ring[i] = make([]uint64, len(cfg.Sizes))
	}
	m.bucket = cfg.Window / uint64(cfg.Buckets)
	if m.bucket == 0 {
		m.bucket = 1
	}
	return m, nil
}

// Observe records one retired public memory access in program order.
func (m *Monitor) Observe(addr uint64) {
	m.curCount++
	if m.curCount >= m.bucket {
		m.cur = (m.cur + 1) % len(m.ring)
		row := m.ring[m.cur]
		for i := range row {
			row[i] = 0
		}
		m.curCount = 0
	}
	row := m.ring[m.cur]
	for i, sh := range m.shadows {
		if sh.Access(addr) {
			row[i]++
		}
	}
}

// ObserveOp records the memory access of an op if it is public and a memory
// op, applying the Principle 1 exclusion in one place.
func (m *Monitor) ObserveOp(op isa.Op) {
	if op.IsMem() && !op.SecretUse() {
		m.Observe(op.Addr)
	}
}

// Utilities returns the per-candidate hit counts over the window, in the
// order of the configured sizes — directly consumable by
// partition.Allocator.GlobalAllocate (utilities are resource-agnostic).
func (m *Monitor) Utilities() []float64 {
	out := make([]float64, len(m.sizes))
	for i := range out {
		var hits uint64
		for b := range m.ring {
			hits += m.ring[b][i]
		}
		out[i] = float64(hits)
	}
	return out
}

// Sizes returns the candidate entry counts.
func (m *Monitor) Sizes() []int { return append([]int(nil), m.sizes...) }
