// Package monitor implements the timing-independent LLC utilization metric
// of Sections 5.2 and 7 of the Untangle paper.
//
// The mechanism follows UMON [36] adapted to set partitioning: for each
// supported partition size, a sampled shadow-tag array simulates what the
// domain's memory accesses would do with that size, and counts the hits.
// During a resizing assessment the scheme reads, for every candidate size,
// the number of hits the domain would have enjoyed over the last Mw retired
// public memory instructions.
//
// Principle 1 compliance: the monitor observes only retired memory accesses,
// in program order, and the caller excludes accesses annotated as data- or
// control-dependent on secrets (isa.Op.SecretUse). The metric is therefore a
// pure function of the retired public instruction sequence — no timing
// enters it.
package monitor

import (
	"fmt"

	"untangle/internal/cache"
	"untangle/internal/telemetry"
)

// Config describes a monitor.
type Config struct {
	// Sizes are the candidate partition sizes in bytes, strictly increasing
	// (Table 3: 128 kB .. 8 MB).
	Sizes []int64
	// Ways is the LLC associativity simulated by the shadow arrays.
	Ways int
	// Window is Mw: the number of retired public memory instructions the
	// metric covers (Table 3: 1M).
	Window uint64
	// SampleLog2 is the set-sampling factor: only lines whose address hash
	// falls in a 1/2^SampleLog2 sample are simulated, and each shadow array
	// is scaled down by the same factor. 0 disables sampling.
	SampleLog2 uint
	// Buckets subdivides the window for aging; the window slides in
	// Window/Buckets increments. Defaults to 8.
	Buckets int
	// SkipShadows builds the monitor without its shadow-tag arrays, for
	// domains fed exclusively through ObserveMask (replay lanes whose hit
	// vectors a recorder precomputed). Observe and HitMask must not be
	// called on such a monitor.
	SkipShadows bool
}

// DefaultSizes returns the paper's 9 supported partition sizes.
func DefaultSizes() []int64 {
	return []int64{
		128 << 10, 256 << 10, 512 << 10, 1 << 20,
		2 << 20, 3 << 20, 4 << 20, 6 << 20, 8 << 20,
	}
}

// Monitor tracks, per candidate size, the hits the domain would see.
type Monitor struct {
	cfg     Config
	shadows []*cache.Cache
	// ring of hit counters: ring[b][s] counts sampled hits for size s in
	// bucket b. bucketLen is the number of observed (unsampled) accesses
	// per bucket.
	ring      [][]uint64
	bucketLen uint64
	cur       int
	curCount  uint64
	// totalObserved counts all public accesses ever observed.
	totalObserved uint64
	// rotations counts bucket advances; every len(ring) rotations the
	// sliding window has been fully replaced — one "window closed" in the
	// monitor's lifecycle telemetry.
	rotations  uint64
	sampleMask uint64
}

// New builds a monitor.
func New(cfg Config) (*Monitor, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("monitor: no candidate sizes")
	}
	if len(cfg.Sizes) > 16 {
		return nil, fmt.Errorf("monitor: %d candidate sizes exceed HitMask's 16-bit vector", len(cfg.Sizes))
	}
	for i := 1; i < len(cfg.Sizes); i++ {
		if cfg.Sizes[i] <= cfg.Sizes[i-1] {
			return nil, fmt.Errorf("monitor: sizes must be strictly increasing")
		}
	}
	if cfg.Window == 0 {
		return nil, fmt.Errorf("monitor: zero window")
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 8
	}
	m := &Monitor{cfg: cfg}
	m.sampleMask = (uint64(1) << cfg.SampleLog2) - 1
	if !cfg.SkipShadows {
		for _, size := range cfg.Sizes {
			shadowSize := size >> cfg.SampleLog2
			minSize := int64(cfg.Ways * cache.LineBytes * 4) // keep >= 4 sets
			if shadowSize < minSize {
				shadowSize = minSize
			}
			c, err := cache.New(cache.Config{SizeBytes: shadowSize, Ways: cfg.Ways})
			if err != nil {
				return nil, fmt.Errorf("monitor: shadow for size %d: %w", size, err)
			}
			m.shadows = append(m.shadows, c)
		}
	}
	m.ring = make([][]uint64, cfg.Buckets)
	for i := range m.ring {
		m.ring[i] = make([]uint64, len(cfg.Sizes))
	}
	m.bucketLen = cfg.Window / uint64(cfg.Buckets)
	if m.bucketLen == 0 {
		m.bucketLen = 1
	}
	return m, nil
}

// sampleHash decides membership in the simulated sample. It must be a pure
// function of the line address (timing independence) and uncorrelated with
// set indexing.
func sampleHash(lineAddr uint64) uint64 {
	h := lineAddr * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	return h
}

// Observe records one retired public memory access, in program order.
// Callers must not pass secret-annotated accesses; that exclusion is what
// removes Edge 1 of Figure 2. The write bit is part of the retired-access
// record but does not affect the metric: shadow arrays count hits only and
// track no dirty state (cache.ShadowAccess).
func (m *Monitor) Observe(addr uint64, write bool) {
	m.totalObserved++
	m.curCount++
	if m.curCount >= m.bucketLen {
		m.cur = (m.cur + 1) % len(m.ring)
		for s := range m.ring[m.cur] {
			m.ring[m.cur][s] = 0
		}
		m.curCount = 0
		m.rotations++
	}
	lineAddr := addr / cache.LineBytes
	if sampleHash(lineAddr)&m.sampleMask != 0 {
		return
	}
	row := m.ring[m.cur]
	for s, shadow := range m.shadows {
		if shadow.ShadowAccess(addr) {
			row[s]++
		}
	}
}

// HitMask simulates the shadow arrays for one observed access and returns
// the per-size hit vector (bit s set = the size-s shadow hit) without
// touching the window counters. Because the shadow state — like every
// monitor quantity — is a pure function of the observed public access
// sequence, a recorder can compute each access's mask once and feed it to
// any number of monitors via ObserveMask; Observe(a, w) is exactly
// ObserveMask(HitMask(a, w)). Unsampled accesses return 0, which
// ObserveMask cannot distinguish from an all-miss sampled access — the two
// have identical window effects.
func (m *Monitor) HitMask(addr uint64, write bool) uint16 {
	lineAddr := addr / cache.LineBytes
	if sampleHash(lineAddr)&m.sampleMask != 0 {
		return 0
	}
	var mask uint16
	for s, shadow := range m.shadows {
		if shadow.ShadowAccess(addr) {
			mask |= 1 << s
		}
	}
	return mask
}

// ObserveMask records one retired public memory access whose shadow
// resolution was precomputed by HitMask on a recorder monitor with the same
// Sizes, Ways, and SampleLog2. Window bookkeeping (bucket rotation, counts)
// is identical to Observe's; this monitor's own shadow arrays stay unused.
func (m *Monitor) ObserveMask(mask uint16) {
	m.totalObserved++
	m.curCount++
	if m.curCount >= m.bucketLen {
		m.cur = (m.cur + 1) % len(m.ring)
		for s := range m.ring[m.cur] {
			m.ring[m.cur][s] = 0
		}
		m.curCount = 0
		m.rotations++
	}
	row := m.ring[m.cur]
	for s := 0; mask != 0; s++ {
		if mask&1 != 0 {
			row[s]++
		}
		mask >>= 1
	}
}

// Utility is the monitored value for one candidate size.
type Utility struct {
	// SizeBytes is the candidate partition size.
	SizeBytes int64
	// Hits is the estimated number of LLC hits the domain would have had
	// with this size over the window (scaled back up by the sample factor).
	Hits float64
}

// Utilities returns the per-size estimated hits over the current window.
// The slice is ordered like cfg.Sizes and freshly allocated.
func (m *Monitor) Utilities() []Utility {
	out := make([]Utility, len(m.cfg.Sizes))
	scale := float64(uint64(1) << m.cfg.SampleLog2)
	for s := range out {
		var hits uint64
		for b := range m.ring {
			hits += m.ring[b][s]
		}
		out[s] = Utility{SizeBytes: m.cfg.Sizes[s], Hits: float64(hits) * scale}
	}
	return out
}

// Observed returns the total number of public accesses observed.
func (m *Monitor) Observed() uint64 { return m.totalObserved }

// WindowsClosed returns how many full monitor windows have completed: the
// window lifecycle counter behind the MonitorWindowClosed telemetry event.
// Like every monitor quantity it is a pure function of the observed public
// access sequence.
func (m *Monitor) WindowsClosed() uint64 { return m.rotations / uint64(len(m.ring)) }

// Window returns the configured window length Mw.
func (m *Monitor) Window() uint64 { return m.cfg.Window }

// RegisterMetrics exposes the monitor's lifecycle counters on a telemetry
// registry as lazily-evaluated gauges, so observation stays off the
// Observe hot path.
func (m *Monitor) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.GaugeFunc(prefix+".observed", func() float64 { return float64(m.totalObserved) })
	reg.GaugeFunc(prefix+".windows_closed", func() float64 { return float64(m.WindowsClosed()) })
	reg.GaugeFunc(prefix+".bucket_rotations", func() float64 { return float64(m.rotations) })
}

// Sizes returns the candidate size list.
func (m *Monitor) Sizes() []int64 { return m.cfg.Sizes }

// Reset clears the window (used after warmup so the first assessment sees
// only post-warmup behaviour; shadow tag contents are retained, matching
// hardware whose tag arrays are not flushed).
func (m *Monitor) Reset() {
	for b := range m.ring {
		for s := range m.ring[b] {
			m.ring[b][s] = 0
		}
	}
	m.cur, m.curCount = 0, 0
}
