package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"untangle/internal/cache"
)

func testConfig() Config {
	return Config{
		Sizes:      DefaultSizes(),
		Ways:       16,
		Window:     1 << 16,
		SampleLog2: 3,
		Buckets:    8,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Ways: 16, Window: 100}); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := New(Config{Sizes: []int64{2 << 20, 1 << 20}, Ways: 16, Window: 100}); err == nil {
		t.Error("decreasing sizes accepted")
	}
	if _, err := New(Config{Sizes: DefaultSizes(), Ways: 16}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDefaultSizesMatchTable3(t *testing.T) {
	s := DefaultSizes()
	if len(s) != 9 {
		t.Fatalf("len = %d, want 9 supported sizes", len(s))
	}
	if s[0] != 128<<10 || s[8] != 8<<20 {
		t.Errorf("range = [%d, %d], want [128kB, 8MB]", s[0], s[8])
	}
}

func TestUtilitiesMonotoneInSize(t *testing.T) {
	// Hits under a bigger candidate size can only be >= hits under a
	// smaller one for the same access stream (LRU stack property holds
	// approximately under sampling; with a fixed seed it must hold here).
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	ws := uint64(3 << 20) // 3MB working set
	for i := 0; i < 400000; i++ {
		m.Observe(uint64(r.Int63n(int64(ws))), false)
	}
	u := m.Utilities()
	for i := 1; i < len(u); i++ {
		// Allow tiny sampling noise (1% of window).
		if u[i].Hits+float64(m.cfg.Window)/100 < u[i-1].Hits {
			t.Errorf("hits decreased with size: %v -> %v", u[i-1], u[i])
		}
	}
}

func TestSmallWorkingSetSaturatesEarly(t *testing.T) {
	// A 64kB working set must already achieve near-max hits at the 128kB
	// candidate: the utility curve saturates at the working-set size.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300000; i++ {
		m.Observe(uint64(r.Int63n(64<<10)), false)
	}
	u := m.Utilities()
	if u[0].Hits < 0.9*u[len(u)-1].Hits {
		t.Errorf("128kB hits %v should be within 10%% of 8MB hits %v for a 64kB working set",
			u[0].Hits, u[len(u)-1].Hits)
	}
}

func TestLargeWorkingSetBenefitsFromSize(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 600000; i++ {
		m.Observe(uint64(r.Int63n(6<<20)), false)
	}
	u := m.Utilities()
	if u[8].Hits <= 2*u[0].Hits {
		t.Errorf("a 6MB working set should hit far more at 8MB (%v) than at 128kB (%v)",
			u[8].Hits, u[0].Hits)
	}
}

func TestWindowSlides(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 8000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: hot 32kB loop -> high hits at every size.
	for i := 0; i < 50000; i++ {
		m.Observe(uint64(i%(32<<10)/64)*64, false)
	}
	hot := m.Utilities()[0].Hits
	// Phase 2: pure streaming (never reused) -> hits must decay away once
	// the window has slid past the hot phase.
	for i := 0; i < 50000; i++ {
		m.Observe(uint64(1<<30)+uint64(i)*64, false)
	}
	cold := m.Utilities()[0].Hits
	if cold > hot/4 {
		t.Errorf("window did not slide: hot %v, cold %v", hot, cold)
	}
}

func TestObservedCounts(t *testing.T) {
	m, _ := New(testConfig())
	for i := 0; i < 1234; i++ {
		m.Observe(uint64(i)*64, false)
	}
	if m.Observed() != 1234 {
		t.Errorf("observed = %d, want 1234", m.Observed())
	}
}

func TestResetClearsWindowOnly(t *testing.T) {
	m, _ := New(testConfig())
	for i := 0; i < 100000; i++ {
		m.Observe(uint64(i%(64<<10)), false)
	}
	m.Reset()
	for _, u := range m.Utilities() {
		if u.Hits != 0 {
			t.Errorf("size %d has %v hits after Reset", u.SizeBytes, u.Hits)
		}
	}
	// Shadow tags survive: the very next access to a recently-touched line
	// still hits, so utilities ramp immediately.
	m.Observe(0, false)
	if u := m.Utilities(); u[len(u)-1].Hits == 0 {
		t.Error("shadow tags were flushed by Reset")
	}
}

func TestTimingIndependenceSameStreamSameUtilities(t *testing.T) {
	// The metric is a pure function of the observed access sequence: two
	// monitors fed the identical sequence report identical utilities.
	// (This is the package-level statement of Principle 1.)
	mk := func() []Utility {
		m, _ := New(testConfig())
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 200000; i++ {
			m.Observe(uint64(r.Int63n(2<<20)), r.Intn(8) == 0)
		}
		return m.Utilities()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("utilities diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSecretExclusionChangesNothingWhenExcluded(t *testing.T) {
	// Feeding only the public subsequence is the caller's job; verify that
	// a monitor fed public-only ops is unaffected by however many secret
	// accesses the program also performed (they are simply never passed).
	public := func(m *Monitor) {
		for i := 0; i < 100000; i++ {
			m.Observe(uint64(i%(256<<10)), false)
		}
	}
	m1, _ := New(testConfig())
	public(m1)
	m2, _ := New(testConfig())
	public(m2) // identical public stream; "secret" accesses omitted
	u1, u2 := m1.Utilities(), m2.Utilities()
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("public-only metric differed")
		}
	}
}

func TestPropertyUtilitiesBoundedByWindow(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testConfig()
		cfg.Window = 4096
		m, err := New(cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 20000; i++ {
			m.Observe(uint64(r.Int63n(1<<21)), false)
		}
		for _, u := range m.Utilities() {
			// Scaled hits cannot exceed the window length by more than
			// sampling variance allows; use a generous 3x bound to catch
			// gross accounting bugs without flaking.
			if u.Hits > 3*float64(cfg.Window) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestShadowGeometryRespectsMinimum(t *testing.T) {
	cfg := testConfig()
	cfg.SampleLog2 = 10 // extreme sampling
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range m.shadows {
		if sh.Sets() < 4 {
			t.Errorf("shadow has %d sets, want >= 4", sh.Sets())
		}
		if sh.Ways() != 16 {
			t.Errorf("shadow ways = %d, want 16", sh.Ways())
		}
	}
	_ = cache.LineBytes
}
