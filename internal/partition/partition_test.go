package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"untangle/internal/monitor"
)

func testAllocator(t *testing.T) *Allocator {
	t.Helper()
	a, err := NewAllocator(monitor.DefaultSizes(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// saturating builds a utility curve that rises linearly until the working
// set fits and is flat afterwards: hits(size) = rate * min(size, ws).
func saturating(sizes []int64, ws int64, rate float64) []float64 {
	u := make([]float64, len(sizes))
	for i, s := range sizes {
		if s > ws {
			s = ws
		}
		u[i] = rate * float64(s) / float64(1<<20)
	}
	return u
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Static: "Static", TimeBased: "Time", Untangle: "Untangle", Shared: "Shared", Kind(7): "Kind(7)"} {
		if got := k.String(); got != want {
			t.Errorf("%d -> %q, want %q", int(k), got, want)
		}
	}
}

func TestDefaultSchemesValidate(t *testing.T) {
	for _, k := range []Kind{Static, TimeBased, Untangle, Shared} {
		cfg := DefaultScheme(k)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", k, err)
		}
		if cfg.StartSize != 2<<20 {
			t.Errorf("%v: start size %d, want 2MB (Table 4)", k, cfg.StartSize)
		}
	}
	if !DefaultScheme(TimeBased).Dynamic() || !DefaultScheme(Untangle).Dynamic() {
		t.Error("dynamic schemes misreported")
	}
	if DefaultScheme(Static).Dynamic() || DefaultScheme(Shared).Dynamic() {
		t.Error("static schemes misreported")
	}
}

func TestSchemeValidateErrors(t *testing.T) {
	bad := DefaultScheme(TimeBased)
	bad.Interval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultScheme(Untangle)
	bad.ProgressN = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero progress quantum accepted")
	}
	bad = DefaultScheme(Untangle)
	bad.Cooldown = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative cooldown accepted")
	}
	bad = DefaultScheme(Static)
	bad.StartSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero start size accepted")
	}
	bad = DefaultScheme(Static)
	bad.MaintainFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad hysteresis accepted")
	}
	bad = DefaultScheme(Static)
	bad.Kind = Kind(42)
	if err := bad.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestNewAllocatorValidation(t *testing.T) {
	if _, err := NewAllocator(nil, 16<<20); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := NewAllocator([]int64{2, 1}, 16<<20); err == nil {
		t.Error("decreasing sizes accepted")
	}
	if _, err := NewAllocator([]int64{1 << 20}, 1); err == nil {
		t.Error("capacity below minimum accepted")
	}
}

func TestFloorSize(t *testing.T) {
	a := testAllocator(t)
	if got := a.FloorSize(5 << 20); got != 4<<20 {
		t.Errorf("FloorSize(5MB) = %d, want 4MB", got)
	}
	if got := a.FloorSize(1); got != 128<<10 {
		t.Errorf("FloorSize(1) = %d, want minimum", got)
	}
	if got := a.FloorSize(8 << 20); got != 8<<20 {
		t.Errorf("FloorSize(8MB) = %d, want 8MB", got)
	}
}

func TestGlobalAllocateRespectsCapacity(t *testing.T) {
	a := testAllocator(t)
	// Eight greedy domains that all want 8MB.
	utilities := make([][]float64, 8)
	for d := range utilities {
		utilities[d] = saturating(a.Sizes, 8<<20, 1000)
	}
	alloc := a.GlobalAllocate(utilities)
	var sum int64
	for _, s := range alloc {
		if s < a.Sizes[0] {
			t.Errorf("allocation %d below minimum", s)
		}
		sum += s
	}
	if sum > a.Capacity {
		t.Errorf("allocated %d > capacity %d", sum, a.Capacity)
	}
}

func TestGlobalAllocateFavorsNeedyDomains(t *testing.T) {
	a := testAllocator(t)
	utilities := [][]float64{
		saturating(a.Sizes, 6<<20, 1000),   // needs 6MB
		saturating(a.Sizes, 128<<10, 1000), // saturates at 128kB
		saturating(a.Sizes, 256<<10, 1000),
		saturating(a.Sizes, 512<<10, 1000),
	}
	alloc := a.GlobalAllocate(utilities)
	if alloc[0] < 6<<20 {
		t.Errorf("needy domain got %d, want >= 6MB", alloc[0])
	}
	if alloc[1] > 256<<10 {
		t.Errorf("saturated domain got %d, want ~128kB", alloc[1])
	}
}

func TestGlobalAllocateOvercommitted(t *testing.T) {
	a := testAllocator(t)
	// Total demand 8x6MB = 48MB >> 16MB: the allocator must still fit.
	utilities := make([][]float64, 8)
	for d := range utilities {
		utilities[d] = saturating(a.Sizes, 6<<20, 1000)
	}
	alloc := a.GlobalAllocate(utilities)
	var sum int64
	for _, s := range alloc {
		sum += s
	}
	if sum > a.Capacity {
		t.Errorf("allocated %d > capacity", sum)
	}
}

func TestGlobalAllocateDeterministic(t *testing.T) {
	a := testAllocator(t)
	r := rand.New(rand.NewSource(3))
	utilities := make([][]float64, 8)
	for d := range utilities {
		utilities[d] = saturating(a.Sizes, int64(r.Intn(8)+1)<<20, float64(r.Intn(1000)+1))
	}
	x := a.GlobalAllocate(utilities)
	y := a.GlobalAllocate(utilities)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("allocation not deterministic")
		}
	}
}

func TestDecideMaintainsAtGlobalOptimum(t *testing.T) {
	a := testAllocator(t)
	// Both domains already hold their globally-optimal sizes: Maintain.
	utilities := [][]float64{
		saturating(a.Sizes, 4<<20, 1000),
		saturating(a.Sizes, 4<<20, 1000),
	}
	current := []int64{4 << 20, 4 << 20}
	for d := range current {
		if got := a.Decide(d, current, utilities, 0.02, 1e6); got != 4<<20 {
			t.Errorf("domain %d: Decide = %d, want Maintain at 4MB", d, got)
		}
	}
}

func TestDecideMaintainsOnMarginalExpansion(t *testing.T) {
	a := testAllocator(t)
	// The global optimum is a hair above current, but the hit gain is below
	// the hysteresis threshold: maintain rather than leak a visible action.
	utilities := [][]float64{
		saturating(a.Sizes, 256<<10, 100),
		saturating(a.Sizes, 128<<10, 1),
	}
	current := []int64{128 << 10, 128 << 10}
	// Gain from 128kB->256kB is 100*(0.25-0.125) = 12.5 hits; with a window
	// of 1e6 and threshold 2%, that is far below 20000: Maintain.
	if got := a.Decide(0, current, utilities, 0.02, 1e6); got != 128<<10 {
		t.Errorf("Decide = %d, want Maintain at 128kB", got)
	}
	// With hysteresis off it expands.
	if got := a.Decide(0, current, utilities, 0, 1e6); got != 256<<10 {
		t.Errorf("Decide = %d, want 256kB without hysteresis", got)
	}
}

func TestDecideShrinksSaturatedDomain(t *testing.T) {
	a := testAllocator(t)
	// A domain saturated at 128kB holding 2MB must give the space back
	// even though its own hit loss is zero.
	utilities := [][]float64{
		saturating(a.Sizes, 128<<10, 100),
		saturating(a.Sizes, 8<<20, 1000),
	}
	current := []int64{2 << 20, 2 << 20}
	if got := a.Decide(0, current, utilities, 0.02, 1e6); got != 128<<10 {
		t.Errorf("Decide = %d, want shrink to 128kB", got)
	}
}

func TestDecideExpandsWhenDemandGrows(t *testing.T) {
	a := testAllocator(t)
	utilities := [][]float64{
		saturating(a.Sizes, 6<<20, 1000),
		saturating(a.Sizes, 128<<10, 10),
	}
	current := []int64{2 << 20, 2 << 20}
	got := a.Decide(0, current, utilities, 0.02, 1000)
	if got <= 2<<20 {
		t.Errorf("Decide = %d, want expansion beyond 2MB", got)
	}
}

func TestDecideClampsToFreeCapacity(t *testing.T) {
	a := testAllocator(t)
	utilities := [][]float64{
		saturating(a.Sizes, 8<<20, 1000),
		saturating(a.Sizes, 128<<10, 1),
	}
	// Other domain is hogging 14MB; only 2MB total is available to d=0.
	current := []int64{1 << 20, 14 << 20}
	got := a.Decide(0, current, utilities, 0, 1000)
	if got > 2<<20 {
		t.Errorf("Decide = %d, exceeds free capacity", got)
	}
}

func TestDecideShrinksWhenOthersNeedSpace(t *testing.T) {
	a := testAllocator(t)
	utilities := [][]float64{
		saturating(a.Sizes, 128<<10, 10), // tiny demand, holds 8MB
		saturating(a.Sizes, 8<<20, 5000), // huge demand
		saturating(a.Sizes, 6<<20, 5000), // huge demand
		saturating(a.Sizes, 128<<10, 10),
	}
	current := []int64{8 << 20, 2 << 20, 2 << 20, 2 << 20}
	got := a.Decide(0, current, utilities, 0.02, 1e4)
	if got >= 8<<20 {
		t.Errorf("Decide = %d, want shrink from 8MB", got)
	}
}

func TestDecideAllNeverExceedsCapacity(t *testing.T) {
	a := testAllocator(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		utilities := make([][]float64, 8)
		current := make([]int64, 8)
		var sum int64
		for d := range utilities {
			utilities[d] = saturating(a.Sizes, int64(r.Intn(64)+1)<<17, float64(r.Intn(5000)))
			current[d] = a.Sizes[r.Intn(4)] // small current sizes keep the start feasible
			sum += current[d]
		}
		if sum > a.Capacity {
			return true // skip infeasible starting points
		}
		next := a.DecideAll(current, utilities, 0.02, 1e5)
		var total int64
		for _, s := range next {
			if a.sizeIndex(s) < 0 {
				return false
			}
			total += s
		}
		return total <= a.Capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecideAllShrinksBeforeGrowing(t *testing.T) {
	a := testAllocator(t)
	utilities := [][]float64{
		saturating(a.Sizes, 128<<10, 1),  // should give space back
		saturating(a.Sizes, 8<<20, 5000), // should claim it
	}
	current := []int64{8 << 20, 8 << 20}
	next := a.DecideAll(current, utilities, 0.02, 1e4)
	if next[0] >= 8<<20 {
		t.Errorf("domain 0 kept %d, want shrink", next[0])
	}
	if next[1] != 8<<20 {
		t.Errorf("domain 1 got %d, want to keep 8MB", next[1])
	}
}

func TestTraceStats(t *testing.T) {
	tr := Trace{
		{Size: 2 << 20, Prev: 2 << 20, Visible: false},
		{Size: 4 << 20, Prev: 2 << 20, Visible: true},
		{Size: 4 << 20, Prev: 4 << 20, Visible: false},
		{Size: 4 << 20, Prev: 4 << 20, Visible: false},
	}
	if got := tr.VisibleCount(); got != 1 {
		t.Errorf("visible = %d, want 1", got)
	}
	if got := tr.MaintainFraction(); got != 0.75 {
		t.Errorf("maintain fraction = %v, want 0.75", got)
	}
	sizes := tr.ActionSizes()
	if len(sizes) != 4 || sizes[1] != 4<<20 {
		t.Errorf("action sizes = %v", sizes)
	}
	if (Trace{}).MaintainFraction() != 0 {
		t.Error("empty trace should report 0")
	}
}

func TestPropertyGlobalAllocateMonotoneUtilityGetsMore(t *testing.T) {
	a := testAllocator(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Two domains with identical curve shapes but different rates: the
		// higher-rate domain must get at least as much cache.
		low := float64(r.Intn(100) + 1)
		high := low * float64(r.Intn(5)+2)
		ws := int64(r.Intn(6)+1) << 20
		utilities := [][]float64{
			saturating(a.Sizes, ws, high),
			saturating(a.Sizes, ws, low),
		}
		alloc := a.GlobalAllocate(utilities)
		return alloc[0] >= alloc[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
