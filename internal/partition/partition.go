// Package partition implements the dynamic partitioning machinery of the
// evaluation (Sections 3.1, 7 and 8): the supported resizing actions, the
// UMON-style lookahead allocator that picks partition sizes to maximize
// global LLC hits, and the four scheme configurations of Table 4.
package partition

import (
	"fmt"
	"time"

	"untangle/internal/telemetry"
)

// Kind identifies one of the Table 4 schemes.
type Kind int

const (
	// Static fixes each domain at StartSize for the whole run.
	Static Kind = iota
	// TimeBased assesses resizing at a fixed wall-clock interval, like the
	// prior schemes of Table 1.
	TimeBased
	// Untangle assesses resizing every ProgressN retired public
	// instructions with a cooldown and a random action delay (Section 5).
	Untangle
	// Shared disables partitioning: all domains share the whole LLC.
	Shared
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Static:
		return "Static"
	case TimeBased:
		return "Time"
	case Untangle:
		return "Untangle"
	case Shared:
		return "Shared"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SchemeConfig fully describes a partitioning scheme instance.
type SchemeConfig struct {
	Kind Kind
	// StartSize is every domain's initial partition (Table 4: 2MB).
	StartSize int64
	// Interval is the TimeBased assessment period (Table 4: 1 ms).
	Interval time.Duration
	// ProgressN is Untangle's progress quantum: a resizing assessment every
	// ProgressN retired public instructions (Table 4: 8M).
	ProgressN uint64
	// Cooldown is Untangle's minimum wall-clock gap between assessments,
	// Tc (Table 4: 1 ms).
	Cooldown time.Duration
	// DelayWidth is the width of Untangle's uniform random action delay
	// (Section 8: U[0, 1ms)).
	DelayWidth time.Duration
	// Annotated controls whether Untangle honors the Section 5.2
	// annotations (secret accesses excluded from the metric, secret
	// control flow excluded from progress). Disabling it is the ablation
	// that reintroduces action leakage.
	Annotated bool
	// MaintainFraction is the action-heuristic hysteresis: an assessment
	// keeps the current size unless the globally-optimal size improves the
	// domain's monitored hits by more than this fraction of the monitor
	// window. It applies identically to TimeBased and Untangle so the two
	// schemes differ only in metric timing and schedule, as in the paper.
	MaintainFraction float64
}

// DefaultScheme returns the Table 4 configuration for a kind.
func DefaultScheme(kind Kind) SchemeConfig {
	return SchemeConfig{
		Kind:             kind,
		StartSize:        2 << 20,
		Interval:         time.Millisecond,
		ProgressN:        8_000_000,
		Cooldown:         time.Millisecond,
		DelayWidth:       time.Millisecond,
		Annotated:        true,
		MaintainFraction: 0.02,
	}
}

// Validate reports configuration errors.
func (c SchemeConfig) Validate() error {
	if c.StartSize <= 0 {
		return fmt.Errorf("partition: start size %d", c.StartSize)
	}
	switch c.Kind {
	case TimeBased:
		if c.Interval <= 0 {
			return fmt.Errorf("partition: Time scheme needs a positive interval")
		}
	case Untangle:
		if c.ProgressN == 0 {
			return fmt.Errorf("partition: Untangle needs a progress quantum")
		}
		if c.Cooldown < 0 || c.DelayWidth < 0 {
			return fmt.Errorf("partition: negative cooldown or delay")
		}
	case Static, Shared:
	default:
		return fmt.Errorf("partition: unknown kind %d", c.Kind)
	}
	if c.MaintainFraction < 0 || c.MaintainFraction >= 1 {
		return fmt.Errorf("partition: MaintainFraction %v", c.MaintainFraction)
	}
	return nil
}

// Dynamic reports whether the scheme performs resizing assessments.
func (c SchemeConfig) Dynamic() bool { return c.Kind == TimeBased || c.Kind == Untangle }

// Assessment records one resizing assessment: the decided action (the next
// partition size), whether it is attacker-visible (size changed), and its
// timing. A resizing trace is the per-domain sequence of assessments.
type Assessment struct {
	// Domain is the assessed security domain.
	Domain int
	// At is when the assessment was made.
	At time.Duration
	// ApplyAt is when the decided action takes effect (assessment time plus
	// Untangle's random delay; equal to At for TimeBased).
	ApplyAt time.Duration
	// Prev and Size are the partition sizes before and after.
	Prev, Size int64
	// Visible reports whether the attacker can observe the action
	// (Size != Prev; Maintain is invisible, Section 5.3.4).
	Visible bool
}

// Trace is a resizing trace: the ordered assessments of one domain.
type Trace []Assessment

// VisibleCount returns how many actions changed the partition size.
func (t Trace) VisibleCount() int {
	n := 0
	for _, a := range t {
		if a.Visible {
			n++
		}
	}
	return n
}

// MaintainFraction returns the fraction of assessments that kept the size.
func (t Trace) MaintainFraction() float64 {
	if len(t) == 0 {
		return 0
	}
	return 1 - float64(t.VisibleCount())/float64(len(t))
}

// ActionSizes returns just the action sequence (the sizes chosen), the
// paper's S variable.
func (t Trace) ActionSizes() []int64 {
	out := make([]int64, len(t))
	for i, a := range t {
		out[i] = a.Size
	}
	return out
}

// Allocator assigns partition sizes to domains to maximize total monitored
// hits, subject to the LLC capacity — the UMON policy of Section 7 ("picks
// the size for each domain that maximizes the number of LLC hits across all
// domains"), implemented with the standard lookahead algorithm.
type Allocator struct {
	// Sizes are the supported partition sizes, strictly increasing.
	Sizes []int64
	// Capacity is the total LLC size (Table 3: 16MB).
	Capacity int64
	// Metrics, when non-nil, counts decision outcomes (one nil-check per
	// decision when disabled). Telemetry only — it never influences a
	// decision.
	Metrics *DecisionMetrics
}

// DecisionMetrics are the allocator's decision-point counters, registered
// on a telemetry registry. Every Decide call lands in exactly one of
// Grows/Shrinks/Maintains; CapacityClamps and HysteresisVetoes count why a
// globally-optimal target was not adopted verbatim.
type DecisionMetrics struct {
	Decisions        *telemetry.Counter
	Grows            *telemetry.Counter
	Shrinks          *telemetry.Counter
	Maintains        *telemetry.Counter
	CapacityClamps   *telemetry.Counter
	HysteresisVetoes *telemetry.Counter
}

// NewDecisionMetrics registers the allocator counters under prefix.
func NewDecisionMetrics(reg *telemetry.Registry, prefix string) *DecisionMetrics {
	return &DecisionMetrics{
		Decisions:        reg.Counter(prefix + ".decisions"),
		Grows:            reg.Counter(prefix + ".grows"),
		Shrinks:          reg.Counter(prefix + ".shrinks"),
		Maintains:        reg.Counter(prefix + ".maintains"),
		CapacityClamps:   reg.Counter(prefix + ".capacity_clamps"),
		HysteresisVetoes: reg.Counter(prefix + ".hysteresis_vetoes"),
	}
}

// NewAllocator validates and returns an allocator.
func NewAllocator(sizes []int64, capacity int64) (*Allocator, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("partition: no sizes")
	}
	for i, s := range sizes {
		if s <= 0 || (i > 0 && s <= sizes[i-1]) {
			return nil, fmt.Errorf("partition: sizes must be positive and increasing")
		}
	}
	if capacity < sizes[0] {
		return nil, fmt.Errorf("partition: capacity %d below minimum size %d", capacity, sizes[0])
	}
	return &Allocator{Sizes: append([]int64(nil), sizes...), Capacity: capacity}, nil
}

// sizeIndex returns the index of size in Sizes, or -1.
func (a *Allocator) sizeIndex(size int64) int {
	for i, s := range a.Sizes {
		if s == size {
			return i
		}
	}
	return -1
}

// FloorSize returns the largest supported size <= limit, or the minimum
// supported size if none fits.
func (a *Allocator) FloorSize(limit int64) int64 {
	best := a.Sizes[0]
	for _, s := range a.Sizes {
		if s <= limit {
			best = s
		}
	}
	return best
}

// GlobalAllocate computes the hit-maximizing size assignment for all
// domains. utilities[d][i] is domain d's monitored hits at Sizes[i]
// (monitor.Utility.Hits order). The result always sums to at most Capacity
// and gives every domain at least the minimum size.
//
// The algorithm is UMON's lookahead: starting from minimum sizes, repeatedly
// grant the expansion with the highest marginal hits per byte, where each
// candidate expansion may jump several sizes ahead (this handles non-convex
// utility curves). Ties resolve to the lower domain index, keeping the
// allocation deterministic.
func (a *Allocator) GlobalAllocate(utilities [][]float64) []int64 {
	n := len(utilities)
	alloc := make([]int, n) // size indices
	remaining := a.Capacity - int64(n)*a.Sizes[0]
	if remaining < 0 {
		// Capacity cannot even give everyone the minimum; everyone gets it
		// anyway (the caller configured an over-small LLC — clamp).
		remaining = 0
	}
	for {
		bestDomain, bestTarget := -1, -1
		bestDensity := 0.0
		for d := 0; d < n; d++ {
			cur := alloc[d]
			curHits := utilityAt(utilities[d], cur)
			for t := cur + 1; t < len(a.Sizes); t++ {
				extra := a.Sizes[t] - a.Sizes[cur]
				if extra > remaining {
					break
				}
				gain := utilityAt(utilities[d], t) - curHits
				if gain <= 0 {
					continue
				}
				density := gain / float64(extra)
				if density > bestDensity+1e-12 {
					bestDensity, bestDomain, bestTarget = density, d, t
				}
			}
		}
		if bestDomain < 0 {
			break
		}
		remaining -= a.Sizes[bestTarget] - a.Sizes[alloc[bestDomain]]
		alloc[bestDomain] = bestTarget
	}
	out := make([]int64, n)
	for d, i := range alloc {
		out[d] = a.Sizes[i]
	}
	return out
}

func utilityAt(u []float64, i int) float64 {
	if i < len(u) {
		return u[i]
	}
	if len(u) == 0 {
		return 0
	}
	return u[len(u)-1]
}

// Decide picks domain d's next size at an assessment, following the Section
// 7 heuristic under the instantaneous capacity constraint:
//
//  1. compute the global hit-maximizing allocation from everyone's current
//     monitored utilities,
//  2. clamp d's target to what is actually free right now (other domains
//     keep their current sizes until their own assessments),
//  3. apply hysteresis: keep the current size unless the move changes the
//     domain's hits by more than maintainDelta.
//
// current holds every domain's current size; utilities is as in
// GlobalAllocate; windowAccesses is the monitor window length used to scale
// the hysteresis threshold.
func (a *Allocator) Decide(d int, current []int64, utilities [][]float64, maintainFraction float64, windowAccesses float64) int64 {
	target := a.GlobalAllocate(utilities)[d]
	// Capacity actually available to d right now.
	var others int64
	for i, s := range current {
		if i != d {
			others += s
		}
	}
	free := a.Capacity - others
	if target > free {
		target = a.FloorSize(free)
		if a.Metrics != nil {
			a.Metrics.CapacityClamps.Inc()
		}
	}
	cur := current[d]
	if target == cur {
		return a.recordDecision(cur, cur)
	}
	// Hysteresis applies to expansions only: claiming more cache must be
	// justified by a hit gain above the threshold, or the domain maintains.
	// Shrinks demanded by the global allocation always comply — giving up
	// capacity the domain barely uses is exactly how space reaches needier
	// domains (and how the paper's LLC-insensitive workloads end up with
	// partitions below the 2MB Static size).
	if target > cur {
		ci, ti := a.sizeIndex(cur), a.sizeIndex(target)
		if ci >= 0 && ti >= 0 {
			gain := utilityAt(utilities[d], ti) - utilityAt(utilities[d], ci)
			if gain < maintainFraction*windowAccesses {
				if a.Metrics != nil {
					a.Metrics.HysteresisVetoes.Inc()
				}
				return a.recordDecision(cur, cur)
			}
		}
	}
	return a.recordDecision(cur, target)
}

// recordDecision counts the decision outcome and passes the target
// through.
func (a *Allocator) recordDecision(cur, target int64) int64 {
	if m := a.Metrics; m != nil {
		m.Decisions.Inc()
		switch {
		case target > cur:
			m.Grows.Inc()
		case target < cur:
			m.Shrinks.Inc()
		default:
			m.Maintains.Inc()
		}
	}
	return target
}

// DecideAll performs a simultaneous assessment of every domain (the
// TimeBased schedule): shrinking decisions are applied first so that the
// freed capacity is visible to growing decisions, and the result never
// exceeds Capacity.
func (a *Allocator) DecideAll(current []int64, utilities [][]float64, maintainFraction float64, windowAccesses float64) []int64 {
	next := append([]int64(nil), current...)
	// Pass 1: shrinks.
	for d := range next {
		if s := a.Decide(d, next, utilities, maintainFraction, windowAccesses); s < next[d] {
			next[d] = s
		}
	}
	// Pass 2: grows, against the capacity freed by pass 1.
	for d := range next {
		if s := a.Decide(d, next, utilities, maintainFraction, windowAccesses); s > next[d] {
			next[d] = s
		}
	}
	return next
}
