package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{1, -2}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
	if got := GeoMean([]float64{1.14}); math.Abs(got-1.14) > 1e-12 {
		t.Errorf("singleton geomean = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(v, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
	// Input must not be mutated (Quantile sorts a copy).
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Max != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	si := SummarizeInt64([]int64{1 << 20, 2 << 20, 4 << 20})
	if si.Median != float64(2<<20) {
		t.Errorf("int64 median = %v", si.Median)
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v := make([]float64, int(n%50)+1)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := Quantile(v, q)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v := make([]float64, int(n%20)+1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range v {
			v[i] = r.Float64()*10 + 0.1
			lo, hi = math.Min(lo, v[i]), math.Max(hi, v[i])
		}
		g := GeoMean(v)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
