// Package stats provides the small statistical helpers the evaluation
// harness uses: geometric means for system-wide speedups and quartile
// summaries for the partition-size distribution charts of Figures 10-17.
package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of strictly positive values; it returns
// 0 for an empty slice and NaN if any value is non-positive (a geomean over
// speedups must never see those).
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is the five-number summary drawn by the partition-size
// distribution charts: min/max whiskers, first-to-third quartile box, and
// the median dot.
type Summary struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summarize computes the five-number summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	return Summary{
		Min:    Quantile(values, 0),
		Q1:     Quantile(values, 0.25),
		Median: Quantile(values, 0.5),
		Q3:     Quantile(values, 0.75),
		Max:    Quantile(values, 1),
		N:      len(values),
	}
}

// SummarizeInt64 converts and summarizes integer samples (partition sizes).
func SummarizeInt64(values []int64) Summary {
	f := make([]float64, len(values))
	for i, v := range values {
		f[i] = float64(v)
	}
	return Summarize(f)
}
