package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRetrySucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, time.Nanosecond, func(context.Context, int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryOutlastsTransientFailure(t *testing.T) {
	var attempts []int
	err := Retry(context.Background(), 3, time.Nanosecond, func(_ context.Context, attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 3 || attempts[2] != 2 {
		t.Fatalf("attempts = %v", attempts)
	}
}

func TestRetryExhaustionReturnsTypedError(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, time.Nanosecond, func(_ context.Context, attempt int) error {
		calls++
		return fmt.Errorf("fail %d", attempt)
	})
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RetryExhaustedError", err, err)
	}
	if re.Attempts != 3 || re.Err == nil || re.Err.Error() != "fail 2" {
		t.Fatalf("exhausted = %+v, want 3 attempts wrapping the last error", re)
	}
}

// RetryUnit stamps the unit name onto the exhaustion error, and the wrapped
// final error stays reachable through errors.Is.
func TestRetryUnitCarriesContext(t *testing.T) {
	sentinel := errors.New("disk on fire")
	err := RetryUnit(context.Background(), "mix/3", 2, time.Nanosecond, func(context.Context, int) error {
		return sentinel
	})
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v", err, err)
	}
	if re.Unit != "mix/3" || re.Attempts != 2 {
		t.Errorf("exhausted = %+v", re)
	}
	if !errors.Is(err, sentinel) {
		t.Error("wrapped final error lost")
	}
	if !strings.Contains(err.Error(), "mix/3") {
		t.Errorf("message %q does not name the unit", err)
	}
}

// The never-retry classes are returned unwrapped: classification code that
// checks for RetryExhaustedError must not see cancellations or panics
// disguised as exhaustion.
func TestRetryNeverWrapsCancellationOrPanic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := Retry(ctx, 3, time.Nanosecond, func(context.Context, int) error {
		cancel()
		return context.Canceled
	})
	var re *RetryExhaustedError
	if errors.As(err, &re) {
		t.Errorf("cancellation wrapped as exhaustion: %v", err)
	}

	err = Retry(context.Background(), 3, time.Nanosecond, func(ctx context.Context, _ int) error {
		return ForEach(ctx, 1, 1, func(context.Context, int) error { panic("bug") })
	})
	if errors.As(err, &re) {
		t.Errorf("panic wrapped as exhaustion: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("err = %v, want *PanicError", err)
	}
}

// Panics are bugs, not transient conditions: a deterministic simulation
// would panic again, so Retry hands the PanicError straight back.
func TestRetryDoesNotRetryPanics(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, time.Nanosecond, func(ctx context.Context, _ int) error {
		calls++
		// The pool's guard converts the panic; model that conversion.
		return ForEach(ctx, 1, 1, func(context.Context, int) error { panic("bug") })
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("panicking fn retried %d times", calls)
	}
}

func TestRetryStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, 10, time.Hour, func(context.Context, int) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("cancellation swallowed the error")
	}
	if calls != 1 {
		t.Errorf("retried %d times after cancellation", calls)
	}
}

func TestRetryCancelCutsBackoffShort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Retry(ctx, 2, time.Hour, func(context.Context, int) error {
		return errors.New("transient")
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation (%v)", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// The backoff schedule is a pure function of the attempt index.
func TestBackoffDeterministicAndGrowing(t *testing.T) {
	for attempt := 0; attempt < 8; attempt++ {
		d1 := backoffDelay(10*time.Millisecond, attempt)
		d2 := backoffDelay(10*time.Millisecond, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v", attempt, d1, d2)
		}
		base := 10 * time.Millisecond << uint(attempt)
		if d1 < base || d1 > base+base/2 {
			t.Fatalf("attempt %d: delay %v outside [base, 1.5*base] of %v", attempt, d1, base)
		}
	}
	if backoffDelay(0, 3) != 0 {
		t.Error("zero base should not sleep")
	}
}

func TestRetryAttemptsFloor(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 0, 0, func(context.Context, int) error {
		calls++
		return errors.New("x")
	})
	if calls != 1 || err == nil {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}
