package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Stats deltas across a ForEach: every task started and completed, the
// queue drained back to its baseline, and mid-flight the active gauge saw
// real concurrency.
func TestStatsAcrossForEach(t *testing.T) {
	before := Stats()
	const n = 8
	var (
		mu        sync.Mutex
		maxActive int64
	)
	err := ForEach(context.Background(), n, 4, func(ctx context.Context, i int) error {
		s := Stats()
		mu.Lock()
		if s.Active > maxActive {
			maxActive = s.Active
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := Stats()
	if got := after.Started - before.Started; got != n {
		t.Errorf("started delta = %d, want %d", got, n)
	}
	if got := after.Completed - before.Completed; got != n {
		t.Errorf("completed delta = %d, want %d", got, n)
	}
	if after.Queued != before.Queued {
		t.Errorf("queue did not drain: %d -> %d", before.Queued, after.Queued)
	}
	if after.Active != before.Active {
		t.Errorf("active did not settle: %d -> %d", before.Active, after.Active)
	}
	if maxActive < 1 {
		t.Errorf("never observed an active task")
	}
}

// A failing task counts as failed, and indices the first-error shutdown
// abandoned leave the queue without being started.
func TestStatsFailureAndAbandonment(t *testing.T) {
	before := Stats()
	boom := errors.New("boom")
	err := ForEach(context.Background(), 16, 1, func(ctx context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	after := Stats()
	if got := after.Failed - before.Failed; got != 1 {
		t.Errorf("failed delta = %d, want 1", got)
	}
	if got := after.Started - before.Started; got != 3 {
		t.Errorf("started delta = %d, want 3 (sequential stops at the error)", got)
	}
	if after.Queued != before.Queued {
		t.Errorf("abandoned tasks left the queue dirty: %d -> %d", before.Queued, after.Queued)
	}
}

// The concurrent path must also reconcile the queue when a panic cuts the
// batch short.
func TestStatsPanicIsolationReconcilesQueue(t *testing.T) {
	before := Stats()
	err := ForEach(context.Background(), 32, 4, func(ctx context.Context, i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	after := Stats()
	if after.Queued != before.Queued {
		t.Errorf("queue did not reconcile after panic: %d -> %d", before.Queued, after.Queued)
	}
	if after.Active != before.Active {
		t.Errorf("active did not settle after panic: %d -> %d", before.Active, after.Active)
	}
	if got := after.Failed - before.Failed; got != 1 {
		t.Errorf("failed delta = %d, want 1", got)
	}
}

// Gauges must stay coherent while many pools churn concurrently — the
// process-wide counters aggregate nested and unrelated ForEaches, and the
// obs layer samples them at arbitrary instants. Invariants checked while
// sampling mid-churn: the instantaneous gauges never go negative. Invariants
// checked once the churn settles: gauges return to baseline and every
// started task finished exactly once (completed or failed), across pools
// that succeed, fail mid-batch, and get cancelled.
func TestStatsUnderConcurrentPoolChurn(t *testing.T) {
	before := Stats()
	boom := errors.New("churn failure")

	stop := make(chan struct{})
	var violations atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := Stats()
			if s.Active < 0 || s.Queued < 0 {
				violations.Add(1)
			}
		}
	}()

	const pools, rounds, tasks = 6, 4, 24
	var wg sync.WaitGroup
	for p := 0; p < pools; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				ctx, cancel := context.WithCancel(context.Background())
				mode := (p + round) % 3
				ForEach(ctx, tasks, 3, func(ctx context.Context, i int) error {
					switch {
					case mode == 1 && i == tasks/2:
						return boom // first-error shutdown abandons the tail
					case mode == 2 && i == tasks/2:
						cancel() // cancellation mid-batch
					}
					return nil
				})
				cancel()
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	if n := violations.Load(); n != 0 {
		t.Errorf("sampler saw %d negative gauge snapshots", n)
	}
	after := Stats()
	if after.Active != before.Active {
		t.Errorf("active did not settle: %d -> %d", before.Active, after.Active)
	}
	if after.Queued != before.Queued {
		t.Errorf("queue did not drain: %d -> %d", before.Queued, after.Queued)
	}
	started := after.Started - before.Started
	finished := (after.Completed - before.Completed) + (after.Failed - before.Failed)
	if started != finished {
		t.Errorf("started %d != completed+failed %d: a task vanished mid-churn", started, finished)
	}
	if started == 0 {
		t.Error("churn ran no tasks")
	}
}
