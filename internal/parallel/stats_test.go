package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// Stats deltas across a ForEach: every task started and completed, the
// queue drained back to its baseline, and mid-flight the active gauge saw
// real concurrency.
func TestStatsAcrossForEach(t *testing.T) {
	before := Stats()
	const n = 8
	var (
		mu        sync.Mutex
		maxActive int64
	)
	err := ForEach(context.Background(), n, 4, func(ctx context.Context, i int) error {
		s := Stats()
		mu.Lock()
		if s.Active > maxActive {
			maxActive = s.Active
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := Stats()
	if got := after.Started - before.Started; got != n {
		t.Errorf("started delta = %d, want %d", got, n)
	}
	if got := after.Completed - before.Completed; got != n {
		t.Errorf("completed delta = %d, want %d", got, n)
	}
	if after.Queued != before.Queued {
		t.Errorf("queue did not drain: %d -> %d", before.Queued, after.Queued)
	}
	if after.Active != before.Active {
		t.Errorf("active did not settle: %d -> %d", before.Active, after.Active)
	}
	if maxActive < 1 {
		t.Errorf("never observed an active task")
	}
}

// A failing task counts as failed, and indices the first-error shutdown
// abandoned leave the queue without being started.
func TestStatsFailureAndAbandonment(t *testing.T) {
	before := Stats()
	boom := errors.New("boom")
	err := ForEach(context.Background(), 16, 1, func(ctx context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	after := Stats()
	if got := after.Failed - before.Failed; got != 1 {
		t.Errorf("failed delta = %d, want 1", got)
	}
	if got := after.Started - before.Started; got != 3 {
		t.Errorf("started delta = %d, want 3 (sequential stops at the error)", got)
	}
	if after.Queued != before.Queued {
		t.Errorf("abandoned tasks left the queue dirty: %d -> %d", before.Queued, after.Queued)
	}
}

// The concurrent path must also reconcile the queue when a panic cuts the
// batch short.
func TestStatsPanicIsolationReconcilesQueue(t *testing.T) {
	before := Stats()
	err := ForEach(context.Background(), 32, 4, func(ctx context.Context, i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	after := Stats()
	if after.Queued != before.Queued {
		t.Errorf("queue did not reconcile after panic: %d -> %d", before.Queued, after.Queued)
	}
	if after.Active != before.Active {
		t.Errorf("active did not settle after panic: %d -> %d", before.Active, after.Active)
	}
	if got := after.Failed - before.Failed; got != 1 {
		t.Errorf("failed delta = %d, want 1", got)
	}
}
