// Package parallel is the experiment engine's worker pool: a bounded,
// order-preserving fan-out for embarrassingly parallel simulation points.
//
// Every experiment in this repository decomposes into independent sim.Run
// calls — each point owns its generator, cache hierarchy, and telemetry
// buffer — so the only requirements on the pool are (1) a concurrency bound,
// (2) results collected by index so aggregation order never depends on
// goroutine scheduling, and (3) first-error cancellation so a 300-point
// study does not grind on after a point fails. Determinism then follows
// structurally: workers never share mutable state, and callers always fold
// the index-ordered results sequentially, so a jobs=N run is bit-identical
// to the jobs=1 run.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is a worker panic converted into a value: a task function that
// panicked fails its ForEach/Map with this error instead of crashing the
// process, so a multi-hour campaign survives one bad point and reports
// which index it was. It flows through the pool's first-error cancellation
// like any other failure.
type PanicError struct {
	// Index is the task index whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// guard runs fn(ctx, i) and converts a panic into a *PanicError.
func guard(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// Jobs normalizes a user-facing jobs count: n <= 0 selects GOMAXPROCS (the
// "use the machine" default for -jobs 0), anything else is taken literally.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most Jobs(jobs)
// concurrent workers and waits for them. The first error cancels the
// context handed to the remaining calls and stops unstarted indices; calls
// already in flight run to completion. With jobs == 1 the indices run
// inline on the caller's goroutine in ascending order — the legacy
// sequential path, with no goroutines involved.
//
// A panicking fn does not crash the process: the panic is recovered into a
// *PanicError carrying the failing index, value, and stack, and fails the
// ForEach exactly like a returned error.
//
// ForEach returns the first error observed (by completion time under
// concurrency; by index when sequential), or ctx's error if the
// cancellation prevented indices from running. Completed work wins the
// cancellation race: when every index already ran to completion
// successfully, ForEach returns nil even if ctx was canceled before the
// call or while the last calls were finishing — a cancellation that stopped
// nothing is not an error. (Before this contract was pinned down, a parent
// context canceled after the last index completed could still surface as
// ctx.Err(); see TestCompletedWorkBeatsLateCancellation.)
func ForEach(ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	// Pool instrumentation (stats.go): admit the whole batch as queued, and
	// drop whatever never started when this call returns — cancellation and
	// first-error shutdown abandon unstarted indices.
	poolQueued.Add(int64(n))
	started := 0
	defer func() { poolQueued.Add(int64(started - n)) }()
	if jobs == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			started++
			taskStarted()
			err := guard(ctx, i, fn)
			taskFinished(err)
			if err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu        sync.Mutex
		firstErr  error
		next      int
		completed int
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || firstErr != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i, ok := claim()
				if !ok {
					return
				}
				taskStarted()
				err := guard(ctx, i, fn)
				taskFinished(err)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	started = next // claims already left the queue via taskStarted
	if firstErr != nil {
		return firstErr
	}
	// Completed work beats the cancellation race: only report ctx.Err()
	// when the cancellation actually prevented indices from completing.
	if completed == n {
		return nil
	}
	return ctx.Err()
}

// Map runs fn over [0, n) like ForEach and collects the results in index
// order. On error the returned slice still holds every result completed
// before cancellation (zero values elsewhere), so callers that stream
// results — cmd/experiments printing mixes as they finish — can report the
// completed prefix of an interrupted run.
func Map[T any](ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, jobs, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
