package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobs(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(-3) = %d", got)
	}
	if got := Jobs(7); got != 7 {
		t.Errorf("Jobs(7) = %d", got)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), 100, jobs, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, jobs := range []int{1, 3, 8} {
		counts := make([]int32, 200)
		err := ForEach(context.Background(), len(counts), jobs, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(context.Background(), -5, 4, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorCancelsRemainingWork(t *testing.T) {
	boom := errors.New("boom")
	var started int32
	err := ForEach(context.Background(), 1000, 2, func(ctx context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 3 {
			return boom
		}
		// Give the canceling worker time to record the error so the pool
		// observably stops claiming new indices.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt32(&started); n == 1000 {
		t.Error("error did not stop the pool from claiming every index")
	}
}

func TestSequentialErrorStopsAtFirstIndex(t *testing.T) {
	var ran []int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 4 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 4" {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 5 {
		t.Fatalf("ran %v, want exactly indices 0..4", ran)
	}
}

func TestCallerCancellationStopsPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(ctx, 10000, 2, func(ctx context.Context, i int) error {
			if atomic.AddInt32(&started, 1) == 4 {
				cancel()
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return nil
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not stop after caller cancellation")
	}
	if n := atomic.LoadInt32(&started); n == 10000 {
		t.Error("cancellation did not stop index claims")
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	// Sequential: indices before the failure keep their results.
	out, err := Map(context.Background(), 10, 1, func(_ context.Context, i int) (int, error) {
		if i == 6 {
			return 0, errors.New("stop")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	for i := 0; i < 6; i++ {
		if out[i] != i+1 {
			t.Errorf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
	for i := 6; i < 10; i++ {
		if out[i] != 0 {
			t.Errorf("out[%d] = %d, want zero after error", i, out[i])
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("r%03d", i*7%31), nil
	}
	seq, err := Map(context.Background(), 64, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(context.Background(), 64, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: %q vs %q", i, seq[i], par[i])
		}
	}
}
