package parallel

import "sync/atomic"

// Pool instrumentation: process-wide atomic counters that every ForEach
// (and therefore Map, and everything built on them) updates as tasks flow
// through. They exist for the observability layer — internal/obs samples
// them into gauges for the /metrics endpoint and the live progress display —
// and deliberately observe without participating: a handful of atomic adds
// per task, where a task is a whole simulation pass, is noise next to the
// work itself, so the counters are always on.
//
// The counters aggregate across every pool in the process, including nested
// ones (a mix-level ForEach whose workers run scheme-level ForEaches), which
// is exactly the view an operator wants: how busy is this process, how much
// admitted work is still waiting.
var (
	poolActive    atomic.Int64  // tasks currently executing
	poolQueued    atomic.Int64  // tasks admitted to a live ForEach, not yet started
	poolStarted   atomic.Uint64 // lifetime tasks handed to a worker
	poolCompleted atomic.Uint64 // lifetime tasks that returned nil
	poolFailed    atomic.Uint64 // lifetime tasks that returned an error (incl. panics)
)

// PoolStats is a point-in-time snapshot of the process's worker-pool
// activity. Active and Queued are instantaneous; the lifetime counters are
// monotone. Queued counts admitted-but-unstarted tasks; tasks abandoned by
// cancellation or first-error shutdown leave the queue without ever
// starting, so Started+Queued can undercount the admitted total.
type PoolStats struct {
	Active    int64  `json:"active"`
	Queued    int64  `json:"queued"`
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// Stats returns the current process-wide pool snapshot. The fields are read
// individually (not under one lock), so a snapshot taken while tasks move is
// approximate by one task — fine for gauges, not for invariants.
func Stats() PoolStats {
	return PoolStats{
		Active:    poolActive.Load(),
		Queued:    poolQueued.Load(),
		Started:   poolStarted.Load(),
		Completed: poolCompleted.Load(),
		Failed:    poolFailed.Load(),
	}
}

// taskStarted moves one task from queued to active.
func taskStarted() {
	poolQueued.Add(-1)
	poolActive.Add(1)
	poolStarted.Add(1)
}

// taskFinished retires one active task.
func taskFinished(err error) {
	poolActive.Add(-1)
	if err != nil {
		poolFailed.Add(1)
	} else {
		poolCompleted.Add(1)
	}
}
