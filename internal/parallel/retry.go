package parallel

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryExhaustedError is the typed failure Retry returns when every attempt
// failed: the campaign layer classifies it (a unit that outlasts the retry
// budget is poisoned and belongs in the dead-letter journal, not on the
// retry treadmill) and tests assert on it with errors.As instead of
// string-matching the bare last error. It wraps only genuine exhaustion —
// context cancellations and *PanicError keep their never-retry contract and
// are returned unwrapped, so errors.Is(err, context.Canceled) and
// errors.As(err, **PanicError) behave exactly as before.
type RetryExhaustedError struct {
	// Unit identifies the unit of work being retried ("" when the caller
	// used Retry rather than RetryUnit).
	Unit string
	// Attempts is how many times the function ran, all failing.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// Error implements error.
func (e *RetryExhaustedError) Error() string {
	if e.Unit != "" {
		return fmt.Sprintf("parallel: retry of %s exhausted after %d attempts: %v", e.Unit, e.Attempts, e.Err)
	}
	return fmt.Sprintf("parallel: retry exhausted after %d attempts: %v", e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error to errors.Is/As chains.
func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// Retry runs fn up to attempts times, sleeping between tries with
// jittered exponential backoff, and returns nil on the first success or
// the last attempt's error. It is the recovery half of the resilience
// layer: a transient failure (an injected fault, a flaky filesystem, a
// starved descriptor) costs one deterministic re-run of the failed unit
// instead of the whole campaign — and because every simulation in this
// repository is a pure function of its configuration, a retried unit
// produces bit-identical results to an untroubled first attempt (proved by
// the fault-injection suite).
//
// Two error classes are never retried, because retrying cannot help:
// context cancellation (the operator or the first-error cancellation asked
// the run to stop) and *PanicError (a panic is a bug in the point, not a
// transient condition; rerunning a deterministic simulation would panic
// again).
//
// The backoff doubles per attempt from the base delay and adds a jitter
// derived deterministically from the attempt index (splitmix64, no
// time.Now, no math/rand globals), so two processes retrying the same unit
// de-synchronize while any given retry schedule is exactly reproducible.
// The sleep — never the result — is the only thing the wall clock touches.
// A canceled context cuts the sleep short and returns ctx.Err().
//
// When every attempt fails, the last error comes back wrapped in a
// *RetryExhaustedError carrying the attempt count (the two never-retried
// classes above are returned unwrapped).
func Retry(ctx context.Context, attempts int, backoff time.Duration, fn func(ctx context.Context, attempt int) error) error {
	return RetryUnit(ctx, "", attempts, backoff, fn)
}

// RetryUnit is Retry with unit-identifying context: unit names the piece of
// campaign work being retried ("mix/3", "sens/mcf_0") and is carried on the
// RetryExhaustedError so dead-letter records and logs can say which unit
// burned its attempts without the caller re-wrapping the error.
func RetryUnit(ctx context.Context, unit string, attempts int, backoff time.Duration, fn func(ctx context.Context, attempt int) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(ctx, attempt); err == nil {
			return nil
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return err
		}
		if attempt == attempts-1 {
			break
		}
		if d := backoffDelay(backoff, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return &RetryExhaustedError{Unit: unit, Attempts: attempts, Err: err}
}

// backoffDelay computes base<<attempt plus a deterministic jitter of up to
// +50%, derived from the attempt index alone.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d <= 0 { // shift overflow on absurd attempt counts
		return base
	}
	// splitmix64 of the attempt index: a fixed, well-mixed jitter source.
	z := uint64(attempt) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(d)/2)
}
