package parallel

import (
	"context"
	"errors"
	"time"
)

// Retry runs fn up to attempts times, sleeping between tries with
// jittered exponential backoff, and returns nil on the first success or
// the last attempt's error. It is the recovery half of the resilience
// layer: a transient failure (an injected fault, a flaky filesystem, a
// starved descriptor) costs one deterministic re-run of the failed unit
// instead of the whole campaign — and because every simulation in this
// repository is a pure function of its configuration, a retried unit
// produces bit-identical results to an untroubled first attempt (proved by
// the fault-injection suite).
//
// Two error classes are never retried, because retrying cannot help:
// context cancellation (the operator or the first-error cancellation asked
// the run to stop) and *PanicError (a panic is a bug in the point, not a
// transient condition; rerunning a deterministic simulation would panic
// again).
//
// The backoff doubles per attempt from the base delay and adds a jitter
// derived deterministically from the attempt index (splitmix64, no
// time.Now, no math/rand globals), so two processes retrying the same unit
// de-synchronize while any given retry schedule is exactly reproducible.
// The sleep — never the result — is the only thing the wall clock touches.
// A canceled context cuts the sleep short and returns ctx.Err().
func Retry(ctx context.Context, attempts int, backoff time.Duration, fn func(ctx context.Context, attempt int) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(ctx, attempt); err == nil {
			return nil
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return err
		}
		if attempt == attempts-1 {
			break
		}
		if d := backoffDelay(backoff, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return err
}

// backoffDelay computes base<<attempt plus a deterministic jitter of up to
// +50%, derived from the attempt index alone.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d <= 0 { // shift overflow on absurd attempt counts
		return base
	}
	// splitmix64 of the attempt index: a fixed, well-mixed jitter source.
	z := uint64(attempt) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(d)/2)
}
