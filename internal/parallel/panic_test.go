package parallel

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPanicBecomesPanicErrorSequential(t *testing.T) {
	var ran []int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 4 {
			panic("corrupt point")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 4 {
		t.Errorf("Index = %d, want 4", pe.Index)
	}
	if pe.Value != "corrupt point" {
		t.Errorf("Value = %v", pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("panic_test.go")) {
		t.Errorf("Stack does not point at the panic site:\n%s", pe.Stack)
	}
	if len(ran) != 5 {
		t.Errorf("indices after the panic still ran: %v", ran)
	}
}

func TestPanicBecomesPanicErrorConcurrent(t *testing.T) {
	var started int32
	err := ForEach(context.Background(), 500, 4, func(ctx context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			panic(errors.New("wrapped cause"))
		}
		// Give the panicking worker time to cancel the pool so the claim
		// counter observably stops short of every index.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 0 {
		t.Errorf("Index = %d, want 0", pe.Index)
	}
	if cause, ok := pe.Value.(error); !ok || cause.Error() != "wrapped cause" {
		t.Errorf("Value = %v", pe.Value)
	}
	if n := atomic.LoadInt32(&started); n == 500 {
		t.Error("panic did not stop the pool from claiming every index")
	}
}

func TestPanicErrorMessageNamesIndex(t *testing.T) {
	e := &PanicError{Index: 12, Value: "boom", Stack: []byte("goroutine 9 ...")}
	msg := e.Error()
	for _, want := range []string{"task 12", "boom", "goroutine 9"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

// The contract pinned down by the ForEach doc comment: a cancellation that
// arrives after every index has completed stops nothing, so it is not an
// error. Before this was fixed, a parent canceled in the gap between the
// last completion and wg.Wait() could fail a fully-successful ForEach.
func TestCompletedWorkBeatsLateCancellation(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 64
		var done int32
		err := ForEach(ctx, n, jobs, func(_ context.Context, i int) error {
			if atomic.AddInt32(&done, 1) == n {
				cancel() // parent cancels just as the last index finishes
			}
			return nil
		})
		if err != nil {
			t.Errorf("jobs=%d: fully-completed run reported %v", jobs, err)
		}
		cancel()
	}
}

func TestPreCanceledContextStillFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEach(ctx, 8, 4, func(context.Context, int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	// Not every index can have completed under a dead context, so the
	// cancellation must surface.
	if atomic.LoadInt32(&ran) == 8 && err != nil {
		t.Skip("scheduler let every index run; contract says nil is fine then")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapPropagatesPanicError(t *testing.T) {
	_, err := Map(context.Background(), 4, 2, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			panic(i)
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v", err)
	}
}
