// Package info implements the information-theoretic primitives of Section 2.2
// of the Untangle paper: entropy, joint and conditional entropy, and mutual
// information over discrete distributions (Equations 2.1-2.4).
//
// All quantities are measured in bits (logarithms to base 2). Probabilities
// are plain float64 values; a Dist is a dense probability vector and a Joint
// is a dense matrix p(x, y). Zero-probability outcomes contribute zero to
// every sum, following the standard convention 0 log 0 = 0.
package info

import (
	"errors"
	"fmt"
	"math"
)

// Tolerance used when validating that probabilities sum to one.
const probSumTolerance = 1e-9

// ErrNotDistribution is returned when a probability vector is negative or
// does not sum to one within tolerance.
var ErrNotDistribution = errors.New("info: not a probability distribution")

// Log2 returns the base-2 logarithm of x. It exists so that all entropy code
// in the repository uses one definition, and so callers do not accidentally
// mix natural-log entropies with bit entropies.
func Log2(x float64) float64 { return math.Log2(x) }

// Dist is a dense probability distribution over outcomes 0..len-1.
type Dist []float64

// NewUniform returns the uniform distribution over n outcomes.
func NewUniform(n int) Dist {
	if n <= 0 {
		return nil
	}
	d := make(Dist, n)
	p := 1.0 / float64(n)
	for i := range d {
		d[i] = p
	}
	return d
}

// NewPoint returns the point-mass distribution over n outcomes that puts all
// probability on outcome i.
func NewPoint(n, i int) Dist {
	d := make(Dist, n)
	d[i] = 1
	return d
}

// Validate reports whether d is a well-formed probability distribution:
// every entry non-negative and the total within tolerance of one.
func (d Dist) Validate() error {
	sum := 0.0
	for i, p := range d {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w: entry %d is %v", ErrNotDistribution, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > probSumTolerance {
		return fmt.Errorf("%w: sums to %v", ErrNotDistribution, sum)
	}
	return nil
}

// Normalize scales d in place so it sums to one. It returns d for chaining.
// Normalizing an all-zero vector leaves it unchanged.
func (d Dist) Normalize() Dist {
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if sum <= 0 {
		return d
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// Clone returns a copy of d.
func (d Dist) Clone() Dist {
	c := make(Dist, len(d))
	copy(c, d)
	return c
}

// Entropy returns H(X) = -sum p(x) log2 p(x) (Equation 2.1), in bits.
func (d Dist) Entropy() float64 {
	h := 0.0
	for _, p := range d {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Entropy is a convenience wrapper over a raw probability slice.
func Entropy(p []float64) float64 { return Dist(p).Entropy() }

// EntropyOfCounts returns the empirical entropy of a histogram of counts.
// It is the entropy of the maximum-likelihood distribution counts/total.
func EntropyOfCounts(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	ft := float64(total)
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / ft
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Joint is a dense joint distribution p(x, y): Joint[x][y].
type Joint [][]float64

// NewJoint allocates an nx-by-ny zero joint distribution.
func NewJoint(nx, ny int) Joint {
	j := make(Joint, nx)
	cells := make([]float64, nx*ny)
	for i := range j {
		j[i], cells = cells[:ny], cells[ny:]
	}
	return j
}

// Validate reports whether j is a well-formed joint distribution.
func (j Joint) Validate() error {
	sum := 0.0
	for x, row := range j {
		for y, p := range row {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("%w: entry (%d,%d) is %v", ErrNotDistribution, x, y, p)
			}
			sum += p
		}
	}
	if math.Abs(sum-1) > probSumTolerance {
		return fmt.Errorf("%w: sums to %v", ErrNotDistribution, sum)
	}
	return nil
}

// MarginalX returns p(x) = sum_y p(x, y).
func (j Joint) MarginalX() Dist {
	d := make(Dist, len(j))
	for x, row := range j {
		for _, p := range row {
			d[x] += p
		}
	}
	return d
}

// MarginalY returns p(y) = sum_x p(x, y).
func (j Joint) MarginalY() Dist {
	if len(j) == 0 {
		return nil
	}
	d := make(Dist, len(j[0]))
	for _, row := range j {
		for y, p := range row {
			d[y] += p
		}
	}
	return d
}

// Entropy returns the joint entropy H(X, Y) (Equation 2.2), in bits.
func (j Joint) Entropy() float64 {
	h := 0.0
	for _, row := range j {
		for _, p := range row {
			if p > 0 {
				h -= p * math.Log2(p)
			}
		}
	}
	return h
}

// ConditionalXGivenY returns H(X|Y) (Equation 2.3), in bits.
func (j Joint) ConditionalXGivenY() float64 {
	return j.Entropy() - j.MarginalY().Entropy()
}

// ConditionalYGivenX returns H(Y|X), in bits.
func (j Joint) ConditionalYGivenX() float64 {
	return j.Entropy() - j.MarginalX().Entropy()
}

// MutualInformation returns I(X;Y) (Equation 2.4), in bits. It is computed
// as H(X) + H(Y) - H(X,Y), which is exactly Equation 2.4 rearranged and is
// numerically robust for sparse joints.
func (j Joint) MutualInformation() float64 {
	mi := j.MarginalX().Entropy() + j.MarginalY().Entropy() - j.Entropy()
	if mi < 0 && mi > -1e-12 {
		// Clamp tiny negative values caused by floating-point rounding;
		// mutual information is mathematically non-negative.
		mi = 0
	}
	return mi
}

// JointFromConditional builds p(x, y) = p(x) * p(y|x) from a prior over x and
// a conditional kernel where kernel[x] is the distribution of Y given X=x.
func JointFromConditional(px Dist, kernel []Dist) (Joint, error) {
	if len(px) != len(kernel) {
		return nil, fmt.Errorf("info: prior has %d outcomes but kernel has %d rows", len(px), len(kernel))
	}
	if len(kernel) == 0 {
		return nil, errors.New("info: empty kernel")
	}
	ny := len(kernel[0])
	j := NewJoint(len(px), ny)
	for x := range kernel {
		if len(kernel[x]) != ny {
			return nil, fmt.Errorf("info: kernel row %d has %d outcomes, want %d", x, len(kernel[x]), ny)
		}
		for y, pyx := range kernel[x] {
			j[x][y] = px[x] * pyx
		}
	}
	return j, nil
}

// KLDivergence returns D(p || q) in bits, or +Inf when p puts mass where q
// does not.
func KLDivergence(p, q Dist) float64 {
	if len(p) != len(q) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d
}
