package info

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyUniform(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 9, 16, 1000} {
		got := NewUniform(n).Entropy()
		want := math.Log2(float64(n))
		if !almostEqual(got, want, eps) {
			t.Errorf("H(uniform %d) = %v, want %v", n, got, want)
		}
	}
}

func TestEntropyPointMass(t *testing.T) {
	for _, n := range []int{1, 3, 10} {
		if h := NewPoint(n, n-1).Entropy(); h != 0 {
			t.Errorf("H(point mass over %d) = %v, want 0", n, h)
		}
	}
}

func TestEntropyPaperExampleSection51(t *testing.T) {
	// Figure 3: two equally likely action sequences leak H(S) = 1 bit.
	if h := Entropy([]float64{0.5, 0.5}); !almostEqual(h, 1, eps) {
		t.Errorf("H = %v, want 1", h)
	}
}

func TestEntropySection33Example(t *testing.T) {
	// Section 3.3: 1000 binary assessments, all traces equally likely,
	// leak log2(2^1000) = 1000 bits. We verify the per-assessment value.
	perAssessment := NewUniform(2).Entropy()
	if total := perAssessment * 1000; !almostEqual(total, 1000, eps) {
		t.Errorf("total = %v, want 1000", total)
	}
	// The Time scheme of the evaluation supports 9 actions: log2(9) = 3.17.
	if h := NewUniform(9).Entropy(); !almostEqual(h, math.Log2(9), eps) {
		t.Errorf("H(9 actions) = %v, want log2 9", h)
	}
}

func TestEntropyOfCounts(t *testing.T) {
	if h := EntropyOfCounts([]int{1, 1, 1, 1}); !almostEqual(h, 2, eps) {
		t.Errorf("H = %v, want 2", h)
	}
	if h := EntropyOfCounts([]int{5, 0, 0}); h != 0 {
		t.Errorf("H = %v, want 0", h)
	}
	if h := EntropyOfCounts(nil); h != 0 {
		t.Errorf("H(nil) = %v, want 0", h)
	}
}

func TestValidate(t *testing.T) {
	if err := (Dist{0.25, 0.75}).Validate(); err != nil {
		t.Errorf("valid dist rejected: %v", err)
	}
	if err := (Dist{0.5, 0.6}).Validate(); err == nil {
		t.Error("over-unit dist accepted")
	}
	if err := (Dist{-0.1, 1.1}).Validate(); err == nil {
		t.Error("negative dist accepted")
	}
	if err := (Dist{math.NaN(), 1}).Validate(); err == nil {
		t.Error("NaN dist accepted")
	}
}

func TestNormalize(t *testing.T) {
	d := Dist{2, 2, 4}.Normalize()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d[2], 0.5, eps) {
		t.Errorf("d[2] = %v, want 0.5", d[2])
	}
	z := Dist{0, 0}.Normalize()
	if z[0] != 0 || z[1] != 0 {
		t.Error("normalizing zero vector should be a no-op")
	}
}

func TestJointMarginalsAndChainRule(t *testing.T) {
	j := Joint{
		{0.125, 0.0625, 0.03125, 0.03125},
		{0.0625, 0.125, 0.03125, 0.03125},
		{0.0625, 0.0625, 0.0625, 0.0625},
		{0.25, 0, 0, 0},
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cover & Thomas example: H(X) = 7/4, H(Y) = 2, H(X|Y) = 11/8.
	if h := j.MarginalX().Entropy(); !almostEqual(h, 2, eps) {
		t.Errorf("H(X) = %v, want 2", h)
	}
	if h := j.MarginalY().Entropy(); !almostEqual(h, 1.75, eps) {
		t.Errorf("H(Y) = %v, want 7/4", h)
	}
	if h := j.ConditionalYGivenX(); !almostEqual(h, 11.0/8, eps) {
		t.Errorf("H(Y|X) = %v, want 11/8", h)
	}
	// Chain rule: H(X,Y) = H(X) + H(Y|X).
	if !almostEqual(j.Entropy(), j.MarginalX().Entropy()+j.ConditionalYGivenX(), eps) {
		t.Error("chain rule violated")
	}
	// I(X;Y) = H(Y) - H(Y|X) = 7/4 - 11/8 = 3/8.
	if mi := j.MutualInformation(); !almostEqual(mi, 0.375, eps) {
		t.Errorf("I(X;Y) = %v, want 3/8", mi)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	px := Dist{0.3, 0.7}
	py := Dist{0.2, 0.5, 0.3}
	j := NewJoint(2, 3)
	for x := range px {
		for y := range py {
			j[x][y] = px[x] * py[y]
		}
	}
	if mi := j.MutualInformation(); !almostEqual(mi, 0, 1e-12) {
		t.Errorf("I = %v for independent variables, want 0", mi)
	}
}

func TestJointFromConditional(t *testing.T) {
	px := Dist{0.5, 0.5}
	kernel := []Dist{{1, 0}, {0.5, 0.5}}
	j, err := JointFromConditional(px, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(j[1][1], 0.25, eps) {
		t.Errorf("j[1][1] = %v, want 0.25", j[1][1])
	}
	if _, err := JointFromConditional(px, kernel[:1]); err == nil {
		t.Error("mismatched kernel accepted")
	}
	if _, err := JointFromConditional(px, []Dist{{1, 0}, {1}}); err == nil {
		t.Error("ragged kernel accepted")
	}
}

func TestKLDivergence(t *testing.T) {
	p := Dist{0.5, 0.5}
	if d := KLDivergence(p, p); !almostEqual(d, 0, eps) {
		t.Errorf("D(p||p) = %v, want 0", d)
	}
	if d := KLDivergence(Dist{1, 0}, Dist{0, 1}); !math.IsInf(d, 1) {
		t.Errorf("D = %v, want +Inf", d)
	}
	if d := KLDivergence(Dist{1}, Dist{0.5, 0.5}); !math.IsInf(d, 1) {
		t.Errorf("mismatched lengths: D = %v, want +Inf", d)
	}
}

// randomDist builds a reproducible random distribution from fuzz input.
func randomDist(r *rand.Rand, n int) Dist {
	d := make(Dist, n)
	for i := range d {
		d[i] = r.Float64()
	}
	return d.Normalize()
}

func TestPropertyEntropyBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		d := randomDist(rand.New(rand.NewSource(seed)), n)
		h := d.Entropy()
		return h >= -eps && h <= math.Log2(float64(n))+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUniformMaximizesEntropy(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 2
		d := randomDist(rand.New(rand.NewSource(seed)), n)
		return d.Entropy() <= NewUniform(n).Entropy()+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyChainRule(t *testing.T) {
	// H(X,Y) = H(X) + H(Y|X) for arbitrary joints (Eq. 5.2 relies on this).
	f := func(seed int64, nxRaw, nyRaw uint8) bool {
		nx, ny := int(nxRaw%8)+1, int(nyRaw%8)+1
		r := rand.New(rand.NewSource(seed))
		j := NewJoint(nx, ny)
		sum := 0.0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				j[x][y] = r.Float64()
				sum += j[x][y]
			}
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				j[x][y] /= sum
			}
		}
		lhs := j.Entropy()
		rhs := j.MarginalX().Entropy() + j.ConditionalYGivenX()
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMutualInformationSymmetricNonNegative(t *testing.T) {
	f := func(seed int64, nxRaw, nyRaw uint8) bool {
		nx, ny := int(nxRaw%8)+1, int(nyRaw%8)+1
		r := rand.New(rand.NewSource(seed))
		j := NewJoint(nx, ny)
		sum := 0.0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				j[x][y] = r.Float64()
				sum += j[x][y]
			}
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				j[x][y] /= sum
			}
		}
		mi := j.MutualInformation()
		// Transpose for symmetry check.
		jt := NewJoint(ny, nx)
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				jt[y][x] = j[x][y]
			}
		}
		return mi >= 0 && almostEqual(mi, jt.MutualInformation(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKLNonNegative(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		r := rand.New(rand.NewSource(seed))
		p := randomDist(r, n)
		q := randomDist(r, n)
		for i := range q { // keep q strictly positive so KL is finite
			q[i] = (q[i] + 1e-6)
		}
		q.Normalize()
		return KLDivergence(p, q) >= -eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
