package experiments

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"regexp"
	"slices"
	"testing"

	"untangle/internal/checkpoint"
	"untangle/internal/faultinject"
	"untangle/internal/parallel"
)

// equalStudies compares two study outputs bit-for-bit. reflect.DeepEqual
// would be wrong here: tiny instruction budgets yield NaN IPC points, and
// NaN != NaN under DeepEqual even when the bit patterns are identical.
func equalStudies(a, b []SensitivityResult) bool {
	return slices.EqualFunc(a, b, func(x, y SensitivityResult) bool {
		return x.Name == y.Name &&
			x.Adequate == y.Adequate &&
			x.Sensitive == y.Sensitive &&
			slices.Equal(x.Sizes, y.Sizes) &&
			slices.EqualFunc(x.NormIPC, y.NormIPC, func(p, q float64) bool {
				return math.Float64bits(p) == math.Float64bits(q)
			})
	})
}

// Small enough that the full 36-benchmark study runs in well under a second,
// large enough that every pass streams multiple front-end chunks (so the
// chunk fault hook has somewhere to fire mid-pass).
const resilienceTestInstructions = 20_000

func TestParamsFingerprintStableAndShaped(t *testing.T) {
	a, b := ParamsFingerprint(), ParamsFingerprint()
	if a != b {
		t.Fatalf("not deterministic: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(a) {
		t.Fatalf("tag %q is not 16 hex digits", a)
	}
}

// A transient mid-pass fault costs one retry of that pass, and the retried
// study is bit-identical to an untroubled run — the simulations are pure
// functions of their configuration.
func TestTransientFaultRetriedBitIdentical(t *testing.T) {
	ctx := context.Background()
	baseline, err := SensitivityStudyCheckpointed(ctx, resilienceTestInstructions, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// One injected failure partway into some pass's chunk stream.
	inj := faultinject.ErrorAt(7, 1, nil)
	SetEngineChunkHook(inj.Fire)
	defer SetEngineChunkHook(nil)
	faulted, err := SensitivityStudyCheckpointed(ctx, resilienceTestInstructions, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Calls() == 0 {
		t.Fatal("fault hook never ran — the test is vacuous")
	}
	if !equalStudies(baseline, faulted) {
		t.Error("retried study differs from the no-fault run")
	}
}

// A persistent fault exhausts the retry budget and surfaces as an error
// instead of wedging the campaign.
func TestPersistentFaultExhaustsRetries(t *testing.T) {
	inj := faultinject.ErrorAt(1, ^uint64(0), nil) // every call fails
	SetEngineChunkHook(inj.Fire)
	defer SetEngineChunkHook(nil)
	_, err := SensitivityStudyCheckpointed(context.Background(), resilienceTestInstructions, 1, nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if n := inj.Calls(); n != RetryAttempts {
		t.Errorf("fault hook ran %d times, want one per attempt (%d)", n, RetryAttempts)
	}
}

// A panic inside an engine pass is recovered into a *PanicError naming the
// failing benchmark index; the process survives and the panic is not retried.
func TestPanicInEngineSurfacesAsPanicError(t *testing.T) {
	// The engine fires the hook at least twice per pass (once per chunk plus
	// the end-of-stream check), so call 2 is guaranteed to land inside the
	// first benchmark's pass.
	inj := faultinject.PanicAt(2, "corrupted lane state")
	SetEngineChunkHook(inj.Fire)
	defer SetEngineChunkHook(nil)
	_, err := SensitivityStudyCheckpointed(context.Background(), resilienceTestInstructions, 1, nil)
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *parallel.PanicError", err, err)
	}
	if pe.Index != 0 {
		t.Errorf("Index = %d, want 0 (call 2 lands in the first benchmark's pass)", pe.Index)
	}
	if pe.Value != "corrupted lane state" {
		t.Errorf("Value = %v", pe.Value)
	}
}

// Kill the study partway, resume from the journal, and require the resumed
// results to equal an uninterrupted run's — including the replayed units.
func TestStudyCheckpointResume(t *testing.T) {
	fresh, err := SensitivityStudyCheckpointed(context.Background(), resilienceTestInstructions, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	fp := checkpoint.Fingerprint{
		Instructions: resilienceTestInstructions,
		Units:        "sensitivity",
		ParamsTag:    ParamsFingerprint(),
	}
	path := filepath.Join(t.TempDir(), "study.ckpt")
	j, err := checkpoint.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash" mid-campaign: cancel the context partway into the pass stream.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultinject.CancelAt(40, cancel)
	SetEngineChunkHook(inj.Fire)
	_, err = SensitivityStudyCheckpointed(ctx, resilienceTestInstructions, 1, j)
	SetEngineChunkHook(nil)
	if err == nil {
		t.Fatal("interrupted study reported success")
	}
	j.Close()

	j2, err := checkpoint.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() == 0 {
		t.Fatal("interruption journaled nothing — the resume path is untested")
	}
	if j2.Resumed() == 36 {
		t.Fatal("interruption journaled everything — the recompute path is untested")
	}
	resumed, err := SensitivityStudyCheckpointed(context.Background(), resilienceTestInstructions, 1, j2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStudies(fresh, resumed) {
		t.Error("resumed study differs from the uninterrupted run")
	}
	if j2.Len() != 36 {
		t.Errorf("journal holds %d units after resume, want all 36", j2.Len())
	}
}
