package experiments

import (
	"math"
	"reflect"
	"testing"

	"untangle/internal/partition"
	"untangle/internal/workload"
)

// The experiment engine's central promise: results do not depend on the
// worker-pool size. Every test here runs the same experiment at -jobs 1
// (the legacy sequential path, which spawns no goroutines) and -jobs 4 and
// requires the outputs to be deeply equal — not merely close. Run them
// under -race to also cover the pool's synchronization.

func TestRunMixParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full mix simulation; skipped in -short mode")
	}
	mix, err := workload.MixByID(1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunMix(mix, Options{Scale: testScale, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMix(mix, Options{Scale: testScale, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.PerScheme) != len(seq.PerScheme) {
		t.Fatalf("parallel ran %d schemes, sequential %d", len(par.PerScheme), len(seq.PerScheme))
	}
	for _, kind := range []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle, partition.Shared} {
		if !reflect.DeepEqual(par.PerScheme[kind], seq.PerScheme[kind]) {
			t.Errorf("%v: parallel result differs from sequential", kind)
		}
	}
}

func TestReplicateParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed mix simulation; skipped in -short mode")
	}
	mix, err := workload.MixByID(1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{1, 7, 42}
	seq, err := Replicate(mix, Options{Scale: testScale, Jobs: 1}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Replicate(mix, Options{Scale: testScale, Jobs: 4}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel replication differs from sequential:\npar %+v\nseq %+v", par, seq)
	}
}

func TestSensitivityStudyParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("36-benchmark sensitivity study; skipped in -short mode")
	}
	// Low fidelity: the property under test is jobs-independence, not the
	// classification itself, and it must hold at any instruction count.
	const instructions = 100_000
	seq, err := SensitivityStudy(instructions, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SensitivityStudy(instructions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !studiesEqual(par, seq) {
		t.Error("parallel sensitivity study differs from sequential")
	}
}

// studiesEqual is bitwise equality over study results. reflect.DeepEqual
// is unusable here: at the low fidelity these tests run, some points retire
// nothing measurable and normalize to NaN, and DeepEqual declares NaN
// unequal to itself even when both runs are bit-identical.
func studiesEqual(a, b []SensitivityResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Name != y.Name || x.Adequate != y.Adequate || x.Sensitive != y.Sensitive {
			return false
		}
		if !reflect.DeepEqual(x.Sizes, y.Sizes) || len(x.NormIPC) != len(y.NormIPC) {
			return false
		}
		for j := range x.NormIPC {
			if math.Float64bits(x.NormIPC[j]) != math.Float64bits(y.NormIPC[j]) {
				return false
			}
		}
	}
	return true
}

func TestClassifyStudyParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("36-benchmark classify study; skipped in -short mode")
	}
	const instructions = 100_000
	seq, err := ClassifyStudy(instructions, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ClassifyStudy(instructions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !studiesEqual(par, seq) {
		t.Error("parallel classify study differs from sequential")
	}
}

// Classify ≡ Sensitivity (same multi-lane pass, full curve) is pinned
// bitwise by TestClassifyMatchesSensitivity in multilane_test.go.
