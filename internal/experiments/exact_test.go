package experiments

import (
	"testing"
	"time"

	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/workload"
)

func exactConfig(kind partition.Kind, annotated bool, victim func(uint64) isa.Stream) ExactConfig {
	scheme := partition.DefaultScheme(kind)
	scheme.Annotated = annotated
	return ExactConfig{
		Scheme:             scheme,
		Scale:              0.003,
		Secrets:            []uint64{0, 1, 2, 3},
		Victim:             victim,
		PublicInstructions: 600_000,
		TimeQuantum:        time.Duration(float64(time.Microsecond)),
	}
}

// figure1aVictim treats the secret's low bit as the Figure 1a gate.
func figure1aVictim(secret uint64) isa.Stream {
	return workload.Figure1a(secret&1 == 1, true)
}

// figure1cVictim delays by secret-many spin blocks before the public
// traversal.
func figure1cVictim(secret uint64) isa.Stream {
	return workload.Figure1c(secret != 0, true, 100_000*secret)
}

func TestExactValidation(t *testing.T) {
	if _, err := ExactLeakage(ExactConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := ExactLeakage(ExactConfig{Secrets: []uint64{1}}); err == nil {
		t.Error("missing victim accepted")
	}
}

func TestExactUntangleActionLeakageIsZero(t *testing.T) {
	// The paper's headline security theorem, verified by exhaustive
	// enumeration: annotated Untangle has EXACTLY zero action leakage for
	// Figure 1a across all secrets.
	res, err := ExactLeakage(exactConfig(partition.Untangle, true, figure1aVictim))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("exact action leakage = %v bits, want 0", res.Action)
	}
	// And the runtime accountant's charge covers the exact total leakage.
	if res.ChargedBits < res.Total {
		t.Errorf("accountant charged %v bits but exact leakage is %v", res.ChargedBits, res.Total)
	}
}

func TestExactFigure1cIsPureSchedulingLeakage(t *testing.T) {
	res, err := ExactLeakage(exactConfig(partition.Untangle, true, figure1cVictim))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("action leakage = %v, want 0 (the traversal is public)", res.Action)
	}
	if res.Scheduling <= 0 {
		t.Error("Figure 1c should exhibit scheduling leakage (timing varies with the secret)")
	}
	if res.ChargedBits < res.Total {
		t.Errorf("accountant charged %v < exact %v", res.ChargedBits, res.Total)
	}
	// Four distinct delays -> up to four distinct traces.
	if res.TraceCount < 2 {
		t.Errorf("trace count = %d; the secret delay should produce distinct timings", res.TraceCount)
	}
}

func TestExactUnannotatedLeaksActions(t *testing.T) {
	res, err := ExactLeakage(exactConfig(partition.Untangle, false, figure1aVictim))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action <= 0 {
		t.Error("unannotated Untangle should show action leakage for Figure 1a")
	}
	// With the binary gate and a uniform 4-value secret (two even, two
	// odd), the action entropy is at most 1 bit.
	if res.Action > 1+1e-9 {
		t.Errorf("action leakage = %v bits, expected at most 1 for a binary gate", res.Action)
	}
}

func TestExactTimeSchemeLeaksActions(t *testing.T) {
	res, err := ExactLeakage(exactConfig(partition.TimeBased, false, figure1aVictim))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action <= 0 {
		t.Error("Time baseline should show action leakage for Figure 1a")
	}
}

func TestExactDecompositionIdentity(t *testing.T) {
	res, err := ExactLeakage(exactConfig(partition.Untangle, true, figure1cVictim))
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Total - (res.Action + res.Scheduling); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("decomposition identity violated: %v != %v + %v", res.Total, res.Action, res.Scheduling)
	}
}
