package experiments

import (
	"fmt"

	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/stats"
	"untangle/internal/workload"
)

// The adaptation experiment: the Section 1 motivation for dynamic
// partitioning, made measurable. A bursty workload alternates between a
// small and a large footprint while co-running with steady neighbours; a
// static partition is wrong in one phase or the other, while a dynamic
// scheme tracks the swing. The experiment reports the bursty workload's IPC
// under each scheme and the partition-size swing the dynamic schemes
// produce.

// AdaptationResult summarizes one scheme's behaviour.
type AdaptationResult struct {
	Kind partition.Kind
	// BurstyIPC is the phase-changing workload's IPC.
	BurstyIPC float64
	// SystemIPCGeomean is the geometric mean over all domains.
	SystemIPCGeomean float64
	// PartitionSwing is max-min of the bursty domain's sampled partition
	// sizes (0 for Static, positive when the scheme adapts).
	PartitionSwing int64
	// LeakagePerAssessment is the bursty domain's average charge.
	LeakagePerAssessment float64
}

// Adaptation runs the bursty scenario under the given schemes.
func Adaptation(scale float64, total uint64, kinds ...partition.Kind) ([]AdaptationResult, error) {
	if len(kinds) == 0 {
		kinds = []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle}
	}
	var out []AdaptationResult
	for _, kind := range kinds {
		cfg := sim.Scaled(partition.DefaultScheme(kind), scale)
		specs, err := adaptationDomains(scale, total)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, specs)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		r := AdaptationResult{Kind: kind}
		ipcs := make([]float64, 0, len(res.Domains))
		for i, d := range res.Domains {
			ipcs = append(ipcs, d.IPC)
			if i == 0 {
				r.BurstyIPC = d.IPC
				r.LeakagePerAssessment = d.Leakage.PerAssessment()
				var lo, hi int64
				for j, sz := range d.PartitionSamples {
					if j == 0 || sz < lo {
						lo = sz
					}
					if sz > hi {
						hi = sz
					}
				}
				r.PartitionSwing = hi - lo
			}
		}
		r.SystemIPCGeomean = stats.GeoMean(ipcs)
		out = append(out, r)
	}
	return out, nil
}

// adaptationDomains builds the bursty victim plus three steady co-runners.
func adaptationDomains(scale float64, total uint64) ([]sim.DomainSpec, error) {
	phaseLen := uint64(float64(4_000_000) * scale)
	if phaseLen < 20_000 {
		phaseLen = 20_000
	}
	bursty, burstyParams, err := workload.BurstyWorkload(77, 6, phaseLen)
	if err != nil {
		return nil, err
	}
	specs := []sim.DomainSpec{{
		Name:   "bursty",
		Stream: isa.NewLimited(bursty, total),
		CPU:    burstyParams.CPUParams(),
	}}
	for i, name := range []string{"imagick_0", "deepsjeng_0", "xz_0"} {
		p, err := workload.SPECByName(name)
		if err != nil {
			return nil, err
		}
		g, err := workload.NewGenerator(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sim.DomainSpec{
			Name:   fmt.Sprintf("steady-%d-%s", i, name),
			Stream: isa.NewLimited(g, total),
			CPU:    p.CPUParams(),
		})
	}
	return specs, nil
}
