// The evaluation's observability seam. The experiments package must not
// import internal/obs (obs depends on checkpoint and telemetry; experiments
// is the layer commands compose with obs), so campaign progress flows out
// through a process-wide observer hook instead — the same atomic.Pointer
// pattern as the engine-chunk fault hook in multilane.go. Commands install
// obs.Campaign.Unit when any observability surface is enabled; when nothing
// is installed, ObserveUnit costs one atomic load and returns nil.
package experiments

import "sync/atomic"

// Unit outcomes, reported to the completion callback. The parameter is a
// plain (unnamed) string so obs.Campaign.Unit stays structurally assignable
// to UnitObserver without either package importing the other; obs defines
// the same three values independently.
const (
	// UnitGenerated is the ordinary outcome: the unit's work actually ran.
	UnitGenerated = ""
	// UnitResumed means the unit was replayed from a checkpoint journal —
	// no engine work at all.
	UnitResumed = "resumed"
	// UnitReplayed means the unit's front-end stream was replayed from the
	// persisted trace cache: the LLC lanes ran, the generator and L1 did
	// not. Like resumed units, replayed units complete far faster than
	// generated ones and must not feed ETA rate estimates.
	UnitReplayed = "replayed"
	// UnitDead means the unit exhausted its retry budget (or panicked) and
	// was written to the dead-letter journal instead of failing the
	// campaign. Dead units count as done for progress purposes — the
	// campaign will not run them again — but, like resumed units, must not
	// feed ETA rate estimates.
	UnitDead = "dead"
)

// UnitObserver is notified when a unit of campaign work (a sensitivity
// benchmark, a mix) begins. It returns the completion callback, invoked
// exactly once with the unit's outcome (UnitGenerated, UnitResumed, or
// UnitReplayed) and the error it ended with. Phases whose name contains '/'
// (for example "sensitivity/pass") are sub-unit work: traced but not
// counted toward campaign progress. A nil completion callback is valid and
// means "not observed".
type UnitObserver func(phase, unit string) func(outcome string, err error)

var unitObserver atomic.Pointer[UnitObserver]

// SetUnitObserver installs (or with nil clears) the process-wide unit
// observer. Campaign commands call it once at startup; tests may swap it
// around individual runs. Not synchronized with in-flight units beyond the
// atomic swap — install before the campaign starts.
func SetUnitObserver(o UnitObserver) {
	if o == nil {
		unitObserver.Store(nil)
		return
	}
	unitObserver.Store(&o)
}

// ObserveUnit notifies the installed observer that a unit began, returning
// its completion callback, or nil when unobserved. Callers must tolerate a
// nil return:
//
//	done := ObserveUnit("sensitivity", key)
//	...
//	if done != nil {
//		done(outcome, err)
//	}
func ObserveUnit(phase, unit string) func(outcome string, err error) {
	p := unitObserver.Load()
	if p == nil {
		return nil
	}
	return (*p)(phase, unit)
}

// UnitFaultHook is the per-unit fault seam behind the dead-letter tests: it
// receives a unit's journal key ("sens/mcf_0", "mix/3") at the start of
// every retried attempt and may return an error to poison that attempt. A
// keyed injector (faultinject.KeyedError) installed here makes one chosen
// unit fail every attempt — exhausting the bounded retry — while its
// siblings run untouched, which is exactly the shape a dead-letter journal
// must absorb. Same atomic.Pointer pattern as the unit observer; release
// builds pay one atomic load when no hook is installed.
type UnitFaultHook func(key string) error

var unitFaultHook atomic.Pointer[UnitFaultHook]

// SetUnitFaultHook installs (or with nil clears) the process-wide unit
// fault hook. Tests install it before the campaign starts and clear it
// (and must clear it) when done.
func SetUnitFaultHook(h UnitFaultHook) {
	if h == nil {
		unitFaultHook.Store(nil)
		return
	}
	unitFaultHook.Store(&h)
}

// FireUnitFault invokes the installed hook for one attempt at the unit with
// the given journal key, returning its verdict (nil when no hook is
// installed).
func FireUnitFault(key string) error {
	p := unitFaultHook.Load()
	if p == nil {
		return nil
	}
	return (*p)(key)
}
