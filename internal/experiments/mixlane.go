// The fused mix engine: one front-end pass per mix serving all four
// scheme back-ends of the Figure 10 / Table 6 pipeline.
//
// Within one mix, the four RunMixContext simulations (Shared, Static,
// Time, Untangle) differ only below the shared LLC: partition backend,
// monitor windows, partition controller, accountant. Everything upstream
// is byte-identical across them — the generators (same parameters and
// seeds), the address-space offsets, the private L1s, and even the
// monitor's eligibility gate (annotation filter + the monitor's own
// L1-sized filter cache, both pure functions of the op stream because
// Scheme.Annotated is uniform across the four kinds). The engine therefore
// runs each domain's front-end once — workload generator + private L1,
// including the Seed+=0xA5A5 pressure variant — tees the post-L1 stream
// through isa.Chunks into an in-memory tape of rich tracecache events
// (hit/miss resolution, write bit, monitor and public-progress gates, L1
// eviction/writeback counts), and replays the tape into four scheme lanes.
//
// Unlike the sensitivity engine's lean cache.Lane replay, a mix lane is a
// full sim.Sim: the same quantum machine, partition controller, monitor,
// accountant, and telemetry paths as the live run, fed through the
// sim.ReplaySource seam (DomainSpec.Replay) so cross-domain interleaving,
// dynamic resizes, and leakage accounting reproduce the per-scheme oracle
// bitwise — runMixOracle is retained, and TestMixFusionMatchesOracle
// requires IPCs, leakage, Table 6 rows, and telemetry buffers to match
// exactly, cold and fe-cache-warm.
//
// With a front-end cache attached (SetFrontEndCache; -fe-cache on
// cmd/experiments), each domain's tape is persisted as a rich .fetrace
// entry: the measured stream, a KindMeasuredEnd marker, then a pressure
// tail sized to what the slowest lane actually consumed plus slack. Warm
// runs decode the entry instead of generating. The pressure tail is the
// one stored quantity whose needed length depends on the scheme mix — a
// warm run that drains it (a lane kept a domain alive longer than the
// recorded run did) discards its results, deletes the short entries, and
// regenerates them cold; see runMixFused.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"untangle/internal/cache"
	"untangle/internal/isa"
	"untangle/internal/monitor"
	"untangle/internal/parallel"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// mixReplayEventBudget caps the events one mix's tapes may hold in memory
// (all eight domains together, measured plus pressure). Past it the fused
// path steps aside and the mix runs on the per-scheme oracle; the first
// over-budget scale is remembered so later mixes of the same campaign skip
// straight to the oracle instead of rediscovering the limit mid-run.
const mixReplayEventBudget = 64 << 20

// mixFusionMaxRestarts bounds the underrun-regeneration loop: each restart
// forces at least one more domain cold, so eight always suffice.
const mixFusionMaxRestarts = 8

// Sentinel conditions the fused engine resolves itself (oracle fallback or
// cold regeneration) when no telemetry sinks are attached, and surfaces as
// retryable errors when they are — a retry with fresh sinks (parallel.Retry
// in runMixUnit provides exactly that) takes the recovery path cleanly.
var (
	errMixOverBudget     = errors.New("experiments: fused mix tape exceeds the replay memory budget")
	errMixReplayUnderrun = errors.New("experiments: fused mix replay drained a cached pressure tail; short entries removed, retry regenerates them")
)

// mixOverBudgetScaleBits remembers (as math.Float64bits) the smallest scale
// whose tape overran mixReplayEventBudget in this process; zero means none.
var mixOverBudgetScaleBits atomic.Uint64

func noteMixOverBudget(scale float64) {
	bits := math.Float64bits(scale)
	for {
		cur := mixOverBudgetScaleBits.Load()
		if cur != 0 && math.Float64frombits(cur) <= scale {
			return
		}
		if mixOverBudgetScaleBits.CompareAndSwap(cur, bits) {
			return
		}
	}
}

func mixScaleOverBudget(scale float64) bool {
	cur := mixOverBudgetScaleBits.Load()
	return cur != 0 && scale >= math.Float64frombits(cur)
}

// mixStreamKey is the trace-cache identity of one mix domain's front-end
// stream: the pair, the domain slot (the address-space offset hashes into
// L1 set selection, so the same pair behaves differently per slot), the
// scaled phase lengths and total, the secret, and the annotation switch
// (both gates are baked into the recorded flags). The variant fields also
// suffix the benchmark name so every distinct key gets a distinct file.
func mixStreamKey(pair workload.Pair, idx int, scale float64, secret uint64, annotated bool, l1Bytes int64, l1Ways int) tracecache.Key {
	name := fmt.Sprintf("mix-%s-d%d", pair.String(), idx)
	if secret != 0 {
		name += fmt.Sprintf("-s%x", secret)
	}
	if !annotated {
		name += "-noannot"
	}
	return tracecache.Key{
		Benchmark:    name,
		Instructions: scaleCount(fullTotal, scale),
		L1Bytes:      l1Bytes,
		L1Ways:       l1Ways,
		ParamsTag:    cachedParamsTag(),
		Flavor:       "mix",
		Domain:       idx,
		CryptoPhase:  scaleCount(fullCryptoPhase, scale),
		SpecPhase:    scaleCount(fullSPECPhase, scale),
		Secret:       secret,
		Unannotated:  !annotated,
	}
}

// mixCheckpoint is the front-end's per-chunk control point: context
// cancellation plus the engine fault-injection hook, the same cadence as
// the sensitivity engine's checkpoint so kill-and-resume tests can land a
// fault inside a mix front-end pass.
func mixCheckpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if h := engineChunkHook.Load(); h != nil {
		if err := (*h)(); err != nil {
			return err
		}
	}
	return nil
}

// mixFrontEnd is one domain's live front-end: the measured stream, the
// endless pressure stream (both via isa.Chunks), and the two private
// caches whose outcomes the events record — the real L1 and the monitor's
// own filter cache, simulated here once because its state is a pure
// function of the public access sequence (Principle 1) and therefore
// lane-independent.
type mixFrontEnd struct {
	ctx       context.Context
	measured  *isa.Chunks // nil once drained
	pressure  *isa.Chunks
	l1        *cache.Cache
	monL1     *cache.Cache
	rec       *monitor.Monitor // shadow-array recorder; see resolve
	offset    uint64
	annotated bool
	budget    *atomic.Int64
}

// resolve turns one op into the rich event the scheme lanes replay. Every
// decision a lane would otherwise make upstream of its LLC is folded into
// the kind and flags, in exactly sim.runDomainUntil's order and with its
// gates.
func (fe *mixFrontEnd) resolve(op isa.Op) feEvent {
	ev := feEvent{NonMem: op.NonMem}
	if !op.SecretProgress() || !fe.annotated {
		ev.Flags |= tracecache.FlagPublic
	}
	if op.IsMem() {
		addr := op.Addr + fe.offset
		write := op.IsWrite()
		if write {
			ev.Flags |= tracecache.FlagWrite
		}
		before := fe.l1.Stats()
		if fe.l1.Access(addr, write) {
			ev.Kind = tracecache.KindL1Hit
		} else {
			ev.Kind = tracecache.KindL1Miss
			ev.Addr = addr
			after := fe.l1.Stats()
			if after.Evictions != before.Evictions {
				ev.Flags |= tracecache.FlagL1Evict
			}
			if after.Writebacks != before.Writebacks {
				ev.Flags |= tracecache.FlagL1Writeback
			}
		}
		if (!op.SecretUse() || !fe.annotated) && !fe.monL1.Access(addr, write) {
			ev.Flags |= tracecache.FlagMonObserve
			ev.Addr = addr
			// The shadow-array resolution is as scheme-independent as the
			// gate itself: record the per-size hit vector once so dynamic
			// lanes replay it instead of re-simulating nine shadow caches.
			ev.MonMask = fe.rec.HitMask(addr, write)
		}
	}
	return ev
}

// mixTape is one domain's shared event tape. Chunks are immutable once
// published; a live tape (fe != nil) extends lazily under mu when the
// leading lane outruns what exists, a sealed tape (decoded from the cache)
// never grows. measured marks the boundary between the measured stream and
// the pressure tail.
type mixTape struct {
	mu           sync.Mutex
	chunks       [][]feEvent
	total        int
	measured     int
	haveMeasured bool
	fe           *mixFrontEnd
	err          error
	cold         bool // generated this run (candidate for persisting)
}

// fail seals the tape with an error; every lane's source sees it drained.
func (t *mixTape) fail(err error) {
	t.err = err
	t.fe = nil
}

// produce extends the tape by one chunk (caller holds mu): the next batch
// of the measured stream, or — once it drains, recording the boundary —
// the pressure stream.
func (t *mixTape) produce() {
	fe := t.fe
	if err := mixCheckpoint(fe.ctx); err != nil {
		t.fail(err)
		return
	}
	var ops []isa.Op
	if fe.measured != nil {
		ops = fe.measured.Next()
		if len(ops) == 0 {
			fe.measured = nil
			t.measured = t.total
			t.haveMeasured = true
			return
		}
	} else {
		ops = fe.pressure.Next()
		if len(ops) == 0 {
			t.fail(errors.New("experiments: mix pressure stream dried"))
			return
		}
	}
	chunk := make([]feEvent, len(ops))
	for i, op := range ops {
		chunk[i] = fe.resolve(op)
	}
	t.chunks = append(t.chunks, chunk)
	t.total += len(chunk)
	if fe.budget.Add(int64(len(chunk))) > mixReplayEventBudget {
		t.fail(errMixOverBudget)
	}
}

// mixSource is one lane's private cursor over a tape; it implements
// sim.ReplaySource. Sources snapshot the tape's published state and only
// take the lock to pull more, so concurrent lanes replay lock-free over
// the immutable prefix.
type mixSource struct {
	t            *mixTape
	chunks       [][]feEvent
	total        int
	measured     int
	haveMeasured bool
	ci, off      int // cursor within the chunk snapshot
	pos          int // global event position
	sentEnd      bool
	underrun     bool
}

// NextEvents implements sim.ReplaySource: batches up to the measured-end
// boundary (delivered as one empty batch, the driver's finish signal),
// then pressure batches. A sealed tape that drains while the lane still
// wants events marks the source underrun — the recorded pressure tail was
// shorter than this scheme mix needs — and idles the lane out; the engine
// discards the attempt and regenerates.
func (s *mixSource) NextEvents() []feEvent {
	for {
		if s.haveMeasured && !s.sentEnd && s.pos == s.measured {
			s.sentEnd = true
			return nil
		}
		if s.pos >= s.total {
			if !s.refresh() {
				s.underrun = true
				return nil
			}
			continue
		}
		chunk := s.chunks[s.ci]
		if s.off >= len(chunk) {
			s.ci++
			s.off = 0
			continue
		}
		end := len(chunk)
		if s.haveMeasured && !s.sentEnd && s.measured < s.pos+(end-s.off) {
			end = s.off + (s.measured - s.pos)
		}
		batch := chunk[s.off:end]
		s.off = end
		s.pos += len(batch)
		return batch
	}
}

// refresh re-snapshots the tape, extending it first if it is live and the
// cursor has caught up. False means nothing more will come.
func (s *mixSource) refresh() bool {
	t := s.t
	t.mu.Lock()
	for s.pos >= t.total && t.fe != nil && t.err == nil {
		t.produce()
	}
	s.chunks = t.chunks
	s.total = t.total
	s.measured = t.measured
	s.haveMeasured = t.haveMeasured
	t.mu.Unlock()
	return s.pos < s.total || (s.haveMeasured && !s.sentEnd && s.pos == s.measured)
}

// mixDomain is the per-domain front-end description shared by every lane.
type mixDomain struct {
	spec sim.DomainSpec // Stream/Pressure drive the front-end; Name/CPU the lanes
	key  tracecache.Key
}

// mixMonitorConfig is the monitor configuration every dynamic lane of this
// mix uses — scheme-independent by construction (sim.Scaled varies only
// SchemeConfig across kinds), which is what lets one recorder serve them
// all. Window/Buckets are irrelevant to HitMask but keep New happy.
func mixMonitorConfig(opts Options, scale float64) monitor.Config {
	geom := sim.Scaled(partition.DefaultScheme(partition.Static), scale)
	sizes := geom.Sizes
	if opts.WayPartitioned {
		sizes = geom.WaySizes()
	}
	return monitor.Config{
		Sizes:      sizes,
		Ways:       geom.LLCWays,
		Window:     geom.MonitorWindow,
		SampleLog2: geom.MonitorSampleLog2,
	}
}

// annotateMonMasks replays a decoded tape's observed accesses through a
// fresh recorder, restoring the in-memory MonMask annotation the cache
// never stores. One shadow pass per warm domain, instead of one per
// dynamic lane.
func annotateMonMasks(t *mixTape, rec *monitor.Monitor) {
	for _, chunk := range t.chunks {
		for j := range chunk {
			if chunk[j].Flags&tracecache.FlagMonObserve != 0 {
				chunk[j].MonMask = rec.HitMask(chunk[j].Addr, chunk[j].Flags&tracecache.FlagWrite != 0)
			}
		}
	}
}

// runMixFused is RunMixContext's fused path. ok=false means the mix is
// ineligible (tape over the memory budget) and the caller should run the
// per-scheme oracle; it is only returned before any lane has emitted
// telemetry, or when no sinks are attached, so falling back never
// duplicates events. Errors from the sentinel conditions above are
// retryable: the recovery (cold regeneration, oracle fallback) engages on
// the next attempt.
func runMixFused(ctx context.Context, mix workload.Mix, opts Options) (*MixResult, bool, error) {
	scale := opts.scale()
	if mixScaleOverBudget(scale) {
		return nil, false, nil
	}
	st := FrontEndCache()
	annotated := !opts.DisableAnnotations
	// The L1 geometry every lane uses (scheme-independent, never scaled).
	geom := sim.Scaled(partition.DefaultScheme(partition.Static), scale)

	specs, err := BuildDomains(mix, scale, opts.Secret)
	if err != nil {
		return nil, false, err
	}
	domains := make([]mixDomain, len(specs))
	for i, spec := range specs {
		domains[i] = mixDomain{
			spec: spec,
			key:  mixStreamKey(mix.Pairs[i], i, scale, opts.Secret, annotated, geom.L1Bytes, geom.L1Ways),
		}
	}

	// With telemetry or metrics sinks attached, a discarded attempt has
	// already emitted into them; recovery then needs fresh sinks, so it is
	// surfaced as a retryable error instead of restarting in place.
	canRestart := opts.TracerFor == nil && opts.MetricsFor == nil

	forceCold := make([]bool, len(domains))
	for attempt := 0; ; attempt++ {
		res, retry, ok, err := runMixFusedOnce(ctx, mix, opts, domains, forceCold, st, specs, scale)
		if err != nil || !ok || !retry {
			return res, ok, err
		}
		// retry: underrun entries were removed and their domains forced
		// cold; rebuild the consumed front-end streams and go again.
		if !canRestart {
			return nil, true, errMixReplayUnderrun
		}
		if attempt >= mixFusionMaxRestarts {
			return nil, true, fmt.Errorf("experiments: mix %d fused replay did not converge after %d regenerations", mix.ID, attempt)
		}
		if specs, err = BuildDomains(mix, scale, opts.Secret); err != nil {
			return nil, false, err
		}
	}
}

// runMixFusedOnce runs one fused attempt. retry=true asks the caller to
// regenerate (underrun entries already removed, forceCold updated);
// ok=false routes to the oracle.
func runMixFusedOnce(ctx context.Context, mix workload.Mix, opts Options, domains []mixDomain, forceCold []bool, st *tracecache.Store, specs []sim.DomainSpec, scale float64) (*MixResult, bool, bool, error) {
	budget := &atomic.Int64{}
	monCfg := mixMonitorConfig(opts, scale)
	tapes := make([]*mixTape, len(domains))
	for i := range domains {
		t, ok, err := openMixTape(ctx, st, domains[i].key, budget, forceCold[i], scale)
		if err != nil {
			return nil, false, false, err
		}
		if !ok {
			return nil, false, false, nil // over budget: oracle
		}
		rec, err := monitor.New(monCfg)
		if err != nil {
			return nil, false, false, err
		}
		if t == nil {
			t = &mixTape{cold: true, fe: &mixFrontEnd{
				ctx:       ctx,
				measured:  isa.NewChunks(specs[i].Stream, laneChunk),
				pressure:  isa.NewChunks(specs[i].Pressure, laneChunk),
				rec:       rec,
				offset:    sim.DomainAddrOffset(i),
				annotated: !opts.DisableAnnotations,
				budget:    budget,
			}}
			geom := cache.Config{SizeBytes: domains[i].key.L1Bytes, Ways: domains[i].key.L1Ways}
			if t.fe.l1, err = cache.New(geom); err != nil {
				return nil, false, false, err
			}
			if t.fe.monL1, err = cache.New(geom); err != nil {
				return nil, false, false, err
			}
		} else {
			annotateMonMasks(t, rec)
		}
		tapes[i] = t
	}

	res := &MixResult{Mix: mix, Scale: scale, PerScheme: map[partition.Kind]*sim.Result{}}
	kinds := opts.kinds()
	sources := make([][]*mixSource, len(kinds))
	for i := range kinds {
		sources[i] = make([]*mixSource, len(domains))
		for d, t := range tapes {
			sources[i][d] = &mixSource{t: t}
		}
	}
	results, err := parallel.Map(ctx, len(kinds), opts.Jobs, func(_ context.Context, i int) (*sim.Result, error) {
		kind := kinds[i]
		scheme := partition.DefaultScheme(kind)
		scheme.Annotated = !opts.DisableAnnotations
		cfg := sim.Scaled(scheme, res.Scale)
		cfg.OptimizeMaintain = !opts.WorstCaseAccounting
		cfg.Budget = opts.Budget
		if opts.WayPartitioned {
			cfg.WayPartitioned = true
			cfg.Sizes = cfg.WaySizes()
		}
		if opts.SimSeed != 0 {
			cfg.Seed = opts.SimSeed
		}
		if opts.TracerFor != nil {
			cfg.Tracer = opts.TracerFor(kind)
		}
		if opts.MetricsFor != nil {
			cfg.Metrics = opts.MetricsFor(kind)
		}
		laneSpecs := make([]sim.DomainSpec, len(domains))
		for d := range domains {
			laneSpecs[d] = sim.DomainSpec{
				Name:   domains[d].spec.Name,
				Replay: sources[i][d],
				CPU:    domains[d].spec.CPU,
			}
		}
		s, err := sim.New(cfg, laneSpecs)
		if err != nil {
			return nil, fmt.Errorf("mix %d, %v: %w", mix.ID, kind, err)
		}
		r, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("mix %d, %v: %w", mix.ID, kind, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, false, false, err
	}
	// A failed front-end poisons every lane that fed from it; surface the
	// cause rather than the garbage results.
	for _, t := range tapes {
		if t.err == nil {
			continue
		}
		if errors.Is(t.err, errMixOverBudget) {
			noteMixOverBudget(scale)
			if opts.TracerFor == nil && opts.MetricsFor == nil {
				return nil, false, false, nil // oracle, silently
			}
			return nil, false, false, t.err // retry lands on the oracle via the scale note
		}
		return nil, false, false, t.err
	}
	// An underrun lane idled out on a short cached pressure tail: its
	// timing no longer matches the oracle. Remove the short entries and
	// regenerate those domains cold.
	consumed := make([]int, len(domains))
	retry := false
	for d := range tapes {
		for i := range kinds {
			src := sources[i][d]
			if src.pos > consumed[d] {
				consumed[d] = src.pos
			}
			if src.underrun {
				retry = true
				forceCold[d] = true
			}
		}
	}
	if retry {
		for d, t := range tapes {
			if forceCold[d] && !t.cold && st != nil {
				unlock := st.Lock(domains[d].key)
				os.Remove(st.EntryPath(domains[d].key))
				unlock()
			}
		}
		return nil, true, true, nil
	}
	// Success: persist the cold tapes, with a pressure tail sized to the
	// hungriest lane plus slack so same-options warm runs never underrun.
	if st != nil {
		for d, t := range tapes {
			if !t.cold {
				continue
			}
			if err := persistMixTape(st, domains[d].key, t, consumed[d]); err != nil {
				return nil, false, false, err
			}
		}
	}
	for i, kind := range kinds {
		res.PerScheme[kind] = results[i]
	}
	return res, false, true, nil
}

// openMixTape loads a domain's sealed tape from the cache. Returns
// (nil, true, nil) on a miss or when forceCold — the caller generates.
// ok=false means the entry outgrew the replay budget (detected before any
// lane ran, so the oracle fallback is always clean).
func openMixTape(ctx context.Context, st *tracecache.Store, key tracecache.Key, budget *atomic.Int64, forceCold bool, scale float64) (*mixTape, bool, error) {
	if st == nil || forceCold {
		return nil, true, nil
	}
	unlock := st.Lock(key)
	defer unlock()
	r, err := st.Open(key)
	if err != nil {
		return nil, false, err
	}
	if r == nil {
		return nil, true, nil
	}
	defer r.Close()
	if !r.Rich() {
		if st.RebuildEnabled() {
			st.NoteRebuild()
			return nil, true, nil
		}
		return nil, false, fmt.Errorf("%w: %s is not a rich mix entry (key %s) — delete it or rerun with -fe-cache-rebuild",
			tracecache.ErrKeyMismatch, st.EntryPath(key), key)
	}
	t, err := decodeMixTape(ctx, r, budget)
	if err != nil {
		if errors.Is(err, errMixOverBudget) {
			noteMixOverBudget(scale)
			return nil, false, nil
		}
		if errors.Is(err, tracecache.ErrCorrupt) && st.RebuildEnabled() {
			st.NoteRebuild()
			return nil, true, nil
		}
		return nil, false, err
	}
	return t, true, nil
}

// decodeMixTape decodes a rich entry into a sealed tape, splitting at the
// measured-end marker. The per-batch checkpoint keeps the warm path's
// cancellation and fault cadence aligned with the cold path's.
func decodeMixTape(ctx context.Context, r *tracecache.Reader, budget *atomic.Int64) (*mixTape, error) {
	t := &mixTape{}
	buf := make([]feEvent, laneChunk)
	for {
		if err := mixCheckpoint(ctx); err != nil {
			return nil, err
		}
		n, err := r.Read(buf)
		seg := buf[:n]
		for len(seg) > 0 {
			cut := len(seg)
			marker := false
			for i, ev := range seg {
				if ev.Kind == tracecache.KindMeasuredEnd {
					cut, marker = i, true
					break
				}
			}
			if cut > 0 {
				chunk := make([]feEvent, cut)
				copy(chunk, seg[:cut])
				t.chunks = append(t.chunks, chunk)
				t.total += cut
				if budget.Add(int64(cut)) > mixReplayEventBudget {
					return nil, errMixOverBudget
				}
			}
			if marker {
				if t.haveMeasured {
					return nil, fmt.Errorf("%w: second measured-end marker", tracecache.ErrCorrupt)
				}
				t.measured = t.total
				t.haveMeasured = true
				cut++
			}
			seg = seg[cut:]
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if !t.haveMeasured {
		return nil, fmt.Errorf("%w: no measured-end marker", tracecache.ErrCorrupt)
	}
	return t, nil
}

// persistMixTape writes a cold tape to the cache: measured events, the
// marker, then the pressure tail extended to consumed + 1/8 slack (clamped
// by the budget — a truncated tail only means a future underrun rebuild).
func persistMixTape(st *tracecache.Store, key tracecache.Key, t *mixTape, consumed int) error {
	target := consumed + consumed/8 + laneChunk
	t.mu.Lock()
	for t.total < target && t.fe != nil && t.err == nil {
		t.produce()
	}
	err := t.err
	t.mu.Unlock()
	if err != nil && !errors.Is(err, errMixOverBudget) {
		return err
	}
	unlock := st.Lock(key)
	defer unlock()
	w, err := st.CreateRich(key)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := writeMixTape(w, t); err != nil {
		return err
	}
	return w.Commit()
}

// writeMixTape streams a tape's chunks into a rich writer, inserting the
// measured-end marker at the recorded boundary.
func writeMixTape(w *tracecache.Writer, t *mixTape) error {
	marker := []feEvent{{Kind: tracecache.KindMeasuredEnd}}
	pos := 0
	markerDone := false
	for _, chunk := range t.chunks {
		if !markerDone && t.haveMeasured && t.measured >= pos && t.measured <= pos+len(chunk) {
			cut := t.measured - pos
			if cut > 0 {
				if err := w.WriteEvents(chunk[:cut]); err != nil {
					return err
				}
			}
			if err := w.WriteEvents(marker); err != nil {
				return err
			}
			if cut < len(chunk) {
				if err := w.WriteEvents(chunk[cut:]); err != nil {
					return err
				}
			}
			markerDone = true
		} else if err := w.WriteEvents(chunk); err != nil {
			return err
		}
		pos += len(chunk)
	}
	if !markerDone {
		return w.WriteEvents(marker)
	}
	return nil
}
