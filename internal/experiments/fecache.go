// The persisted front-end cache's process-wide seam and warm-up fan-out.
//
// Commands that opt into the cache (-fe-cache DIR) install a
// tracecache.Store here once at startup; every engine pass then consults it
// through the same atomic-pointer discipline as the unit observer and the
// chunk hook — a single atomic load on the pass's hot path, no locks, no
// import of the command wiring.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"untangle/internal/parallel"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// frontEndCache is the process-wide store. Nil (the default) means "cache
// off": passes generate cold and persist nothing.
var frontEndCache atomic.Pointer[tracecache.Store]

// SetFrontEndCache installs (or, with nil, removes) the process-wide
// front-end trace cache. Commands call it once before the campaign starts;
// tests that install a store must clear it on cleanup.
func SetFrontEndCache(st *tracecache.Store) { frontEndCache.Store(st) }

// FrontEndCache returns the installed store, or nil when caching is off.
func FrontEndCache() *tracecache.Store { return frontEndCache.Load() }

// cachedParamsTag memoizes ParamsFingerprint for the trace-cache key: the
// tables are compiled in, so the tag is constant for the process lifetime,
// and hashing them once instead of once per pass keeps key construction off
// the profile.
var paramsTagOnce = sync.OnceValue(ParamsFingerprint)

func cachedParamsTag() string { return paramsTagOnce() }

// WarmFrontEndCache populates st with the front-end streams of the named
// benchmarks (all of workload.SPECBenchmarks when names is empty) at the
// given instruction budget, fanning out on at most jobs workers. Benchmarks
// whose entries already exist are verified by the engine's replay path
// rather than regenerated, so re-warming an intact cache is cheap and a
// corrupt entry surfaces (or is rebuilt, per the store's policy) right here
// instead of mid-campaign. It returns how many streams were freshly
// generated.
func WarmFrontEndCache(ctx context.Context, st *tracecache.Store, names []string, instructions uint64, jobs int) (int, error) {
	if st == nil {
		return 0, fmt.Errorf("experiments: WarmFrontEndCache needs a store")
	}
	var params []workload.Params
	if len(names) == 0 {
		params = sortedSPECParams()
	} else {
		params = make([]workload.Params, len(names))
		for i, name := range names {
			p, err := workload.SPECByName(name)
			if err != nil {
				return 0, err
			}
			params[i] = p
		}
	}
	var generated atomic.Int64
	err := parallel.ForEach(ctx, len(params), jobs, func(ctx context.Context, i int) error {
		e := enginePool.Get().(*laneEngine)
		defer enginePool.Put(e)
		_, replayed, err := e.run(ctx, st, params[i], instructions)
		if err != nil {
			return fmt.Errorf("warm %s: %w", params[i].Name, err)
		}
		if !replayed {
			generated.Add(1)
		}
		return nil
	})
	return int(generated.Load()), err
}
