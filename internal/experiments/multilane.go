// The multi-lane sensitivity engine: one front-end pass per benchmark
// serving all nine partition sizes of the Figure 11 study.
//
// Within one benchmark, the nine sensitivityPoint simulations differ ONLY in
// the LLC partition's set count. Everything upstream of the LLC is
// byte-identical across them: the generator (same parameters and seed emit
// the same op sequence), the address-space offset, and the private L1 —
// whose hit/miss decisions are a pure function of the access order, never of
// the dirty bits or statistics the full cache also tracks. The engine
// therefore generates the op stream once, simulates the L1 once, and records
// a compact event per op (plain run / L1 hit / L1 miss at address); nine
// lean LLC lanes (cache.Lane) and nine cycle-accounting replays then consume
// the identical event sequence.
//
// The replay is not an approximation of sim.Run — it is a transliteration of
// the driver's quantum machine for the exact configuration sensitivityPoint
// builds (Static scheme, one domain, Warmup 0, WarmupInstructions set):
// per-quantum horizons in cycles, the end-of-quantum warmup check against
// retired instructions, the finish snapshot before the idle AdvanceTo, and
// collect's instructions/cycles division, all in the same order with the
// same floating-point expressions. sensitivityPoint is retained as the
// oracle, and TestEngineMatchesOracle* require the engine to reproduce its
// per-size IPCs bitwise.
package experiments

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"untangle/internal/cache"
	"untangle/internal/cpu"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

// laneChunk is the front-end batch size. Stream determinism (isa.Stream's
// Fill-size independence) makes the value invisible in results; it only
// trades buffer footprint against per-chunk overhead.
const laneChunk = 4096

// feEvent kinds: what the shared front-end resolved one op to.
const (
	feNoMem  = iota // no memory access (or the op's access was truncated away)
	feL1Hit         // access served by the private L1
	feL1Miss        // access missed the L1; lanes look it up in their LLC
)

// feEvent is one op after L1 resolution. Only L1 misses carry an address —
// they are the only events whose cost differs between lanes.
type feEvent struct {
	addr   uint64
	nonMem uint32
	kind   uint8
}

// laneState is one partition size's replay: its LLC lane plus a private copy
// of the driver's per-domain quantum state machine. Each lane owns a real
// cpu.Core, so cycle accumulation uses the very same code path (and float
// expression shapes) as the oracle simulation.
type laneState struct {
	llc     *cache.Lane
	core    *cpu.Core
	now     time.Duration // end of the current quantum
	horizon float64       // now, in this core's cycles
	warm    bool
	base    cpu.Snapshot
}

// endQuantum performs the driver's quantum-boundary work: the warmup check
// (measurement starts at the first boundary where the domain has retired the
// warmup budget), then the step to the next horizon. It mirrors sim.Run's
// boundary exactly, including running after the finish snapshot — where a
// degenerate tiny-budget run can place the measurement base after the idle
// AdvanceTo, yielding IPC 0 just as the oracle does.
func (l *laneState) endQuantum(warmup uint64, step time.Duration) {
	if !l.warm && l.core.Retired() >= warmup {
		l.warm = true
		l.base = l.core.Snapshot()
	}
	l.now += step
	l.horizon = l.core.DurationToCycles(l.now)
}

// replay consumes one chunk of front-end events. The boundary catch-up loop
// before each event reproduces the driver's "consume ops only while the core
// is inside the quantum" condition: quanta in which this lane retires
// nothing still get their boundary (and warmup check), exactly as the driver
// re-enters runDomainUntil with an advanced horizon.
func (l *laneState) replay(events []feEvent, warmup uint64, step time.Duration) {
	core := l.core
	for _, ev := range events {
		for core.Cycles() >= l.horizon {
			l.endQuantum(warmup, step)
		}
		core.RetireNonMem(ev.nonMem)
		switch ev.kind {
		case feL1Hit:
			core.RetireMem(cpu.L1Hit)
		case feL1Miss:
			if l.llc.Access(ev.addr) {
				core.RetireMem(cpu.LLCHit)
			} else {
				core.RetireMem(cpu.Memory)
			}
		}
	}
}

// finish runs the driver's stream-dry sequence — catch up to the quantum the
// stream ends in, snapshot, idle forward to the quantum boundary, take that
// boundary (the warmup check may fire there) — and returns the measured IPC
// exactly as sim's collect computes it.
func (l *laneState) finish(warmup uint64, step time.Duration) float64 {
	for l.core.Cycles() >= l.horizon {
		l.endQuantum(warmup, step)
	}
	fin := l.core.Snapshot()
	l.core.AdvanceTo(l.now)
	l.endQuantum(warmup, step)
	instr := fin.Retired - l.base.Retired
	cycles := fin.Cycles - l.base.Cycles
	if cycles > 0 {
		return float64(instr) / cycles
	}
	return 0
}

// laneEngine holds the shared front-end (L1 lane, chunk and event buffers)
// and the nine per-size lanes. Engines are reused across benchmarks via
// Reset, so a study allocates its tag arrays once per worker, not 324 times.
type laneEngine struct {
	sizes  []int64
	step   time.Duration
	l1     *cache.Lane
	lanes  []laneState
	events []feEvent
}

// newLaneEngine builds an engine with the exact geometry sensitivityPoint's
// configuration implies: the Table 3 L1 and LLC associativity, one lane per
// supported partition size, and the 100 µs sampling quantum.
func newLaneEngine() *laneEngine {
	cfg := sim.DefaultConfig(partition.DefaultScheme(partition.Static))
	e := &laneEngine{
		sizes:  cfg.Sizes,
		step:   100 * time.Microsecond,
		l1:     cache.MustNewLane(cache.Config{SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways}),
		lanes:  make([]laneState, len(cfg.Sizes)),
		events: make([]feEvent, 0, laneChunk),
	}
	for i, size := range cfg.Sizes {
		e.lanes[i].llc = cache.MustNewLane(cache.Config{SizeBytes: size, Ways: cfg.LLCWays})
	}
	return e
}

// run produces the benchmark's IPC at every supported partition size
// (ascending, matching e.sizes), bitwise equal to calling sensitivityPoint
// once per size. ctx is checked once per chunk, so cancellation takes effect
// within one front-end batch.
func (e *laneEngine) run(ctx context.Context, p workload.Params, instructions uint64) ([]float64, error) {
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return nil, err
	}
	chunks := isa.NewChunks(isa.NewLimited(gen, 2*instructions), laneChunk)
	e.l1.Reset()
	cp := p.CPUParams()
	for i := range e.lanes {
		l := &e.lanes[i]
		l.llc.Reset()
		l.core = cpu.New(cp)
		l.now = e.step
		l.horizon = l.core.DurationToCycles(l.now)
		// Warmup 0 + WarmupInstructions 0 means the driver begins
		// measurement before the first quantum.
		l.warm = instructions == 0
		l.base = cpu.Snapshot{}
	}
	offset := sim.DomainAddrOffset(0)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if h := engineChunkHook.Load(); h != nil {
			if err := (*h)(); err != nil {
				return nil, err
			}
		}
		ops := chunks.Next()
		if len(ops) == 0 {
			break
		}
		e.events = e.events[:0]
		for _, op := range ops {
			ev := feEvent{nonMem: op.NonMem}
			if op.IsMem() {
				addr := op.Addr + offset
				if e.l1.Access(addr) {
					ev.kind = feL1Hit
				} else {
					ev.kind = feL1Miss
					ev.addr = addr
				}
			}
			e.events = append(e.events, ev)
		}
		for i := range e.lanes {
			e.lanes[i].replay(e.events, instructions, e.step)
		}
	}
	ipcs := make([]float64, len(e.lanes))
	for i := range e.lanes {
		ipcs[i] = e.lanes[i].finish(instructions, e.step)
	}
	return ipcs, nil
}

// enginePool recycles engines across study workers: each worker grabs one
// engine per benchmark and Reset gives it back fresh (the Reset ≡ fresh
// property is covered by the cache package's property tests, and implicitly
// by the oracle-equivalence test, whose sequential pass reuses one engine
// for all 36 benchmarks).
var enginePool = sync.Pool{New: func() any { return newLaneEngine() }}

// engineChunkHook is the multi-lane engine's fault-injection point: when
// set, it runs once per front-end chunk of every pass, and a returned error
// aborts the pass exactly like a mid-stream failure would. It exists so the
// robustness tests (internal/faultinject) can place a deterministic fault
// inside an engine pass without build tags; production runs never set it,
// and the load is a single atomic pointer read per chunk.
var engineChunkHook atomic.Pointer[func() error]

// SetEngineChunkHook installs the per-chunk fault hook (nil removes it).
// Test-only; the hook must be installed before passes start and not
// swapped while any run is in flight.
func SetEngineChunkHook(h func() error) {
	if h == nil {
		engineChunkHook.Store(nil)
		return
	}
	engineChunkHook.Store(&h)
}
