// The multi-lane sensitivity engine: one front-end pass per benchmark
// serving all nine partition sizes of the Figure 11 study.
//
// Within one benchmark, the nine sensitivityPoint simulations differ ONLY in
// the LLC partition's set count. Everything upstream of the LLC is
// byte-identical across them: the generator (same parameters and seed emit
// the same op sequence), the address-space offset, and the private L1 —
// whose hit/miss decisions are a pure function of the access order, never of
// the dirty bits or statistics the full cache also tracks. The engine
// therefore generates the op stream once, simulates the L1 once, and records
// a compact event per op (plain run / L1 hit / L1 miss at address); nine
// lean LLC lanes (cache.Lane) and nine cycle-accounting replays then consume
// the identical event sequence.
//
// The replay is not an approximation of sim.Run — it is a transliteration of
// the driver's quantum machine for the exact configuration sensitivityPoint
// builds (Static scheme, one domain, Warmup 0, WarmupInstructions set):
// per-quantum horizons in cycles, the end-of-quantum warmup check against
// retired instructions, the finish snapshot before the idle AdvanceTo, and
// collect's instructions/cycles division, all in the same order with the
// same floating-point expressions. sensitivityPoint is retained as the
// oracle, and TestEngineMatchesOracle* require the engine to reproduce its
// per-size IPCs bitwise.
package experiments

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"untangle/internal/cache"
	"untangle/internal/cpu"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// laneChunk is the front-end batch size. Stream determinism (isa.Stream's
// Fill-size independence) makes the value invisible in results; it only
// trades buffer footprint against per-chunk overhead.
const laneChunk = 4096

// feEvent kinds: what the shared front-end resolved one op to. The values
// are tracecache's — the event IS the on-disk record type, so teeing a cold
// pass to disk and replaying a warm one is a copy, not a conversion.
const (
	feNoMem  = tracecache.KindNoMem  // no memory access (or the op's access was truncated away)
	feL1Hit  = tracecache.KindL1Hit  // access served by the private L1
	feL1Miss = tracecache.KindL1Miss // access missed the L1; lanes look it up in their LLC
)

// feEvent is one op after L1 resolution. Only L1 misses carry an address —
// they are the only events whose cost differs between lanes. It is an alias
// of tracecache.Event: the persisted front-end cache stores exactly this
// stream, byte-batched (see internal/tracecache).
type feEvent = tracecache.Event

// laneState is one partition size's replay: its LLC lane plus a private copy
// of the driver's per-domain quantum state machine. Each lane owns a real
// cpu.Core, so cycle accumulation uses the very same code path (and float
// expression shapes) as the oracle simulation.
type laneState struct {
	llc     *cache.Lane
	core    *cpu.Core
	now     time.Duration // end of the current quantum
	horizon float64       // now, in this core's cycles
	warm    bool
	base    cpu.Snapshot
}

// endQuantum performs the driver's quantum-boundary work: the warmup check
// (measurement starts at the first boundary where the domain has retired the
// warmup budget), then the step to the next horizon. It mirrors sim.Run's
// boundary exactly, including running after the finish snapshot — where a
// degenerate tiny-budget run can place the measurement base after the idle
// AdvanceTo, yielding IPC 0 just as the oracle does.
func (l *laneState) endQuantum(warmup uint64, step time.Duration) {
	if !l.warm && l.core.Retired() >= warmup {
		l.warm = true
		l.base = l.core.Snapshot()
	}
	l.now += step
	l.horizon = l.core.DurationToCycles(l.now)
}

// replay consumes one chunk of front-end events. The boundary catch-up loop
// before each event reproduces the driver's "consume ops only while the core
// is inside the quantum" condition: quanta in which this lane retires
// nothing still get their boundary (and warmup check), exactly as the driver
// re-enters runDomainUntil with an advanced horizon.
func (l *laneState) replay(events []feEvent, warmup uint64, step time.Duration) {
	core := l.core
	for _, ev := range events {
		for core.Cycles() >= l.horizon {
			l.endQuantum(warmup, step)
		}
		core.RetireNonMem(ev.NonMem)
		switch ev.Kind {
		case feL1Hit:
			core.RetireMem(cpu.L1Hit)
		case feL1Miss:
			if l.llc.Access(ev.Addr) {
				core.RetireMem(cpu.LLCHit)
			} else {
				core.RetireMem(cpu.Memory)
			}
		}
	}
}

// probe resolves one batch of L1-miss addresses against this lane's LLC,
// setting outcomes bit base+k for each hit. It is the warm fold's phase A:
// LLC hit/miss outcomes are a pure function of the miss-address order and
// the lane's geometry — the core, the quantum machine, and the timing fold
// never feed back into them — so they can be resolved in a loop that does
// nothing else, and (the same fact, pushed to disk) memoized in a
// lane-outcome sidecar so later warm passes skip this phase entirely.
func (l *laneState) probe(addrs []uint64, outcomes []uint64, base int) {
	for k, a := range addrs {
		if l.llc.Access(a) {
			j := base + k
			outcomes[j>>6] |= 1 << (j & 63)
		}
	}
}

// replayTee is replay with outcome capture: the identical fold (same
// boundary checks, same charge order, bit-identical cycle accumulation)
// recording each LLC Access result at bit cursor of bits, in stream order.
// The cold tee uses it so the lane-outcome sidecar falls out of the pass it
// already runs — the capture adds one bit-set per L1 miss, nothing more.
// Returns the advanced cursor; every lane consumes the same events, so all
// lanes advance identically.
func (l *laneState) replayTee(events []feEvent, warmup uint64, step time.Duration, bits []uint64, cursor int) int {
	core := l.core
	for _, ev := range events {
		for core.Cycles() >= l.horizon {
			l.endQuantum(warmup, step)
		}
		core.RetireNonMem(ev.NonMem)
		switch ev.Kind {
		case feL1Hit:
			core.RetireMem(cpu.L1Hit)
		case feL1Miss:
			if l.llc.Access(ev.Addr) {
				bits[cursor>>6] |= 1 << (cursor & 63)
				core.RetireMem(cpu.LLCHit)
			} else {
				core.RetireMem(cpu.Memory)
			}
			cursor++
		}
	}
	return cursor
}

// replayResolved is the warm fold's phase B: the timing replay with every
// LLC outcome already resolved into the outcomes bitset (cursor indexes the
// next miss; the returned cursor carries across batches). The charge
// sequence — boundary checks, RetireNonMem, RetireMem levels — is exactly
// replay's in the same order, so the accumulated floating-point cycle count
// is bit-identical; the only difference is that the miss branch reads a bit
// instead of probing the LLC.
func (l *laneState) replayResolved(events []feEvent, outcomes []uint64, cursor int, warmup uint64, step time.Duration) int {
	core := l.core
	for _, ev := range events {
		for core.Cycles() >= l.horizon {
			l.endQuantum(warmup, step)
		}
		core.RetireNonMem(ev.NonMem)
		switch ev.Kind {
		case feL1Hit:
			core.RetireMem(cpu.L1Hit)
		case feL1Miss:
			if outcomes[cursor>>6]>>(uint(cursor)&63)&1 != 0 {
				core.RetireMem(cpu.LLCHit)
			} else {
				core.RetireMem(cpu.Memory)
			}
			cursor++
		}
	}
	return cursor
}

// finish runs the driver's stream-dry sequence — catch up to the quantum the
// stream ends in, snapshot, idle forward to the quantum boundary, take that
// boundary (the warmup check may fire there) — and returns the measured IPC
// exactly as sim's collect computes it.
func (l *laneState) finish(warmup uint64, step time.Duration) float64 {
	for l.core.Cycles() >= l.horizon {
		l.endQuantum(warmup, step)
	}
	fin := l.core.Snapshot()
	l.core.AdvanceTo(l.now)
	l.endQuantum(warmup, step)
	instr := fin.Retired - l.base.Retired
	cycles := fin.Cycles - l.base.Cycles
	if cycles > 0 {
		return float64(instr) / cycles
	}
	return 0
}

// laneEngine holds the shared front-end (L1 lane, chunk and event buffers)
// and the nine per-size lanes. Engines are reused across benchmarks via
// Reset, so a study allocates its tag arrays once per worker, not 324 times.
type laneEngine struct {
	sizes   []int64
	step    time.Duration
	l1      *cache.Lane
	l1Bytes int64 // L1 geometry, part of the trace-cache key: a stream is
	l1Ways  int   // only replayable under the L1 that resolved it
	llcWays int   // LLC associativity, part of the sidecar geometry check
	lanes   []laneState
	events  []feEvent
}

// newLaneEngine builds an engine with the exact geometry sensitivityPoint's
// configuration implies: the Table 3 L1 and LLC associativity, one lane per
// supported partition size, and the 100 µs sampling quantum.
func newLaneEngine() *laneEngine {
	cfg := sim.DefaultConfig(partition.DefaultScheme(partition.Static))
	e := &laneEngine{
		sizes:   cfg.Sizes,
		step:    100 * time.Microsecond,
		l1:      cache.MustNewLane(cache.Config{SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways}),
		l1Bytes: cfg.L1Bytes,
		l1Ways:  cfg.L1Ways,
		llcWays: cfg.LLCWays,
		lanes:   make([]laneState, len(cfg.Sizes)),
		events:  make([]feEvent, 0, laneChunk),
	}
	for i, size := range cfg.Sizes {
		e.lanes[i].llc = cache.MustNewLane(cache.Config{SizeBytes: size, Ways: cfg.LLCWays})
	}
	return e
}

// key is the trace-cache identity of one front-end pass: everything that
// determines the event stream this engine would generate for p.
func (e *laneEngine) key(p workload.Params, instructions uint64) tracecache.Key {
	return tracecache.Key{
		Benchmark:    p.Name,
		Instructions: instructions,
		L1Bytes:      e.l1Bytes,
		L1Ways:       e.l1Ways,
		ParamsTag:    cachedParamsTag(),
	}
}

// resetLanes puts every lane in the exact state sensitivityPoint's driver
// starts from: fresh LLC, fresh core, first quantum horizon, measurement
// armed per the warmup budget (Warmup 0 + WarmupInstructions 0 means the
// driver begins measurement before the first quantum).
func (e *laneEngine) resetLanes(p workload.Params, instructions uint64) {
	cp := p.CPUParams()
	for i := range e.lanes {
		l := &e.lanes[i]
		l.llc.Reset()
		l.core = cpu.New(cp)
		l.now = e.step
		l.horizon = l.core.DurationToCycles(l.now)
		l.warm = instructions == 0
		l.base = cpu.Snapshot{}
	}
}

// collect finishes every lane and gathers the per-size IPCs.
func (e *laneEngine) collect(instructions uint64) []float64 {
	ipcs := make([]float64, len(e.lanes))
	for i := range e.lanes {
		ipcs[i] = e.lanes[i].finish(instructions, e.step)
	}
	return ipcs
}

// checkpoint runs the per-chunk control points shared by the cold and warm
// paths: context cancellation and the fault-injection hook. Both paths call
// it once per front-end batch, so cancellation latency and fault placement
// are the same whether the stream is generated or replayed.
func (e *laneEngine) checkpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if h := engineChunkHook.Load(); h != nil {
		if err := (*h)(); err != nil {
			return err
		}
	}
	return nil
}

// run produces the benchmark's IPC at every supported partition size
// (ascending, matching e.sizes), bitwise equal to calling sensitivityPoint
// once per size. ctx is checked once per chunk/batch, so cancellation takes
// effect within one front-end batch.
//
// st, when non-nil, is the persisted front-end cache: a hit replays the
// stored event stream (skipping the generator and the private L1 entirely),
// a miss generates cold and tees the stream to disk. The returned bool
// reports whether the pass was replayed from cache. Replay is bitwise
// equivalent to cold generation because each lane's replay is a pure
// per-event fold and the stored sequence is exactly the cold sequence
// (TestTraceCacheWarmColdEquivalence). A corrupt entry discovered mid-replay
// fails the pass — unless the store allows rebuilds, in which case the pass
// restarts cold (resetLanes discards the polluted lane state) and overwrites
// the entry.
func (e *laneEngine) run(ctx context.Context, st *tracecache.Store, p workload.Params, instructions uint64) ([]float64, bool, error) {
	if st == nil {
		ipcs, err := e.generateRun(ctx, nil, tracecache.Key{}, p, instructions)
		return ipcs, false, err
	}
	key := e.key(p, instructions)
	unlock := st.Lock(key)
	defer unlock()
	r, err := st.Open(key)
	if err != nil {
		return nil, false, err
	}
	if r != nil {
		ipcs, err := e.replayRun(ctx, st, key, r, p, instructions)
		if err == nil {
			return ipcs, true, nil
		}
		if !errors.Is(err, tracecache.ErrCorrupt) || !st.RebuildEnabled() {
			return nil, false, err
		}
		// Mid-stream corruption with rebuild enabled: the lanes hold a
		// partial replay, but generateRun resets them, so falling through
		// to cold regeneration is a clean restart.
		st.NoteRebuild()
	}
	ipcs, err := e.generateRun(ctx, st, key, p, instructions)
	return ipcs, false, err
}

// generateRun is the cold path: one generator + private-L1 front-end pass
// feeding every lane, optionally teeing the event stream into st under key.
// The tee stages through fsutil.CreateAtomic and publishes only on a fully
// drained stream, so an aborted pass never leaves a partial entry.
//
// A teeing pass also captures every lane's LLC hit/miss bit sequence — a
// byproduct the fold computes anyway — and publishes it as the lane-outcome
// sidecar, so the very first warm pass already skips the probe phase.
// Oversized streams (past replayMemBudget, which the warm path would replay
// interleaved without a sidecar) skip the sidecar write.
func (e *laneEngine) generateRun(ctx context.Context, st *tracecache.Store, key tracecache.Key, p workload.Params, instructions uint64) ([]float64, error) {
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return nil, err
	}
	chunks := isa.NewChunks(isa.NewLimited(gen, 2*instructions), laneChunk)
	e.l1.Reset()
	e.resetLanes(p, instructions)
	var w *tracecache.Writer
	if st != nil {
		w, err = st.Create(key)
		if err != nil {
			return nil, err
		}
		defer w.Close() // no-op after Commit; discards the staged file on error
	}
	var bits [][]uint64
	if w != nil {
		bits = make([][]uint64, len(e.lanes))
	}
	totalEvents, missCursor := 0, 0
	offset := sim.DomainAddrOffset(0)
	for {
		if err := e.checkpoint(ctx); err != nil {
			return nil, err
		}
		ops := chunks.Next()
		if len(ops) == 0 {
			break
		}
		e.events = e.events[:0]
		chunkMisses := 0
		for _, op := range ops {
			ev := feEvent{NonMem: op.NonMem}
			if op.IsMem() {
				addr := op.Addr + offset
				if e.l1.Access(addr) {
					ev.Kind = feL1Hit
				} else {
					ev.Kind = feL1Miss
					ev.Addr = addr
					chunkMisses++
				}
			}
			e.events = append(e.events, ev)
		}
		if w != nil {
			if err := w.WriteEvents(e.events); err != nil {
				return nil, err
			}
			totalEvents += len(e.events)
			words := (missCursor + chunkMisses + 63) / 64
			next := missCursor
			for i := range e.lanes {
				for len(bits[i]) < words {
					bits[i] = append(bits[i], 0)
				}
				next = e.lanes[i].replayTee(e.events, instructions, e.step, bits[i], missCursor)
			}
			missCursor = next
		} else {
			for i := range e.lanes {
				e.lanes[i].replay(e.events, instructions, e.step)
			}
		}
	}
	if w != nil {
		if err := w.Commit(); err != nil {
			return nil, err
		}
		if totalEvents <= replayMemBudget {
			if err := st.SaveLaneOutcomes(key, e.llcWays, e.sizes, uint64(missCursor), bits); err != nil {
				return nil, err
			}
		}
	}
	return e.collect(instructions), nil
}

// replayMemBudget caps the decoded-event buffer replayRun may hold: streams
// up to this many events replay lane-major from memory; larger streams fall
// back to the interleaved chunk loop, whose footprint is one chunk. 32 Mi
// events x 16 bytes = 512 MiB, far above every study in this repository but
// a real bound for full-scale (150M-instruction) campaigns.
const replayMemBudget = 32 << 20

// replayRun is the warm path: the event stream comes from the cache entry,
// and the generator and private L1 never run.
//
// When the whole stream fits replayMemBudget it is decoded once and each
// lane folds over it in turn (lane-major). The cold path cannot traverse
// this way — it produces events incrementally and would have to buffer the
// entire stream — but a warm pass has the stream at hand, and lane-major
// order keeps a single lane's LLC tag arrays and core state hot in the host
// CPU's caches instead of cycling nine tag arrays per chunk. The reordering
// is invisible in results: lanes never interact, and each lane still sees
// the identical event sequence, so every per-lane fold is bit-for-bit the
// interleaved one (TestTraceCacheWarmColdEquivalence covers this path).
//
// Oversized streams replay in the cold path's interleaved chunk order,
// re-reading nothing and holding one chunk in memory.
func (e *laneEngine) replayRun(ctx context.Context, st *tracecache.Store, key tracecache.Key, r *tracecache.Reader, p workload.Params, instructions uint64) ([]float64, error) {
	defer r.Close()
	e.resetLanes(p, instructions)
	if n := r.Count(); n <= replayMemBudget {
		return e.replayLaneMajor(ctx, st, key, r, int(n), instructions)
	}
	buf := e.events[:cap(e.events)]
	for {
		if err := e.checkpoint(ctx); err != nil {
			return nil, err
		}
		n, err := r.Read(buf)
		for i := range e.lanes {
			e.lanes[i].replay(buf[:n], instructions, e.step)
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return e.collect(instructions), nil
}

// replayLaneMajor decodes the whole entry once and replays it into one lane
// at a time, each lane in two phases: probe (LLC outcomes into a bitset)
// then replayResolved (the timing fold). Corruption surfaces during the
// decode, before any lane has consumed an event. The per-lane loops stay
// chunked only to keep the cancellation/fault checkpoint cadence of the
// interleaved path.
//
// The probe phase itself is memoized: a valid lane-outcome sidecar (written
// by the cold tee, or by the previous warm pass to re-probe) supplies every
// lane's bitset directly, reducing the pass to decode + timing folds. The
// sidecar is validated against the entry key, the LLC geometry, and the
// decoded miss count before use, and its payload CRC has already been
// checked — a rejected sidecar only costs the re-probe that rewrites it.
func (e *laneEngine) replayLaneMajor(ctx context.Context, st *tracecache.Store, key tracecache.Key, r *tracecache.Reader, n int, instructions uint64) ([]float64, error) {
	// The footer count sizes the buffer but is untrusted until the CRC
	// verifies, so cap the upfront allocation and let append grow past it.
	events := make([]feEvent, 0, min(n, 1<<20))
	buf := e.events[:cap(e.events)]
	for {
		if err := e.checkpoint(ctx); err != nil {
			return nil, err
		}
		k, err := r.Read(buf)
		events = append(events, buf[:k]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	missAddrs := make([]uint64, 0, len(events))
	for i := range events {
		if events[i].Kind == feL1Miss {
			missAddrs = append(missAddrs, events[i].Addr)
		}
	}
	const span = 1 << 16
	bits, fromSidecar := st.OpenLaneOutcomes(key, e.llcWays, e.sizes, uint64(len(missAddrs)))
	if !fromSidecar {
		words := (len(missAddrs) + 63) / 64
		bits = make([][]uint64, len(e.lanes))
		for i := range e.lanes {
			bits[i] = make([]uint64, words)
			for off := 0; off < len(missAddrs); off += span {
				if err := e.checkpoint(ctx); err != nil {
					return nil, err
				}
				e.lanes[i].probe(missAddrs[off:min(off+span, len(missAddrs))], bits[i], off)
			}
		}
	}
	for i := range e.lanes {
		cursor := 0
		for off := 0; off < len(events); off += span {
			if err := e.checkpoint(ctx); err != nil {
				return nil, err
			}
			cursor = e.lanes[i].replayResolved(events[off:min(off+span, len(events))], bits[i], cursor, instructions, e.step)
		}
	}
	if !fromSidecar {
		if err := st.SaveLaneOutcomes(key, e.llcWays, e.sizes, uint64(len(missAddrs)), bits); err != nil {
			return nil, err
		}
	}
	return e.collect(instructions), nil
}

// enginePool recycles engines across study workers: each worker grabs one
// engine per benchmark and Reset gives it back fresh (the Reset ≡ fresh
// property is covered by the cache package's property tests, and implicitly
// by the oracle-equivalence test, whose sequential pass reuses one engine
// for all 36 benchmarks).
var enginePool = sync.Pool{New: func() any { return newLaneEngine() }}

// engineChunkHook is the multi-lane engine's fault-injection point: when
// set, it runs once per front-end chunk of every pass, and a returned error
// aborts the pass exactly like a mid-stream failure would. It exists so the
// robustness tests (internal/faultinject) can place a deterministic fault
// inside an engine pass without build tags; production runs never set it,
// and the load is a single atomic pointer read per chunk.
var engineChunkHook atomic.Pointer[func() error]

// SetEngineChunkHook installs the per-chunk fault hook (nil removes it).
// Test-only; the hook must be installed before passes start and not
// swapped while any run is in flight.
func SetEngineChunkHook(h func() error) {
	if h == nil {
		engineChunkHook.Store(nil)
		return
	}
	engineChunkHook.Store(&h)
}
