package experiments

import (
	"testing"
	"time"

	"untangle/internal/isa"
	"untangle/internal/lang"
	"untangle/internal/partition"
)

// The capstone integration test: victims written in the mini-language, with
// NO hand-placed annotations — the static taint analysis derives them — run
// through the full pipeline (interpreter -> simulator -> schemes ->
// accountant), and the exhaustively-measured leakage obeys the paper's
// guarantees.

func langVictim(t *testing.T, build func(secret uint64) *lang.Program) func(uint64) isa.Stream {
	t.Helper()
	return func(secret uint64) isa.Stream {
		e, err := lang.NewExec(build(secret), map[string]int64{"secret": int64(secret)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

func toolchainConfig(kind partition.Kind, annotated bool, victim func(uint64) isa.Stream) ExactConfig {
	scheme := partition.DefaultScheme(kind)
	scheme.Annotated = annotated
	return ExactConfig{
		Scheme:             scheme,
		Scale:              0.003,
		Secrets:            []uint64{0, 1, 2, 3},
		Victim:             victim,
		PublicInstructions: 400_000,
		TimeQuantum:        time.Microsecond,
	}
}

func TestToolchainFigure1aZeroActionLeakage(t *testing.T) {
	victim := langVictim(t, func(uint64) *lang.Program {
		// 2MB traversal gated on the secret's low bit, then public work.
		return lang.Figure1aProgram(32768, 40000)
	})
	res, err := ExactLeakage(toolchainConfig(partition.Untangle, true, victim))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("analysis-derived annotations left %v bits of action leakage", res.Action)
	}
	if res.ChargedBits < res.Total {
		t.Errorf("accountant charge %v below exact leakage %v", res.ChargedBits, res.Total)
	}
}

func TestToolchainFigure1aLeaksWithoutAnnotationSupport(t *testing.T) {
	victim := langVictim(t, func(uint64) *lang.Program {
		return lang.Figure1aProgram(32768, 40000)
	})
	res, err := ExactLeakage(toolchainConfig(partition.Untangle, false, victim))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action <= 0 {
		t.Error("ignoring the derived annotations should reintroduce action leakage")
	}
}

func TestToolchainAESLikeVictim(t *testing.T) {
	// The canonical crypto victim: secret-indexed table lookups. The
	// analysis taints them; under annotated Untangle the key must not
	// influence the action sequence.
	victim := func(secret uint64) isa.Stream {
		prog := lang.AESLikeProgram(2048)
		e, err := lang.NewExec(prog, map[string]int64{"key": int64(secret * 37)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cfg := toolchainConfig(partition.Untangle, true, victim)
	cfg.PublicInstructions = 60_000
	res, err := ExactLeakage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("AES-like victim leaked %v action bits under annotated Untangle", res.Action)
	}
}

func TestToolchainModExpZeroActionLeakage(t *testing.T) {
	// The RSA square-and-multiply victim: 4 enumerable exponents, the taint
	// analysis derives everything, and annotated Untangle's action sequence
	// carries zero bits about the exponent.
	victim := func(secret uint64) isa.Stream {
		e, err := lang.NewExec(lang.ModExpProgram(64),
			map[string]int64{"exp": int64(secret*0x9E37 + 0xB5), "base": 7}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cfg := toolchainConfig(partition.Untangle, true, victim)
	cfg.PublicInstructions = 20_000
	res, err := ExactLeakage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("modexp leaked %v action bits under annotated Untangle", res.Action)
	}
	if res.ChargedBits < res.Total {
		t.Errorf("charge %v below exact %v", res.ChargedBits, res.Total)
	}
}
