package experiments

import (
	"context"
	"testing"

	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// benchEngineInstructions matches the committed Figure 11 benchmark floor
// (see bench_test.go sensitivityInstructions), so per-benchmark ns here
// decompose the study-level numbers in BENCH_PR7.json.
const benchEngineInstructions = 600_000

// BenchmarkEngineCold is one cold multi-lane pass: generator + private L1 +
// nine-lane fold, no cache.
func BenchmarkEngineCold(b *testing.B) {
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		b.Fatal(err)
	}
	e := newLaneEngine()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.run(ctx, nil, p, benchEngineInstructions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarm is one warm pass over a populated trace cache: decode
// from the page cache plus the lane-major nine-lane fold.
func BenchmarkEngineWarm(b *testing.B) {
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		b.Fatal(err)
	}
	st, err := tracecache.NewStore(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	e := newLaneEngine()
	ctx := context.Background()
	if _, _, err := e.run(ctx, st, p, benchEngineInstructions); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.run(ctx, st, p, benchEngineInstructions); err != nil {
			b.Fatal(err)
		}
	}
}
