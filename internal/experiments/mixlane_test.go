package experiments

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"untangle/internal/partition"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// fusionTestScale keeps the 16-mix sweep affordable; the fused/oracle
// equivalence is scale-independent (the two paths execute the same
// operations in the same order at any scale).
const fusionTestScale = 0.0002

// requireMixBitwiseEqual asserts two mix results are bitwise identical:
// reflect.DeepEqual compares every float by value (IPCs, cycle counts,
// leakage, sample timelines), which is bit equality for the finite values
// these runs produce.
func requireMixBitwiseEqual(t *testing.T, label string, got, want *MixResult) {
	t.Helper()
	if math.Float64bits(got.Scale) != math.Float64bits(want.Scale) {
		t.Fatalf("%s: scale %v != %v", label, got.Scale, want.Scale)
	}
	if len(got.PerScheme) != len(want.PerScheme) {
		t.Fatalf("%s: %d schemes, want %d", label, len(got.PerScheme), len(want.PerScheme))
	}
	for kind, w := range want.PerScheme {
		g := got.PerScheme[kind]
		if g == nil {
			t.Fatalf("%s: scheme %v missing", label, kind)
		}
		if reflect.DeepEqual(g, w) {
			continue
		}
		for d := range w.Domains {
			if !reflect.DeepEqual(g.Domains[d], w.Domains[d]) {
				t.Errorf("%s: %v domain %d (%s) differs:\n  got  instr=%d cycles=%v finish=%v L1=%+v LLC=%+v leak=%+v\n  want instr=%d cycles=%v finish=%v L1=%+v LLC=%+v leak=%+v",
					label, kind, d, w.Domains[d].Name,
					g.Domains[d].Instructions, g.Domains[d].Cycles, g.Domains[d].FinishTime,
					g.Domains[d].L1, g.Domains[d].LLC, g.Domains[d].Leakage,
					w.Domains[d].Instructions, w.Domains[d].Cycles, w.Domains[d].FinishTime,
					w.Domains[d].L1, w.Domains[d].LLC, w.Domains[d].Leakage)
			}
		}
		t.Fatalf("%s: scheme %v differs", label, kind)
	}
}

// mixBuffers builds one telemetry buffer per scheme plus the TracerFor
// wiring runMixUnit uses, so the test sees exactly the event streams the
// campaign driver would serialize.
func mixBuffers(id int) (map[partition.Kind]*telemetry.Buffer, func(partition.Kind) *telemetry.Tracer) {
	bufs := map[partition.Kind]*telemetry.Buffer{}
	for _, k := range (Options{}).kinds() {
		bufs[k] = telemetry.NewBuffer()
	}
	return bufs, func(k partition.Kind) *telemetry.Tracer {
		return telemetry.New(bufs[k], nil, fmt.Sprintf("mix%d/%s", id, k))
	}
}

// requireBuffersEqual asserts the serialized telemetry is byte-identical.
func requireBuffersEqual(t *testing.T, label string, got, want map[partition.Kind]*telemetry.Buffer) {
	t.Helper()
	for k, wb := range want {
		var gj, wj bytes.Buffer
		if err := got[k].WriteJSONL(&gj); err != nil {
			t.Fatal(err)
		}
		if err := wb.WriteJSONL(&wj); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj.Bytes(), wj.Bytes()) {
			t.Errorf("%s: telemetry for %v differs (%d vs %d events)", label, k, got[k].Len(), wb.Len())
		}
	}
}

func fusionTestMixes(t *testing.T) []int {
	if testing.Short() {
		return []int{1, 2}
	}
	ids := make([]int, 0, len(workload.Mixes))
	for _, m := range workload.Mixes {
		ids = append(ids, m.ID)
	}
	return ids
}

// TestMixFusionMatchesOracle is the PR's central acceptance test: the
// fused mix engine (one front-end pass teed into four scheme lanes)
// reproduces the per-scheme oracle bitwise — IPCs, leakage accounting,
// partition traces, sample timelines, telemetry — for every mix, both
// cold and replaying from a warm front-end cache.
func TestMixFusionMatchesOracle(t *testing.T) {
	ids := fusionTestMixes(t)

	t.Run("cold", func(t *testing.T) {
		for _, id := range ids {
			id := id
			t.Run(fmt.Sprintf("mix%d", id), func(t *testing.T) {
				t.Parallel()
				mix, err := workload.MixByID(id)
				if err != nil {
					t.Fatal(err)
				}
				oracle, err := RunMix(mix, Options{Scale: fusionTestScale, DisableFusion: true})
				if err != nil {
					t.Fatal(err)
				}
				fused, err := RunMix(mix, Options{Scale: fusionTestScale})
				if err != nil {
					t.Fatal(err)
				}
				requireMixBitwiseEqual(t, "fused-cold", fused, oracle)
			})
		}
	})

	// The warm phase owns the process-global front-end cache, so it runs
	// after the parallel cold group and keeps its mixes sequential.
	t.Run("warm", func(t *testing.T) {
		st := newTestStore(t, false)
		SetFrontEndCache(st)
		defer SetFrontEndCache(nil)
		warmIDs := ids
		if len(warmIDs) > 2 {
			warmIDs = warmIDs[:2]
		}
		for _, id := range warmIDs {
			mix, err := workload.MixByID(id)
			if err != nil {
				t.Fatal(err)
			}
			oBufs, oTracers := mixBuffers(id)
			oracle, err := RunMix(mix, Options{Scale: fusionTestScale, DisableFusion: true, TracerFor: oTracers})
			if err != nil {
				t.Fatal(err)
			}

			cBufs, cTracers := mixBuffers(id)
			cold, err := RunMix(mix, Options{Scale: fusionTestScale, TracerFor: cTracers})
			if err != nil {
				t.Fatal(err)
			}
			requireMixBitwiseEqual(t, "fused-populate", cold, oracle)
			requireBuffersEqual(t, "fused-populate", cBufs, oBufs)

			before := st.Counters()
			wBufs, wTracers := mixBuffers(id)
			warm, err := RunMix(mix, Options{Scale: fusionTestScale, TracerFor: wTracers})
			if err != nil {
				t.Fatal(err)
			}
			requireMixBitwiseEqual(t, "fused-warm", warm, oracle)
			requireBuffersEqual(t, "fused-warm", wBufs, oBufs)
			after := st.Counters()
			if hits := after.Hits - before.Hits; hits < int64(len(mix.Pairs)) {
				t.Errorf("mix %d warm run hit the cache %d times, want >= %d", id, hits, len(mix.Pairs))
			}
		}
	})
}

// TestMixFusionUnderrunRegenerates covers the one stored quantity whose
// needed length is scheme-dependent: the pressure tail. A cached entry
// whose tail is too short for the lanes must be detected, deleted, and
// regenerated cold — still matching the oracle bitwise — and the rewritten
// entry must carry a full tail again.
func TestMixFusionUnderrunRegenerates(t *testing.T) {
	mix, err := workload.MixByID(1)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RunMix(mix, Options{Scale: fusionTestScale, DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}

	st := newTestStore(t, false)
	SetFrontEndCache(st)
	defer SetFrontEndCache(nil)
	cold, err := RunMix(mix, Options{Scale: fusionTestScale})
	if err != nil {
		t.Fatal(err)
	}
	requireMixBitwiseEqual(t, "populate", cold, oracle)

	// Truncate domain 0's entry to measured stream + marker, no tail.
	key := mixStreamKey(mix.Pairs[0], 0, fusionTestScale, 0, true, 32<<10, 8)
	path := st.EntryPath(key)
	r, err := st.Open(key)
	if err != nil || r == nil {
		t.Fatalf("open %s: r=%v err=%v", path, r, err)
	}
	var events []tracecache.Event
	buf := make([]tracecache.Event, 4096)
	for {
		n, rerr := r.Read(buf)
		events = append(events, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	r.Close()
	cut := -1
	for i, ev := range events {
		if ev.Kind == tracecache.KindMeasuredEnd {
			cut = i
			break
		}
	}
	if cut < 0 || cut == len(events)-1 {
		t.Fatalf("entry has no marker or no tail (marker at %d of %d)", cut, len(events))
	}
	w, err := st.CreateRich(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents(events[:cut+1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	warm, err := RunMix(mix, Options{Scale: fusionTestScale})
	if err != nil {
		t.Fatal(err)
	}
	requireMixBitwiseEqual(t, "underrun-regenerated", warm, oracle)

	info, err := tracecache.ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if tail := info.Events - info.Measured - 1; tail == 0 {
		t.Errorf("regenerated entry still has no pressure tail (%d events, %d measured)", info.Events, info.Measured)
	}
}

// TestMixFusionOracleFlagForcesOracle pins the escape hatch: DisableFusion
// must leave the cache untouched.
func TestMixFusionOracleFlagForcesOracle(t *testing.T) {
	mix, err := workload.MixByID(1)
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, false)
	SetFrontEndCache(st)
	defer SetFrontEndCache(nil)
	if _, err := RunMix(mix, Options{Scale: fusionTestScale, DisableFusion: true, Kinds: []partition.Kind{partition.Static}}); err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	if c.Hits != 0 || c.Misses != 0 || c.BytesWritten != 0 {
		t.Errorf("oracle path touched the cache: %+v", c)
	}
}
