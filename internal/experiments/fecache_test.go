package experiments

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// newTestStore builds a store over a fresh temp directory.
func newTestStore(t *testing.T, rebuild bool) *tracecache.Store {
	t.Helper()
	st, err := tracecache.NewStore(t.TempDir(), rebuild)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// requireStudiesBitwiseEqual compares two whole studies row by row.
func requireStudiesBitwiseEqual(t *testing.T, got, want []SensitivityResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("study has %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		requireBitwiseEqual(t, got[i], want[i])
	}
}

// TestTraceCacheWarmColdEquivalence is the PR's central acceptance test: a
// study teeing its front-end streams to a cold cache and a study replaying
// them warm both reproduce the uncached study bitwise, for every one of the
// 36 Figure 11 benchmarks. Run through the public parallel path, so under
// -race this also covers concurrent store access and single-flight locking.
func TestTraceCacheWarmColdEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("36-benchmark triple study; skipped in -short mode")
	}
	const instructions = 100_000
	ctx := context.Background()

	baseline, err := SensitivityStudyContext(ctx, instructions, 4)
	if err != nil {
		t.Fatal(err)
	}

	st := newTestStore(t, false)
	SetFrontEndCache(st)
	defer SetFrontEndCache(nil)

	cold, err := SensitivityStudyContext(ctx, instructions, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireStudiesBitwiseEqual(t, cold, baseline)
	if c := st.Counters(); c.Misses != 36 || c.Hits != 0 {
		t.Fatalf("cold pass counters = %+v, want 36 misses, 0 hits", c)
	}

	var l unitLog
	SetUnitObserver(l.observer)
	defer SetUnitObserver(nil)
	warm, err := SensitivityStudyContext(ctx, instructions, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireStudiesBitwiseEqual(t, warm, baseline)
	if c := st.Counters(); c.Hits != 36 || c.Rebuilds != 0 {
		t.Fatalf("warm pass counters = %+v, want 36 hits, 0 rebuilds", c)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed != 36 {
		t.Errorf("warm pass reported %d replayed units, want 36", l.replayed)
	}
}

// TestTraceCacheWarmColdEquivalenceQuick is the -short variant: one
// benchmark, cold tee then warm replay, bitwise.
func TestTraceCacheWarmColdEquivalenceQuick(t *testing.T) {
	const instructions = 20_000
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e := newLaneEngine()
	base, _, err := e.run(ctx, nil, p, instructions)
	if err != nil {
		t.Fatal(err)
	}

	st := newTestStore(t, false)
	cold, replayed, err := e.run(ctx, st, p, instructions)
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("first cached pass reported replayed")
	}
	warm, replayed, err := e.run(ctx, st, p, instructions)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed {
		t.Fatal("second cached pass did not replay")
	}
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, cold),
		assembleSensitivity(p.Name, e.sizes, base))
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, warm),
		assembleSensitivity(p.Name, e.sizes, base))
}

// TestTraceCacheLaneOutcomeSidecar pins the sidecar fast path and its
// self-healing: the cold tee writes a .felanes sidecar alongside the event
// stream; a warm pass serves from it (counted as an outcome hit); deleting
// or corrupting it only costs a re-probe of the verified stream — bitwise
// equal results, sidecar rewritten — never a wrong answer or a failed run.
func TestTraceCacheLaneOutcomeSidecar(t *testing.T) {
	const instructions = 20_000
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e := newLaneEngine()
	base, _, err := e.run(ctx, nil, p, instructions)
	if err != nil {
		t.Fatal(err)
	}

	st := newTestStore(t, false)
	if _, _, err := e.run(ctx, st, p, instructions); err != nil {
		t.Fatal(err)
	}
	side := st.LaneOutcomePath(e.key(p, instructions))
	if _, err := os.Stat(side); err != nil {
		t.Fatalf("cold tee did not write the sidecar: %v", err)
	}

	warm, replayed, err := e.run(ctx, st, p, instructions)
	if err != nil || !replayed {
		t.Fatalf("warm pass: replayed=%v err=%v", replayed, err)
	}
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, warm),
		assembleSensitivity(p.Name, e.sizes, base))
	if c := st.Counters(); c.OutcomeHits != 1 || c.OutcomeMisses != 0 {
		t.Fatalf("sidecar-served warm counters = %+v, want 1 outcome hit", c)
	}

	// Sidecar gone: the warm pass re-probes the stream and rewrites it.
	if err := os.Remove(side); err != nil {
		t.Fatal(err)
	}
	warm, replayed, err = e.run(ctx, st, p, instructions)
	if err != nil || !replayed {
		t.Fatalf("sidecar-less warm pass: replayed=%v err=%v", replayed, err)
	}
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, warm),
		assembleSensitivity(p.Name, e.sizes, base))
	if c := st.Counters(); c.OutcomeMisses != 1 {
		t.Fatalf("re-probe counters = %+v, want 1 outcome miss", c)
	}
	if _, err := os.Stat(side); err != nil {
		t.Fatalf("re-probe did not rewrite the sidecar: %v", err)
	}

	// Sidecar corrupt (payload bit flip): rejected by CRC, re-probed, and the
	// rewritten file serves the next pass.
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-8] ^= 0x01
	if err := os.WriteFile(side, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	warm, replayed, err = e.run(ctx, st, p, instructions)
	if err != nil || !replayed {
		t.Fatalf("corrupt-sidecar warm pass: replayed=%v err=%v", replayed, err)
	}
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, warm),
		assembleSensitivity(p.Name, e.sizes, base))
	if c := st.Counters(); c.OutcomeMisses != 2 {
		t.Fatalf("corrupt-sidecar counters = %+v, want 2 outcome misses", c)
	}
	if _, replayed, err := e.run(ctx, st, p, instructions); err != nil || !replayed {
		t.Fatalf("post-heal pass: replayed=%v err=%v", replayed, err)
	}
	if c := st.Counters(); c.OutcomeHits != 2 {
		t.Fatalf("post-heal counters = %+v, want 2 outcome hits", c)
	}
}

// TestTraceCacheKeyMismatchFailsLoudly: an entry written under a different
// parameter-table tag occupies the expected path; opening it without the
// rebuild policy must fail naming both keys, never silently regenerate or —
// worse — replay the stale stream.
func TestTraceCacheKeyMismatchFailsLoudly(t *testing.T) {
	const instructions = 5_000
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, false)
	e := newLaneEngine()
	stale := e.key(p, instructions)
	stale.ParamsTag = "00000000deadbeef"
	w, err := st.Create(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	_, _, err = e.run(context.Background(), st, p, instructions)
	if !errors.Is(err, tracecache.ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
	for _, want := range []string{"00000000deadbeef", cachedParamsTag(), "-fe-cache-rebuild"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not mention %q", err, want)
		}
	}

	// The same entry under the rebuild policy regenerates and then serves.
	rb, err := tracecache.NewStore(st.Dir(), true)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := e.run(context.Background(), nil, p, instructions)
	if err != nil {
		t.Fatal(err)
	}
	got, replayed, err := e.run(context.Background(), rb, p, instructions)
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("rebuild pass reported replayed")
	}
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, got),
		assembleSensitivity(p.Name, e.sizes, base))
	if c := rb.Counters(); c.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", c.Rebuilds)
	}
	if _, replayed, err := e.run(context.Background(), rb, p, instructions); err != nil || !replayed {
		t.Fatalf("post-rebuild pass: replayed=%v err=%v, want replay", replayed, err)
	}
}

// TestTraceCacheCorruptEntry: a bit-flipped entry fails the pass without
// rebuild and regenerates (bitwise equal to cold) with it.
func TestTraceCacheCorruptEntry(t *testing.T) {
	const instructions = 20_000
	p, err := workload.SPECByName("xz_1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := newTestStore(t, false)
	e := newLaneEngine()
	base, _, err := e.run(ctx, st, p, instructions)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte mid-file: the structure stays parseable, so the
	// damage is caught by the footer CRC during replay.
	path := st.EntryPath(e.key(p, instructions))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := e.run(ctx, st, p, instructions); !errors.Is(err, tracecache.ErrCorrupt) {
		t.Fatalf("corrupt entry: err = %v, want ErrCorrupt", err)
	}

	rb, err := tracecache.NewStore(st.Dir(), true)
	if err != nil {
		t.Fatal(err)
	}
	got, replayed, err := e.run(ctx, rb, p, instructions)
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("rebuild of a corrupt entry reported replayed")
	}
	requireBitwiseEqual(t, assembleSensitivity(p.Name, e.sizes, got),
		assembleSensitivity(p.Name, e.sizes, base))
	if c := rb.Counters(); c.Rebuilds == 0 {
		t.Fatal("rebuild counter did not advance")
	}
	// The overwritten entry is intact again.
	if _, replayed, err := e.run(ctx, rb, p, instructions); err != nil || !replayed {
		t.Fatalf("post-rebuild pass: replayed=%v err=%v, want replay", replayed, err)
	}
}

// TestWarmFrontEndCache covers the tracegen warm path: duplicate names
// single-flight into one generation, a second warm run generates nothing,
// and the entries round-trip through ReadInfo with the engine's key.
func TestWarmFrontEndCache(t *testing.T) {
	const instructions = 5_000
	st := newTestStore(t, false)
	generated, err := WarmFrontEndCache(context.Background(), st,
		[]string{"mcf_0", "mcf_0", "xz_1"}, instructions, 3)
	if err != nil {
		t.Fatal(err)
	}
	if generated != 2 {
		t.Fatalf("generated = %d, want 2 (duplicate benchmark single-flighted)", generated)
	}
	generated, err = WarmFrontEndCache(context.Background(), st, nil, instructions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workload.SPECBenchmarks) - 2; generated != want {
		t.Fatalf("second warm generated %d, want %d (two already present)", generated, want)
	}

	e := newLaneEngine()
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	info, err := tracecache.ReadInfo(st.EntryPath(e.key(p, instructions)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Key != e.key(p, instructions) {
		t.Fatalf("entry key = %s, want %s", info.Key, e.key(p, instructions))
	}
	if info.Events == 0 || info.MemOps() == 0 {
		t.Fatalf("warmed entry is empty: %+v", info)
	}

	if _, err := WarmFrontEndCache(context.Background(), st, []string{"no_such_bench"}, instructions, 1); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
	if _, err := WarmFrontEndCache(context.Background(), nil, nil, instructions, 1); err == nil {
		t.Fatal("nil store did not error")
	}
}
