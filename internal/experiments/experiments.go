// Package experiments contains the evaluation harness: every table and
// figure of the paper's evaluation (Section 9 and Appendix B) maps to a
// function here, parameterized by a scale factor so the same code drives
// quick tests, the benchmark suite, and full-fidelity runs.
//
//	Figure 10, 12-17  ->  RunMix / MixResult
//	Figure 11         ->  SensitivityStudy
//	Table 6           ->  Table6 (over RunMix results)
//	Section 9 active-attacker paragraph -> RunMix with WorstCaseAccounting
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"untangle/internal/isa"
	"untangle/internal/parallel"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/stats"
	"untangle/internal/telemetry"
	"untangle/internal/workload"
)

// Full-scale workload construction constants (Section 8): loop 1M crypto
// instructions + 10M SPEC instructions until the SPEC part reaches 500M
// (so 550M total per workload).
const (
	fullCryptoPhase = 1_000_000
	fullSPECPhase   = 10_000_000
	fullTotal       = 550_000_000
)

// Options tweaks a mix run.
type Options struct {
	// Scale shrinks instruction counts and time constants together
	// (DESIGN.md "Scaling"); 1.0 is the paper's full fidelity.
	Scale float64
	// Kinds selects the schemes to run; nil means all four of Table 4.
	Kinds []partition.Kind
	// WorstCaseAccounting disables the Section 5.3.4 Maintain optimization
	// (the active-attacker accounting of Section 9).
	WorstCaseAccounting bool
	// Annotated disables the Section 5.2 annotations when false. Default
	// (zero Options) means annotated; use the explicit field below.
	DisableAnnotations bool
	// Budget is the per-domain leakage budget in bits (0 = unlimited; the
	// paper's evaluation runs unlimited and measures).
	Budget float64
	// WayPartitioned switches the LLC to whole-way granularity (the
	// granularity ablation; the paper's evaluation uses set partitioning).
	WayPartitioned bool
	// Secret perturbs the crypto benchmarks' secret-dependent patterns.
	Secret uint64
	// SimSeed drives the schemes' random action delays (default 1).
	SimSeed uint64
	// TracerFor, when non-nil, supplies a telemetry tracer per scheme.
	// The schemes run concurrently, so give each scheme its own sink (a
	// telemetry.Buffer) and serialize the buffers in a fixed order
	// afterwards to keep trace files deterministic.
	TracerFor func(partition.Kind) *telemetry.Tracer
	// MetricsFor, when non-nil, supplies a metrics registry per scheme.
	MetricsFor func(partition.Kind) *telemetry.Registry
	// DisableFusion forces RunMix onto the per-scheme oracle path: each
	// scheme regenerates and re-simulates its own front-end, as the fused
	// engine (mixlane.go) would otherwise share one front-end pass across
	// the schemes. Results are bitwise identical either way
	// (TestMixFusionMatchesOracle); the oracle is kept for verification
	// and as the fallback for over-budget tapes.
	DisableFusion bool
	// Jobs bounds the experiment engine's worker pool: 0 uses GOMAXPROCS,
	// 1 forces the legacy sequential path, N caps concurrency at N. Every
	// fan-out point (scheme, seed, or size) owns its simulator, generators,
	// and telemetry buffer, and results are always collected and folded in
	// index order, so the value changes wall-clock time only — never
	// results (see the equivalence tests in parallel_test.go).
	Jobs int
}

func (o Options) kinds() []partition.Kind {
	if len(o.Kinds) > 0 {
		return o.Kinds
	}
	return []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle, partition.Shared}
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1
	}
	return o.Scale
}

// BuildDomains constructs the 8 domain specs for a mix at a scale.
func BuildDomains(mix workload.Mix, scale float64, secret uint64) ([]sim.DomainSpec, error) {
	specs := make([]sim.DomainSpec, 0, len(mix.Pairs))
	for _, pair := range mix.Pairs {
		cryptoPhase := scaleCount(fullCryptoPhase, scale)
		specPhase := scaleCount(fullSPECPhase, scale)
		total := scaleCount(fullTotal, scale)
		stream, err := pair.PairStream(cryptoPhase, specPhase, total, secret)
		if err != nil {
			return nil, err
		}
		// Pressure stream: same behaviour, endless, distinct seed so it does
		// not replay the measured stream verbatim.
		specP, err := workload.SPECByName(pair.SPEC)
		if err != nil {
			return nil, err
		}
		pressureParams := specP
		pressureParams.Seed += 0xA5A5
		pressure, err := workload.NewGenerator(pressureParams)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sim.DomainSpec{
			Name:     pair.String(),
			Stream:   stream,
			Pressure: pressure,
			CPU:      specP.CPUParams(),
		})
	}
	return specs, nil
}

func scaleCount(n uint64, scale float64) uint64 {
	s := uint64(float64(n) * scale)
	if s < 1000 {
		s = 1000
	}
	return s
}

// MixResult holds one mix's results across schemes.
type MixResult struct {
	Mix       workload.Mix
	Scale     float64
	PerScheme map[partition.Kind]*sim.Result
}

// RunMix runs one mix under the selected schemes. The schemes are fully
// independent simulations and run on the experiment engine's worker pool,
// bounded by Options.Jobs.
func RunMix(mix workload.Mix, opts Options) (*MixResult, error) {
	return RunMixContext(context.Background(), mix, opts)
}

// RunMixContext is RunMix with cancellation: canceling ctx stops schemes
// that have not started yet and returns the context's error.
//
// By default the mix runs on the fused engine (mixlane.go): one front-end
// pass shared by all schemes, bitwise-equal to the oracle below. The
// oracle runs when fusion is disabled or the mix is ineligible.
func RunMixContext(ctx context.Context, mix workload.Mix, opts Options) (*MixResult, error) {
	if !opts.DisableFusion {
		res, ok, err := runMixFused(ctx, mix, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return runMixOracle(ctx, mix, opts)
}

// runMixOracle is the reference path: every scheme generates and simulates
// its own front-end from scratch.
func runMixOracle(ctx context.Context, mix workload.Mix, opts Options) (*MixResult, error) {
	res := &MixResult{Mix: mix, Scale: opts.scale(), PerScheme: map[partition.Kind]*sim.Result{}}
	kinds := opts.kinds()
	results, err := parallel.Map(ctx, len(kinds), opts.Jobs, func(_ context.Context, i int) (*sim.Result, error) {
		kind := kinds[i]
		scheme := partition.DefaultScheme(kind)
		scheme.Annotated = !opts.DisableAnnotations
		cfg := sim.Scaled(scheme, res.Scale)
		cfg.OptimizeMaintain = !opts.WorstCaseAccounting
		cfg.Budget = opts.Budget
		if opts.WayPartitioned {
			cfg.WayPartitioned = true
			cfg.Sizes = cfg.WaySizes()
		}
		if opts.SimSeed != 0 {
			cfg.Seed = opts.SimSeed
		}
		if opts.TracerFor != nil {
			cfg.Tracer = opts.TracerFor(kind)
		}
		if opts.MetricsFor != nil {
			cfg.Metrics = opts.MetricsFor(kind)
		}
		specs, err := BuildDomains(mix, res.Scale, opts.Secret)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, specs)
		if err != nil {
			return nil, fmt.Errorf("mix %d, %v: %w", mix.ID, kind, err)
		}
		r, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("mix %d, %v: %w", mix.ID, kind, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, kind := range kinds {
		res.PerScheme[kind] = results[i]
	}
	return res, nil
}

// Replication aggregates one metric over repeated runs with different
// random-delay seeds, reporting its spread — the stability check behind the
// single-seed numbers in EXPERIMENTS.md.
type Replication struct {
	Seeds                []uint64
	SpeedupMean          float64
	SpeedupMin           float64
	SpeedupMax           float64
	LeakPerAssessMean    float64
	LeakPerAssessMin     float64
	LeakPerAssessMax     float64
	ActionSequencesMatch bool
}

// Replicate runs the mix under Untangle (plus the Static baseline) once per
// seed and summarizes the spread. It also checks the central determinism
// property across seeds: the random delay perturbs only WHEN actions apply,
// so the action sequences must be identical for every seed.
//
// The seeds fan out onto the worker pool (Options.Jobs); per-seed outputs
// are collected by seed index and folded sequentially, so the summary is
// identical to the legacy one-seed-at-a-time loop.
func Replicate(mix workload.Mix, opts Options, seeds []uint64) (Replication, error) {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3}
	}
	rep := Replication{Seeds: seeds, ActionSequencesMatch: true}
	type seedRun struct {
		speed   float64
		leak    float64
		actions [][]int64
	}
	runs, err := parallel.Map(context.Background(), len(seeds), opts.Jobs,
		func(ctx context.Context, i int) (seedRun, error) {
			o := opts
			o.SimSeed = seeds[i]
			o.Kinds = []partition.Kind{partition.Static, partition.Untangle}
			// The two schemes of each seed already saturate small pools;
			// run them sequentially inside the seed-level fan-out so jobs
			// bounds total concurrency instead of multiplying.
			o.Jobs = 1
			res, err := RunMixContext(ctx, mix, o)
			if err != nil {
				return seedRun{}, err
			}
			var run seedRun
			if run.speed, err = res.SystemSpeedup(partition.Untangle); err != nil {
				return seedRun{}, err
			}
			leak, err := res.LeakagePerAssessment(partition.Untangle)
			if err != nil {
				return seedRun{}, err
			}
			run.leak = stats.Mean(leak)
			run.actions = make([][]int64, len(res.PerScheme[partition.Untangle].Domains))
			for j, d := range res.PerScheme[partition.Untangle].Domains {
				run.actions[j] = d.Trace.ActionSizes()
			}
			return run, nil
		})
	if err != nil {
		return rep, err
	}
	var speeds, leaks []float64
	firstActions := runs[0].actions
	for _, run := range runs {
		speeds = append(speeds, run.speed)
		leaks = append(leaks, run.leak)
		for i := range run.actions {
			if !equalInt64(run.actions[i], firstActions[i]) {
				rep.ActionSequencesMatch = false
			}
		}
	}
	rep.SpeedupMean = stats.Mean(speeds)
	rep.SpeedupMin = stats.Quantile(speeds, 0)
	rep.SpeedupMax = stats.Quantile(speeds, 1)
	rep.LeakPerAssessMean = stats.Mean(leaks)
	rep.LeakPerAssessMin = stats.Quantile(leaks, 0)
	rep.LeakPerAssessMax = stats.Quantile(leaks, 1)
	return rep, nil
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NormalizedIPC returns per-workload IPC under kind divided by Static
// (the bottom charts of Figures 10 and 12-17). It requires Static in the
// result set.
func (m *MixResult) NormalizedIPC(kind partition.Kind) ([]float64, error) {
	base, ok := m.PerScheme[partition.Static]
	if !ok {
		return nil, fmt.Errorf("experiments: Static baseline missing")
	}
	r, ok := m.PerScheme[kind]
	if !ok {
		return nil, fmt.Errorf("experiments: %v results missing", kind)
	}
	out := make([]float64, len(r.Domains))
	for i := range r.Domains {
		if base.Domains[i].IPC <= 0 {
			return nil, fmt.Errorf("experiments: zero Static IPC for %s", base.Domains[i].Name)
		}
		out[i] = r.Domains[i].IPC / base.Domains[i].IPC
	}
	return out, nil
}

// SystemSpeedup returns the geometric-mean normalized IPC (the "system-wide
// speedup" of Section 9).
func (m *MixResult) SystemSpeedup(kind partition.Kind) (float64, error) {
	norm, err := m.NormalizedIPC(kind)
	if err != nil {
		return 0, err
	}
	return stats.GeoMean(norm), nil
}

// LeakagePerAssessment returns each workload's average leakage per
// assessment under kind (the middle charts).
func (m *MixResult) LeakagePerAssessment(kind partition.Kind) ([]float64, error) {
	r, ok := m.PerScheme[kind]
	if !ok {
		return nil, fmt.Errorf("experiments: %v results missing", kind)
	}
	out := make([]float64, len(r.Domains))
	for i, d := range r.Domains {
		out[i] = d.Leakage.PerAssessment()
	}
	return out, nil
}

// TotalLeakage returns each workload's total leakage in bits under kind.
func (m *MixResult) TotalLeakage(kind partition.Kind) ([]float64, error) {
	r, ok := m.PerScheme[kind]
	if !ok {
		return nil, fmt.Errorf("experiments: %v results missing", kind)
	}
	out := make([]float64, len(r.Domains))
	for i, d := range r.Domains {
		out[i] = d.Leakage.TotalBits
	}
	return out, nil
}

// PartitionSummaries returns the five-number partition-size summaries (the
// top charts) for each workload under kind.
func (m *MixResult) PartitionSummaries(kind partition.Kind) ([]stats.Summary, error) {
	r, ok := m.PerScheme[kind]
	if !ok {
		return nil, fmt.Errorf("experiments: %v results missing", kind)
	}
	out := make([]stats.Summary, len(r.Domains))
	for i, d := range r.Domains {
		out[i] = stats.SummarizeInt64(d.PartitionSamples)
	}
	return out, nil
}

// MaintainFraction returns the overall fraction of assessments that were
// Maintains under kind (Section 9 reports ~90% for Untangle).
func (m *MixResult) MaintainFraction(kind partition.Kind) (float64, error) {
	r, ok := m.PerScheme[kind]
	if !ok {
		return 0, fmt.Errorf("experiments: %v results missing", kind)
	}
	var assess, visible int
	for _, d := range r.Domains {
		assess += d.Leakage.Assessments
		visible += d.Leakage.Visible
	}
	if assess == 0 {
		return 0, nil
	}
	return 1 - float64(visible)/float64(assess), nil
}

// Table6Row summarizes one mix for Table 6.
type Table6Row struct {
	MixID                  int
	TimeAvgPerAssessment   float64
	TimeAvgTotal           float64
	UntangleAvgPerAssess   float64
	UntangleAvgTotal       float64
	UntangleMaintainFrac   float64
	ReductionPerAssessment float64 // 1 - Untangle/Time
}

// Table6 computes the Table 6 summary for a mix result (requires Time and
// Untangle runs).
func (m *MixResult) Table6() (Table6Row, error) {
	timePer, err := m.LeakagePerAssessment(partition.TimeBased)
	if err != nil {
		return Table6Row{}, err
	}
	timeTot, _ := m.TotalLeakage(partition.TimeBased)
	unPer, err := m.LeakagePerAssessment(partition.Untangle)
	if err != nil {
		return Table6Row{}, err
	}
	unTot, _ := m.TotalLeakage(partition.Untangle)
	mf, _ := m.MaintainFraction(partition.Untangle)
	row := Table6Row{
		MixID:                m.Mix.ID,
		TimeAvgPerAssessment: stats.Mean(timePer),
		TimeAvgTotal:         stats.Mean(timeTot),
		UntangleAvgPerAssess: stats.Mean(unPer),
		UntangleAvgTotal:     stats.Mean(unTot),
		UntangleMaintainFrac: mf,
	}
	if row.TimeAvgPerAssessment > 0 {
		row.ReductionPerAssessment = 1 - row.UntangleAvgPerAssess/row.TimeAvgPerAssessment
	}
	return row, nil
}

// SensitivityResult is one row of the Figure 11 study.
type SensitivityResult struct {
	Name string
	// Sizes and NormIPC give the normalized-IPC curve (IPC at each
	// supported size divided by IPC at 8MB).
	Sizes    []int64
	NormIPC  []float64
	Adequate int64
	// Sensitive is true when the adequate LLC size exceeds the 2MB Static
	// partition (Section 8's classification).
	Sensitive bool
}

// sensitivitySizes returns the supported partition sizes of the study
// (ascending, ending at the 8MB normalization point).
func sensitivitySizes() []int64 {
	return sim.DefaultConfig(partition.DefaultScheme(partition.Static)).Sizes
}

// sensitivityPoint simulates one benchmark at one static partition size and
// returns its steady-state IPC. It is the direct path through the full
// simulator — kept as the ORACLE for the multi-lane engine: the engine must
// reproduce this function's IPC bitwise at every size (multilane_test.go),
// which is what makes the fused study a provable-equivalence optimization.
func sensitivityPoint(p workload.Params, size int64, instructions uint64) (float64, error) {
	scheme := partition.DefaultScheme(partition.Static)
	scheme.StartSize = size
	cfg := sim.DefaultConfig(scheme)
	cfg.Warmup = 0
	cfg.WarmupInstructions = instructions
	cfg.SampleEvery = 100 * time.Microsecond
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return 0, err
	}
	s, err := sim.New(cfg, []sim.DomainSpec{{
		Name:   p.Name,
		Stream: isa.NewLimited(gen, 2*instructions),
		CPU:    p.CPUParams(),
	}})
	if err != nil {
		return 0, err
	}
	r, err := s.Run()
	if err != nil {
		return 0, err
	}
	return r.Domains[0].IPC, nil
}

// assembleSensitivity folds a benchmark's per-size IPCs (ascending size
// order) into the normalized curve and its adequacy classification.
func assembleSensitivity(name string, sizes []int64, ipcs []float64) SensitivityResult {
	res := SensitivityResult{Name: name, Sizes: sizes}
	maxIPC := ipcs[len(ipcs)-1]
	res.NormIPC = make([]float64, len(sizes))
	res.Adequate = sizes[len(sizes)-1]
	for i := range sizes {
		res.NormIPC[i] = ipcs[i] / maxIPC
	}
	for i := range sizes {
		if res.NormIPC[i] >= 0.9 {
			res.Adequate = sizes[i]
			break
		}
	}
	res.Sensitive = res.Adequate > 2<<20
	return res
}

// Sensitivity runs the Figure 11 study for one benchmark: IPC with every
// supported partition size, normalized to the 8MB maximum. instructions is
// the measured slice length; an equally long warmup precedes it so the
// partition reaches steady state before measurement (the paper's SimPoint
// slices are long enough that warmup is negligible; at reduced scale it is
// not). For classification-stable results use at least ~1.5M instructions.
//
// All nine sizes are computed by the multi-lane engine in one pass over the
// benchmark's op stream: the generator and the private L1 run once, and only
// the per-size LLC lanes and cycle accounting replicate (see multilane.go).
// The per-size IPCs are bitwise identical to running sensitivityPoint once
// per size — the engine is an optimization, never an approximation.
func Sensitivity(name string, instructions uint64) (SensitivityResult, error) {
	p, err := workload.SPECByName(name)
	if err != nil {
		return SensitivityResult{}, err
	}
	e := enginePool.Get().(*laneEngine)
	defer enginePool.Put(e)
	ipcs, _, err := e.run(context.Background(), FrontEndCache(), p, instructions)
	if err != nil {
		return SensitivityResult{}, err
	}
	return assembleSensitivity(name, e.sizes, ipcs), nil
}

// Classify computes a benchmark's adequate LLC size and Sensitive flag. It
// used to short-circuit the curve with a descending walk that skipped sizes
// below the first inadequate one; the multi-lane engine made that walk
// obsolete — all nine sizes now cost one front-end pass together, which is
// cheaper than even two sequential points of the old path — so Classify is
// the full curve and its result carries every size, exactly like
// Sensitivity.
func Classify(name string, instructions uint64) (SensitivityResult, error) {
	return Sensitivity(name, instructions)
}

// sortedSPECParams returns the benchmark table sorted by name — the Figure
// 11 order — so the study indexes parameters directly instead of paying a
// linear SPECByName lookup per benchmark.
func sortedSPECParams() []workload.Params {
	params := append([]workload.Params(nil), workload.SPECBenchmarks...)
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })
	return params
}

// SensitivityStudy runs Sensitivity for all 36 benchmarks on the multi-lane
// engine: 36 benchmark-level tasks fan out onto the worker pool (each task
// is one front-end pass feeding all nine sizes), instead of the 324
// point-level tasks of the pre-engine study. Results are collected by
// benchmark index, so they are identical for every jobs value.
func SensitivityStudy(instructions uint64, jobs int) ([]SensitivityResult, error) {
	return SensitivityStudyContext(context.Background(), instructions, jobs)
}

// SensitivityStudyContext is SensitivityStudy with cancellation: canceling
// ctx stops benchmarks that have not started, interrupts in-flight engine
// passes at their next front-end chunk, and returns the context's error.
// It is the uncheckpointed special case of SensitivityStudyCheckpointed,
// so every study — journaled or not — retries transient per-pass failures
// and isolates panics to the failing benchmark.
func SensitivityStudyContext(ctx context.Context, instructions uint64, jobs int) ([]SensitivityResult, error) {
	return SensitivityStudyCheckpointed(ctx, instructions, jobs, nil)
}

// ClassifyStudy computes all 36 classifications. With the multi-lane engine
// the full curve and the classification cost the same single pass, so this
// is SensitivityStudy under its historical name (kept because callers that
// only need Adequate/Sensitive shouldn't care how the curve is produced).
func ClassifyStudy(instructions uint64, jobs int) ([]SensitivityResult, error) {
	return SensitivityStudyContext(context.Background(), instructions, jobs)
}

// ClassifyStudyContext is ClassifyStudy with cancellation.
func ClassifyStudyContext(ctx context.Context, instructions uint64, jobs int) ([]SensitivityResult, error) {
	return SensitivityStudyContext(ctx, instructions, jobs)
}

// TotalLLCDemand sums the adequate LLC sizes of a mix's SPEC members given a
// sensitivity study (the "Total LLC demand" figure captions).
func TotalLLCDemand(mix workload.Mix, study []SensitivityResult) int64 {
	bySize := map[string]int64{}
	for _, r := range study {
		bySize[r.Name] = r.Adequate
	}
	var total int64
	for _, p := range mix.Pairs {
		total += bySize[p.SPEC]
	}
	return total
}
