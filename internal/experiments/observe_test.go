package experiments

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"untangle/internal/checkpoint"
)

// unitLog is a thread-safe recorder standing in for an obs.Campaign.
type unitLog struct {
	mu       sync.Mutex
	began    map[string]int // phase -> begins
	done     int
	resumed  int
	replayed int
	failed   int
	passes   int
}

func (l *unitLog) observer(phase, unit string) func(outcome string, err error) {
	l.mu.Lock()
	if l.began == nil {
		l.began = map[string]int{}
	}
	l.began[phase]++
	l.mu.Unlock()
	if strings.ContainsRune(phase, '/') {
		return func(outcome string, err error) {
			l.mu.Lock()
			l.passes++
			l.mu.Unlock()
		}
	}
	return func(outcome string, err error) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.done++
		switch outcome {
		case UnitResumed:
			l.resumed++
		case UnitReplayed:
			l.replayed++
		}
		if err != nil {
			l.failed++
		}
	}
}

// With no observer installed, ObserveUnit is nil; with one installed, every
// sensitivity unit and engine pass reports exactly once, and journal
// replays are flagged cached.
func TestUnitObserverSeam(t *testing.T) {
	if ObserveUnit("sensitivity", "x") != nil {
		t.Fatal("ObserveUnit returned a callback with no observer installed")
	}

	var l unitLog
	SetUnitObserver(l.observer)
	defer SetUnitObserver(nil)

	fp := checkpoint.Fingerprint{
		Instructions: resilienceTestInstructions,
		Units:        "sensitivity",
		ParamsTag:    ParamsFingerprint(),
	}
	j, err := checkpoint.Open(filepath.Join(t.TempDir(), "obs.ckpt"), fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	if _, err := SensitivityStudyCheckpointed(context.Background(), resilienceTestInstructions, 2, j); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	firstDone, firstResumed, firstPasses := l.done, l.resumed, l.passes
	l.mu.Unlock()
	if firstDone != 36 {
		t.Errorf("units done = %d, want 36", firstDone)
	}
	if firstResumed != 0 {
		t.Errorf("fresh run reported %d resumed units", firstResumed)
	}
	if firstPasses != 36 {
		t.Errorf("engine passes = %d, want 36 (one attempt each)", firstPasses)
	}

	// Re-run against the full journal: every unit reports resumed, and no
	// engine pass runs.
	if _, err := SensitivityStudyCheckpointed(context.Background(), resilienceTestInstructions, 2, j); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if got := l.done - firstDone; got != 36 {
		t.Errorf("replay units done = %d, want 36", got)
	}
	if l.resumed != 36 {
		t.Errorf("replay resumed = %d, want 36", l.resumed)
	}
	if l.passes != firstPasses {
		t.Errorf("replay ran %d engine passes, want 0", l.passes-firstPasses)
	}
	if l.failed != 0 {
		t.Errorf("failed = %d, want 0", l.failed)
	}
}
