package experiments

import (
	"math"
	"testing"

	"untangle/internal/partition"
	"untangle/internal/workload"
)

// testScale keeps the mix tests quick; the shapes asserted here are robust
// down to this scale (the bench harness runs larger).
const testScale = 0.003

func runMix1(t *testing.T) *MixResult {
	t.Helper()
	mix, err := workload.MixByID(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMix(mix, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var mix1Cache *MixResult

func mix1(t *testing.T) *MixResult {
	t.Helper()
	if mix1Cache == nil {
		mix1Cache = runMix1(t)
	}
	return mix1Cache
}

func TestBuildDomains(t *testing.T) {
	mix, _ := workload.MixByID(1)
	specs, err := BuildDomains(mix, 0.001, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("%d domains, want 8", len(specs))
	}
	for i, s := range specs {
		if s.Stream == nil || s.Pressure == nil {
			t.Errorf("domain %d missing streams", i)
		}
		if s.Name != mix.Pairs[i].String() {
			t.Errorf("domain %d name %q", i, s.Name)
		}
		if err := s.CPU.Validate(); err != nil {
			t.Errorf("domain %d: %v", i, err)
		}
	}
	bad := mix
	bad.Pairs[0].SPEC = "nope"
	if _, err := BuildDomains(bad, 0.001, 0); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestScaleCountFloor(t *testing.T) {
	if got := scaleCount(1_000_000, 0.000001); got != 1000 {
		t.Errorf("scaleCount floor = %d, want 1000", got)
	}
	if got := scaleCount(1_000_000, 0.5); got != 500_000 {
		t.Errorf("scaleCount = %d", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.kinds()) != 4 {
		t.Errorf("default kinds = %v", o.kinds())
	}
	if o.scale() != 1 {
		t.Errorf("default scale = %v", o.scale())
	}
	o.Scale = 2 // invalid, falls back to 1
	if o.scale() != 1 {
		t.Errorf("invalid scale not clamped: %v", o.scale())
	}
	o.Kinds = []partition.Kind{partition.Untangle}
	if len(o.kinds()) != 1 {
		t.Error("explicit kinds ignored")
	}
}

func TestMix1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	res := mix1(t)

	// Both dynamic schemes must beat Static system-wide (Figure 10 Mix 1).
	for _, kind := range []partition.Kind{partition.TimeBased, partition.Untangle} {
		speed, err := res.SystemSpeedup(kind)
		if err != nil {
			t.Fatal(err)
		}
		if speed < 1.02 {
			t.Errorf("%v system speedup = %v, want clearly above Static", kind, speed)
		}
	}

	// The two LLC-sensitive workloads (gcc_2, parest_0 at indexes 3 and 6)
	// must attain high speedups under the dynamic schemes.
	norm, err := res.NormalizedIPC(partition.Untangle)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{3, 6} {
		if norm[idx] < 1.2 {
			t.Errorf("sensitive workload %s speedup = %v, want > 1.2",
				res.Mix.Pairs[idx], norm[idx])
		}
	}
	// Insensitive workloads must not collapse.
	for _, idx := range []int{0, 1, 2, 4, 5, 7} {
		if norm[idx] < 0.85 {
			t.Errorf("insensitive workload %s normalized IPC = %v, want >= 0.85",
				res.Mix.Pairs[idx], norm[idx])
		}
	}
}

func TestMix1Leakage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	res := mix1(t)
	timeLeak, err := res.LeakagePerAssessment(partition.TimeBased)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range timeLeak {
		if math.Abs(v-math.Log2(9)) > 1e-9 {
			t.Errorf("Time leakage[%d] = %v, want log2 9", i, v)
		}
	}
	unLeak, err := res.LeakagePerAssessment(partition.Untangle)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range unLeak {
		if v >= math.Log2(9) {
			t.Errorf("Untangle leakage[%d] = %v, not below Time", i, v)
		}
	}
	row, err := res.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if row.ReductionPerAssessment < 0.5 {
		t.Errorf("reduction = %v, paper reports 78%% on average", row.ReductionPerAssessment)
	}
	if row.UntangleAvgTotal >= row.TimeAvgTotal {
		t.Error("Untangle total leakage not below Time")
	}
	mf, err := res.MaintainFraction(partition.Untangle)
	if err != nil {
		t.Fatal(err)
	}
	if mf < 0.7 {
		t.Errorf("Maintain fraction = %v, paper reports ~90%%", mf)
	}
}

func TestMix1PartitionSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	res := mix1(t)
	sums, err := res.PartitionSummaries(partition.Untangle)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 8 {
		t.Fatalf("%d summaries", len(sums))
	}
	// The sensitive workloads' median partitions must exceed the static 2MB;
	// at least one insensitive workload must sit below it.
	if sums[6].Median <= float64(2<<20) {
		t.Errorf("parest_0 median partition %v, want above 2MB", sums[6].Median)
	}
	below := false
	for _, idx := range []int{0, 1, 2, 4, 5, 7} {
		if sums[idx].Median < float64(2<<20) {
			below = true
		}
	}
	if !below {
		t.Error("no insensitive workload gave back capacity")
	}
}

func TestWorstCaseAccountingRaisesLeakage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	mix, _ := workload.MixByID(1)
	normal := mix1(t)
	worst, err := RunMix(mix, Options{
		Scale:               testScale,
		Kinds:               []partition.Kind{partition.Untangle},
		WorstCaseAccounting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl, _ := normal.LeakagePerAssessment(partition.Untangle)
	wl, _ := worst.LeakagePerAssessment(partition.Untangle)
	for i := range nl {
		if wl[i] <= nl[i] {
			t.Errorf("workload %d: worst-case %v not above optimized %v", i, wl[i], nl[i])
		}
	}
}

func TestMissingSchemeErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	mix, _ := workload.MixByID(1)
	res, err := RunMix(mix, Options{Scale: testScale, Kinds: []partition.Kind{partition.Untangle}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.NormalizedIPC(partition.Untangle); err == nil {
		t.Error("normalization without Static baseline accepted")
	}
	if _, err := res.LeakagePerAssessment(partition.TimeBased); err == nil {
		t.Error("missing scheme accepted")
	}
	if _, err := res.Table6(); err == nil {
		t.Error("Table6 without Time run accepted")
	}
	if _, err := res.PartitionSummaries(partition.Shared); err == nil {
		t.Error("missing scheme accepted")
	}
	if _, err := res.MaintainFraction(partition.TimeBased); err == nil {
		t.Error("missing scheme accepted")
	}
}

func TestSensitivityClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	// A cheap two-benchmark check: one known-sensitive, one known-
	// insensitive benchmark classify correctly even at modest fidelity.
	sens, err := Sensitivity("mcf_0", 800_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sens.Sensitive {
		t.Errorf("mcf_0 classified insensitive (adequate %d)", sens.Adequate)
	}
	insens, err := Sensitivity("imagick_0", 800_000)
	if err != nil {
		t.Fatal(err)
	}
	if insens.Sensitive {
		t.Errorf("imagick_0 classified sensitive (adequate %d)", insens.Adequate)
	}
	// Normalized IPC must be monotone-ish and end at 1.
	last := insens.NormIPC[len(insens.NormIPC)-1]
	if math.Abs(last-1) > 1e-9 {
		t.Errorf("final normalized IPC = %v, want 1", last)
	}
	if _, err := Sensitivity("nope", 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestTotalLLCDemand(t *testing.T) {
	study := []SensitivityResult{
		{Name: "mcf_0", Adequate: 6 << 20},
		{Name: "imagick_0", Adequate: 256 << 10},
	}
	mix := workload.Mix{Pairs: [8]workload.Pair{
		{SPEC: "mcf_0"}, {SPEC: "imagick_0"}, {SPEC: "mcf_0"}, {SPEC: "mcf_0"},
		{SPEC: "mcf_0"}, {SPEC: "mcf_0"}, {SPEC: "mcf_0"}, {SPEC: "mcf_0"},
	}}
	want := int64(7*(6<<20) + 256<<10)
	if got := TotalLLCDemand(mix, study); got != want {
		t.Errorf("demand = %d, want %d", got, want)
	}
}

func TestAdaptationDynamicBeatsStaticOnBurstyWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	results, err := Adaptation(0.003, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[partition.Kind]AdaptationResult{}
	for _, r := range results {
		byKind[r.Kind] = r
	}
	static, ok := byKind[partition.Static]
	if !ok {
		t.Fatal("missing Static result")
	}
	if static.PartitionSwing != 0 {
		t.Errorf("Static partition swung by %d bytes", static.PartitionSwing)
	}
	for _, kind := range []partition.Kind{partition.TimeBased, partition.Untangle} {
		r := byKind[kind]
		if r.PartitionSwing <= 0 {
			t.Errorf("%v: no partition adaptation on a bursty workload", kind)
		}
		if r.BurstyIPC <= static.BurstyIPC {
			t.Errorf("%v: bursty IPC %v not above Static %v — dynamic adaptation broken",
				kind, r.BurstyIPC, static.BurstyIPC)
		}
	}
	un := byKind[partition.Untangle]
	tm := byKind[partition.TimeBased]
	if un.LeakagePerAssessment >= tm.LeakagePerAssessment {
		t.Errorf("Untangle leakage %v not below Time %v on the bursty workload",
			un.LeakagePerAssessment, tm.LeakagePerAssessment)
	}
}

func TestCooldownSweepTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	mix, _ := workload.MixByID(1)
	points, err := CooldownSweep(mix, testScale, []float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Section 5.3.2: longer cooldown => lower leakage rate. The rate is the
	// quantity the mechanism controls; per-assessment bits GROW with the
	// effective cooldown (rarer, pricier transmissions), so assert on rate.
	for i := 1; i < len(points); i++ {
		if points[i].BitsPerSecond >= points[i-1].BitsPerSecond {
			t.Errorf("leakage rate did not fall with cooldown: %v -> %v bits/s",
				points[i-1].BitsPerSecond, points[i].BitsPerSecond)
		}
	}
	// Performance must not improve as the scheme gets less adaptive.
	if points[2].Speedup > points[0].Speedup*1.02 {
		t.Errorf("speedup rose with a 16x cooldown: %v vs %v", points[2].Speedup, points[0].Speedup)
	}
	for _, p := range points {
		if p.Speedup <= 0 || p.CooldownNs <= 0 {
			t.Errorf("malformed point %+v", p)
		}
	}
}

func TestBudgetExperimentFreezeCapsLeakage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	results, err := BudgetExperiment(testScale, 2_000_000, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	unlimited, capped := results[0], results[1]
	if unlimited.Frozen {
		t.Error("unlimited run froze")
	}
	if unlimited.LeakedBits <= 2 {
		t.Skipf("unlimited run leaked only %v bits; scenario too quiet to test the cap", unlimited.LeakedBits)
	}
	if !capped.Frozen {
		t.Fatal("2-bit budget did not freeze a bursty victim")
	}
	// Security: leakage stops near the threshold (at most one extra charge).
	if capped.LeakedBits >= unlimited.LeakedBits {
		t.Errorf("freeze did not cap leakage: %v vs %v", capped.LeakedBits, unlimited.LeakedBits)
	}
	if capped.LeakedBits > 2+4 {
		t.Errorf("leakage %v overshot the 2-bit threshold by more than one charge", capped.LeakedBits)
	}
	// Performance: the frozen victim cannot keep adapting, so it must not
	// outperform the unlimited run.
	if capped.VictimIPC > unlimited.VictimIPC*1.01 {
		t.Errorf("frozen victim IPC %v above unlimited %v", capped.VictimIPC, unlimited.VictimIPC)
	}
}

func TestReplicateStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	mix, _ := workload.MixByID(1)
	rep, err := Replicate(mix, Options{Scale: testScale}, []uint64{1, 7, 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpeedupMean <= 1 {
		t.Errorf("mean speedup %v, want above Static", rep.SpeedupMean)
	}
	// The random delay perturbs only enactment times; performance and
	// leakage must be stable across seeds.
	if spread := rep.SpeedupMax - rep.SpeedupMin; spread > 0.05*rep.SpeedupMean {
		t.Errorf("speedup spread %v too wide (mean %v)", spread, rep.SpeedupMean)
	}
	if rep.LeakPerAssessMax > 4*rep.LeakPerAssessMean && rep.LeakPerAssessMean > 0 {
		t.Errorf("leakage spread [%v, %v] too wide", rep.LeakPerAssessMin, rep.LeakPerAssessMax)
	}
	// Note: ActionSequencesMatch is reported, not asserted — in multi-domain
	// runs the delay shifts wall-clock interleavings, and cross-domain
	// monitor state is environment (Section 6.2), not the victim's secret.
	t.Logf("replication: speedup %v [%v, %v], leak %v, actions match: %v",
		rep.SpeedupMean, rep.SpeedupMin, rep.SpeedupMax, rep.LeakPerAssessMean, rep.ActionSequencesMatch)
}

func TestDelaySweepLowersLeakage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short mode")
	}
	mix, _ := workload.MixByID(1)
	points, err := DelaySweep(mix, testScale, []float64{0.25, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Mechanism 2: a wider delay lowers the per-resize charge.
	for i := 1; i < len(points); i++ {
		if points[i].BitsPerAssessment > points[i-1].BitsPerAssessment*1.001 {
			t.Errorf("leakage did not fall with delay width: %v -> %v",
				points[i-1].BitsPerAssessment, points[i].BitsPerAssessment)
		}
	}
	// The delay postpones actions but does not restrict them: performance
	// stays essentially unchanged.
	if points[2].Speedup < points[0].Speedup*0.95 {
		t.Errorf("wide delay crushed performance: %v vs %v", points[2].Speedup, points[0].Speedup)
	}
}
