// The evaluation's resilience layer: configuration fingerprinting for the
// checkpoint journal, bounded retry of transient engine failures, and the
// checkpointed variant of the sensitivity study. A paper-fidelity campaign
// is hours of compute; this file is what lets it survive a fault in one
// point (retry), a crash of the process (checkpoint/resume), and a silent
// configuration drift between the crashing and the resuming binary
// (fingerprint mismatch fails loudly).
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"untangle/internal/checkpoint"
	"untangle/internal/parallel"
	"untangle/internal/partition"
	"untangle/internal/workload"
)

// Retry policy for one unit of campaign work. Three attempts with a short
// exponential backoff outlast any transient fault worth retrying; anything
// that fails three deterministic re-runs is a real error. Simulations are
// pure functions of their configuration, so a retried unit is bit-identical
// to a first-attempt success (TestTransientFaultRetriedBitIdentical).
const (
	RetryAttempts = 3
	RetryBackoff  = 50 * time.Millisecond
)

// ParamsFingerprint hashes the parameter tables compiled into this binary —
// the SPEC benchmark set, the 16 mixes, and the four schemes' defaults —
// into a short tag. It plays the role of a git describe in the checkpoint
// fingerprint: a journal written by a binary with different tables must not
// be resumed, because its journaled units would not match what this binary
// computes.
func ParamsFingerprint() string {
	h := fnv.New64a()
	for _, p := range workload.SPECBenchmarks {
		fmt.Fprintf(h, "%+v\n", p)
	}
	for _, m := range workload.Mixes {
		fmt.Fprintf(h, "%+v\n", m)
	}
	for _, k := range []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle, partition.Shared} {
		fmt.Fprintf(h, "%+v\n", partition.DefaultScheme(k))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SensitivityKey is the checkpoint journal key of one benchmark's pass.
func SensitivityKey(name string) string { return "sens/" + name }

// sensUnit is the journal encoding of a SensitivityResult. The IPC curve
// goes through checkpoint.F64 so the round trip is bit-exact and tolerates
// the NaN points a small instruction budget produces (encoding/json rejects
// NaN; a journal must record whatever the engine computed).
type sensUnit struct {
	Name      string           `json:"name"`
	Sizes     []int64          `json:"sizes"`
	NormIPC   []checkpoint.F64 `json:"norm_ipc"`
	Adequate  int64            `json:"adequate"`
	Sensitive bool             `json:"sensitive"`
}

func toSensUnit(r SensitivityResult) sensUnit {
	return sensUnit{
		Name:      r.Name,
		Sizes:     r.Sizes,
		NormIPC:   checkpoint.F64s(r.NormIPC),
		Adequate:  r.Adequate,
		Sensitive: r.Sensitive,
	}
}

func (u sensUnit) result() SensitivityResult {
	return SensitivityResult{
		Name:      u.Name,
		Sizes:     u.Sizes,
		NormIPC:   checkpoint.Floats(u.NormIPC),
		Adequate:  u.Adequate,
		Sensitive: u.Sensitive,
	}
}

// SensitivityStudyCheckpointed is the resilient Figure 11 study: each
// benchmark pass is retried on transient failure, journaled on completion,
// and skipped (its journaled curve replayed) when the journal already holds
// it. j may be nil, which degrades to SensitivityStudyContext plus retry.
// The journaled values round-trip bit-exactly (the IPC curve is stored as
// IEEE-754 bit patterns, see checkpoint.F64), so a resumed study is
// identical to an uninterrupted one — the property the cmd/experiments
// equivalence test pins down at the report-byte level.
func SensitivityStudyCheckpointed(ctx context.Context, instructions uint64, jobs int, j *checkpoint.Journal) ([]SensitivityResult, error) {
	params := sortedSPECParams()
	store := FrontEndCache()
	return parallel.Map(ctx, len(params), jobs,
		func(ctx context.Context, i int) (SensitivityResult, error) {
			key := SensitivityKey(params[i].Name)
			unitDone := ObserveUnit("sensitivity", params[i].Name)
			if j != nil {
				var u sensUnit
				if ok, err := j.Lookup(key, &u); err != nil {
					if unitDone != nil {
						unitDone(UnitGenerated, err)
					}
					return SensitivityResult{}, fmt.Errorf("checkpoint %s: %w", key, err)
				} else if ok {
					if unitDone != nil {
						unitDone(UnitResumed, nil)
					}
					return u.result(), nil
				}
			}
			var (
				sizes   []int64
				ipcs    []float64
				outcome string
			)
			err := parallel.RetryUnit(ctx, key, RetryAttempts, RetryBackoff, func(ctx context.Context, attempt int) error {
				if ferr := FireUnitFault(key); ferr != nil {
					return ferr
				}
				passDone := ObserveUnit("sensitivity/pass", fmt.Sprintf("%s#%d", params[i].Name, attempt))
				e := enginePool.Get().(*laneEngine)
				defer enginePool.Put(e)
				sizes = e.sizes
				var (
					replayed bool
					err      error
				)
				ipcs, replayed, err = e.run(ctx, store, params[i], instructions)
				outcome = UnitGenerated
				if replayed {
					outcome = UnitReplayed
				}
				if passDone != nil {
					passDone(outcome, err)
				}
				return err
			})
			if err != nil {
				if unitDone != nil {
					unitDone(UnitGenerated, err)
				}
				return SensitivityResult{}, err
			}
			r := assembleSensitivity(params[i].Name, sizes, ipcs)
			if j != nil {
				if err := j.Record(key, toSensUnit(r)); err != nil {
					if unitDone != nil {
						unitDone(UnitGenerated, err)
					}
					return SensitivityResult{}, fmt.Errorf("checkpoint %s: %w", key, err)
				}
			}
			if unitDone != nil {
				unitDone(outcome, nil)
			}
			return r, nil
		})
}
