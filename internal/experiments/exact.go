package experiments

import (
	"fmt"
	"time"

	"untangle/internal/core"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

// This file implements the "most accurate way to measure leakage" of
// Section 3.2 for victims small enough to enumerate: run the victim once
// per possible secret input, record the realizable resizing traces, and
// compute the exact entropy decomposition of Section 5.1. Comparing the
// exact values against the runtime accountant's charges is the strongest
// end-to-end check the framework admits:
//
//   - under annotated Untangle the exact ACTION leakage must be zero (the
//     action sequence is one realizable value), and
//   - the accountant's charged bits must upper-bound the exact total.

// ExactConfig describes an enumerable-victim experiment.
type ExactConfig struct {
	// Scheme is the partitioning scheme under measurement.
	Scheme partition.SchemeConfig
	// Scale shrinks the run as usual.
	Scale float64
	// Secrets enumerates the victim's secret inputs; all are assumed
	// equally likely (maximum-entropy prior, the conservative choice).
	Secrets []uint64
	// Victim builds the victim's stream for one secret value.
	Victim func(secret uint64) isa.Stream
	// PublicInstructions is the victim's public instruction budget.
	PublicInstructions uint64
	// TimeQuantum is the resolution at which action times enter the trace
	// (the attacker's measurement resolution); defaults to 1µs.
	TimeQuantum time.Duration
}

// ExactResult reports the exact decomposition next to the accountant view.
type ExactResult struct {
	// Total, Action, Scheduling are the exact entropies over the
	// realizable traces (Equation 5.6), in bits.
	Total, Action, Scheduling float64
	// ChargedBits is the maximum runtime accountant charge across the
	// secret runs (each run is one realizable execution; the budget must
	// cover the worst one).
	ChargedBits float64
	// TraceCount is the number of distinct realizable (S, T_S) traces.
	TraceCount int
}

// ExactLeakage enumerates the victim's secrets and measures the exact
// leakage of its resizing traces under the scheme.
func ExactLeakage(cfg ExactConfig) (ExactResult, error) {
	if len(cfg.Secrets) == 0 {
		return ExactResult{}, fmt.Errorf("experiments: no secrets to enumerate")
	}
	if cfg.Victim == nil {
		return ExactResult{}, fmt.Errorf("experiments: no victim")
	}
	quantum := cfg.TimeQuantum
	if quantum <= 0 {
		quantum = time.Microsecond
	}
	scale := cfg.Scale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	imagick, err := workload.SPECByName("imagick_0")
	if err != nil {
		return ExactResult{}, err
	}

	prob := 1.0 / float64(len(cfg.Secrets))
	var weighted []core.WeightedTrace
	var res ExactResult
	for _, secret := range cfg.Secrets {
		simCfg := sim.Scaled(cfg.Scheme, scale)
		simCfg.Warmup = 0
		s, err := sim.New(simCfg, []sim.DomainSpec{{
			Name:   "victim",
			Stream: isa.NewLimitedPublic(cfg.Victim(secret), cfg.PublicInstructions),
			CPU:    imagick.CPUParams(),
		}})
		if err != nil {
			return ExactResult{}, err
		}
		run, err := s.Run()
		if err != nil {
			return ExactResult{}, err
		}
		d := run.Domains[0]
		trace := core.ResizingTrace{}
		lastT := int64(-1)
		for _, a := range d.Trace {
			// The attacker observes only visible actions (Section 5.3.4).
			if !a.Visible {
				continue
			}
			trace.Actions = append(trace.Actions, a.Size)
			tq := int64(a.ApplyAt / quantum)
			if tq <= lastT {
				tq = lastT + 1 // keep timestamps strictly increasing at the resolution
			}
			lastT = tq
			trace.Times = append(trace.Times, tq)
		}
		weighted = append(weighted, core.WeightedTrace{Trace: trace, Prob: prob})
		if d.Leakage.TotalBits > res.ChargedBits {
			res.ChargedBits = d.Leakage.TotalBits
		}
	}
	ts, err := core.NewTraceSet(weighted)
	if err != nil {
		return ExactResult{}, err
	}
	res.Total, res.Action, res.Scheduling = ts.Decompose()
	seen := map[string]bool{}
	for _, wt := range weighted {
		seen[fmt.Sprint(wt.Trace.Actions, wt.Trace.Times)] = true
	}
	res.TraceCount = len(seen)
	return res, nil
}
