// Shard-worker entry points: the pieces of the evaluation a sharded
// campaign's worker processes execute one unit at a time, plus the journal
// encodings that cross the process boundary. Everything here reuses the
// exact retry/engine/assembly path of the in-process study, so a unit's
// journal bytes are identical whether it ran inline, checkpointed, or on a
// worker three respawns deep — the byte-equality the shard coordinator
// verifies on every duplicate result.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"untangle/internal/parallel"
	"untangle/internal/workload"
)

// SensitivityOrder returns the benchmark names of the Figure 11 study in
// canonical (sorted) execution order — the order the in-process study fans
// out and the order a sharded campaign enumerates its sensitivity units.
func SensitivityOrder() []string {
	params := sortedSPECParams()
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	return names
}

// RunSensitivityUnit executes one benchmark's sensitivity pass — transient
// retry, engine reuse, observability sub-spans, everything the
// checkpointed study does per unit — and returns the unit's journal
// encoding. Shard workers call this for "sens/<name>" assignments; the
// returned bytes are what SensitivityStudyCheckpointed would have recorded
// for the same unit.
func RunSensitivityUnit(ctx context.Context, name string, instructions uint64) (json.RawMessage, error) {
	var params *workload.Params
	for _, p := range sortedSPECParams() {
		if p.Name == name {
			pp := p
			params = &pp
			break
		}
	}
	if params == nil {
		return nil, fmt.Errorf("experiments: unknown sensitivity benchmark %q", name)
	}
	store := FrontEndCache()
	var (
		sizes []int64
		ipcs  []float64
	)
	err := parallel.RetryUnit(ctx, SensitivityKey(name), RetryAttempts, RetryBackoff, func(ctx context.Context, attempt int) error {
		if ferr := FireUnitFault(SensitivityKey(name)); ferr != nil {
			return ferr
		}
		passDone := ObserveUnit("sensitivity/pass", fmt.Sprintf("%s#%d", name, attempt))
		e := enginePool.Get().(*laneEngine)
		defer enginePool.Put(e)
		sizes = e.sizes
		var (
			replayed bool
			err      error
		)
		ipcs, replayed, err = e.run(ctx, store, *params, instructions)
		if passDone != nil {
			outcome := UnitGenerated
			if replayed {
				outcome = UnitReplayed
			}
			passDone(outcome, err)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(toSensUnit(assembleSensitivity(name, sizes, ipcs)))
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// DecodeSensitivityUnit reverses the journal encoding of one benchmark's
// pass (the bytes RunSensitivityUnit and the checkpointed study produce).
func DecodeSensitivityUnit(raw json.RawMessage) (SensitivityResult, error) {
	var u sensUnit
	if err := json.Unmarshal(raw, &u); err != nil {
		return SensitivityResult{}, fmt.Errorf("experiments: decode sensitivity unit: %w", err)
	}
	return u.result(), nil
}

// EncodeStudy packs an assembled study for broadcast to shard workers (mix
// units need it for report captions). The curve goes through
// checkpoint.F64 like every journaled float, so NaN points survive the
// trip.
func EncodeStudy(study []SensitivityResult) (json.RawMessage, error) {
	units := make([]sensUnit, len(study))
	for i, r := range study {
		units[i] = toSensUnit(r)
	}
	raw, err := json.Marshal(units)
	if err != nil {
		return nil, fmt.Errorf("experiments: encode study: %w", err)
	}
	return raw, nil
}

// DecodeStudy reverses EncodeStudy.
func DecodeStudy(raw json.RawMessage) ([]SensitivityResult, error) {
	var units []sensUnit
	if err := json.Unmarshal(raw, &units); err != nil {
		return nil, fmt.Errorf("experiments: decode study: %w", err)
	}
	study := make([]SensitivityResult, len(units))
	for i, u := range units {
		study[i] = u.result()
	}
	return study, nil
}
