package experiments

import (
	"context"
	"math"
	"testing"

	"untangle/internal/workload"
)

// oracleStudy computes the study the pre-engine way: one full simulator run
// per benchmark × size through the retained sensitivityPoint path.
func oracleStudy(t *testing.T, params []workload.Params, instructions uint64) []SensitivityResult {
	t.Helper()
	sizes := sensitivitySizes()
	out := make([]SensitivityResult, len(params))
	for b, p := range params {
		ipcs := make([]float64, len(sizes))
		for i, size := range sizes {
			ipc, err := sensitivityPoint(p, size, instructions)
			if err != nil {
				t.Fatal(err)
			}
			ipcs[i] = ipc
		}
		out[b] = assembleSensitivity(p.Name, sizes, ipcs)
	}
	return out
}

// requireBitwiseEqual compares two study rows field by field, reporting the
// first differing per-size value exactly (Float64bits, so NaN == NaN and
// -0 != +0, the strictest possible notion of "same result").
func requireBitwiseEqual(t *testing.T, got, want SensitivityResult) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name %q != %q", got.Name, want.Name)
	}
	if got.Adequate != want.Adequate || got.Sensitive != want.Sensitive {
		t.Errorf("%s: classification (adequate %d, sensitive %v) != oracle (adequate %d, sensitive %v)",
			got.Name, got.Adequate, got.Sensitive, want.Adequate, want.Sensitive)
	}
	if len(got.Sizes) != len(want.Sizes) || len(got.NormIPC) != len(want.NormIPC) {
		t.Fatalf("%s: curve shape %d/%d sizes != oracle %d/%d", got.Name,
			len(got.Sizes), len(got.NormIPC), len(want.Sizes), len(want.NormIPC))
	}
	for i := range got.Sizes {
		if got.Sizes[i] != want.Sizes[i] {
			t.Errorf("%s: size[%d] = %d, oracle %d", got.Name, i, got.Sizes[i], want.Sizes[i])
		}
		if math.Float64bits(got.NormIPC[i]) != math.Float64bits(want.NormIPC[i]) {
			t.Errorf("%s: NormIPC[%d] = %x (%v), oracle %x (%v)", got.Name, i,
				math.Float64bits(got.NormIPC[i]), got.NormIPC[i],
				math.Float64bits(want.NormIPC[i]), want.NormIPC[i])
		}
	}
}

// TestEngineMatchesOracleQuick is the always-on (even -short) guard: one
// benchmark, small budget, engine vs direct simulation, bitwise.
func TestEngineMatchesOracleQuick(t *testing.T) {
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	const instructions = 20_000
	e := newLaneEngine()
	ipcs, _, err := e.run(context.Background(), nil, p, instructions)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t,
		assembleSensitivity(p.Name, e.sizes, ipcs),
		oracleStudy(t, []workload.Params{p}, instructions)[0])
}

// TestEngineMatchesOracleAllBenchmarks is the PR's central acceptance test:
// the multi-lane engine reproduces the sensitivityPoint oracle bitwise —
// per-size normalized IPC, Adequate size, and the Sensitive verdict — for
// every one of the 36 Figure 11 benchmarks, at a reduced instruction budget.
// Bitwise equality at ANY budget implies the two paths compute the same
// function, warmup boundary and measurement window included (budgets this
// small exercise the degenerate boundary cases — IPC-0 windows, NaN
// normalization — that a tolerance comparison would paper over). The study
// side runs through the public parallel path, so under -race this also
// covers the engine pool and the per-worker engine reuse.
func TestEngineMatchesOracleAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("36-benchmark oracle comparison; skipped in -short mode")
	}
	const instructions = 100_000
	params := sortedSPECParams()
	want := oracleStudy(t, params, instructions)
	got, err := SensitivityStudyContext(context.Background(), instructions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("engine study has %d rows, oracle %d", len(got), len(want))
	}
	for i := range got {
		requireBitwiseEqual(t, got[i], want[i])
	}
}

// TestEngineZeroInstructions pins the degenerate budget: the oracle begins
// measurement before the first quantum when WarmupInstructions is 0, and the
// engine must do the same instead of dividing by an empty window.
func TestEngineZeroInstructions(t *testing.T) {
	p, err := workload.SPECByName("imagick_0")
	if err != nil {
		t.Fatal(err)
	}
	e := newLaneEngine()
	ipcs, _, err := e.run(context.Background(), nil, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range e.sizes {
		want, err := sensitivityPoint(p, size, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ipcs[i]) != math.Float64bits(want) {
			t.Errorf("size %d: engine IPC %v, oracle %v", size, ipcs[i], want)
		}
	}
}

// TestEngineCancellation: a pre-canceled context must abort the pass with
// the context's error before any meaningful work.
func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SensitivityStudyContext(ctx, 1_000_000, 0); err == nil {
		t.Fatal("canceled study returned no error")
	}
	p, err := workload.SPECByName("mcf_0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newLaneEngine().run(ctx, nil, p, 1_000_000); err != context.Canceled {
		t.Fatalf("engine run under canceled context: err = %v, want context.Canceled", err)
	}
}

// TestClassifyMatchesSensitivity pins the API change: Classify now returns
// the identical full curve (it is the same engine pass).
func TestClassifyMatchesSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("two engine passes; skipped in -short mode")
	}
	full, err := Sensitivity("xz_1", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := Classify("xz_1", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, cls, full)
}
