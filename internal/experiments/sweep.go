package experiments

import (
	"time"

	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/stats"
	"untangle/internal/workload"
)

// DelayPoint is one point of the Mechanism 2 end-to-end sweep: wider random
// delays lower the charged leakage without touching the action sequence.
type DelayPoint struct {
	// Multiplier scales the default delay width.
	Multiplier float64
	// DelayNs is the effective width in simulated nanoseconds.
	DelayNs int64
	// BitsPerAssessment is the average Untangle charge.
	BitsPerAssessment float64
	// Speedup is the geometric-mean IPC over Static.
	Speedup float64
}

// DelaySweep runs a mix under Untangle at several random-delay widths.
func DelaySweep(mix workload.Mix, scale float64, multipliers []float64) ([]DelayPoint, error) {
	if len(multipliers) == 0 {
		multipliers = []float64{0.25, 1, 4}
	}
	baseCfg := sim.Scaled(partition.DefaultScheme(partition.Static), scale)
	baseSpecs, err := BuildDomains(mix, scale, 0)
	if err != nil {
		return nil, err
	}
	baseSim, err := sim.New(baseCfg, baseSpecs)
	if err != nil {
		return nil, err
	}
	base, err := baseSim.Run()
	if err != nil {
		return nil, err
	}
	var out []DelayPoint
	for _, m := range multipliers {
		cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), scale)
		cfg.Scheme.DelayWidth = time.Duration(float64(cfg.Scheme.DelayWidth) * m)
		specs, err := BuildDomains(mix, scale, 0)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, specs)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		p := DelayPoint{Multiplier: m, DelayNs: cfg.Scheme.DelayWidth.Nanoseconds()}
		norm := make([]float64, len(res.Domains))
		var bits float64
		var assessments int
		for i, d := range res.Domains {
			norm[i] = d.IPC / base.Domains[i].IPC
			bits += d.Leakage.TotalBits
			assessments += d.Leakage.Assessments
		}
		p.Speedup = stats.GeoMean(norm)
		if assessments > 0 {
			p.BitsPerAssessment = bits / float64(assessments)
		}
		out = append(out, p)
	}
	return out, nil
}

// CooldownPoint is one point of the Section 5.3.2 trade-off: "the longer the
// cooldown time is, the lower the leakage rate is, and the slower the
// program execution is."
type CooldownPoint struct {
	// Multiplier scales the default Tc (and the progress quantum with it,
	// keeping N = w*Tc aligned as Section 5.3.2 prescribes).
	Multiplier float64
	// CooldownNs is the effective Tc at this point, in nanoseconds of
	// simulated time.
	CooldownNs int64
	// Speedup is the geometric-mean IPC over Static.
	Speedup float64
	// BitsPerAssessment is the average Untangle charge.
	BitsPerAssessment float64
	// BitsPerSecond is total leakage divided by simulated time — the
	// leakage RATE the cooldown actually controls.
	BitsPerSecond float64
}

// CooldownSweep runs a mix under Untangle at several cooldown multipliers.
// The progress quantum scales with the cooldown so the schedule stays
// consistent (N tied to w*Tc); the baseline Static run is shared.
func CooldownSweep(mix workload.Mix, scale float64, multipliers []float64) ([]CooldownPoint, error) {
	if len(multipliers) == 0 {
		multipliers = []float64{0.5, 1, 2, 4}
	}
	// Shared Static baseline.
	baseCfg := sim.Scaled(partition.DefaultScheme(partition.Static), scale)
	baseSpecs, err := BuildDomains(mix, scale, 0)
	if err != nil {
		return nil, err
	}
	baseSim, err := sim.New(baseCfg, baseSpecs)
	if err != nil {
		return nil, err
	}
	base, err := baseSim.Run()
	if err != nil {
		return nil, err
	}

	var out []CooldownPoint
	for _, m := range multipliers {
		cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), scale)
		cfg.Scheme.Cooldown = time.Duration(float64(cfg.Scheme.Cooldown) * m)
		cfg.Scheme.DelayWidth = time.Duration(float64(cfg.Scheme.DelayWidth) * m)
		cfg.Scheme.ProgressN = uint64(float64(cfg.Scheme.ProgressN) * m)
		if cfg.Scheme.ProgressN == 0 {
			cfg.Scheme.ProgressN = 1
		}
		specs, err := BuildDomains(mix, scale, 0)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, specs)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		point := CooldownPoint{Multiplier: m, CooldownNs: cfg.Scheme.Cooldown.Nanoseconds()}
		norm := make([]float64, len(res.Domains))
		var totalBits float64
		var assessments int
		for i, d := range res.Domains {
			norm[i] = d.IPC / base.Domains[i].IPC
			totalBits += d.Leakage.TotalBits
			assessments += d.Leakage.Assessments
		}
		point.Speedup = stats.GeoMean(norm)
		if assessments > 0 {
			point.BitsPerAssessment = totalBits / float64(assessments)
		}
		if res.Duration > 0 {
			point.BitsPerSecond = totalBits / res.Duration.Seconds() / float64(len(res.Domains))
		}
		out = append(out, point)
	}
	return out, nil
}
