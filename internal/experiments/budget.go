package experiments

import (
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

// BudgetResult reports the Section 4 guarantee made measurable: when the
// victim's leakage budget runs out, resizing freezes — "hurting the
// performance of its subsequent execution, but not its security".
type BudgetResult struct {
	// BudgetBits is the configured threshold (0 = unlimited).
	BudgetBits float64
	// LeakedBits is the accountant's total charge for the victim.
	LeakedBits float64
	// Frozen reports whether the freeze engaged.
	Frozen bool
	// VictimIPC is the victim's performance.
	VictimIPC float64
	// VisibleActions counts the victim's attacker-visible resizes.
	VisibleActions int
}

// BudgetExperiment runs a phase-changing victim under Untangle with the
// given budgets (use 0 for the unlimited baseline) and three steady
// co-runners. A bursty victim needs to keep resizing to perform; once
// frozen it cannot, so its IPC drops while its leakage stays at the
// threshold.
func BudgetExperiment(scale float64, total uint64, budgets []float64) ([]BudgetResult, error) {
	var out []BudgetResult
	for _, budget := range budgets {
		cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), scale)
		cfg.Budget = budget
		specs, err := budgetDomains(scale, total)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, specs)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		v := res.Domains[0]
		out = append(out, BudgetResult{
			BudgetBits:     budget,
			LeakedBits:     v.Leakage.TotalBits,
			Frozen:         v.Leakage.Frozen,
			VictimIPC:      v.IPC,
			VisibleActions: v.Leakage.Visible,
		})
	}
	return out, nil
}

func budgetDomains(scale float64, total uint64) ([]sim.DomainSpec, error) {
	phaseLen := uint64(float64(3_000_000) * scale)
	if phaseLen < 15_000 {
		phaseLen = 15_000
	}
	bursty, burstyParams, err := workload.BurstyWorkload(31, 6, phaseLen)
	if err != nil {
		return nil, err
	}
	specs := []sim.DomainSpec{{
		Name:   "victim",
		Stream: isa.NewLimited(bursty, total),
		CPU:    burstyParams.CPUParams(),
	}}
	for _, name := range []string{"imagick_0", "xz_0", "deepsjeng_0"} {
		p, err := workload.SPECByName(name)
		if err != nil {
			return nil, err
		}
		g, err := workload.NewGenerator(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sim.DomainSpec{
			Name:   name,
			Stream: isa.NewLimited(g, total),
			CPU:    p.CPUParams(),
		})
	}
	return specs, nil
}
