package isa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: a compact binary encoding of an Op stream, so users can
// drive the simulator with recorded instruction traces (from a binary
// instrumentation tool, another simulator, or a previous run) instead of the
// synthetic generators.
//
// Layout: an 8-byte magic/version header, then one record per op:
//
//	flags  uint8
//	nonMem uvarint
//	addr   uvarint (delta-from-previous, zig-zag) — present only for memory ops
//
// Delta encoding keeps sequential and strided traces small (1-3 bytes per
// access for typical streams).

var traceMagic = [8]byte{'U', 'N', 'T', 'G', 'T', 'R', '0', '1'}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("isa: malformed trace file")

// TraceWriter streams ops to an io.Writer in the trace file format.
type TraceWriter struct {
	w        *bufio.Writer
	prevAddr uint64
	started  bool
	count    uint64
}

// NewTraceWriter writes the header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// WriteOp appends one op.
func (t *TraceWriter) WriteOp(op Op) error {
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = byte(op.Flags)
	n := 1
	n += binary.PutUvarint(buf[n:], uint64(op.NonMem))
	if op.IsMem() {
		delta := int64(op.Addr) - int64(t.prevAddr)
		n += binary.PutUvarint(buf[n:], zigzag(delta))
		t.prevAddr = op.Addr
	}
	t.count++
	_, err := t.w.Write(buf[:n])
	return err
}

// WriteStream drains a stream into the trace, up to maxOps ops (0 = until
// the stream ends). It returns the number of ops written.
func (t *TraceWriter) WriteStream(s Stream, maxOps uint64) (uint64, error) {
	buf := make([]Op, 4096)
	var written uint64
	for maxOps == 0 || written < maxOps {
		want := len(buf)
		if maxOps > 0 && maxOps-written < uint64(want) {
			want = int(maxOps - written)
		}
		n := s.Fill(buf[:want])
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			if err := t.WriteOp(op); err != nil {
				return written, err
			}
			written++
		}
	}
	return written, nil
}

// Flush flushes buffered records; call before closing the underlying writer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// Count returns the ops written so far.
func (t *TraceWriter) Count() uint64 { return t.count }

// TraceReader replays a trace file as a Stream.
type TraceReader struct {
	r        *bufio.Reader
	prevAddr uint64
	err      error
	done     bool
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	return &TraceReader{r: br}, nil
}

// Err returns the first decoding error encountered, if any (a cleanly
// terminated trace leaves Err nil).
func (t *TraceReader) Err() error { return t.err }

// Fill implements Stream.
func (t *TraceReader) Fill(buf []Op) int {
	if t.done {
		return 0
	}
	for i := range buf {
		flagByte, err := t.r.ReadByte()
		if err != nil {
			t.done = true
			if err != io.EOF {
				t.err = fmt.Errorf("%w: %v", ErrBadTrace, err)
			}
			return i
		}
		op := Op{Flags: Flags(flagByte)}
		nonMem, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.done = true
			t.err = fmt.Errorf("%w: truncated record", ErrBadTrace)
			return i
		}
		if nonMem > 0xFFFFFFFF {
			t.done = true
			t.err = fmt.Errorf("%w: oversized non-mem run", ErrBadTrace)
			return i
		}
		op.NonMem = uint32(nonMem)
		if op.IsMem() {
			zz, err := binary.ReadUvarint(t.r)
			if err != nil {
				t.done = true
				t.err = fmt.Errorf("%w: truncated address", ErrBadTrace)
				return i
			}
			addr := int64(t.prevAddr) + unzigzag(zz)
			op.Addr = uint64(addr)
			t.prevAddr = op.Addr
		}
		buf[i] = op
	}
	return len(buf)
}
