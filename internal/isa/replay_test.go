package isa

import (
	"reflect"
	"testing"
)

// scripted replays a fixed op slice through the Stream interface, honoring
// whatever buffer size the caller offers (like a generator would).
type scripted struct {
	ops []Op
	pos int
}

func (s *scripted) Fill(buf []Op) int {
	n := copy(buf, s.ops[s.pos:])
	s.pos += n
	return n
}

func chunksDrain(s Stream, size int) []Op {
	c := NewChunks(s, size)
	var out []Op
	for {
		chunk := c.Next()
		if len(chunk) == 0 {
			return out
		}
		// The chunk aliases the internal buffer, so consumers that retain
		// ops must copy — as this append does.
		out = append(out, chunk...)
	}
}

// TestChunksConcatenationInvariant: the concatenation of the chunks equals a
// direct drain of an identical stream, for any chunk size — the property the
// multi-lane engine's shared front-end is built on.
func TestChunksConcatenationInvariant(t *testing.T) {
	mkOps := func() []Op {
		ops := make([]Op, 1000)
		for i := range ops {
			ops[i] = Op{Addr: uint64(i) * 64, NonMem: uint32(i % 7)}
			if i%3 != 0 {
				ops[i].Flags |= FlagMem
			}
		}
		return ops
	}
	// Wrap in Limited so mid-stream short Fills (the truncated final op)
	// are part of what the invariant covers.
	want := chunksDrain(NewLimited(&scripted{ops: mkOps()}, 2500), len(mkOps())+1)
	for _, size := range []int{1, 2, 7, 64, 1000, 4096} {
		got := chunksDrain(NewLimited(&scripted{ops: mkOps()}, 2500), size)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("chunk size %d: drained sequence differs (%d ops vs %d)", size, len(got), len(want))
		}
	}
}

// TestChunksBufferReuse documents the aliasing contract: Next invalidates
// the previous chunk.
func TestChunksBufferReuse(t *testing.T) {
	c := NewChunks(&scripted{ops: []Op{{NonMem: 1}, {NonMem: 2}}}, 1)
	first := c.Next()
	if len(first) != 1 || first[0].NonMem != 1 {
		t.Fatalf("first chunk = %+v", first)
	}
	second := c.Next()
	if len(second) != 1 || second[0].NonMem != 2 {
		t.Fatalf("second chunk = %+v", second)
	}
	if first[0].NonMem != 2 {
		t.Error("chunks did not alias the shared buffer; update the doc if this becomes a copy")
	}
}

func TestChunksRejectsNonPositiveSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChunks(s, 0) did not panic")
		}
	}()
	NewChunks(&scripted{}, 0)
}
