package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := &seqStream{}
	written, err := w.WriteStream(src, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if written != 10_000 {
		t.Fatalf("wrote %d ops", written)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r, 333, 1<<20)
	want := collect(&seqStream{}, 333, 10_000)
	if len(got) != len(want) {
		t.Fatalf("read %d ops, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTraceCompactness(t *testing.T) {
	// Sequential traces must encode in a few bytes per op.
	var buf bytes.Buffer
	w, _ := NewTraceWriter(&buf)
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := w.WriteOp(Op{Flags: FlagMem, Addr: uint64(i) * 64, NonMem: 2}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if perOp := float64(buf.Len()) / n; perOp > 4.1 {
		t.Errorf("sequential trace costs %.1f bytes/op, want <= ~4", perOp)
	}
	if w.Count() != n {
		t.Errorf("count = %d", w.Count())
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewTraceReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated mid-record: Fill returns what it has and records the error.
	var buf bytes.Buffer
	w, _ := NewTraceWriter(&buf)
	w.WriteOp(Op{Flags: FlagMem, Addr: 1 << 40})
	w.Flush()
	data := buf.Bytes()
	r, err := NewTraceReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Op, 4)
	if n := r.Fill(out); n != 0 {
		t.Errorf("truncated record produced %d ops", n)
	}
	if r.Err() == nil {
		t.Error("truncated record not reported")
	}
}

func TestTraceZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func TestPropertyTraceRoundTripArbitraryOps(t *testing.T) {
	f := func(seed int64, count uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(count%500) + 1
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{
				Flags:  Flags(r.Intn(32)),
				NonMem: uint32(r.Intn(1000)),
			}
			if ops[i].IsMem() {
				ops[i].Addr = uint64(r.Int63())
			} else {
				ops[i].Flags &^= FlagWrite
				ops[i].Addr = 0
			}
		}
		var buf bytes.Buffer
		w, err := NewTraceWriter(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if w.WriteOp(op) != nil {
				return false
			}
		}
		w.Flush()
		rd, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got := collect(rd, 17, 1<<20)
		if len(got) != n || rd.Err() != nil {
			return false
		}
		for i := range got {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
