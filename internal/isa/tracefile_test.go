package isa

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := &seqStream{}
	written, err := w.WriteStream(src, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if written != 10_000 {
		t.Fatalf("wrote %d ops", written)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r, 333, 1<<20)
	want := collect(&seqStream{}, 333, 10_000)
	if len(got) != len(want) {
		t.Fatalf("read %d ops, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTraceCompactness(t *testing.T) {
	// Sequential traces must encode in a few bytes per op.
	var buf bytes.Buffer
	w, _ := NewTraceWriter(&buf)
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := w.WriteOp(Op{Flags: FlagMem, Addr: uint64(i) * 64, NonMem: 2}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if perOp := float64(buf.Len()) / n; perOp > 4.1 {
		t.Errorf("sequential trace costs %.1f bytes/op, want <= ~4", perOp)
	}
	if w.Count() != n {
		t.Errorf("count = %d", w.Count())
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewTraceReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated mid-record: Fill returns what it has and records the error.
	var buf bytes.Buffer
	w, _ := NewTraceWriter(&buf)
	w.WriteOp(Op{Flags: FlagMem, Addr: 1 << 40})
	w.Flush()
	data := buf.Bytes()
	r, err := NewTraceReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Op, 4)
	if n := r.Fill(out); n != 0 {
		t.Errorf("truncated record produced %d ops", n)
	}
	if r.Err() == nil {
		t.Error("truncated record not reported")
	}
}

// TestTraceBadInputsTable drives every malformed-input class through the
// reader and requires each to surface as ErrBadTrace (via errors.Is, so
// callers can branch on the sentinel), never as a silent short read.
func TestTraceBadInputsTable(t *testing.T) {
	// validTrace is one memory op with a large delta: header + flags +
	// nonMem uvarint + a multi-byte address uvarint to truncate.
	var tr bytes.Buffer
	w, _ := NewTraceWriter(&tr)
	w.WriteOp(Op{NonMem: 7})
	w.WriteOp(Op{Flags: FlagMem, Addr: 1 << 40, NonMem: 300})
	w.Flush()
	validTrace := tr.Bytes()

	cases := []struct {
		name string
		data []byte
		// headerErr: NewTraceReader itself must fail. Otherwise the reader
		// opens and the damage surfaces via Fill + Err.
		headerErr bool
		// wantOps is the count of intact leading records Fill must still
		// deliver before reporting the error.
		wantOps int
	}{
		{name: "empty input", data: nil, headerErr: true},
		{name: "truncated header", data: validTrace[:5], headerErr: true},
		{name: "bad magic", data: []byte("NOTATRACEFILE"), headerErr: true},
		{name: "torn final record: flags only", data: validTrace[:8+2+1], wantOps: 1},
		{name: "torn final record: missing address", data: validTrace[:len(validTrace)-1], wantOps: 1},
		{name: "non-mem uvarint cut mid-sequence", data: append(append([]byte{}, validTrace[:8+2+1]...), 0x80, 0x80), wantOps: 1},
		{name: "overlong non-mem uvarint", data: append(append([]byte{}, traceMagic[:]...),
			0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), wantOps: 0}, // 5-byte varint > 0xFFFFFFFF
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewTraceReader(bytes.NewReader(tc.data))
			if tc.headerErr {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("NewTraceReader err = %v, want ErrBadTrace", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("header unexpectedly rejected: %v", err)
			}
			got := collect(r, 16, 1<<10)
			if len(got) != tc.wantOps {
				t.Errorf("decoded %d ops before the error, want %d", len(got), tc.wantOps)
			}
			if !errors.Is(r.Err(), ErrBadTrace) {
				t.Errorf("Err() = %v, want ErrBadTrace", r.Err())
			}
			// A failed reader stays failed: further Fills deliver nothing.
			if n := r.Fill(make([]Op, 4)); n != 0 {
				t.Errorf("Fill after error produced %d ops", n)
			}
		})
	}
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the reader: any input must
// either decode cleanly or fail with ErrBadTrace (no panics, no unflagged
// garbage), and whatever prefix does decode must re-encode and re-decode to
// the same ops (the decoder and encoder agree on the format).
func FuzzTraceRoundTrip(f *testing.F) {
	var tr bytes.Buffer
	w, _ := NewTraceWriter(&tr)
	w.WriteOp(Op{NonMem: 3})
	w.WriteOp(Op{Flags: FlagMem | FlagWrite, Addr: 4096, NonMem: 1})
	w.WriteOp(Op{Flags: FlagMem, Addr: 64, NonMem: 300})
	w.Flush()
	f.Add(tr.Bytes())
	f.Add(traceMagic[:])
	f.Add([]byte("NOTATRACEFILE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("header err = %v, want ErrBadTrace", err)
			}
			return
		}
		ops := collect(r, 64, 1<<20)
		if rerr := r.Err(); rerr != nil && !errors.Is(rerr, ErrBadTrace) {
			t.Fatalf("Err() = %v, want nil or ErrBadTrace", rerr)
		}

		var buf bytes.Buffer
		w, err := NewTraceWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := w.WriteOp(op); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got := collect(r2, 64, 1<<20)
		if r2.Err() != nil {
			t.Fatalf("re-decode failed: %v", r2.Err())
		}
		if len(got) != len(ops) {
			t.Fatalf("re-decoded %d ops, want %d", len(got), len(ops))
		}
		for i := range got {
			if got[i] != ops[i] {
				t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
			}
		}
	})
}

func TestTraceZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func TestPropertyTraceRoundTripArbitraryOps(t *testing.T) {
	f := func(seed int64, count uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(count%500) + 1
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{
				Flags:  Flags(r.Intn(32)),
				NonMem: uint32(r.Intn(1000)),
			}
			if ops[i].IsMem() {
				ops[i].Addr = uint64(r.Int63())
			} else {
				ops[i].Flags &^= FlagWrite
				ops[i].Addr = 0
			}
		}
		var buf bytes.Buffer
		w, err := NewTraceWriter(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if w.WriteOp(op) != nil {
				return false
			}
		}
		w.Flush()
		rd, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got := collect(rd, 17, 1<<20)
		if len(got) != n || rd.Err() != nil {
			return false
		}
		for i := range got {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
