package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// seqStream emits a deterministic sequence of ops for testing: op i has
// NonMem = i%5 instructions and a memory access to address i*64 (every op is
// a memory op except multiples of 7).
type seqStream struct{ next uint64 }

func (s *seqStream) Fill(buf []Op) int {
	for i := range buf {
		op := Op{NonMem: uint32(s.next % 5)}
		if s.next%7 != 0 {
			op.Flags |= FlagMem
			op.Addr = s.next * 64
		}
		buf[i] = op
		s.next++
	}
	return len(buf)
}

// collect drains up to maxInstr instructions from s using the given buffer
// size and returns the flattened op list.
func collect(s Stream, bufSize int, maxOps int) []Op {
	var out []Op
	buf := make([]Op, bufSize)
	for len(out) < maxOps {
		n := s.Fill(buf)
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	if len(out) > maxOps {
		out = out[:maxOps]
	}
	return out
}

func totalInstructions(ops []Op) uint64 {
	var n uint64
	for _, op := range ops {
		n += op.Instructions()
	}
	return n
}

func TestOpFlags(t *testing.T) {
	op := Op{Flags: FlagMem | FlagWrite, NonMem: 3}
	if !op.IsMem() || !op.IsWrite() {
		t.Error("mem/write flags not reported")
	}
	if op.Instructions() != 4 {
		t.Errorf("Instructions = %d, want 4", op.Instructions())
	}
	if op.SecretUse() || op.SecretProgress() {
		t.Error("unannotated op reported secret")
	}
	op.Flags |= FlagSecretUse
	if !op.SecretUse() || op.SecretProgress() {
		t.Error("FlagSecretUse should set SecretUse only")
	}
	op.Flags = FlagSecretProgress
	if op.SecretUse() || !op.SecretProgress() {
		t.Error("FlagSecretProgress should set SecretProgress only")
	}
	// Section 6.1 regions are excluded from both the metric and progress.
	op.Flags = FlagTimingDep
	if !op.SecretUse() || !op.SecretProgress() {
		t.Error("FlagTimingDep should exclude from metric and progress")
	}
}

func TestLimitedExactBudget(t *testing.T) {
	lim := NewLimited(&seqStream{}, 100)
	ops := collect(lim, 13, 1<<20)
	if got := totalInstructions(ops); got != 100 {
		t.Errorf("total instructions = %d, want 100", got)
	}
	// Exhausted stream keeps returning 0.
	if n := lim.Fill(make([]Op, 4)); n != 0 {
		t.Errorf("Fill after exhaustion = %d, want 0", n)
	}
}

func TestLimitedNeverSplitsAccessIntoBudgetOverrun(t *testing.T) {
	for budget := uint64(1); budget < 40; budget++ {
		ops := collect(NewLimited(&seqStream{}, budget), 7, 1<<20)
		if got := totalInstructions(ops); got > budget {
			t.Fatalf("budget %d: emitted %d instructions", budget, got)
		}
	}
}

func TestLoopAlternatesBudgets(t *testing.T) {
	a := &seqStream{}           // addresses 0, 64, ...
	b := &seqStream{next: 1000} // addresses 64000+, distinguishable
	l := NewLoop(a, 10, b, 20)  // 10 instr of A, 20 of B, repeat
	ops := collect(l, 8, 200)   // plenty of ops
	// Walk the ops, tracking which phase each instruction budget belongs to.
	budget, inA := uint64(10), true
	for i, op := range ops {
		fromA := op.Addr < 32000 // A addresses stay below 1000*64 for a while
		if op.IsMem() && fromA != inA {
			t.Fatalf("op %d: phase mismatch: addr %d while inA=%v", i, op.Addr, inA)
		}
		in := op.Instructions()
		if in > budget {
			t.Fatalf("op %d: %d instructions exceed phase budget %d", i, in, budget)
		}
		budget -= in
		if budget == 0 {
			inA = !inA
			if inA {
				budget = 10
			} else {
				budget = 20
			}
		}
	}
}

func TestLoopDeterministicAcrossBufferSizes(t *testing.T) {
	mk := func() *Loop {
		return NewLoop(&seqStream{}, 17, &seqStream{next: 5000}, 23)
	}
	want := collect(mk(), 256, 500)
	for _, bufSize := range []int{1, 2, 3, 7, 64, 511} {
		got := collect(mk(), bufSize, 500)
		if len(got) != len(want) {
			t.Fatalf("bufSize %d: %d ops, want %d", bufSize, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bufSize %d: op %d = %+v, want %+v", bufSize, i, got[i], want[i])
			}
		}
	}
}

func TestLoopForwardProgress(t *testing.T) {
	// Both phases must resume, not restart: the A-phase addresses seen in
	// the second A phase must continue from where the first A phase ended.
	l := NewLoop(&seqStream{}, 50, &seqStream{next: 100000}, 50)
	ops := collect(l, 32, 2000)
	var aAddrs []uint64
	for _, op := range ops {
		if op.IsMem() && op.Addr < 100000*64 {
			aAddrs = append(aAddrs, op.Addr)
		}
	}
	for i := 1; i < len(aAddrs); i++ {
		if aAddrs[i] <= aAddrs[i-1] {
			t.Fatalf("A-phase address regressed at %d: %d -> %d", i, aAddrs[i-1], aAddrs[i])
		}
	}
}

func TestConcat(t *testing.T) {
	c := &Concat{Streams: []Stream{
		NewLimited(&seqStream{}, 10),
		NewLimited(&seqStream{next: 777}, 10),
	}}
	ops := collect(c, 4, 1000)
	if got := totalInstructions(ops); got != 20 {
		t.Errorf("total = %d, want 20", got)
	}
	if n := c.Fill(make([]Op, 4)); n != 0 {
		t.Error("exhausted concat should return 0")
	}
}

func TestPropertyLoopConservesInstructionCounts(t *testing.T) {
	// Whatever the buffer sizing, after consuming k full phase pairs the
	// loop must have emitted exactly k*(lenA+lenB) instructions.
	f := func(seed int64, lenARaw, lenBRaw uint8, bufRaw uint8) bool {
		lenA := uint64(lenARaw%50) + 1
		lenB := uint64(lenBRaw%50) + 1
		bufSize := int(bufRaw%31) + 1
		l := NewLoop(&seqStream{}, lenA, &seqStream{next: 1 << 20}, lenB)
		r := rand.New(rand.NewSource(seed))
		var total uint64
		buf := make([]Op, bufSize)
		for i := 0; i < 50; i++ {
			n := l.Fill(buf[:1+r.Intn(bufSize)])
			for _, op := range buf[:n] {
				total += op.Instructions()
			}
		}
		// total must be consistent with whole phases plus a partial one:
		// emitted instructions never outpace phase budgets.
		pair := lenA + lenB
		rem := total % pair
		return rem <= pair // trivially true; real check is no panic + progress
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// secretStream emits extra secret-flagged ops when secret is true, followed
// by a fixed public tail.
type secretStream struct {
	secret  bool
	emitted int
}

func (s *secretStream) Fill(buf []Op) int {
	for i := range buf {
		if s.secret && s.emitted < 10 {
			buf[i] = Op{NonMem: 100, Flags: FlagSecretProgress}
		} else {
			buf[i] = Op{NonMem: 1, Flags: FlagMem, Addr: uint64(s.emitted) * 64}
		}
		s.emitted++
	}
	return len(buf)
}

func TestLimitedPublicIgnoresSecretBudget(t *testing.T) {
	collectPublic := func(secret bool) (public, secretInstr uint64) {
		l := NewLimitedPublic(&secretStream{secret: secret}, 500)
		buf := make([]Op, 7)
		for {
			n := l.Fill(buf)
			if n == 0 {
				break
			}
			for _, op := range buf[:n] {
				if op.SecretProgress() {
					secretInstr += op.Instructions()
				} else {
					public += op.Instructions()
				}
			}
		}
		return public, secretInstr
	}
	pub0, sec0 := collectPublic(false)
	pub1, sec1 := collectPublic(true)
	if pub0 != 500 || pub1 != 500 {
		t.Errorf("public budgets differ from 500: %d, %d", pub0, pub1)
	}
	if sec0 != 0 || sec1 != 1000 {
		t.Errorf("secret instruction counts = %d, %d; want 0 and 1000", sec0, sec1)
	}
}

func TestLimitedPublicExhaustion(t *testing.T) {
	l := NewLimitedPublic(&seqStream{}, 50)
	buf := make([]Op, 16)
	total := uint64(0)
	for {
		n := l.Fill(buf)
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			total += op.Instructions()
		}
	}
	if total != 50 {
		t.Errorf("total = %d, want 50", total)
	}
	if l.Fill(buf) != 0 {
		t.Error("exhausted stream returned ops")
	}
}
