// Package isa defines the retired-instruction-stream representation shared by
// the workload generators, the core timing model, and the partitioning
// schemes.
//
// The Untangle framework only ever consumes the *architectural* instruction
// stream — the sequence of retired dynamic instructions in program order —
// because Principle 1 requires utilization metrics that are independent of
// instruction timing. An Op therefore compresses a run of non-memory
// instructions followed by at most one memory access; cycle-level effects are
// applied later by the cpu package.
//
// Annotations follow Section 5.2 of the paper: instructions whose resource
// usage is data- or control-dependent on secrets carry SecretUse (excluded
// from the utilization metric), and instructions that are control-dependent
// on secrets carry SecretProgress (excluded from execution-progress
// counting). Section 6.1's timing-dependent regions carry TimingDep and are
// excluded from both.
package isa

// Flags annotate one Op.
type Flags uint8

const (
	// FlagMem marks an Op that ends with a memory access.
	FlagMem Flags = 1 << iota
	// FlagWrite marks the access as a store.
	FlagWrite
	// FlagSecretUse marks the access as data- or control-dependent on a
	// secret: the monitor must exclude it from the utilization metric.
	FlagSecretUse
	// FlagSecretProgress marks the whole Op (including its non-memory run)
	// as control-dependent on a secret: it must not count toward execution
	// progress.
	FlagSecretProgress
	// FlagTimingDep marks a Section 6.1 timing-dependent dynamic region
	// (spin loops, time checks); treated like a secret region by Untangle.
	FlagTimingDep
)

// Op is one element of a retired instruction stream: NonMem plain retired
// instructions followed, if FlagMem is set, by one retired memory access to
// Addr (a byte address; the cache model truncates to line granularity).
type Op struct {
	Addr   uint64
	NonMem uint32
	Flags  Flags
}

// Instructions returns the number of retired instructions the Op represents.
func (o Op) Instructions() uint64 {
	n := uint64(o.NonMem)
	if o.Flags&FlagMem != 0 {
		n++
	}
	return n
}

// IsMem reports whether the Op ends with a memory access.
func (o Op) IsMem() bool { return o.Flags&FlagMem != 0 }

// IsWrite reports whether the access is a store.
func (o Op) IsWrite() bool { return o.Flags&FlagWrite != 0 }

// SecretUse reports whether the access must be hidden from the utilization
// metric (Principle 1 annotation).
func (o Op) SecretUse() bool { return o.Flags&(FlagSecretUse|FlagTimingDep) != 0 }

// SecretProgress reports whether the Op is excluded from execution-progress
// counting (Principle 2 annotation).
func (o Op) SecretProgress() bool { return o.Flags&(FlagSecretProgress|FlagTimingDep) != 0 }

// Stream produces a retired instruction stream in program order.
//
// Fill writes up to len(buf) Ops into buf and returns how many were written.
// A return of 0 means the stream is exhausted. Streams are deterministic:
// two streams constructed with identical parameters and seeds produce
// identical Op sequences regardless of how Fill calls are sized, which is
// what makes the action-sequence determinism property of Section 5.2
// testable end to end.
type Stream interface {
	Fill(buf []Op) int
}

// Limited wraps a stream and truncates it after a fixed number of retired
// instructions, mirroring the paper's fixed-length SimPoint slices.
type Limited struct {
	S         Stream
	Remaining uint64
}

// NewLimited returns a stream that yields at most n retired instructions
// from s.
func NewLimited(s Stream, n uint64) *Limited {
	return &Limited{S: s, Remaining: n}
}

// Fill implements Stream.
func (l *Limited) Fill(buf []Op) int {
	if l.Remaining == 0 || len(buf) == 0 {
		return 0
	}
	n := l.S.Fill(buf)
	out := 0
	for i := 0; i < n; i++ {
		op := buf[i]
		in := op.Instructions()
		if in <= l.Remaining {
			buf[out] = op
			out++
			l.Remaining -= in
			continue
		}
		// Truncate the final op to the remaining budget: keep only
		// non-memory instructions (dropping the trailing access keeps the
		// instruction count exact without inventing a partial access).
		op.NonMem = uint32(l.Remaining)
		op.Flags &^= FlagMem | FlagWrite
		if op.NonMem > 0 {
			buf[out] = op
			out++
		}
		l.Remaining = 0
		break
	}
	return out
}

// LimitedPublic truncates a stream after a fixed number of retired PUBLIC
// instructions (ops excluded from progress by their annotations do not
// consume budget). This models "the same program run to completion":
// executions that differ only in secret-dependent extra work retire the
// identical public instruction sequence, which is the input the Untangle
// action-sequence guarantee is stated over.
type LimitedPublic struct {
	S         Stream
	Remaining uint64
}

// NewLimitedPublic returns a stream yielding at most n public retired
// instructions from s.
func NewLimitedPublic(s Stream, n uint64) *LimitedPublic {
	return &LimitedPublic{S: s, Remaining: n}
}

// Fill implements Stream.
func (l *LimitedPublic) Fill(buf []Op) int {
	if l.Remaining == 0 || len(buf) == 0 {
		return 0
	}
	n := l.S.Fill(buf)
	out := 0
	for i := 0; i < n; i++ {
		op := buf[i]
		if op.SecretProgress() {
			buf[out] = op
			out++
			continue
		}
		in := op.Instructions()
		if in <= l.Remaining {
			buf[out] = op
			out++
			l.Remaining -= in
			continue
		}
		op.NonMem = uint32(l.Remaining)
		op.Flags &^= FlagMem | FlagWrite
		if op.NonMem > 0 {
			buf[out] = op
			out++
		}
		l.Remaining = 0
		break
	}
	return out
}

// Concat yields the ops of each stream in turn.
type Concat struct {
	Streams []Stream
	idx     int
}

// Fill implements Stream.
func (c *Concat) Fill(buf []Op) int {
	for c.idx < len(c.Streams) {
		if n := c.Streams[c.idx].Fill(buf); n > 0 {
			return n
		}
		c.idx++
	}
	return 0
}

// Loop alternates fixed-length phases from two streams forever: phase A
// (lenA instructions), then phase B (lenB instructions), repeating. It
// reproduces the paper's workload construction: "repeatedly run in a loop 1M
// instructions from the cryptographic benchmark and then 10M instructions
// from the SPEC17 benchmark", with both benchmarks making forward progress
// (each phase resumes its underlying stream rather than restarting it).
//
// Ops produced by a phase but not consumed before its budget expires are
// buffered and served when the phase resumes, so the emitted instruction
// sequence is independent of how callers size their Fill buffers.
type Loop struct {
	LenA, LenB uint64

	phases [2]loopPhase
	inB    int // 0 while in phase A, 1 in phase B
	budget uint64
}

type loopPhase struct {
	s    Stream
	pend []Op
	off  int
}

func (p *loopPhase) fill(buf []Op) int {
	if p.off < len(p.pend) {
		n := copy(buf, p.pend[p.off:])
		p.off += n
		if p.off == len(p.pend) {
			p.pend = p.pend[:0]
			p.off = 0
		}
		return n
	}
	return p.s.Fill(buf)
}

func (p *loopPhase) stash(ops ...Op) {
	if len(ops) == 0 {
		return
	}
	// Compact consumed prefix before appending so pend does not grow
	// without bound across phase switches.
	if p.off > 0 {
		p.pend = append(p.pend[:0], p.pend[p.off:]...)
		p.off = 0
	}
	p.pend = append(p.pend, ops...)
}

// NewLoop builds the alternating loop, starting in phase A.
func NewLoop(a Stream, lenA uint64, b Stream, lenB uint64) *Loop {
	l := &Loop{LenA: lenA, LenB: lenB, budget: lenA}
	l.phases[0].s = a
	l.phases[1].s = b
	return l
}

// Fill implements Stream. The underlying streams are assumed infinite (the
// workload generators are); if the current phase runs dry, Fill returns 0.
func (l *Loop) Fill(buf []Op) int {
	if len(buf) == 0 {
		return 0
	}
	p := &l.phases[l.inB]
	n := p.fill(buf)
	if n == 0 {
		return 0
	}
	out := 0
	for i := 0; i < n; i++ {
		op := buf[i]
		in := op.Instructions()
		if in <= l.budget {
			buf[out] = op
			out++
			l.budget -= in
			if l.budget == 0 {
				p.stash(buf[i+1 : n]...)
				l.switchPhase()
				break
			}
			continue
		}
		// Split the op at the budget boundary: emit the prefix of plain
		// instructions now; the remainder (and the access) resumes with
		// the phase.
		keep, rem := op, op
		keep.NonMem = uint32(l.budget)
		keep.Flags &^= FlagMem | FlagWrite
		rem.NonMem = op.NonMem - keep.NonMem
		if keep.NonMem > 0 {
			buf[out] = keep
			out++
		}
		p.stash(rem)
		p.stash(buf[i+1 : n]...)
		l.switchPhase()
		break
	}
	return out
}

func (l *Loop) switchPhase() {
	l.inB = 1 - l.inB
	if l.inB == 0 {
		l.budget = l.LenA
	} else {
		l.budget = l.LenB
	}
}
