package isa

// Chunks adapts a Stream to a chunked pull interface for engines that fan
// one op sequence out to several consumers: the caller drains the stream one
// fixed-size chunk at a time and replays each chunk as often as it likes
// before asking for the next. Because Streams promise Fill-size
// independence (identical parameters yield identical op sequences however
// Fill calls are sized), the concatenation of the chunks is exactly the
// sequence any other consumer of the same stream would see.
type Chunks struct {
	s   Stream
	buf []Op
}

// NewChunks wraps s with a chunk buffer of the given size. Size must be
// positive; it only affects batching, never the op sequence.
func NewChunks(s Stream, size int) *Chunks {
	if size <= 0 {
		panic("isa: chunk size must be positive")
	}
	return &Chunks{s: s, buf: make([]Op, size)}
}

// Next returns the next chunk of the stream, or an empty slice once the
// stream is exhausted. The returned slice aliases the internal buffer and
// is valid only until the following Next call.
func (c *Chunks) Next() []Op {
	n := c.s.Fill(c.buf)
	return c.buf[:n]
}
