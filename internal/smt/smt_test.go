package smt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnitKindString(t *testing.T) {
	for k, want := range map[UnitKind]string{ALU: "ALU", Mul: "MUL", FP: "FP", Mem: "MEM", UnitKind(9): "UnitKind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("%d -> %q, want %q", int(k), got, want)
		}
	}
}

func TestMixValidate(t *testing.T) {
	if err := (Mix{0.4, 0.1, 0.1, 0.3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Mix{-0.1, 0, 0, 0}).Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := (Mix{0.5, 0.5, 0.5, 0}).Validate(); err == nil {
		t.Error("over-unit sum accepted")
	}
}

func TestMonitorFractions(t *testing.T) {
	m, err := NewMonitor(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 40% ALU, 20% Mem, 40% no contended unit.
	for i := 0; i < 1000; i++ {
		switch {
		case i%5 < 2:
			m.Retire(ALU)
		case i%5 == 2:
			m.Retire(Mem)
		default:
			m.Retire(UnitKind(-1))
		}
	}
	f := m.Fractions()
	if math.Abs(f[ALU]-0.4) > 0.05 {
		t.Errorf("ALU fraction = %v, want ~0.4", f[ALU])
	}
	if math.Abs(f[Mem]-0.2) > 0.05 {
		t.Errorf("Mem fraction = %v, want ~0.2", f[Mem])
	}
	if f[FP] != 0 {
		t.Errorf("FP fraction = %v, want 0", f[FP])
	}
}

func TestMonitorWindowSlides(t *testing.T) {
	m, _ := NewMonitor(400, 4)
	for i := 0; i < 1000; i++ {
		m.Retire(FP)
	}
	for i := 0; i < 1000; i++ {
		m.Retire(ALU)
	}
	f := m.Fractions()
	if f[FP] > 0.05 {
		t.Errorf("FP fraction %v should have slid out of the window", f[FP])
	}
	if f[ALU] < 0.8 {
		t.Errorf("ALU fraction %v should dominate the window", f[ALU])
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, 4); err == nil {
		t.Error("zero window accepted")
	}
	if m, err := NewMonitor(100, 0); err != nil || m == nil {
		t.Error("default buckets not applied")
	}
}

func TestEvenPartitionValid(t *testing.T) {
	if err := Even().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Even()
	bad.Shares[0][ALU] = 0
	bad.Shares[1][ALU] = Sixteenths
	if err := bad.Validate(); err == nil {
		t.Error("zero share accepted")
	}
	bad = Even()
	bad.Shares[0][ALU] = 9
	if err := bad.Validate(); err == nil {
		t.Error("overlapping shares accepted")
	}
}

func TestDecideShiftsTowardDemand(t *testing.T) {
	usage := [2]Mix{
		{0.6, 0, 0, 0.2}, // thread 0: ALU-heavy
		{0.1, 0, 0, 0.2}, // thread 1: light
	}
	next := Decide(Even(), usage, 0.05)
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	if next.Shares[0][ALU] <= Sixteenths/2 {
		t.Errorf("ALU share for the hungry thread = %d, want above half", next.Shares[0][ALU])
	}
	// Equal Mem demand: the Mem split stays even.
	if next.Shares[0][Mem] != Sixteenths/2 {
		t.Errorf("Mem share moved to %d despite equal demand", next.Shares[0][Mem])
	}
}

func TestDecideHysteresisMaintains(t *testing.T) {
	usage := [2]Mix{
		{0.52, 0, 0, 0}, // barely above even
		{0.48, 0, 0, 0},
	}
	next := Decide(Even(), usage, 0.10)
	if Visible(Even(), next) {
		t.Error("small imbalance should Maintain under hysteresis")
	}
	// With hysteresis off it moves.
	next = Decide(Even(), usage, 0)
	_ = next // it may or may not round to a new share; the strong case follows
	usage[0][ALU], usage[1][ALU] = 0.9, 0.1
	if !Visible(Even(), Decide(Even(), usage, 0.05)) {
		t.Error("strong imbalance should resize")
	}
}

func TestDecideFloorsShares(t *testing.T) {
	usage := [2]Mix{{1.0, 0, 0, 0}, {0.0, 0, 0, 0}}
	next := Decide(Even(), usage, 0)
	if next.Shares[1][ALU] < 1 {
		t.Errorf("idle thread share = %d, must keep the 1-sixteenth floor", next.Shares[1][ALU])
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputBottleneck(t *testing.T) {
	usage := [2]Mix{
		{0.5, 0, 0, 0}, // every other instruction is ALU
		{0.1, 0, 0, 0},
	}
	even := Throughput(Even(), usage, 8)
	// Thread 0 capped by ALU slots: 8*0.5/0.5 = 8? shares 8/16 -> 4 slots,
	// 4/0.5 = 8 IPC; thread 1: 4/0.1 = 40 -> capped at peak 8.
	if even[1] != 8 {
		t.Errorf("light thread IPC = %v, want peak", even[1])
	}
	// Give thread 0 more ALU: its IPC cannot drop, thread 1 stays at peak
	// while its demand fits its share.
	skew := Decide(Even(), usage, 0)
	after := Throughput(skew, usage, 8)
	if after[0] < even[0] {
		t.Errorf("granting slots lowered IPC: %v -> %v", even[0], after[0])
	}
}

func TestThroughputContention(t *testing.T) {
	// Both threads fully ALU-bound: halves of the peak each under Even.
	usage := [2]Mix{{1, 0, 0, 0}, {1, 0, 0, 0}}
	got := Throughput(Even(), usage, 8)
	if math.Abs(got[0]-4) > 1e-9 || math.Abs(got[1]-4) > 1e-9 {
		t.Errorf("contended IPCs = %v, want 4 each", got)
	}
}

func TestPropertyDecideAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var usage [2]Mix
		for t := 0; t < 2; t++ {
			rem := 1.0
			for k := 0; k < int(NumKinds); k++ {
				v := r.Float64() * rem / 2
				usage[t][k] = v
				rem -= v
			}
		}
		cur := Even()
		for step := 0; step < 8; step++ {
			cur = Decide(cur, usage, 0.03)
			if cur.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMetricIsSequenceFunction(t *testing.T) {
	// Two monitors fed the same retirement sequence agree exactly —
	// Principle 1 for the SMT metric.
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%2000) + 100
		mk := func() Mix {
			m, err := NewMonitor(512, 8)
			if err != nil {
				return Mix{}
			}
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				m.Retire(UnitKind(r.Intn(int(NumKinds)+1) - 1))
			}
			return m.Fractions()
		}
		return mk() == mk()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
