// Package smt applies the Untangle framework to pipeline resources shared
// between SMT threads, the second extension target of Section 6.3 (and the
// setting of SecSMT [43] in Table 1): issue slots of typed functional units
// are temporally partitioned between two hardware threads, and the partition
// is resized dynamically.
//
// Section 6.3's recipe:
//
//   - Utilization metric: "the fraction of the retired instructions that
//     utilize a certain type of functional unit" — a pure function of the
//     retired instruction sequence, hence timing-independent (Principle 1).
//     Instructions that are control-dependent on secrets are excluded via
//     the usual annotations ("an analyzer that detects secret-dependent
//     control flow suffices").
//   - Schedule: assessments every N retired public instructions with the
//     cooldown and random-delay mechanisms, exactly as for the LLC; this
//     package provides the metric and the partitioned-issue model, and the
//     core package's accountants apply unchanged.
package smt

import (
	"fmt"
)

// UnitKind is a functional-unit type.
type UnitKind int

const (
	// ALU covers simple integer operations.
	ALU UnitKind = iota
	// Mul covers integer multiply/divide.
	Mul
	// FP covers floating-point units.
	FP
	// Mem covers load/store ports.
	Mem
	// NumKinds is the number of functional-unit types.
	NumKinds
)

// String implements fmt.Stringer.
func (k UnitKind) String() string {
	switch k {
	case ALU:
		return "ALU"
	case Mul:
		return "MUL"
	case FP:
		return "FP"
	case Mem:
		return "MEM"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// Mix is a thread's retired-instruction mix: Mix[k] is the fraction of
// retired instructions using unit kind k. Fractions need not sum to one
// (some instructions use no contended unit).
type Mix [NumKinds]float64

// Validate checks fractions are in range.
func (m Mix) Validate() error {
	sum := 0.0
	for k, f := range m {
		if f < 0 || f > 1 {
			return fmt.Errorf("smt: fraction %v for %v", f, UnitKind(k))
		}
		sum += f
	}
	if sum > 1 {
		return fmt.Errorf("smt: fractions sum to %v > 1", sum)
	}
	return nil
}

// Monitor is the timing-independent utilization metric: per unit kind, the
// count of retired public instructions that used it in the last Window
// retired public instructions.
type Monitor struct {
	window uint64
	ring   [][NumKinds]uint64
	// ringN counts all retired public instructions per bucket, including
	// those touching no contended unit, so Fractions' denominator is exact.
	ringN    []uint64
	bucket   uint64
	cur      int
	curCount uint64
	total    uint64
}

// NewMonitor builds the metric over a window of retired public instructions.
func NewMonitor(window uint64, buckets int) (*Monitor, error) {
	if window == 0 {
		return nil, fmt.Errorf("smt: zero window")
	}
	if buckets <= 0 {
		buckets = 8
	}
	m := &Monitor{
		window: window,
		ring:   make([][NumKinds]uint64, buckets),
		ringN:  make([]uint64, buckets),
	}
	m.bucket = window / uint64(buckets)
	if m.bucket == 0 {
		m.bucket = 1
	}
	return m, nil
}

// Retire records one retired public instruction that uses unit kind k (use
// k < 0 for instructions touching no contended unit). Secret-annotated
// instructions must not be passed in: the caller applies Principle 1's
// exclusion, keeping the metric a pure function of the public sequence.
func (m *Monitor) Retire(k UnitKind) {
	m.total++
	m.curCount++
	if m.curCount >= m.bucket {
		m.cur = (m.cur + 1) % len(m.ring)
		m.ring[m.cur] = [NumKinds]uint64{}
		m.ringN[m.cur] = 0
		m.curCount = 0
	}
	m.ringN[m.cur]++
	if k >= 0 && k < NumKinds {
		m.ring[m.cur][k]++
	}
}

// Fractions returns the per-kind usage fraction over the window.
func (m *Monitor) Fractions() Mix {
	var totals [NumKinds]uint64
	var all uint64
	for _, b := range m.ring {
		for k, v := range b {
			totals[k] += v
			all += v
		}
	}
	var out Mix
	var observed uint64
	for _, n := range m.ringN {
		observed += n
	}
	if observed == 0 {
		return out
	}
	for k, v := range totals {
		out[k] = float64(v) / float64(observed)
	}
	return out
}

// Partition assigns each thread a share of each unit kind's issue slots.
// Shares are expressed in sixteenths (0..16) so that actions form a small
// discrete alphabet, like the 9 supported LLC sizes; Shares[t][k] is thread
// t's share of unit k.
type Partition struct {
	Shares [2][NumKinds]int
}

// Sixteenths is the share denominator.
const Sixteenths = 16

// Validate checks the partition is complete and non-overlapping.
func (p Partition) Validate() error {
	for k := 0; k < int(NumKinds); k++ {
		a, b := p.Shares[0][k], p.Shares[1][k]
		if a < 1 || b < 1 {
			return fmt.Errorf("smt: %v share below minimum", UnitKind(k))
		}
		if a+b != Sixteenths {
			return fmt.Errorf("smt: %v shares sum to %d, want %d", UnitKind(k), a+b, Sixteenths)
		}
	}
	return nil
}

// Even returns the static 50/50 partition.
func Even() Partition {
	var p Partition
	for k := 0; k < int(NumKinds); k++ {
		p.Shares[0][k] = Sixteenths / 2
		p.Shares[1][k] = Sixteenths / 2
	}
	return p
}

// Decide computes the next partition from the two threads' monitored usage
// fractions: each unit's slots split proportionally to demand, quantized to
// sixteenths with a 1-sixteenth floor, and with a hysteresis band so small
// demand wobbles keep the current partition (the Maintain action). The
// decision is a pure function of the two monitored mixes, so with
// progress-based assessment points the action sequence inherits Untangle's
// timing independence.
func Decide(current Partition, usage [2]Mix, hysteresis float64) Partition {
	next := current
	for k := 0; k < int(NumKinds); k++ {
		d0, d1 := usage[0][k], usage[1][k]
		total := d0 + d1
		if total <= 0 {
			continue
		}
		want := int(float64(Sixteenths)*d0/total + 0.5)
		if want < 1 {
			want = 1
		}
		if want > Sixteenths-1 {
			want = Sixteenths - 1
		}
		// Hysteresis: move only when the demand imbalance justifies it.
		cur := current.Shares[0][k]
		if diff := want - cur; diff != 0 {
			if float64(abs(diff))/Sixteenths >= hysteresis {
				next.Shares[0][k] = want
				next.Shares[1][k] = Sixteenths - want
			}
		}
	}
	return next
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Visible reports whether a resizing action changes any share — the
// attacker-observable condition, mirroring the LLC scheme's size change.
func Visible(prev, next Partition) bool {
	return prev != next
}

// Throughput estimates the two threads' IPC under a partition given their
// demands and a per-thread peak IPC: each unit kind caps thread t at
// peak * share/(demand fraction * Sixteenths) and the binding constraint
// wins. It is a coarse bottleneck model, sufficient to show the
// performance/leakage trade-off of dynamic SMT partitioning.
func Throughput(p Partition, usage [2]Mix, peak float64) [2]float64 {
	var out [2]float64
	for t := 0; t < 2; t++ {
		ipc := peak
		for k := 0; k < int(NumKinds); k++ {
			demand := usage[t][k]
			if demand <= 0 {
				continue
			}
			// Slots available to this thread, as instructions per cycle.
			slots := peak * float64(p.Shares[t][k]) / Sixteenths
			cap := slots / demand
			if cap < ipc {
				ipc = cap
			}
		}
		out[t] = ipc
	}
	return out
}
