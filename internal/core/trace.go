// Package core implements the Untangle framework itself (Section 5 of the
// paper): the formal decomposition of resizing-trace leakage into action
// leakage and scheduling leakage (Equations 5.1-5.6), and the runtime
// leakage accountant of Section 7 that charges scheduling leakage against a
// victim's budget using the precomputed covert-channel rate table.
package core

import (
	"fmt"
	"math"

	"untangle/internal/info"
)

// ResizingTrace is one realizable resizing trace: the sequence of actions
// (partition sizes, or any comparable action encoding) and the time of each
// action (Section 3.2). Times are integer timestamps at a finite resolution,
// as the paper assumes.
type ResizingTrace struct {
	Actions []int64
	Times   []int64
}

// actionKey returns a map key identifying the action sequence S.
func (t ResizingTrace) actionKey() string {
	return fmt.Sprint(t.Actions)
}

// fullKey identifies the complete trace (S, T_S).
func (t ResizingTrace) fullKey() string {
	return fmt.Sprint(t.Actions, t.Times)
}

// Validate checks the trace is well-formed: matching lengths and strictly
// increasing timestamps.
func (t ResizingTrace) Validate() error {
	if len(t.Actions) != len(t.Times) {
		return fmt.Errorf("core: %d actions but %d times", len(t.Actions), len(t.Times))
	}
	for i := 1; i < len(t.Times); i++ {
		if t.Times[i] <= t.Times[i-1] {
			return fmt.Errorf("core: timestamps must be strictly increasing (index %d)", i)
		}
	}
	return nil
}

// WeightedTrace pairs a realizable trace with its probability of occurring
// (driven by the distribution of the victim's secret inputs).
type WeightedTrace struct {
	Trace ResizingTrace
	Prob  float64
}

// TraceSet is the set of realizable resizing traces of a victim program
// together with their probabilities — the object whose entropy defines the
// program's leakage (Section 3.2).
type TraceSet struct {
	traces []WeightedTrace
}

// NewTraceSet validates the traces and probabilities.
func NewTraceSet(traces []WeightedTrace) (*TraceSet, error) {
	sum := 0.0
	for i, wt := range traces {
		if err := wt.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("trace %d: %w", i, err)
		}
		if wt.Prob < 0 {
			return nil, fmt.Errorf("trace %d: negative probability", i)
		}
		sum += wt.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("core: trace probabilities sum to %v", sum)
	}
	return &TraceSet{traces: append([]WeightedTrace(nil), traces...)}, nil
}

// TotalLeakage returns L = H(S, T_S), the joint entropy of the realizable
// traces (Equation 5.1), in bits. Identical (S, T_S) pairs are merged first.
func (ts *TraceSet) TotalLeakage() float64 {
	probs := map[string]float64{}
	for _, wt := range ts.traces {
		probs[wt.Trace.fullKey()] += wt.Prob
	}
	return entropyOfMap(probs)
}

// ActionLeakage returns H(S), the entropy of the action sequences alone —
// the "what" part of the leakage (Equation 5.6, first term).
func (ts *TraceSet) ActionLeakage() float64 {
	probs := map[string]float64{}
	for _, wt := range ts.traces {
		probs[wt.Trace.actionKey()] += wt.Prob
	}
	return entropyOfMap(probs)
}

// SchedulingLeakage returns E[H(T_s | S=s)], the expected entropy of the
// timing sequences within each action sequence — the "when" part of the
// leakage (Equation 5.6, second term).
func (ts *TraceSet) SchedulingLeakage() float64 {
	// Group traces by action sequence.
	groups := map[string]map[string]float64{}
	groupProb := map[string]float64{}
	for _, wt := range ts.traces {
		ak := wt.Trace.actionKey()
		if groups[ak] == nil {
			groups[ak] = map[string]float64{}
		}
		groups[ak][wt.Trace.fullKey()] += wt.Prob
		groupProb[ak] += wt.Prob
	}
	leak := 0.0
	for ak, group := range groups {
		p := groupProb[ak]
		if p <= 0 {
			continue
		}
		// Conditional distribution of timings given S = s.
		cond := make(info.Dist, 0, len(group))
		for _, q := range group {
			cond = append(cond, q/p)
		}
		leak += p * cond.Entropy()
	}
	return leak
}

// Decompose returns (total, action, scheduling) leakage. The chain rule of
// Equation 5.6 guarantees total = action + scheduling; Decompose computes
// all three independently so tests can verify the identity.
func (ts *TraceSet) Decompose() (total, action, scheduling float64) {
	return ts.TotalLeakage(), ts.ActionLeakage(), ts.SchedulingLeakage()
}

func entropyOfMap(probs map[string]float64) float64 {
	d := make(info.Dist, 0, len(probs))
	for _, p := range probs {
		d = append(d, p)
	}
	return d.Entropy()
}
