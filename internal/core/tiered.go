package core

import (
	"fmt"
	"time"
)

// Tier is a security level in the extended threat model of Section 6.4:
// information may flow from a lower-tiered program L to a higher-tiered
// program H, but not vice versa. The paper's default peer model corresponds
// to every domain sharing one tier.
type Tier int

// TieredAccountant wraps an Accountant with the Section 6.4 charging rule:
// a domain's visible resizing action is chargeable only if some *other*
// domain sits at the same tier or below — i.e., there exists an observer to
// whom information flow is forbidden. When every co-located domain is
// strictly higher-tiered, the resize is an allowed L-to-H flow and "does not
// count towards the leakage thresholds of both programs".
//
// Section 6.4's caveat — that L's resizing perturbs H's timing, which H's
// secret-dependent behaviour can reflect back through other observable
// events — is a scheduling-leakage channel on H's side; it is measured by
// charging H (not L) through its own accountant when H is chargeable.
type TieredAccountant struct {
	inner Accountant
	tiers []Tier
	// skipped counts assessments recorded as free flows per domain.
	skipped []int
}

// NewTieredAccountant wraps inner with per-domain tiers.
func NewTieredAccountant(inner Accountant, tiers []Tier) (*TieredAccountant, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: nil inner accountant")
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("core: no tiers")
	}
	return &TieredAccountant{
		inner:   inner,
		tiers:   append([]Tier(nil), tiers...),
		skipped: make([]int, len(tiers)),
	}, nil
}

// Chargeable reports whether a visible resize by domain counts against its
// budget: true when some other domain's tier is less than or equal to the
// actor's (an observer the actor must not leak to exists).
func (a *TieredAccountant) Chargeable(domain int) bool {
	for i, t := range a.tiers {
		if i != domain && t <= a.tiers[domain] {
			return true
		}
	}
	return false
}

// RecordAssessment implements Accountant. Non-chargeable visible actions are
// recorded as invisible so that assessments still count (the schedule is
// public) but no bits are charged.
func (a *TieredAccountant) RecordAssessment(domain int, visible bool, at time.Duration) {
	if visible && !a.Chargeable(domain) {
		a.skipped[domain]++
		visible = false
	}
	a.inner.RecordAssessment(domain, visible, at)
}

// Domain implements Accountant.
func (a *TieredAccountant) Domain(domain int) DomainLeakage { return a.inner.Domain(domain) }

// Frozen implements Accountant.
func (a *TieredAccountant) Frozen(domain int) bool { return a.inner.Frozen(domain) }

// FreeFlows returns how many visible actions by domain were allowed as
// lower-to-higher flows without charge.
func (a *TieredAccountant) FreeFlows(domain int) int { return a.skipped[domain] }

var _ Accountant = (*TieredAccountant)(nil)
