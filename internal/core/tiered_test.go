package core

import (
	"testing"
	"time"
)

func TestTieredValidation(t *testing.T) {
	if _, err := NewTieredAccountant(nil, []Tier{0}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewTieredAccountant(NewNullAccountant(1), nil); err == nil {
		t.Error("empty tiers accepted")
	}
}

func TestTieredChargeability(t *testing.T) {
	// Domain 0 at tier 0 (low), domains 1 and 2 at tier 1 (high), domain 3
	// at tier 1.
	a, err := NewTieredAccountant(NewNullAccountant(4), []Tier{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The low domain only coexists with strictly-higher domains: its
	// resizes are allowed flows.
	if a.Chargeable(0) {
		t.Error("L among only-H peers should not be chargeable")
	}
	// A high domain has peers at its own tier (and a lower one): chargeable.
	for _, d := range []int{1, 2, 3} {
		if !a.Chargeable(d) {
			t.Errorf("domain %d should be chargeable", d)
		}
	}
}

func TestTieredPeersAllChargeable(t *testing.T) {
	// The paper's default peer model: one tier for everyone.
	a, _ := NewTieredAccountant(NewNullAccountant(3), []Tier{5, 5, 5})
	for d := 0; d < 3; d++ {
		if !a.Chargeable(d) {
			t.Errorf("peer domain %d should be chargeable", d)
		}
	}
}

func TestTieredRecordingSkipsFreeFlows(t *testing.T) {
	inner, err := NewUntangleAccountant(AccountantConfig{
		Domains: 2, Table: testTable(t), OptimizeMaintain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTieredAccountant(inner, []Tier{0, 1}) // L, H
	if err != nil {
		t.Fatal(err)
	}
	// L performs visible resizes: free (flows to H only).
	for i := 1; i <= 5; i++ {
		a.RecordAssessment(0, true, time.Duration(i)*time.Millisecond)
	}
	if got := a.Domain(0).TotalBits; got != 0 {
		t.Errorf("L charged %v bits for allowed flows", got)
	}
	if a.FreeFlows(0) != 5 {
		t.Errorf("free flows = %d, want 5", a.FreeFlows(0))
	}
	if a.Domain(0).Assessments != 5 {
		t.Errorf("assessments = %d; free flows still count as assessments", a.Domain(0).Assessments)
	}
	// H performs visible resizes: charged (L observes it).
	for i := 1; i <= 5; i++ {
		a.RecordAssessment(1, true, time.Duration(i)*time.Millisecond)
	}
	if got := a.Domain(1).TotalBits; got <= 0 {
		t.Error("H not charged despite a lower-tier observer")
	}
	if a.Frozen(1) {
		t.Error("unexpected freeze")
	}
}

func TestTieredSingleDomainNeverChargeable(t *testing.T) {
	a, _ := NewTieredAccountant(NewNullAccountant(1), []Tier{0})
	if a.Chargeable(0) {
		t.Error("a lone domain has no observers")
	}
}
