package core

import (
	"math"
	"testing"
	"time"

	"untangle/internal/covert"
)

func testTable(t *testing.T) *covert.RateTable {
	t.Helper()
	tbl, err := covert.Shared(covert.TableConfig{
		Unit:         100 * time.Microsecond,
		Cooldown:     time.Millisecond,
		DelayWidth:   time.Millisecond,
		MaxMaintains: 8,
		Solver: covert.SolverConfig{
			MaxDinkelbachRounds: 8,
			Tolerance:           1e-5,
			InnerIterations:     150,
			InnerStep:           0.3,
			UpperBoundSlack:     1e-3,
			VerifyIterations:    300,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTimeAccountantChargesLog2Actions(t *testing.T) {
	a, err := NewTimeAccountant(AccountantConfig{Domains: 2, Actions: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log2(9) // 3.17 bits, the paper's Time baseline
	if got := a.PerAssessmentBits(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("per-assessment = %v, want log2 9", got)
	}
	for i := 0; i < 100; i++ {
		a.RecordAssessment(0, i%7 == 0, time.Duration(i)*time.Millisecond)
	}
	d := a.Domain(0)
	if d.Assessments != 100 {
		t.Errorf("assessments = %d", d.Assessments)
	}
	if math.Abs(d.TotalBits-100*want) > 1e-9 {
		t.Errorf("total = %v, want %v", d.TotalBits, 100*want)
	}
	if math.Abs(d.PerAssessment()-want) > 1e-9 {
		t.Errorf("per assessment = %v, want %v", d.PerAssessment(), want)
	}
	// Untouched domain stays zero.
	if a.Domain(1).TotalBits != 0 {
		t.Error("domain 1 charged without assessments")
	}
}

func TestTimeAccountantValidation(t *testing.T) {
	if _, err := NewTimeAccountant(AccountantConfig{Domains: 0, Actions: 9}); err == nil {
		t.Error("zero domains accepted")
	}
	if _, err := NewTimeAccountant(AccountantConfig{Domains: 1, Actions: 1}); err == nil {
		t.Error("single action accepted")
	}
}

func TestUntangleAccountantMaintainsAreFree(t *testing.T) {
	a, err := NewUntangleAccountant(AccountantConfig{Domains: 1, Table: testTable(t), OptimizeMaintain: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		a.RecordAssessment(0, false, time.Duration(i)*time.Millisecond)
	}
	d := a.Domain(0)
	if d.TotalBits != 0 {
		t.Errorf("50 Maintains charged %v bits, want 0 until a visible action", d.TotalBits)
	}
	if d.MaintainRun != 50 {
		t.Errorf("maintain run = %d", d.MaintainRun)
	}
	if d.MaintainFraction() != 1 {
		t.Errorf("maintain fraction = %v", d.MaintainFraction())
	}
}

func TestUntangleAccountantVisibleChargesGapAtRunRate(t *testing.T) {
	tbl := testTable(t)
	a, _ := NewUntangleAccountant(AccountantConfig{Domains: 1, Table: tbl, OptimizeMaintain: true})
	// 4 Maintains at 1..4ms, then a visible resize at 5ms: charge the 5ms
	// gap at Rmax_4.
	for i := 1; i <= 4; i++ {
		a.RecordAssessment(0, false, time.Duration(i)*time.Millisecond)
	}
	a.RecordAssessment(0, true, 5*time.Millisecond)
	want := tbl.LeakagePerResize(4)
	d := a.Domain(0)
	if math.Abs(d.TotalBits-want) > 1e-12 {
		t.Errorf("charged %v, want %v", d.TotalBits, want)
	}
	if d.MaintainRun != 0 {
		t.Error("maintain run not reset by a visible action")
	}
	if d.Visible != 1 || d.Assessments != 5 {
		t.Errorf("counts = %+v", d)
	}
}

func TestUntangleOptimizationLowersCharge(t *testing.T) {
	// The same trace (9 Maintains + 1 visible, repeated) must cost strictly
	// less with the Section 5.3.4 optimization than without it.
	tbl := testTable(t)
	run := func(optimize bool) float64 {
		a, _ := NewUntangleAccountant(AccountantConfig{Domains: 1, Table: tbl, OptimizeMaintain: optimize})
		at := time.Duration(0)
		for round := 0; round < 10; round++ {
			for i := 0; i < 9; i++ {
				at += time.Millisecond
				a.RecordAssessment(0, false, at)
			}
			at += time.Millisecond
			a.RecordAssessment(0, true, at)
		}
		return a.Domain(0).TotalBits
	}
	opt, worst := run(true), run(false)
	if opt >= worst {
		t.Errorf("optimized charge %v >= worst-case %v", opt, worst)
	}
	if opt <= 0 || worst <= 0 {
		t.Error("charges must be positive")
	}
}

func TestUntangleWorstCaseChargesEveryAssessment(t *testing.T) {
	tbl := testTable(t)
	a, _ := NewUntangleAccountant(AccountantConfig{Domains: 1, Table: tbl, OptimizeMaintain: false})
	for i := 1; i <= 10; i++ {
		a.RecordAssessment(0, false, time.Duration(i)*time.Millisecond)
	}
	d := a.Domain(0)
	want := 10 * tbl.LeakagePerResize(0)
	if math.Abs(d.TotalBits-want) > 1e-9 {
		t.Errorf("worst-case charge = %v, want %v", d.TotalBits, want)
	}
}

func TestBudgetFreezesDomain(t *testing.T) {
	tbl := testTable(t)
	perVisible := tbl.LeakagePerResize(0)
	a, _ := NewUntangleAccountant(AccountantConfig{
		Domains: 1, Table: tbl, OptimizeMaintain: true,
		Budget: 2.5 * perVisible,
	})
	at := time.Duration(0)
	visibleAccepted := 0
	for i := 0; i < 10; i++ {
		at += time.Millisecond
		if !a.Frozen(0) {
			visibleAccepted++
		}
		a.RecordAssessment(0, true, at)
	}
	if !a.Frozen(0) {
		t.Fatal("domain never froze")
	}
	d := a.Domain(0)
	// Charges stop once frozen: total stays near the budget.
	if d.TotalBits > 3.2*perVisible {
		t.Errorf("total %v exceeded budget region", d.TotalBits)
	}
	if visibleAccepted >= 10 {
		t.Error("freeze did not limit resizes")
	}
	// Section 4/6.2: security holds; only performance suffers afterwards.
}

func TestTimeAccountantBudget(t *testing.T) {
	a, _ := NewTimeAccountant(AccountantConfig{Domains: 1, Actions: 9, Budget: 10})
	for i := 0; i < 10; i++ {
		a.RecordAssessment(0, true, time.Duration(i)*time.Millisecond)
	}
	if !a.Frozen(0) {
		t.Error("Time accountant did not freeze at budget")
	}
	d := a.Domain(0)
	if d.TotalBits > 13 {
		t.Errorf("charges continued after freeze: %v", d.TotalBits)
	}
}

func TestUntangleAccountantValidation(t *testing.T) {
	if _, err := NewUntangleAccountant(AccountantConfig{Domains: 1}); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := NewUntangleAccountant(AccountantConfig{Domains: 0, Table: testTable(t)}); err == nil {
		t.Error("zero domains accepted")
	}
}

func TestNullAccountant(t *testing.T) {
	a := NewNullAccountant(2)
	a.RecordAssessment(1, true, time.Millisecond)
	a.RecordAssessment(1, false, 2*time.Millisecond)
	if a.Frozen(1) {
		t.Error("null accountant froze")
	}
	d := a.Domain(1)
	if d.TotalBits != 0 || d.Assessments != 2 || d.Visible != 1 {
		t.Errorf("state = %+v", d)
	}
}

func TestPerAssessmentZeroWithoutAssessments(t *testing.T) {
	var d DomainLeakage
	if d.PerAssessment() != 0 || d.MaintainFraction() != 0 {
		t.Error("empty domain stats should be zero")
	}
}
