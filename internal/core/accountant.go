package core

import (
	"fmt"
	"math"
	"time"

	"untangle/internal/covert"
)

// AccountantConfig configures runtime leakage accounting for one scheme.
type AccountantConfig struct {
	// Domains is the number of security domains tracked.
	Domains int
	// Actions is the number of supported resizing actions |A|; the Time
	// baseline is charged log2(Actions) bits per assessment (Section 8,
	// "Measuring the Leakage").
	Actions int
	// Table is the precomputed covert-channel rate table; required for
	// Untangle accounting, ignored by the Time baseline.
	Table *covert.RateTable
	// OptimizeMaintain enables the Section 5.3.4 optimization: runs of
	// invisible Maintain actions lengthen the effective cooldown and lower
	// the charged rate. Disabling it reproduces the worst-case accounting
	// used for the active-attacker experiment of Section 9.
	OptimizeMaintain bool
	// Budget, if positive, is the per-domain leakage threshold in bits
	// (Section 4): once a domain's accumulated leakage reaches it, the
	// domain is frozen and no further resizes are allowed.
	Budget float64
}

// DomainLeakage aggregates one domain's accounting state.
type DomainLeakage struct {
	// TotalBits is the accumulated leakage charge.
	TotalBits float64
	// Assessments counts resizing assessments.
	Assessments int
	// Visible counts attacker-visible actions (size changes).
	Visible int
	// MaintainRun is the current run of consecutive Maintains.
	MaintainRun int
	// lastVisible is the time of the last visible action (or the start of
	// accounting), the reference point for the next gap charge.
	lastVisible time.Duration
	// lastAssessment is the time of the last assessment of any kind.
	lastAssessment time.Duration
	// Frozen reports whether the budget is exhausted.
	Frozen bool
}

// PerAssessment returns the average leakage per assessment in bits.
func (d DomainLeakage) PerAssessment() float64 {
	if d.Assessments == 0 {
		return 0
	}
	return d.TotalBits / float64(d.Assessments)
}

// MaintainFraction returns the fraction of assessments that were Maintains.
func (d DomainLeakage) MaintainFraction() float64 {
	if d.Assessments == 0 {
		return 0
	}
	return 1 - float64(d.Visible)/float64(d.Assessments)
}

// TimeAccountant implements the Section 8 baseline accounting for the Time
// scheme: every assessment leaks log2(|A|) bits, because with a
// fixed-time schedule the conservative analysis must assume every action
// choice is equally likely (Section 3.3).
type TimeAccountant struct {
	perAssessment float64
	domains       []DomainLeakage
	budget        float64
}

// NewTimeAccountant builds the baseline accountant.
func NewTimeAccountant(cfg AccountantConfig) (*TimeAccountant, error) {
	if cfg.Domains <= 0 || cfg.Actions < 2 {
		return nil, fmt.Errorf("core: need domains and at least 2 actions")
	}
	return &TimeAccountant{
		perAssessment: math.Log2(float64(cfg.Actions)),
		domains:       make([]DomainLeakage, cfg.Domains),
		budget:        cfg.Budget,
	}, nil
}

// RecordAssessment charges one assessment for a domain.
func (a *TimeAccountant) RecordAssessment(domain int, visible bool, at time.Duration) {
	d := &a.domains[domain]
	if d.Frozen {
		return
	}
	d.Assessments++
	if visible {
		d.Visible++
	}
	d.TotalBits += a.perAssessment
	d.lastAssessment = at
	if a.budget > 0 && d.TotalBits >= a.budget {
		d.Frozen = true
	}
}

// Domain returns a copy of a domain's accounting state.
func (a *TimeAccountant) Domain(domain int) DomainLeakage { return a.domains[domain] }

// Frozen reports whether the domain exhausted its budget.
func (a *TimeAccountant) Frozen(domain int) bool { return a.domains[domain].Frozen }

// PerAssessmentBits returns the constant charge (log2 |A|).
func (a *TimeAccountant) PerAssessmentBits() float64 { return a.perAssessment }

// UntangleAccountant implements the Section 7 runtime measurement: action
// leakage is zero (eliminated by the design principles plus annotations), and
// scheduling leakage is charged per visible resize at the precomputed rate
// Rmax_m, where m is the number of consecutive Maintains since the last
// visible action.
//
// The accounting follows the hardware table protocol: while a domain keeps
// choosing Maintain, nothing is charged; when a visible resize occurs after
// m Maintains, the whole gap since the previous visible action is charged at
// rate Rmax_m (conservative: the gap is at least (m+1)Tc, and Rmax_m is the
// verified upper bound for that effective cooldown).
type UntangleAccountant struct {
	table            *covert.RateTable
	optimizeMaintain bool
	budget           float64
	domains          []DomainLeakage
}

// NewUntangleAccountant builds the Untangle accountant.
func NewUntangleAccountant(cfg AccountantConfig) (*UntangleAccountant, error) {
	if cfg.Domains <= 0 {
		return nil, fmt.Errorf("core: need at least one domain")
	}
	if cfg.Table == nil {
		return nil, fmt.Errorf("core: Untangle accounting needs a rate table")
	}
	return &UntangleAccountant{
		table:            cfg.Table,
		optimizeMaintain: cfg.OptimizeMaintain,
		budget:           cfg.Budget,
		domains:          make([]DomainLeakage, cfg.Domains),
	}, nil
}

// RecordAssessment charges a domain for one assessment at time at.
func (a *UntangleAccountant) RecordAssessment(domain int, visible bool, at time.Duration) {
	d := &a.domains[domain]
	if d.Frozen {
		return
	}
	d.Assessments++
	if a.optimizeMaintain {
		if visible {
			d.Visible++
			d.TotalBits += a.table.LeakagePerResize(d.MaintainRun)
			d.MaintainRun = 0
			d.lastVisible = at
		} else {
			d.MaintainRun++
		}
	} else {
		// Worst-case model (Section 5.3.3): every action is assumed to
		// change the partition size, so every assessment is charged the
		// per-transmission bound of the base Tc channel.
		if visible {
			d.Visible++
		}
		d.TotalBits += a.table.LeakagePerResize(0)
		d.lastVisible = at
	}
	d.lastAssessment = at
	if a.budget > 0 && d.TotalBits >= a.budget {
		d.Frozen = true
	}
}

// Domain returns a copy of a domain's accounting state.
func (a *UntangleAccountant) Domain(domain int) DomainLeakage { return a.domains[domain] }

// Frozen reports whether the domain exhausted its budget (Section 4: the
// victim may not resize further; performance suffers but security holds).
func (a *UntangleAccountant) Frozen(domain int) bool { return a.domains[domain].Frozen }

// Table exposes the rate table (for reporting).
func (a *UntangleAccountant) Table() *covert.RateTable { return a.table }

// Accountant is the interface the simulator drives; both the Time baseline
// and Untangle implement it.
type Accountant interface {
	RecordAssessment(domain int, visible bool, at time.Duration)
	Domain(domain int) DomainLeakage
	Frozen(domain int) bool
}

var (
	_ Accountant = (*TimeAccountant)(nil)
	_ Accountant = (*UntangleAccountant)(nil)
)

// NullAccountant records assessments without charging leakage; used for the
// Static and Shared schemes, which never resize (Static) or have no
// partition to observe (Shared).
type NullAccountant struct {
	domains []DomainLeakage
}

// NewNullAccountant builds a no-op accountant for n domains.
func NewNullAccountant(n int) *NullAccountant {
	return &NullAccountant{domains: make([]DomainLeakage, n)}
}

// RecordAssessment implements Accountant.
func (a *NullAccountant) RecordAssessment(domain int, visible bool, _ time.Duration) {
	d := &a.domains[domain]
	d.Assessments++
	if visible {
		d.Visible++
	}
}

// Domain implements Accountant.
func (a *NullAccountant) Domain(domain int) DomainLeakage { return a.domains[domain] }

// Frozen implements Accountant.
func (a *NullAccountant) Frozen(int) bool { return false }

var _ Accountant = (*NullAccountant)(nil)
