package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	expand   = int64(4 << 20)
	maintain = int64(2 << 20)
)

// figure3TraceSet builds the worked example of Figure 3.
func figure3TraceSet(t *testing.T) *TraceSet {
	t.Helper()
	ts, err := NewTraceSet([]WeightedTrace{
		{Trace: ResizingTrace{Actions: []int64{expand, maintain}, Times: []int64{100, 200}}, Prob: 0.25},
		{Trace: ResizingTrace{Actions: []int64{expand, maintain}, Times: []int64{150, 300}}, Prob: 0.25},
		{Trace: ResizingTrace{Actions: []int64{maintain, maintain}, Times: []int64{120, 240}}, Prob: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestFigure3Example(t *testing.T) {
	ts := figure3TraceSet(t)
	total, action, scheduling := ts.Decompose()
	if math.Abs(action-1) > 1e-9 {
		t.Errorf("action leakage = %v bits, want 1 (Figure 3)", action)
	}
	if math.Abs(scheduling-0.5) > 1e-9 {
		t.Errorf("scheduling leakage = %v bits, want 0.5 (Figure 3)", scheduling)
	}
	if math.Abs(total-1.5) > 1e-9 {
		t.Errorf("total leakage = %v bits, want 1.5 (Figure 3)", total)
	}
}

func TestSection33ConservativeExample(t *testing.T) {
	// Section 3.3: n binary assessments at fixed times, all 2^n traces
	// equally likely -> leakage n bits, all of it action leakage.
	const n = 10
	var traces []WeightedTrace
	for mask := 0; mask < 1<<n; mask++ {
		actions := make([]int64, n)
		times := make([]int64, n)
		for i := 0; i < n; i++ {
			actions[i] = int64(mask>>i) & 1
			times[i] = int64(i+1) * 1000 // fixed schedule
		}
		traces = append(traces, WeightedTrace{
			Trace: ResizingTrace{Actions: actions, Times: times},
			Prob:  1.0 / float64(int(1)<<n),
		})
	}
	ts, err := NewTraceSet(traces)
	if err != nil {
		t.Fatal(err)
	}
	total, action, scheduling := ts.Decompose()
	if math.Abs(total-n) > 1e-9 {
		t.Errorf("total = %v, want %d", total, n)
	}
	if math.Abs(action-n) > 1e-9 || scheduling > 1e-9 {
		t.Errorf("action = %v, scheduling = %v; fixed-time schedule should be all action leakage", action, scheduling)
	}
}

func TestPureSchedulingLeakage(t *testing.T) {
	// One action sequence, two timings (Figure 1c / Figure 5): the action
	// leakage must be zero and everything scheduling.
	ts, err := NewTraceSet([]WeightedTrace{
		{Trace: ResizingTrace{Actions: []int64{expand}, Times: []int64{1000}}, Prob: 0.5},
		{Trace: ResizingTrace{Actions: []int64{expand}, Times: []int64{2000}}, Prob: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	total, action, scheduling := ts.Decompose()
	if action != 0 {
		t.Errorf("action leakage = %v, want 0", action)
	}
	if math.Abs(scheduling-1) > 1e-9 || math.Abs(total-1) > 1e-9 {
		t.Errorf("scheduling = %v, total = %v, want 1", scheduling, total)
	}
}

func TestDeterministicTraceLeaksNothing(t *testing.T) {
	ts, err := NewTraceSet([]WeightedTrace{
		{Trace: ResizingTrace{Actions: []int64{expand, expand}, Times: []int64{10, 20}}, Prob: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total, action, scheduling := ts.Decompose(); total != 0 || action != 0 || scheduling != 0 {
		t.Errorf("deterministic trace leaks (%v, %v, %v), want zeros", total, action, scheduling)
	}
}

func TestTraceValidation(t *testing.T) {
	if err := (ResizingTrace{Actions: []int64{1}, Times: []int64{1, 2}}).Validate(); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := (ResizingTrace{Actions: []int64{1, 2}, Times: []int64{5, 5}}).Validate(); err == nil {
		t.Error("non-increasing timestamps accepted")
	}
	if _, err := NewTraceSet([]WeightedTrace{
		{Trace: ResizingTrace{Actions: []int64{1}, Times: []int64{1}}, Prob: 0.7},
	}); err == nil {
		t.Error("probabilities not summing to 1 accepted")
	}
	if _, err := NewTraceSet([]WeightedTrace{
		{Trace: ResizingTrace{Actions: []int64{1}, Times: []int64{1}}, Prob: -1},
		{Trace: ResizingTrace{Actions: []int64{2}, Times: []int64{1}}, Prob: 2},
	}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestDuplicateTracesMerge(t *testing.T) {
	// The same trace listed twice with probability halves must behave like
	// one trace with probability 1: zero leakage.
	tr := ResizingTrace{Actions: []int64{expand}, Times: []int64{100}}
	ts, err := NewTraceSet([]WeightedTrace{{Trace: tr, Prob: 0.5}, {Trace: tr, Prob: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.TotalLeakage(); got != 0 {
		t.Errorf("merged duplicate traces leak %v, want 0", got)
	}
}

// randomTraceSet builds a random, valid trace set for property tests.
func randomTraceSet(r *rand.Rand) *TraceSet {
	n := r.Intn(12) + 1
	traces := make([]WeightedTrace, n)
	raw := make([]float64, n)
	sum := 0.0
	for i := range raw {
		raw[i] = r.Float64() + 1e-3
		sum += raw[i]
	}
	for i := range traces {
		length := r.Intn(4) + 1
		actions := make([]int64, length)
		times := make([]int64, length)
		tcur := int64(0)
		for j := 0; j < length; j++ {
			actions[j] = int64(r.Intn(3))
			tcur += int64(r.Intn(100) + 1)
			times[j] = tcur
		}
		traces[i] = WeightedTrace{
			Trace: ResizingTrace{Actions: actions, Times: times},
			Prob:  raw[i] / sum,
		}
	}
	ts, err := NewTraceSet(traces)
	if err != nil {
		panic(err)
	}
	return ts
}

func TestPropertyChainRuleDecomposition(t *testing.T) {
	// Equation 5.6: H(S, T_S) = H(S) + E[H(T_s | S=s)], always.
	f := func(seed int64) bool {
		ts := randomTraceSet(rand.New(rand.NewSource(seed)))
		total, action, scheduling := ts.Decompose()
		return math.Abs(total-(action+scheduling)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLeakagesNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		ts := randomTraceSet(rand.New(rand.NewSource(seed)))
		total, action, scheduling := ts.Decompose()
		return total >= 0 && action >= 0 && scheduling >= 0 && action <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
