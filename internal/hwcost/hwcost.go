// Package hwcost estimates the hardware budget of the Section 7
// implementation sketch: the shadow-tag monitor arrays, the precomputed
// leakage-rate table, and the per-domain bookkeeping registers. The paper
// does not present a full implementation ("the focus and the novelty of
// this paper is in the Untangle framework"); this package quantifies the
// sketch so the storage overhead claims can be sanity-checked.
package hwcost

import (
	"fmt"

	"untangle/internal/cache"
)

// MonitorConfig describes one domain's utilization monitor.
type MonitorConfig struct {
	// Sizes are the candidate partition sizes in bytes.
	Sizes []int64
	// Ways is the simulated associativity.
	Ways int
	// SampleLog2 is the set-sampling factor (Section 7's "selectively
	// simulates memory accesses to only certain cache sets").
	SampleLog2 uint
	// TagBits is the stored tag width per shadow entry. 0 picks a default
	// of 24 bits (40-bit physical line address minus ~16 index bits).
	TagBits int
	// CounterBits is the width of each per-size hit counter; 0 picks 32.
	CounterBits int
	// Buckets is the window subdivision count; 0 picks 8.
	Buckets int
}

// MonitorCost is the per-domain monitor budget.
type MonitorCost struct {
	// ShadowEntries is the total number of shadow-tag entries across all
	// candidate sizes.
	ShadowEntries int64
	// TagBits is the SRAM spent on tags.
	TagBits int64
	// CounterBits is the SRAM spent on windowed hit counters.
	CounterBits int64
	// TotalKiB is the whole monitor in KiB.
	TotalKiB float64
}

// Monitor computes the cost of one domain's monitor.
func Monitor(cfg MonitorConfig) (MonitorCost, error) {
	if len(cfg.Sizes) == 0 || cfg.Ways <= 0 {
		return MonitorCost{}, fmt.Errorf("hwcost: incomplete monitor config")
	}
	tagBits := cfg.TagBits
	if tagBits <= 0 {
		tagBits = 24
	}
	counterBits := cfg.CounterBits
	if counterBits <= 0 {
		counterBits = 32
	}
	buckets := cfg.Buckets
	if buckets <= 0 {
		buckets = 8
	}
	var c MonitorCost
	for _, size := range cfg.Sizes {
		lines := size / cache.LineBytes >> cfg.SampleLog2
		if min := int64(cfg.Ways * 4); lines < min {
			lines = min
		}
		c.ShadowEntries += lines
	}
	// One valid bit plus the tag per entry; LRU state is log2(ways) bits
	// per entry, approximated as 4 bits for 16-way.
	c.TagBits = c.ShadowEntries * int64(tagBits+1+4)
	c.CounterBits = int64(len(cfg.Sizes)) * int64(buckets) * int64(counterBits)
	c.TotalKiB = float64(c.TagBits+c.CounterBits) / 8 / 1024
	return c, nil
}

// TableCost is the Section 7 leakage-rate table budget.
type TableCost struct {
	Entries   int
	TotalBits int64
}

// RateTable sizes the precomputed Rmax table: one fixed-point rate per
// consecutive-Maintain count. entryBits 0 picks 32 (a 16.16 fixed-point
// bits-per-resize value is ample).
func RateTable(maxMaintains, entryBits int) TableCost {
	if entryBits <= 0 {
		entryBits = 32
	}
	n := maxMaintains + 1
	if n < 1 {
		n = 1
	}
	return TableCost{Entries: n, TotalBits: int64(n) * int64(entryBits)}
}

// DomainState is the per-domain bookkeeping of the scheme itself.
type DomainState struct {
	// Bits of architectural state per domain: progress counter, cooldown
	// deadline, accumulated-leakage register, Maintain-run counter,
	// pending-action latch, and the current-size register.
	Bits int64
}

// PerDomainState estimates the non-monitor registers.
func PerDomainState() DomainState {
	const (
		progressCounter = 32 // retired public instructions toward N
		deadline        = 48 // cycle timestamp for the cooldown
		leakageAcc      = 32 // fixed-point accumulated bits
		maintainRun     = 8
		pending         = 8 + 48 // size index + apply timestamp
		current         = 8
	)
	return DomainState{Bits: progressCounter + deadline + leakageAcc + maintainRun + pending + current}
}

// System sums the budget for a whole machine.
type SystemCost struct {
	Domains      int
	MonitorKiB   float64
	TableBits    int64
	StateBits    int64
	TotalKiB     float64
	PercentOfLLC float64
}

// System computes the machine-level total against an LLC capacity.
func System(domains int, mon MonitorConfig, maxMaintains int, llcBytes int64) (SystemCost, error) {
	if domains <= 0 {
		return SystemCost{}, fmt.Errorf("hwcost: %d domains", domains)
	}
	mc, err := Monitor(mon)
	if err != nil {
		return SystemCost{}, err
	}
	tbl := RateTable(maxMaintains, 0)
	st := PerDomainState()
	out := SystemCost{
		Domains:    domains,
		MonitorKiB: mc.TotalKiB * float64(domains),
		TableBits:  tbl.TotalBits,
		StateBits:  st.Bits * int64(domains),
	}
	out.TotalKiB = out.MonitorKiB + float64(out.TableBits+out.StateBits)/8/1024
	if llcBytes > 0 {
		out.PercentOfLLC = out.TotalKiB * 1024 / float64(llcBytes) * 100
	}
	return out, nil
}
