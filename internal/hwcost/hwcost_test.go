package hwcost

import (
	"testing"

	"untangle/internal/monitor"
)

func paperMonitor() MonitorConfig {
	return MonitorConfig{
		Sizes:      monitor.DefaultSizes(),
		Ways:       16,
		SampleLog2: 5, // 1/32 set sampling, UMON's usual ratio
	}
}

func TestMonitorCostReasonable(t *testing.T) {
	c, err := Monitor(paperMonitor())
	if err != nil {
		t.Fatal(err)
	}
	// Candidate sizes sum to ~24.9MB of simulated cache; at 1/32 sampling
	// that is ~12.4k entries.
	if c.ShadowEntries < 10_000 || c.ShadowEntries > 16_000 {
		t.Errorf("shadow entries = %d, want ~12k", c.ShadowEntries)
	}
	// A per-domain monitor must stay tiny next to the 16MB LLC: well under
	// 100 KiB.
	if c.TotalKiB <= 0 || c.TotalKiB > 100 {
		t.Errorf("monitor = %.1f KiB", c.TotalKiB)
	}
	if c.CounterBits != 9*8*32 {
		t.Errorf("counter bits = %d", c.CounterBits)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := Monitor(MonitorConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestMonitorSamplingReducesCost(t *testing.T) {
	full := paperMonitor()
	full.SampleLog2 = 0
	sampled := paperMonitor()
	cFull, _ := Monitor(full)
	cSampled, _ := Monitor(sampled)
	if cSampled.TagBits*16 > cFull.TagBits {
		t.Errorf("1/32 sampling saved too little: %d vs %d tag bits", cSampled.TagBits, cFull.TagBits)
	}
}

func TestRateTable(t *testing.T) {
	tbl := RateTable(16, 0)
	if tbl.Entries != 17 || tbl.TotalBits != 17*32 {
		t.Errorf("table = %+v", tbl)
	}
	if RateTable(-1, 16).Entries != 1 {
		t.Error("negative capacity not clamped")
	}
}

func TestSystemBudgetSmallFractionOfLLC(t *testing.T) {
	// The headline sanity check: the whole mechanism for 8 domains costs a
	// fraction of a percent of the 16MB LLC it protects.
	sys, err := System(8, paperMonitor(), 16, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PercentOfLLC <= 0 || sys.PercentOfLLC > 3 {
		t.Errorf("overhead = %.2f%% of the LLC", sys.PercentOfLLC)
	}
	if sys.TotalKiB <= sys.MonitorKiB/2 {
		t.Errorf("totals inconsistent: %+v", sys)
	}
	if _, err := System(0, paperMonitor(), 16, 16<<20); err == nil {
		t.Error("zero domains accepted")
	}
}
