package report

import (
	"fmt"
	"strings"
)

// Sparkline renders a numeric series as a compact one-line chart using
// block characters, scaled to the series' own min/max. It draws the
// partition-size and IPC timelines in the CLI tools.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// SparklineInt64 converts and renders integer samples.
func SparklineInt64(values []int64) string {
	f := make([]float64, len(values))
	for i, v := range values {
		f[i] = float64(v)
	}
	return Sparkline(f)
}

// Downsample reduces a series to at most n points by averaging buckets,
// keeping sparklines terminal-width-sized.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		return values
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Bars renders a labelled horizontal bar chart in plain text, used by the
// CLI tools to echo the figures' visual structure. Values are scaled so the
// largest bar spans width characters; a reference line (e.g. the Static
// baseline at 1.0) is marked with '|' when it falls inside a bar's span.
func Bars(labels []string, values []float64, width int, reference float64) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	maxVal := values[0]
	labelW := len(labels[0])
	for i := range values {
		if values[i] > maxVal {
			maxVal = values[i]
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	refCol := -1
	if reference > 0 && reference <= maxVal {
		refCol = int(reference / maxVal * float64(width))
		if refCol >= width {
			refCol = width - 1
		}
	}
	var b strings.Builder
	for i := range labels {
		n := int(values[i] / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		row := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if refCol >= 0 {
			row[refCol] = '|'
		}
		fmt.Fprintf(&b, "  %-*s %s %0.2f\n", labelW, labels[i], string(row), values[i])
	}
	return b.String()
}
