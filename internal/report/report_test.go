package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"untangle/internal/experiments"
	"untangle/internal/partition"
	"untangle/internal/workload"
)

func smallMixResult(t *testing.T) *experiments.MixResult {
	t.Helper()
	mix, err := workload.MixByID(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RunMix(mix, experiments.Options{Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMixGroupRendersAllSections(t *testing.T) {
	res := smallMixResult(t)
	out, err := MixGroup(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Mix 1: 2 LLC-sensitive benchmarks",
		"Partition size distribution",
		"Leakage per assessment",
		"IPC normalized to Static",
		"Geo. Mean",
		"parest_0+ECDSA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// With a sensitivity study the caption gains a demand figure.
	study := []experiments.SensitivityResult{}
	for _, p := range workload.SPECBenchmarks {
		study = append(study, experiments.SensitivityResult{Name: p.Name, Adequate: 1 << 20})
	}
	out2, err := MixGroup(res, study)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "Total LLC demand: 8.00MB") {
		t.Errorf("demand caption missing:\n%s", firstLines(out2, 3))
	}
}

func TestMixGroupMissingSchemes(t *testing.T) {
	mix, _ := workload.MixByID(1)
	res, err := experiments.RunMix(mix, experiments.Options{
		Scale: 0.001,
		Kinds: []partition.Kind{partition.Static},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MixGroup(res, nil); err == nil {
		t.Error("MixGroup without dynamic schemes accepted")
	}
}

func TestFigure11Rendering(t *testing.T) {
	study := []experiments.SensitivityResult{
		{
			Name:  "mcf_0",
			Sizes: []int64{128 << 10, 8 << 20}, NormIPC: []float64{0.2, 1.0},
			Adequate: 6 << 20, Sensitive: true,
		},
		{
			Name:  "imagick_0",
			Sizes: []int64{128 << 10, 8 << 20}, NormIPC: []float64{0.8, 1.0},
			Adequate: 256 << 10, Sensitive: false,
		},
	}
	out := Figure11(study)
	if !strings.Contains(out, "* mcf_0") {
		t.Error("sensitive row not starred")
	}
	if !strings.Contains(out, "  imagick_0") {
		t.Error("insensitive row missing")
	}
	if !strings.Contains(out, "6.00MB") {
		t.Error("adequate size missing")
	}
}

func TestTable6Rendering(t *testing.T) {
	rows := []experiments.Table6Row{
		{MixID: 1, TimeAvgPerAssessment: 3.2, TimeAvgTotal: 637.6, UntangleAvgPerAssess: 0.4, UntangleAvgTotal: 38.5, ReductionPerAssessment: 0.875},
		{MixID: 4, TimeAvgPerAssessment: 3.2, TimeAvgTotal: 1084.1, UntangleAvgPerAssess: 1.0, UntangleAvgTotal: 96.0, ReductionPerAssessment: 0.6875},
	}
	out := Table6(rows)
	for _, want := range []string{"Mix 1", "Mix 4", "637.6", "96.0", "88%", "69%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 6 output missing %q:\n%s", want, out)
		}
	}
}

func TestRateTableRendering(t *testing.T) {
	out := RateTable([]RateTableEntry{
		{Maintains: 0, RatePerSecond: 1160, BitsPerTransmission: 1.85},
		{Maintains: 1, RatePerSecond: 755, BitsPerTransmission: 2.42},
	})
	for _, want := range []string{"maintains", "1160.0", "2.42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rate table missing %q", want)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestExportJSON(t *testing.T) {
	res := smallMixResult(t)
	data, err := MarshalJSON(res.PerScheme[partition.Untangle], time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var back ExportResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scheme != "Untangle" {
		t.Errorf("scheme = %q", back.Scheme)
	}
	if len(back.Domains) != 8 {
		t.Fatalf("%d domains", len(back.Domains))
	}
	d := back.Domains[0]
	if d.Name == "" || d.IPC <= 0 || d.SamplePeriodNs != 1000 {
		t.Errorf("domain export = %+v", d)
	}
	if d.Assessments > 0 && len(d.Trace) != d.Assessments {
		t.Errorf("trace length %d vs %d assessments", len(d.Trace), d.Assessments)
	}
	for _, a := range d.Trace {
		if a.ApplyAtNs < a.AtNs {
			t.Error("apply precedes assessment in export")
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{1, 2}, 10, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 9 || !strings.Contains(lines[1], "|") {
		// Width 10 with the reference mark overwriting one column.
		t.Errorf("max bar malformed: %q", lines[1])
	}
	if !strings.Contains(lines[0], "|") {
		t.Errorf("reference mark missing: %q", lines[0])
	}
	if !strings.Contains(lines[0], "1.00") || !strings.Contains(lines[1], "2.00") {
		t.Error("values not printed")
	}
	if Bars(nil, nil, 10, 0) != "" {
		t.Error("empty input should render nothing")
	}
	if Bars([]string{"a"}, []float64{1, 2}, 10, 0) != "" {
		t.Error("mismatched input should render nothing")
	}
	// All-zero values must not divide by zero.
	if out := Bars([]string{"z"}, []float64{0}, 10, 0); out == "" {
		t.Error("zero values should still render")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty series should render nothing")
	}
	// Constant series: all-min glyphs, no divide-by-zero.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	if len(flat) != 3 || flat[0] != '▁' {
		t.Errorf("flat series = %q", string(flat))
	}
	if got := SparklineInt64([]int64{1, 2}); len([]rune(got)) != 2 {
		t.Errorf("int64 sparkline = %q", got)
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Error("downsampled monotone series lost monotonicity")
		}
	}
	if got := Downsample(in, 200); len(got) != 100 {
		t.Error("upsampling should be a no-op")
	}
	if got := Downsample(in, 0); len(got) != 100 {
		t.Error("n=0 should be a no-op")
	}
}
