// Package report renders the reproduction's results in the layout of the
// paper's tables and figures: the three-chart groups of Figures 10 and
// 12-17 (partition-size distribution, leakage per assessment, normalized
// IPC), the Figure 11 sensitivity table, and Table 6.
package report

import (
	"fmt"
	"strings"

	"untangle/internal/experiments"
	"untangle/internal/partition"
	"untangle/internal/stats"
)

// mb formats bytes as megabytes.
func mb(v float64) string {
	return fmt.Sprintf("%.2f", v/(1<<20))
}

// MixGroup renders one Figure 10/12-17 group: the caption line, the
// partition-size distribution chart, the leakage-per-assessment chart, and
// the normalized-IPC chart, one row per workload plus the geometric mean.
func MixGroup(res *experiments.MixResult, study []experiments.SensitivityResult) (string, error) {
	var b strings.Builder
	demand := ""
	if study != nil {
		demand = fmt.Sprintf("; Total LLC demand: %sMB", mb(float64(experiments.TotalLLCDemand(res.Mix, study))))
	}
	fmt.Fprintf(&b, "Mix %d: %d LLC-sensitive benchmarks\n", res.Mix.ID, res.Mix.SensitiveCount())
	fmt.Fprintf(&b, "Total LLC size: 16MB%s\n\n", demand)

	// Chart 1: partition-size distribution under Time and Untangle.
	fmt.Fprintf(&b, "Partition size distribution (MB)  [min  q1  median  q3  max]\n")
	for _, kind := range []partition.Kind{partition.TimeBased, partition.Untangle} {
		sums, err := res.PartitionSummaries(kind)
		if err != nil {
			return "", err
		}
		r := res.PerScheme[kind]
		for i, s := range sums {
			fmt.Fprintf(&b, "  %-9s %-24s %6s %6s %6s %6s %6s\n",
				kind, r.Domains[i].Name, mb(s.Min), mb(s.Q1), mb(s.Median), mb(s.Q3), mb(s.Max))
		}
	}
	b.WriteString("\n")

	// Chart 2: leakage per assessment.
	fmt.Fprintf(&b, "Leakage per assessment (bits)\n")
	fmt.Fprintf(&b, "  %-24s %10s %10s\n", "workload", "Time", "Untangle")
	timeLeak, err := res.LeakagePerAssessment(partition.TimeBased)
	if err != nil {
		return "", err
	}
	unLeak, err := res.LeakagePerAssessment(partition.Untangle)
	if err != nil {
		return "", err
	}
	names := res.PerScheme[partition.TimeBased].Domains
	for i := range names {
		fmt.Fprintf(&b, "  %-24s %10.2f %10.2f\n", names[i].Name, timeLeak[i], unLeak[i])
	}
	fmt.Fprintf(&b, "  %-24s %10.2f %10.2f\n", "Average", stats.Mean(timeLeak), stats.Mean(unLeak))
	b.WriteString("\n")

	// Chart 3: normalized IPC.
	fmt.Fprintf(&b, "IPC normalized to Static\n")
	fmt.Fprintf(&b, "  %-24s %8s %8s %8s %8s\n", "workload", "Static", "Time", "Untangle", "Shared")
	cols := []partition.Kind{partition.TimeBased, partition.Untangle, partition.Shared}
	norm := map[partition.Kind][]float64{}
	for _, k := range cols {
		n, err := res.NormalizedIPC(k)
		if err != nil {
			return "", err
		}
		norm[k] = n
	}
	for i := range names {
		fmt.Fprintf(&b, "  %-24s %8.2f %8.2f %8.2f %8.2f\n", names[i].Name,
			1.0, norm[partition.TimeBased][i], norm[partition.Untangle][i], norm[partition.Shared][i])
	}
	geo := func(k partition.Kind) float64 {
		g, _ := res.SystemSpeedup(k)
		return g
	}
	fmt.Fprintf(&b, "  %-24s %8.2f %8.2f %8.2f %8.2f\n", "Geo. Mean",
		1.0, geo(partition.TimeBased), geo(partition.Untangle), geo(partition.Shared))
	// Visual echo of the bottom chart: Untangle's normalized IPC, with the
	// Static baseline marked at 1.0.
	labels := make([]string, len(names))
	for i := range names {
		labels[i] = names[i].Name
	}
	b.WriteString("\nUntangle normalized IPC (| = Static baseline):\n")
	b.WriteString(Bars(labels, norm[partition.Untangle], 40, 1.0))
	return b.String(), nil
}

// Figure11 renders the sensitivity study: one row per benchmark with its
// normalized IPC at every supported size and its adequate LLC size;
// LLC-sensitive rows are starred, as the paper bolds them.
func Figure11(study []experiments.SensitivityResult) string {
	var b strings.Builder
	b.WriteString("Figure 11: LLC sensitivity (IPC normalized to an 8MB partition)\n")
	fmt.Fprintf(&b, "  %-14s %-9s", "benchmark", "adequate")
	if len(study) > 0 {
		for _, s := range study[0].Sizes {
			fmt.Fprintf(&b, " %6sM", mb(float64(s)))
		}
	}
	b.WriteString("\n")
	for _, r := range study {
		mark := " "
		if r.Sensitive {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s %-14s %6sMB ", mark, r.Name, mb(float64(r.Adequate)))
		for _, v := range r.NormIPC {
			fmt.Fprintf(&b, " %6.2f ", v)
		}
		b.WriteString("\n")
	}
	b.WriteString("(* = LLC-sensitive: adequate size above the 2MB Static partition)\n")
	return b.String()
}

// Table6 renders the leakage summary table over a set of mix results.
func Table6(rows []experiments.Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: Leakage under Time and Untangle\n")
	fmt.Fprintf(&b, "  %-7s %22s %22s %12s\n", "", "Time", "Untangle", "")
	fmt.Fprintf(&b, "  %-7s %10s %11s %10s %11s %12s\n",
		"", "bits/assess", "total bits", "bits/assess", "total bits", "reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "  Mix %-3d %10.1f %11.1f %10.1f %11.1f %11.0f%%\n",
			r.MixID, r.TimeAvgPerAssessment, r.TimeAvgTotal,
			r.UntangleAvgPerAssess, r.UntangleAvgTotal, r.ReductionPerAssessment*100)
	}
	return b.String()
}

// RateTableReport renders the precomputed covert-channel table (the Section
// 7 hardware table contents).
type RateTableEntry struct {
	Maintains           int
	RatePerSecond       float64
	BitsPerTransmission float64
}

// RateTable renders rate-table entries.
func RateTable(entries []RateTableEntry) string {
	var b strings.Builder
	b.WriteString("Covert-channel rate table (Appendix A / Section 7)\n")
	fmt.Fprintf(&b, "  %-10s %14s %16s\n", "maintains", "Rmax (bits/s)", "bits/resize")
	for _, e := range entries {
		fmt.Fprintf(&b, "  %-10d %14.1f %16.2f\n", e.Maintains, e.RatePerSecond, e.BitsPerTransmission)
	}
	return b.String()
}
