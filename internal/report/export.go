package report

import (
	"encoding/json"
	"time"

	"untangle/internal/sim"
	"untangle/internal/telemetry"
)

// Export structures serialize a simulation result for external analysis
// (plotting the partition-size charts, feeding traces to other tools).
// Durations are exported in nanoseconds of simulated time.

// ExportAssessment is one resizing assessment.
type ExportAssessment struct {
	AtNs      int64 `json:"at_ns"`
	ApplyAtNs int64 `json:"apply_at_ns"`
	PrevBytes int64 `json:"prev_bytes"`
	SizeBytes int64 `json:"size_bytes"`
	Visible   bool  `json:"visible"`
}

// ExportDomain is one domain's measured outcome.
type ExportDomain struct {
	Name             string             `json:"name"`
	IPC              float64            `json:"ipc"`
	Instructions     uint64             `json:"instructions"`
	FinishNs         int64              `json:"finish_ns"`
	LeakageBits      float64            `json:"leakage_bits"`
	Assessments      int                `json:"assessments"`
	VisibleActions   int                `json:"visible_actions"`
	Frozen           bool               `json:"frozen"`
	Trace            []ExportAssessment `json:"trace"`
	PartitionSamples []int64            `json:"partition_samples,omitempty"`
	SamplePeriodNs   int64              `json:"sample_period_ns"`
	LLCHits          uint64             `json:"llc_hits"`
	LLCMisses        uint64             `json:"llc_misses"`
	L1Hits           uint64             `json:"l1_hits"`
	L1Misses         uint64             `json:"l1_misses"`
}

// ExportResult is a full run.
type ExportResult struct {
	Scheme     string         `json:"scheme"`
	DurationNs int64          `json:"duration_ns"`
	Domains    []ExportDomain `json:"domains"`
	// Telemetry is the run's metrics-registry snapshot (cache counters,
	// allocator decision outcomes, quantum IPC histogram), when the run
	// was instrumented. Map keys serialize sorted, so the export of a
	// deterministic run stays byte-identical.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// AttachTelemetry ingests a metrics snapshot into the export.
func (e *ExportResult) AttachTelemetry(snap *telemetry.Snapshot) { e.Telemetry = snap }

// Export converts a simulation result into its serializable form.
func Export(res *sim.Result, samplePeriod time.Duration) ExportResult {
	out := ExportResult{
		Scheme:     res.Scheme.Kind.String(),
		DurationNs: res.Duration.Nanoseconds(),
	}
	for _, d := range res.Domains {
		ed := ExportDomain{
			Name:             d.Name,
			IPC:              d.IPC,
			Instructions:     d.Instructions,
			FinishNs:         d.FinishTime.Nanoseconds(),
			LeakageBits:      d.Leakage.TotalBits,
			Assessments:      d.Leakage.Assessments,
			VisibleActions:   d.Leakage.Visible,
			Frozen:           d.Leakage.Frozen,
			PartitionSamples: d.PartitionSamples,
			SamplePeriodNs:   samplePeriod.Nanoseconds(),
			LLCHits:          d.LLC.Hits,
			LLCMisses:        d.LLC.Misses,
			L1Hits:           d.L1.Hits,
			L1Misses:         d.L1.Misses,
		}
		for _, a := range d.Trace {
			ed.Trace = append(ed.Trace, ExportAssessment{
				AtNs:      a.At.Nanoseconds(),
				ApplyAtNs: a.ApplyAt.Nanoseconds(),
				PrevBytes: a.Prev,
				SizeBytes: a.Size,
				Visible:   a.Visible,
			})
		}
		out.Domains = append(out.Domains, ed)
	}
	return out
}

// MarshalJSON renders a result as indented JSON.
func MarshalJSON(res *sim.Result, samplePeriod time.Duration) ([]byte, error) {
	return json.MarshalIndent(Export(res, samplePeriod), "", "  ")
}

// MarshalJSONWithTelemetry renders a result with an attached telemetry
// snapshot as indented JSON. snap may be nil (the field is omitted).
func MarshalJSONWithTelemetry(res *sim.Result, samplePeriod time.Duration, snap *telemetry.Snapshot) ([]byte, error) {
	e := Export(res, samplePeriod)
	e.AttachTelemetry(snap)
	return json.MarshalIndent(e, "", "  ")
}
