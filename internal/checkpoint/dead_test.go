package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func dlqFP() Fingerprint {
	return Fingerprint{Scale: 0.5, Instructions: 1000, Units: "test", ParamsTag: "tag"}
}

func TestDeadLetterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("sens/a", 1); err != nil {
		t.Fatal(err)
	}
	dl := DeadLetter{Key: "mix/3", Attempts: 3, Error: "injected fault", Stack: "goroutine 1 [running]"}
	if err := j.RecordDead(dl); err != nil {
		t.Fatal(err)
	}
	if got, ok := j.Dead("mix/3"); !ok || got != dl {
		t.Fatalf("Dead = %+v, %v", got, ok)
	}
	if j.DeadLen() != 1 || j.Len() != 1 {
		t.Fatalf("DeadLen=%d Len=%d", j.DeadLen(), j.Len())
	}
	if j.Done("mix/3") {
		t.Error("dead unit reported done")
	}
	j.Close()

	// A reopened journal recovers the dead letter byte-for-byte.
	j, err = Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	dls := j.DeadLetters()
	if len(dls) != 1 || dls[0] != dl {
		t.Fatalf("DeadLetters = %+v", dls)
	}
	if j.Resumed() != 1 {
		t.Errorf("Resumed = %d (dead letters must not count as completed)", j.Resumed())
	}
}

// The replay contract: a unit record for a dead key supersedes the dead
// letter, both live and across a reopen — the append-only file's way of
// saying "no longer poisoned".
func TestDeadLetterSupersededByUnitRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDead(DeadLetter{Key: "mix/1", Attempts: 3, Error: "poisoned"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("mix/1", map[string]int{"fixed": 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Dead("mix/1"); ok {
		t.Error("repaired unit still dead in the live journal")
	}
	if !j.Done("mix/1") {
		t.Error("repaired unit not done")
	}
	j.Close()

	j, err = Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.DeadLen() != 0 {
		t.Errorf("reopened DeadLen = %d, want 0 (unit record supersedes)", j.DeadLen())
	}
	var v map[string]int
	if ok, err := j.Lookup("mix/1", &v); !ok || err != nil || v["fixed"] != 1 {
		t.Errorf("Lookup = %v, %v, %v", ok, err, v)
	}
}

// Dead-lettering a completed unit must not shadow its result.
func TestDeadLetterNeverShadowsResult(t *testing.T) {
	j, err := Open(filepath.Join(t.TempDir(), "run.ckpt"), dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("mix/1", 42); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDead(DeadLetter{Key: "mix/1", Attempts: 3, Error: "late poison"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Dead("mix/1"); ok {
		t.Error("completed unit reported dead")
	}
	if err := j.RecordDead(DeadLetter{Attempts: 1, Error: "anonymous"}); err == nil {
		t.Error("empty dead-letter key accepted")
	}
}

// Dead records interleaved with unit records must not truncate the replay:
// ReadUnits (the shard-merge read path) skips them, and units journaled
// after a dead record survive a reopen.
func TestDeadRecordsDoNotTruncateReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("u/1", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDead(DeadLetter{Key: "d/1", Attempts: 3, Error: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("u/2", 2); err != nil {
		t.Fatal(err)
	}
	j.Close()

	units, err := ReadUnits(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("ReadUnits = %d units, want 2 (dead record truncated the scan?)", len(units))
	}

	// A torn final line after the interleaved records still truncates
	// cleanly and keeps everything before it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"unit","key":"u/3","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err = Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 || j.DeadLen() != 1 {
		t.Fatalf("after torn tail: Len=%d DeadLen=%d", j.Len(), j.DeadLen())
	}
	if j.Done("u/3") {
		t.Error("torn record resurrected")
	}
}

// The degraded-campaign journal shape end to end: healthy units recorded,
// one dead letter, reopened by a replay run that repairs it.
func TestDeadLetterReplayLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"mix/1", "mix/3"} {
		if err := j.Record(k, strings.ToUpper(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.RecordDead(DeadLetter{Key: "mix/2", Attempts: 3, Error: "poisoned unit"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Replay session: the dead key is the work list; completing it clears
	// the DLQ.
	j, err = Open(path, dlqFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	dls := j.DeadLetters()
	if len(dls) != 1 || dls[0].Key != "mix/2" {
		t.Fatalf("replay work list = %+v", dls)
	}
	if err := j.Record("mix/2", "MIX/2"); err != nil {
		t.Fatal(err)
	}
	if j.DeadLen() != 0 || j.Len() != 3 {
		t.Fatalf("after replay: DeadLen=%d Len=%d", j.DeadLen(), j.Len())
	}
}
