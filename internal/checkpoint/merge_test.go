package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeShard creates a journal at path and records the given keys in the
// given order — the order deliberately varies between shards in the tests,
// because per-shard journals record whatever interleaving their worker
// happened to execute.
func writeShard(t *testing.T, path string, fp Fingerprint, keys []string) {
	t.Helper()
	j, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, key := range keys {
		if err := j.Record(key, unit{Mean: meanFor(key), Label: key}); err != nil {
			t.Fatal(err)
		}
	}
}

// meanFor derives a deterministic value from a key, so two shards that both
// executed a unit journal byte-identical values — the shard-merge
// precondition (deterministic units).
func meanFor(key string) float64 { return float64(len(key)) * 1.5 }

// The shard-merge precondition: two journals with the same fingerprint,
// written out of order relative to each other (and overlapping), merge into
// one journal that holds every unit with its value intact — and a resume
// from the merged journal sees all of them.
func TestMergeOutOfOrderJournals(t *testing.T) {
	dir := t.TempDir()
	fp := testFP()

	// Shard 0 completed its units ascending; shard 1 descending, and both
	// executed mix/7 (a unit reassigned after a presumed-dead worker turned
	// out to have finished it).
	writeShard(t, filepath.Join(dir, "run.ckpt.shard0"), fp,
		[]string{"sens/a", "sens/b", "mix/7"})
	writeShard(t, filepath.Join(dir, "run.ckpt.shard1"), fp,
		[]string{"mix/9", "mix/7", "mix/1"})

	main, err := Open(filepath.Join(dir, "run.ckpt"), fp)
	if err != nil {
		t.Fatal(err)
	}
	// Merge in the opposite order the shards wrote, to pin down that merge
	// order does not matter either.
	added1, err := main.MergeFrom(filepath.Join(dir, "run.ckpt.shard1"))
	if err != nil {
		t.Fatal(err)
	}
	added0, err := main.MergeFrom(filepath.Join(dir, "run.ckpt.shard0"))
	if err != nil {
		t.Fatal(err)
	}
	if added1 != 3 || added0 != 2 {
		t.Errorf("added = %d, %d; want 3, 2 (mix/7 deduplicated)", added1, added0)
	}
	if main.Len() != 5 {
		t.Errorf("merged Len = %d, want 5", main.Len())
	}
	main.Close()

	// The merged journal resumes like any other.
	j, err := Open(filepath.Join(dir, "run.ckpt"), fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Resumed() != 5 {
		t.Fatalf("Resumed = %d, want 5", j.Resumed())
	}
	for _, key := range []string{"sens/a", "sens/b", "mix/1", "mix/7", "mix/9"} {
		var got unit
		ok, err := j.Lookup(key, &got)
		if !ok || err != nil {
			t.Fatalf("%s: ok=%v err=%v", key, ok, err)
		}
		if got.Mean != meanFor(key) || got.Label != key {
			t.Errorf("%s: merged value %+v corrupted", key, got)
		}
	}
}

// A shard journal written under a different fingerprint must not merge: its
// units were computed by a different configuration.
func TestMergeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	other := testFP()
	other.Scale = 0.5
	writeShard(t, filepath.Join(dir, "run.ckpt.shard0"), other, []string{"mix/1"})

	main, err := Open(filepath.Join(dir, "run.ckpt"), testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	if _, err := main.MergeFrom(filepath.Join(dir, "run.ckpt.shard0")); err == nil {
		t.Fatal("mismatched shard journal merged")
	} else if !strings.Contains(err.Error(), `"scale":0.5`) || !strings.Contains(err.Error(), `"scale":0.01`) {
		t.Errorf("error does not name both fingerprints: %v", err)
	}
}

// Two journals that claim the same fingerprint but journal different bytes
// for the same unit are evidence of nondeterminism or fingerprint drift;
// the merge must refuse rather than pick a side.
func TestMergeConflictingDuplicateFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	fp := testFP()
	writeShard(t, filepath.Join(dir, "a.ckpt"), fp, []string{"mix/1"})

	b, err := Open(filepath.Join(dir, "b.ckpt"), fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Record("mix/1", unit{Mean: -99, Label: "disagrees"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.MergeFrom(filepath.Join(dir, "a.ckpt")); err == nil {
		t.Fatal("conflicting duplicate merged silently")
	} else if !strings.Contains(err.Error(), "mix/1") {
		t.Errorf("error does not name the unit: %v", err)
	}
	b.Close()
}

// ReadUnits on the journal of a just-killed worker: the torn final line is
// skipped, the file is not modified, and a missing journal reads as empty.
func TestReadUnitsTornTailAndMissing(t *testing.T) {
	dir := t.TempDir()
	fp := testFP()
	path := filepath.Join(dir, "run.ckpt.shard0")
	writeShard(t, path, fp, []string{"sens/a", "sens/b"})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"unit","key":"sens/c","val`)
	f.Close()
	before, _ := os.ReadFile(path)

	units, err := ReadUnits(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %d, want 2 (torn line skipped)", len(units))
	}
	if _, ok := units["sens/c"]; ok {
		t.Error("torn unit surfaced")
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("ReadUnits modified the journal")
	}

	units, err = ReadUnits(filepath.Join(dir, "never-written.ckpt"), fp)
	if err != nil || len(units) != 0 {
		t.Errorf("missing journal: units=%d err=%v, want empty, nil", len(units), err)
	}
}
