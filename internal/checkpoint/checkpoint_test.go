package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testFP() Fingerprint {
	return Fingerprint{
		Scale:        0.01,
		Instructions: 50000,
		Seed:         42,
		Schemes:      []string{"static", "untangle"},
		Units:        "mixes=[1 2]",
		ParamsTag:    "deadbeefdeadbeef",
	}
}

type unit struct {
	Mean  float64 `json:"mean"`
	Label string  `json:"label"`
}

func TestCreateRecordReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if j.Resumed() != 0 {
		t.Errorf("fresh journal Resumed = %d", j.Resumed())
	}
	want := unit{Mean: 0.123456789012345, Label: "mcf"}
	if err := j.Record("sens/mcf", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("mix/3", unit{Mean: 2.5, Label: "mix3"}); err != nil {
		t.Fatal(err)
	}
	if !j.Done("sens/mcf") || j.Done("sens/lbm") {
		t.Error("Done bookkeeping wrong")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process resumes and sees both units, values intact.
	j2, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != 2 || j2.Len() != 2 {
		t.Fatalf("Resumed=%d Len=%d, want 2/2", j2.Resumed(), j2.Len())
	}
	var got unit
	ok, err := j2.Lookup("sens/mcf", &got)
	if err != nil || !ok {
		t.Fatalf("Lookup: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Errorf("round-tripped unit = %+v, want %+v", got, want)
	}
	if ok, _ := j2.Lookup("sens/lbm", nil); ok {
		t.Error("Lookup invented a unit")
	}
}

func TestFingerprintMismatchFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := testFP()
	other.Scale = 0.5
	_, err = Open(path, other)
	if err == nil {
		t.Fatal("mismatched fingerprint accepted")
	}
	// The error must name both configurations so the operator can see the drift.
	if !strings.Contains(err.Error(), `"scale":0.01`) || !strings.Contains(err.Error(), `"scale":0.5`) {
		t.Errorf("error does not name both fingerprints: %v", err)
	}
}

func TestTornFinalLineTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	j.Record("sens/a", unit{Mean: 1})
	j.Record("sens/b", unit{Mean: 2})
	j.Close()

	// Simulate a crash mid-append: a torn, unparsable final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"unit","key":"sens/c","val`)
	f.Close()

	j2, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if j2.Resumed() != 2 {
		t.Fatalf("Resumed = %d, want 2 (torn unit must not count)", j2.Resumed())
	}
	if j2.Done("sens/c") {
		t.Error("torn unit replayed")
	}
	// Appending after the truncation lands on a clean line boundary.
	if err := j2.Record("sens/c", unit{Mean: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Resumed() != 3 || !j3.Done("sens/c") {
		t.Errorf("after re-record: Resumed=%d Done(c)=%v", j3.Resumed(), j3.Done("sens/c"))
	}
}

func TestTornHeaderStartsOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	// A crash before the header's newline landed: no units can exist.
	if err := os.WriteFile(path, []byte(`{"kind":"head`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Resumed() != 0 {
		t.Errorf("Resumed = %d", j.Resumed())
	}
	if err := j.Record("sens/a", unit{}); err != nil {
		t.Fatal(err)
	}
}

func TestNonJournalFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	if err := os.WriteFile(path, []byte("Table 6\nIPC 0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testFP()); err == nil || !strings.Contains(err.Error(), "not a checkpoint journal") {
		t.Fatalf("err = %v", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	fp := testFP()
	if err := os.WriteFile(path,
		[]byte(fmt.Sprintf(`{"kind":"header","version":%d,"fingerprint":%s}`+"\n", Version+1, fp)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, fp); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateRecordIsNoOp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	j.Record("mix/1", unit{Mean: 1, Label: "first"})
	// A resumed caller re-recording the replayed unit must not clobber it.
	j.Record("mix/1", unit{Mean: 9, Label: "second"})
	var got unit
	j.Lookup("mix/1", &got)
	if got.Label != "first" {
		t.Errorf("duplicate Record overwrote the unit: %+v", got)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"mix/1"`); n != 1 {
		t.Errorf("journal holds %d records for the key, want 1", n)
	}
}

func TestConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("sens/u%d", i) // contended across workers
				if err := j.Record(key, unit{Mean: float64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if j.Len() != 20 {
		t.Fatalf("Len = %d, want 20", j.Len())
	}
	j.Close()

	j2, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != 20 {
		t.Fatalf("Resumed = %d, want 20", j2.Resumed())
	}
	for i := 0; i < 20; i++ {
		var got unit
		ok, err := j2.Lookup(fmt.Sprintf("sens/u%d", i), &got)
		if !ok || err != nil || got.Mean != float64(i) {
			t.Fatalf("u%d: ok=%v err=%v got=%+v", i, ok, err, got)
		}
	}
}
