package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// Reproduce: crash tears exactly the trailing newline of the last record.
func TestReviewTornNewline(t *testing.T) {
	fp := Fingerprint{Scale: 0.5, Instructions: 1000, Units: "fuzz", ParamsTag: "tag"}
	path := filepath.Join(t.TempDir(), "j.ckpt")
	j, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("sens/a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear off the trailing newline only: the last line is complete JSON.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("expected trailing newline")
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	var v string
	if ok, _ := j2.Lookup("sens/a", &v); !ok {
		t.Log("sens/a dropped on recovery (acceptable: torn tail)")
	}
	if err := j2.Record("mix/9", "2"); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3, err := Open(path, fp)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j3.Close()
	if ok, _ := j3.Lookup("mix/9", &v); !ok || v != "2" {
		raw, _ := os.ReadFile(path)
		t.Fatalf("acknowledged record mix/9 lost across reopen; file:\n%s", raw)
	}
}
