package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecovery feeds arbitrary bytes to the journal recovery path —
// torn final lines, torn headers, interleaved garbage, half-written dead
// records — and checks the recovery invariants:
//
//   - Open and ReadUnits never panic and never hang.
//   - When Open succeeds, the journal is appendable: a fresh unit recorded
//     into the recovered file is visible after a reopen, alongside every
//     unit the recovery kept (recovery truncates the torn tail, so the file
//     must be left on a clean line boundary).
//   - Recovery never invents state: every recovered unit key/value pair and
//     dead letter must literally appear in some line of the input prefix.
func FuzzJournalRecovery(f *testing.F) {
	fp := Fingerprint{Scale: 0.5, Instructions: 1000, Units: "fuzz", ParamsTag: "tag"}
	header := func() []byte {
		b, _ := json.Marshal(record{Kind: "header", Version: Version, Fingerprint: &fp})
		return append(b, '\n')
	}
	unit := func(key, val string) []byte {
		b, _ := json.Marshal(record{Kind: "unit", Key: key, Value: json.RawMessage(`"` + val + `"`)})
		return append(b, '\n')
	}
	dead := func(key string) []byte {
		raw, _ := json.Marshal(DeadLetter{Attempts: 3, Error: "poison"})
		b, _ := json.Marshal(record{Kind: "dead", Key: key, Value: raw})
		return append(b, '\n')
	}

	valid := append(header(), unit("sens/a", "1")...)
	valid = append(valid, dead("mix/2")...)
	valid = append(valid, unit("mix/1", "2")...)
	f.Add(valid)
	f.Add(valid[:len(valid)-7])             // torn final line
	f.Add(header()[:10])                    // torn header
	f.Add(append(valid[:0:0], valid...))    // pristine copy
	f.Add(append(valid, "{garbage\n"...))   // trailing garbage line
	f.Add(append(valid, valid...))          // duplicated journal (second header is garbage)
	f.Add([]byte("\n\n\n"))                 // blank lines only
	f.Add(append(header(), dead("")...))    // dead record with empty key
	f.Add(append(header(), []byte(`{"kind":"dead","key":"x","value":"notanobject"}`+"\n")...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// The read-side path must tolerate anything.
		if _, err := ReadUnits(path, fp); err != nil {
			// An error is fine (not-a-journal, wrong version); a panic is not.
			_ = err
		}

		j, err := Open(path, fp)
		if err != nil {
			return // rejected loudly; nothing more to check
		}
		kept := map[string]string{}
		for _, k := range []string{"sens/a", "mix/1", "mix/2"} {
			var v string
			if ok, lerr := j.Lookup(k, &v); lerr == nil && ok {
				kept[k] = v
			}
		}
		keptDead := j.DeadLetters()

		// Recovery must never invent state: everything kept appears in the
		// input bytes.
		for k := range kept {
			if !bytes.Contains(data, []byte(`"`+k+`"`)) {
				t.Fatalf("recovered unit %q absent from input", k)
			}
		}
		for _, dl := range keptDead {
			if !bytes.Contains(data, []byte(`"`+dl.Key+`"`)) {
				t.Fatalf("recovered dead letter %q absent from input", dl.Key)
			}
		}

		// The recovered journal must be appendable on a clean boundary.
		if err := j.Record("fuzz/new", "appended"); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		j2, err := Open(path, fp)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer j2.Close()
		var got string
		if ok, err := j2.Lookup("fuzz/new", &got); err != nil || !ok || got != "appended" {
			t.Fatalf("appended unit lost across reopen: ok=%v err=%v got=%q", ok, err, got)
		}
		for k, v := range kept {
			var rv string
			if ok, err := j2.Lookup(k, &rv); err != nil || !ok || rv != v {
				t.Fatalf("recovered unit %q lost or changed across reopen: ok=%v err=%v %q->%q", k, ok, err, v, rv)
			}
		}
		if got, want := j2.DeadLen(), len(keptDead); got != want {
			t.Fatalf("dead letters changed across reopen: %d -> %d", want, got)
		}
	})
}
