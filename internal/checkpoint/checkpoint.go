// Package checkpoint is the experiment engine's crash-recovery journal: an
// append-only JSONL file that records each completed unit of a campaign (a
// sensitivity benchmark pass, a mix outcome) as a self-describing record,
// keyed by a configuration fingerprint so a resumed process can prove it is
// continuing the same run before skipping any work.
//
// # Format
//
// Line 1 is a header record carrying the fingerprint and format version.
// Every further line is a unit record or a dead-letter record:
//
//	{"kind":"header","version":1,"fingerprint":{...}}
//	{"kind":"unit","key":"sens/mcf_0","value":{...}}
//	{"kind":"dead","key":"mix/3","value":{"attempts":3,"error":"..."}}
//	{"kind":"unit","key":"mix/3","value":{...}}
//
// Units are journaled as they complete (concurrently, under an internal
// lock) and each append is flushed and fsynced before Record returns, so a
// process killed at any instant loses at most the unit in flight. A torn
// final line — the record the crash interrupted — is detected on open and
// truncated away before appending resumes.
//
// A dead record is the campaign service's dead-letter queue entry: the unit
// exhausted its retry budget (or panicked) and was set aside so the rest of
// the campaign could finish. A later unit record for the same key —
// appended by a replay after the underlying fault was fixed — supersedes
// the dead record, which is how an append-only file expresses "no longer
// poisoned". See docs/ROBUSTNESS.md.
//
// # Resume semantics
//
// Opening an existing journal with a matching fingerprint yields the set
// of completed units; the caller skips those and re-emits their journaled
// values, which is what makes an interrupted-and-resumed campaign
// byte-identical to an uninterrupted one (the equivalence is tested in
// cmd/experiments). Opening with a different fingerprint fails loudly:
// silently mixing results from two configurations is precisely the failure
// mode a checkpoint exists to prevent. See docs/ROBUSTNESS.md.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
)

// F64 is a float64 that journals as its IEEE-754 bit pattern (a decimal
// uint64), giving two guarantees plain JSON floats cannot: the round trip is
// bit-exact by construction, and non-finite values survive — encoding/json
// rejects NaN and ±Inf outright, and a sensitivity curve at a tiny
// instruction budget is full of NaN (0/0 IPC normalization). A journal must
// be able to record whatever the engine produced, so unit values store their
// floats as F64.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	return strconv.AppendUint(nil, math.Float64bits(float64(f)), 10), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	u, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("checkpoint: F64 %q: %w", b, err)
	}
	*f = F64(math.Float64frombits(u))
	return nil
}

// F64s converts a float slice to its journal representation.
func F64s(xs []float64) []F64 {
	if xs == nil {
		return nil
	}
	out := make([]F64, len(xs))
	for i, x := range xs {
		out[i] = F64(x)
	}
	return out
}

// Floats converts a journaled slice back to float64s, bit-identical to what
// was recorded.
func Floats(xs []F64) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Version is the journal format version; bumped on incompatible changes.
const Version = 1

// Fingerprint pins down everything that determines a campaign's results.
// Two runs with equal fingerprints produce identical units, so completed
// work from one may be reused by the other.
type Fingerprint struct {
	// Scale is the workload scale factor (1.0 = paper fidelity).
	Scale float64 `json:"scale"`
	// Instructions is the per-benchmark sensitivity instruction budget.
	Instructions uint64 `json:"instructions"`
	// Seed is the simulation seed driving the schemes' random delays.
	Seed uint64 `json:"seed"`
	// Schemes lists the partitioning schemes under evaluation, in order.
	Schemes []string `json:"schemes,omitempty"`
	// Units names the unit set of the campaign (mix ids, benchmark set) so
	// a -mixes 1,2 journal is not resumed by a full 16-mix run.
	Units string `json:"units,omitempty"`
	// ParamsTag fingerprints the workload/scheme parameter tables compiled
	// into the binary (experiments.ParamsFingerprint) — the stand-in for a
	// git describe, so a journal never silently spans a params change.
	ParamsTag string `json:"params_tag,omitempty"`
}

func (fp Fingerprint) String() string {
	b, _ := json.Marshal(fp)
	return string(b)
}

type record struct {
	Kind        string          `json:"kind"`
	Version     int             `json:"version,omitempty"`
	Fingerprint *Fingerprint    `json:"fingerprint,omitempty"`
	Key         string          `json:"key,omitempty"`
	Value       json.RawMessage `json:"value,omitempty"`
}

// DeadLetter is one poisoned unit's dead-letter record: the unit key, how
// many attempts it burned, and the final error (with the recovered stack
// when the failure was a panic). It is what a campaign's degraded manifest
// and the replay command enumerate.
type DeadLetter struct {
	// Key is the unit's journal key ("mix/3"); populated from the record
	// envelope on read, never serialized inside the value.
	Key string `json:"-"`
	// Attempts is how many times the unit ran before being declared
	// poisoned (1 for failures the retry layer never retries).
	Attempts int `json:"attempts"`
	// Error is the final error's text.
	Error string `json:"error"`
	// Stack is the panicking goroutine's stack when the poison was a panic.
	Stack string `json:"stack,omitempty"`
}

// Journal is an open checkpoint file. All methods are safe for concurrent
// use; Record serializes appends internally.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	fp      Fingerprint
	done    map[string]json.RawMessage
	dead    map[string]DeadLetter
	resumed int
}

// parsed is the outcome of replaying a journal's record lines: the
// completed units, the still-dead letters (a unit record supersedes an
// earlier dead record for its key), and the byte length of the valid
// prefix — anything past it is a torn tail from a crash mid-append.
type parsed struct {
	units map[string]json.RawMessage
	dead  map[string]DeadLetter
	good  int
}

// parseRecords replays the record lines after the header. It stops at the
// first line that is not a well-formed unit or dead record — the torn final
// line a crash leaves — and reports how many bytes of data were valid.
// headerLen is the header line's length including its newline.
func parseRecords(data []byte, lines [][]byte, headerLen int) parsed {
	p := parsed{
		units: map[string]json.RawMessage{},
		dead:  map[string]DeadLetter{},
		good:  headerLen,
	}
scan:
	for _, line := range lines {
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			break
		}
		switch rec.Kind {
		case "unit":
			p.units[rec.Key] = rec.Value
			// A unit record for a previously dead key is a replay's repair:
			// the poison is gone.
			delete(p.dead, rec.Key)
		case "dead":
			var dl DeadLetter
			if err := json.Unmarshal(rec.Value, &dl); err != nil {
				break scan
			}
			dl.Key = rec.Key
			if _, ok := p.units[rec.Key]; !ok {
				p.dead[rec.Key] = dl
			}
		default:
			break scan
		}
		p.good += len(line) + 1
	}
	if p.good > len(data) {
		p.good = len(data)
	}
	return p
}

// Open creates path as a fresh journal for fp, or resumes an existing one
// after verifying its fingerprint matches. A file whose header disagrees
// with fp returns an error naming both fingerprints.
func Open(path string, fp Fingerprint) (*Journal, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return create(path, fp)
	case err != nil:
		return nil, err
	case len(data) == 0 || !bytes.ContainsRune(data, '\n'):
		// An empty file, or one torn inside its very first line, is a
		// journal whose header write never landed: no units can have been
		// recorded, so start it over.
		return create(path, fp)
	}

	lines := bytes.Split(data, []byte("\n"))
	var hdr record
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Kind != "header" || hdr.Fingerprint == nil {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint journal", path)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, this binary writes %d", path, hdr.Version, Version)
	}
	if hdr.Fingerprint.String() != fp.String() {
		return nil, fmt.Errorf("checkpoint: %s was written by a different configuration\n  journal: %s\n  this run: %s",
			path, hdr.Fingerprint, fp)
	}

	// Replay the unit and dead-letter records. parsed.good tracks the byte
	// length of the valid prefix; anything past it (a torn final line from
	// a crash mid-append) is truncated away so new appends start on a clean
	// boundary.
	p := parseRecords(data, lines[1:], len(lines[0])+1)
	j := &Journal{path: path, fp: fp, done: p.units, dead: p.dead}
	j.resumed = len(j.done)

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(p.good)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(p.good), 0); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

func create(path string, fp Fingerprint) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, fp: fp, done: map[string]json.RawMessage{}, dead: map[string]DeadLetter{}}
	if err := j.append(record{Kind: "header", Version: Version, Fingerprint: &fp}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// append marshals rec, writes it as one line, and makes it durable. The
// caller must hold no lock; append takes it.
func (j *Journal) append(rec record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Record journals the completed unit key with its result value. Keys are
// recorded at most once; re-recording a resumed key is a silent no-op so
// callers need not special-case replayed units. Recording a key that was
// dead-lettered supersedes the dead record — the replay path: the unit ran
// to completion after its fault was fixed, so it is no longer poisoned.
func (j *Journal) Record(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if _, ok := j.done[key]; ok {
		j.mu.Unlock()
		return nil
	}
	j.done[key] = raw
	delete(j.dead, key)
	j.mu.Unlock()
	return j.append(record{Kind: "unit", Key: key, Value: raw})
}

// RecordDead journals key as dead-lettered: the unit is poisoned (it
// exhausted its retry budget, or panicked) and the campaign is completing
// without it. The record is durable like any unit record, so a restart
// still knows which units to skip — and which ones a replay must re-drive.
// Dead-lettering a key that already completed is a no-op (the result wins);
// re-dead-lettering a dead key updates the journaled diagnosis.
func (j *Journal) RecordDead(dl DeadLetter) error {
	if dl.Key == "" {
		return fmt.Errorf("checkpoint: dead letter with empty key")
	}
	raw, err := json.Marshal(dl)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if _, ok := j.done[dl.Key]; ok {
		j.mu.Unlock()
		return nil
	}
	j.dead[dl.Key] = dl
	j.mu.Unlock()
	return j.append(record{Kind: "dead", Key: dl.Key, Value: raw})
}

// Dead returns key's dead-letter record, if the unit is currently
// dead-lettered (a completed unit is never dead).
func (j *Journal) Dead(key string) (DeadLetter, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	dl, ok := j.dead[key]
	return dl, ok
}

// DeadLetters lists every currently dead-lettered unit, sorted by key — the
// work a replay re-drives.
func (j *Journal) DeadLetters() []DeadLetter {
	j.mu.Lock()
	out := make([]DeadLetter, 0, len(j.dead))
	for _, dl := range j.dead {
		out = append(out, dl)
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// DeadLen returns the number of dead-lettered units — the DLQ depth.
func (j *Journal) DeadLen() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.dead)
}

// Lookup returns the journaled value for key, if the unit completed in a
// previous (or the current) process.
func (j *Journal) Lookup(key string, value any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.done[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if value == nil {
		return true, nil
	}
	return true, json.Unmarshal(raw, value)
}

// Done reports whether key's unit is journaled.
func (j *Journal) Done(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// Resumed returns how many units the journal held when it was opened —
// the work a restart skipped.
func (j *Journal) Resumed() int { return j.resumed }

// ReadUnits loads the completed units of the journal at path without opening
// it for appending — the read side of a shard merge, safe to call on a
// journal file whose writing process just died (a torn final line, the
// record the death interrupted, is skipped; the file is not modified). The
// journal's fingerprint must match fp exactly: merging units journaled under
// a different configuration is the corruption a fingerprint exists to
// prevent, so a mismatch is an error naming both. A missing file is not an
// error — it returns an empty map, the natural zero of a merge.
func ReadUnits(path string, fp Fingerprint) (map[string]json.RawMessage, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return map[string]json.RawMessage{}, nil
	case err != nil:
		return nil, err
	case len(data) == 0 || !bytes.ContainsRune(data, '\n'):
		// Header write never landed: no units recorded.
		return map[string]json.RawMessage{}, nil
	}
	lines := bytes.Split(data, []byte("\n"))
	var hdr record
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Kind != "header" || hdr.Fingerprint == nil {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint journal", path)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, this binary reads %d", path, hdr.Version, Version)
	}
	if hdr.Fingerprint.String() != fp.String() {
		return nil, fmt.Errorf("checkpoint: %s was written by a different configuration\n  journal: %s\n  this run: %s",
			path, hdr.Fingerprint, fp)
	}
	return parseRecords(data, lines[1:], len(lines[0])+1).units, nil
}

// MergeFrom folds the units of the journal at path into j, appending (and
// making durable) every unit j does not already hold. The source must carry
// j's fingerprint. Units are deterministic functions of the fingerprinted
// configuration, so a key present in both journals must hold byte-identical
// values; a disagreement means one of the journals is lying about its
// configuration (or a unit is nondeterministic) and fails the merge loudly
// rather than silently preferring either side. The completion order of the
// source journal is irrelevant — units merge by key — which is what lets
// per-shard journals, each recording its own interleaving of the campaign,
// collapse into one canonical journal. Returns how many units were new.
func (j *Journal) MergeFrom(path string) (added int, err error) {
	units, err := ReadUnits(path, j.fp)
	if err != nil {
		return 0, err
	}
	// Deterministic append order keeps merged journals reproducible even
	// though lookup is by key.
	keys := make([]string, 0, len(units))
	for key := range units {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		raw := units[key]
		j.mu.Lock()
		prev, ok := j.done[key]
		j.mu.Unlock()
		if ok {
			if !bytes.Equal(prev, raw) {
				return added, fmt.Errorf("checkpoint: merge of %s: unit %q disagrees with the value already journaled (%d vs %d bytes) — same fingerprint, different results",
					path, key, len(raw), len(prev))
			}
			continue
		}
		if err := j.Record(key, json.RawMessage(raw)); err != nil {
			return added, fmt.Errorf("checkpoint: merge of %s: %w", path, err)
		}
		added++
	}
	return added, nil
}

// Path returns the journal's file path, so sidecar files (the observability
// heartbeat) can be placed next to it.
func (j *Journal) Path() string { return j.path }

// Len returns the number of journaled units.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close releases the journal file. The data is already durable — every
// Record fsynced — so Close after a successful campaign is cosmetic; the
// file is typically deleted by the operator once the report is in hand.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
