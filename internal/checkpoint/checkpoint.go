// Package checkpoint is the experiment engine's crash-recovery journal: an
// append-only JSONL file that records each completed unit of a campaign (a
// sensitivity benchmark pass, a mix outcome) as a self-describing record,
// keyed by a configuration fingerprint so a resumed process can prove it is
// continuing the same run before skipping any work.
//
// # Format
//
// Line 1 is a header record carrying the fingerprint and format version.
// Every further line is a unit record:
//
//	{"kind":"header","version":1,"fingerprint":{...}}
//	{"kind":"unit","key":"sens/mcf_0","value":{...}}
//	{"kind":"unit","key":"mix/3","value":{...}}
//
// Units are journaled as they complete (concurrently, under an internal
// lock) and each append is flushed and fsynced before Record returns, so a
// process killed at any instant loses at most the unit in flight. A torn
// final line — the record the crash interrupted — is detected on open and
// truncated away before appending resumes.
//
// # Resume semantics
//
// Opening an existing journal with a matching fingerprint yields the set
// of completed units; the caller skips those and re-emits their journaled
// values, which is what makes an interrupted-and-resumed campaign
// byte-identical to an uninterrupted one (the equivalence is tested in
// cmd/experiments). Opening with a different fingerprint fails loudly:
// silently mixing results from two configurations is precisely the failure
// mode a checkpoint exists to prevent. See docs/ROBUSTNESS.md.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
)

// F64 is a float64 that journals as its IEEE-754 bit pattern (a decimal
// uint64), giving two guarantees plain JSON floats cannot: the round trip is
// bit-exact by construction, and non-finite values survive — encoding/json
// rejects NaN and ±Inf outright, and a sensitivity curve at a tiny
// instruction budget is full of NaN (0/0 IPC normalization). A journal must
// be able to record whatever the engine produced, so unit values store their
// floats as F64.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	return strconv.AppendUint(nil, math.Float64bits(float64(f)), 10), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	u, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("checkpoint: F64 %q: %w", b, err)
	}
	*f = F64(math.Float64frombits(u))
	return nil
}

// F64s converts a float slice to its journal representation.
func F64s(xs []float64) []F64 {
	if xs == nil {
		return nil
	}
	out := make([]F64, len(xs))
	for i, x := range xs {
		out[i] = F64(x)
	}
	return out
}

// Floats converts a journaled slice back to float64s, bit-identical to what
// was recorded.
func Floats(xs []F64) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Version is the journal format version; bumped on incompatible changes.
const Version = 1

// Fingerprint pins down everything that determines a campaign's results.
// Two runs with equal fingerprints produce identical units, so completed
// work from one may be reused by the other.
type Fingerprint struct {
	// Scale is the workload scale factor (1.0 = paper fidelity).
	Scale float64 `json:"scale"`
	// Instructions is the per-benchmark sensitivity instruction budget.
	Instructions uint64 `json:"instructions"`
	// Seed is the simulation seed driving the schemes' random delays.
	Seed uint64 `json:"seed"`
	// Schemes lists the partitioning schemes under evaluation, in order.
	Schemes []string `json:"schemes,omitempty"`
	// Units names the unit set of the campaign (mix ids, benchmark set) so
	// a -mixes 1,2 journal is not resumed by a full 16-mix run.
	Units string `json:"units,omitempty"`
	// ParamsTag fingerprints the workload/scheme parameter tables compiled
	// into the binary (experiments.ParamsFingerprint) — the stand-in for a
	// git describe, so a journal never silently spans a params change.
	ParamsTag string `json:"params_tag,omitempty"`
}

func (fp Fingerprint) String() string {
	b, _ := json.Marshal(fp)
	return string(b)
}

type record struct {
	Kind        string          `json:"kind"`
	Version     int             `json:"version,omitempty"`
	Fingerprint *Fingerprint    `json:"fingerprint,omitempty"`
	Key         string          `json:"key,omitempty"`
	Value       json.RawMessage `json:"value,omitempty"`
}

// Journal is an open checkpoint file. All methods are safe for concurrent
// use; Record serializes appends internally.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	fp      Fingerprint
	done    map[string]json.RawMessage
	resumed int
}

// Open creates path as a fresh journal for fp, or resumes an existing one
// after verifying its fingerprint matches. A file whose header disagrees
// with fp returns an error naming both fingerprints.
func Open(path string, fp Fingerprint) (*Journal, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return create(path, fp)
	case err != nil:
		return nil, err
	case len(data) == 0 || !bytes.ContainsRune(data, '\n'):
		// An empty file, or one torn inside its very first line, is a
		// journal whose header write never landed: no units can have been
		// recorded, so start it over.
		return create(path, fp)
	}

	lines := bytes.Split(data, []byte("\n"))
	var hdr record
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Kind != "header" || hdr.Fingerprint == nil {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint journal", path)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, this binary writes %d", path, hdr.Version, Version)
	}
	if hdr.Fingerprint.String() != fp.String() {
		return nil, fmt.Errorf("checkpoint: %s was written by a different configuration\n  journal: %s\n  this run: %s",
			path, hdr.Fingerprint, fp)
	}

	j := &Journal{path: path, fp: fp, done: map[string]json.RawMessage{}}
	// Replay unit records. good tracks the byte length of the valid prefix;
	// anything past it (a torn final line from a crash mid-append) is
	// truncated away so new appends start on a clean boundary.
	good := len(lines[0]) + 1
	for _, line := range lines[1:] {
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Kind != "unit" || rec.Key == "" {
			break
		}
		j.done[rec.Key] = rec.Value
		good += len(line) + 1
	}
	if good > len(data) {
		good = len(data)
	}
	j.resumed = len(j.done)

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

func create(path string, fp Fingerprint) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, fp: fp, done: map[string]json.RawMessage{}}
	if err := j.append(record{Kind: "header", Version: Version, Fingerprint: &fp}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// append marshals rec, writes it as one line, and makes it durable. The
// caller must hold no lock; append takes it.
func (j *Journal) append(rec record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Record journals the completed unit key with its result value. Keys are
// recorded at most once; re-recording a resumed key is a silent no-op so
// callers need not special-case replayed units.
func (j *Journal) Record(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if _, ok := j.done[key]; ok {
		j.mu.Unlock()
		return nil
	}
	j.done[key] = raw
	j.mu.Unlock()
	return j.append(record{Kind: "unit", Key: key, Value: raw})
}

// Lookup returns the journaled value for key, if the unit completed in a
// previous (or the current) process.
func (j *Journal) Lookup(key string, value any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.done[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if value == nil {
		return true, nil
	}
	return true, json.Unmarshal(raw, value)
}

// Done reports whether key's unit is journaled.
func (j *Journal) Done(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// Resumed returns how many units the journal held when it was opened —
// the work a restart skipped.
func (j *Journal) Resumed() int { return j.resumed }

// ReadUnits loads the completed units of the journal at path without opening
// it for appending — the read side of a shard merge, safe to call on a
// journal file whose writing process just died (a torn final line, the
// record the death interrupted, is skipped; the file is not modified). The
// journal's fingerprint must match fp exactly: merging units journaled under
// a different configuration is the corruption a fingerprint exists to
// prevent, so a mismatch is an error naming both. A missing file is not an
// error — it returns an empty map, the natural zero of a merge.
func ReadUnits(path string, fp Fingerprint) (map[string]json.RawMessage, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return map[string]json.RawMessage{}, nil
	case err != nil:
		return nil, err
	case len(data) == 0 || !bytes.ContainsRune(data, '\n'):
		// Header write never landed: no units recorded.
		return map[string]json.RawMessage{}, nil
	}
	lines := bytes.Split(data, []byte("\n"))
	var hdr record
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Kind != "header" || hdr.Fingerprint == nil {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint journal", path)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, this binary reads %d", path, hdr.Version, Version)
	}
	if hdr.Fingerprint.String() != fp.String() {
		return nil, fmt.Errorf("checkpoint: %s was written by a different configuration\n  journal: %s\n  this run: %s",
			path, hdr.Fingerprint, fp)
	}
	units := map[string]json.RawMessage{}
	for _, line := range lines[1:] {
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Kind != "unit" || rec.Key == "" {
			break
		}
		units[rec.Key] = rec.Value
	}
	return units, nil
}

// MergeFrom folds the units of the journal at path into j, appending (and
// making durable) every unit j does not already hold. The source must carry
// j's fingerprint. Units are deterministic functions of the fingerprinted
// configuration, so a key present in both journals must hold byte-identical
// values; a disagreement means one of the journals is lying about its
// configuration (or a unit is nondeterministic) and fails the merge loudly
// rather than silently preferring either side. The completion order of the
// source journal is irrelevant — units merge by key — which is what lets
// per-shard journals, each recording its own interleaving of the campaign,
// collapse into one canonical journal. Returns how many units were new.
func (j *Journal) MergeFrom(path string) (added int, err error) {
	units, err := ReadUnits(path, j.fp)
	if err != nil {
		return 0, err
	}
	// Deterministic append order keeps merged journals reproducible even
	// though lookup is by key.
	keys := make([]string, 0, len(units))
	for key := range units {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		raw := units[key]
		j.mu.Lock()
		prev, ok := j.done[key]
		j.mu.Unlock()
		if ok {
			if !bytes.Equal(prev, raw) {
				return added, fmt.Errorf("checkpoint: merge of %s: unit %q disagrees with the value already journaled (%d vs %d bytes) — same fingerprint, different results",
					path, key, len(raw), len(prev))
			}
			continue
		}
		if err := j.Record(key, json.RawMessage(raw)); err != nil {
			return added, fmt.Errorf("checkpoint: merge of %s: %w", path, err)
		}
		added++
	}
	return added, nil
}

// Path returns the journal's file path, so sidecar files (the observability
// heartbeat) can be placed next to it.
func (j *Journal) Path() string { return j.path }

// Len returns the number of journaled units.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close releases the journal file. The data is already durable — every
// Record fsynced — so Close after a successful campaign is cosmetic; the
// file is typically deleted by the operator once the report is in hand.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
