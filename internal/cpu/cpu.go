// Package cpu implements the cycle-accounting core timing model standing in
// for the paper's gem5 out-of-order cores (Table 3: 8-issue, 8-commit x86 at
// 2 GHz).
//
// The model charges each retired instruction its steady-state pipeline cost
// (BaseCPI covers issue-width limits and dependency stalls) and charges
// memory instructions the round-trip latency of the level that served them,
// divided by a per-workload memory-level-parallelism factor that captures
// out-of-order overlap. This is the standard analytic decomposition
// (CPI = CPI_core + miss-rate x penalty / MLP); it reproduces the quantity
// the evaluation actually depends on — how IPC responds to LLC partition
// size — without simulating pipeline structures whose details the paper
// abstracts away too.
package cpu

import (
	"fmt"
	"time"
)

// Level identifies which level of the hierarchy served a memory access.
type Level int

const (
	// L1Hit - served by the private L1 (2-cycle round trip, fully hidden).
	L1Hit Level = iota
	// LLCHit - served by the shared L2/LLC (8-cycle round trip).
	LLCHit
	// Memory - served by DRAM (50 ns after the L2 lookup).
	Memory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case LLCHit:
		return "LLC"
	case Memory:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Params describes a core and the latencies of Table 3, plus the
// per-workload overlap parameters.
type Params struct {
	// ClockHz is the core frequency (Table 3: 2 GHz).
	ClockHz float64
	// CommitWidth is the maximum retired instructions per cycle (8).
	CommitWidth int
	// L1HitCycles is the L1 round trip (2 cycles); with an 8-wide core it
	// is almost entirely pipelined away, so it contributes L1HitCycles/MLP
	// only beyond the base commit cost.
	L1HitCycles float64
	// LLCHitCycles is the shared L2 round trip (8 cycles).
	LLCHitCycles float64
	// MemCycles is the DRAM round trip after the L2 (50 ns = 100 cycles).
	MemCycles float64
	// MLP is the workload's memory-level parallelism: how many outstanding
	// misses overlap on average.
	MLP float64
	// BaseCPI is the workload's core-bound cycles per instruction with a
	// perfect memory system (dependency chains, branches, issue limits).
	BaseCPI float64
}

// DefaultParams returns the Table 3 machine with neutral workload factors.
func DefaultParams() Params {
	return Params{
		ClockHz:      2e9,
		CommitWidth:  8,
		L1HitCycles:  2,
		LLCHitCycles: 8,
		MemCycles:    100,
		MLP:          4,
		BaseCPI:      0.4,
	}
}

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.ClockHz <= 0 {
		return fmt.Errorf("cpu: clock %v Hz", p.ClockHz)
	}
	if p.CommitWidth <= 0 {
		return fmt.Errorf("cpu: commit width %d", p.CommitWidth)
	}
	if p.MLP <= 0 {
		return fmt.Errorf("cpu: MLP %v", p.MLP)
	}
	if p.BaseCPI < 0 {
		return fmt.Errorf("cpu: BaseCPI %v", p.BaseCPI)
	}
	return nil
}

// memCost returns the extra cycles charged for an access served at level.
func (p Params) memCost(level Level) float64 {
	switch level {
	case L1Hit:
		return p.L1HitCycles / (p.MLP * float64(p.CommitWidth))
	case LLCHit:
		return p.LLCHitCycles / p.MLP
	default:
		return (p.LLCHitCycles + p.MemCycles) / p.MLP
	}
}

// Core accumulates retired instructions and cycles for one domain.
type Core struct {
	p Params
	// perInstr and memCharge are the per-retirement cycle charges,
	// precomputed once at construction so the retire hot path is a single
	// multiply-add (non-memory runs) or add (memory): perInstr is
	// BaseCPI + 1/CommitWidth, and memCharge[level] is perInstr +
	// memCost(level). The sums are computed exactly as the per-call
	// formulas evaluated them, so the accumulated cycle count is
	// bit-identical to the unprecomputed model.
	perInstr  float64
	memCharge [Memory + 1]float64
	// cycles is the running cycle count (fractional: the model charges
	// sub-cycle costs per instruction).
	cycles float64
	// retired counts all retired instructions.
	retired uint64
}

// New builds a core; it panics on invalid parameters, which are programmer
// error (all parameters in this repository are static tables).
func New(p Params) *Core {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := &Core{p: p}
	c.perInstr = p.BaseCPI + 1/float64(p.CommitWidth)
	for level := L1Hit; level <= Memory; level++ {
		c.memCharge[level] = c.perInstr + p.memCost(level)
	}
	return c
}

// Params returns the core's parameters.
func (c *Core) Params() Params { return c.p }

// RetireNonMem retires n plain instructions.
func (c *Core) RetireNonMem(n uint32) {
	if n == 0 {
		return
	}
	c.retired += uint64(n)
	c.cycles += float64(n) * c.perInstr
}

// RetireMem retires one memory instruction served at the given level.
func (c *Core) RetireMem(level Level) {
	c.retired++
	c.cycles += c.memCharge[level]
}

// Cycles returns the accumulated cycle count.
func (c *Core) Cycles() float64 { return c.cycles }

// Retired returns the retired instruction count.
func (c *Core) Retired() uint64 { return c.retired }

// IPC returns retired instructions per cycle so far (0 before any retire).
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.retired) / c.cycles
}

// Now converts the accumulated cycles to wall-clock simulated time.
func (c *Core) Now() time.Duration {
	return time.Duration(c.cycles / c.p.ClockHz * float64(time.Second))
}

// CyclesToDuration converts a cycle count at this core's clock.
func (c *Core) CyclesToDuration(cycles float64) time.Duration {
	return time.Duration(cycles / c.p.ClockHz * float64(time.Second))
}

// DurationToCycles converts simulated time to cycles at this core's clock.
func (c *Core) DurationToCycles(d time.Duration) float64 {
	return d.Seconds() * c.p.ClockHz
}

// AdvanceTo moves the core's clock forward to at least d (idling); it never
// moves time backward. Used to model stalls imposed from outside (e.g.
// waiting out a resize cooldown in ablation experiments).
func (c *Core) AdvanceTo(d time.Duration) {
	target := c.DurationToCycles(d)
	if target > c.cycles {
		c.cycles = target
	}
}

// Snapshot captures progress counters for interval statistics.
type Snapshot struct {
	Cycles  float64
	Retired uint64
}

// Snapshot returns the current counters.
func (c *Core) Snapshot() Snapshot {
	return Snapshot{Cycles: c.cycles, Retired: c.retired}
}

// IPCSince returns the IPC over the interval since a snapshot.
func (c *Core) IPCSince(s Snapshot) float64 {
	dc := c.cycles - s.Cycles
	if dc <= 0 {
		return 0
	}
	return float64(c.retired-s.Retired) / dc
}
