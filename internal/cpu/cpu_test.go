package cpu

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{ClockHz: 2e9, CommitWidth: 0, MLP: 1},
		{ClockHz: 2e9, CommitWidth: 8, MLP: 0},
		{ClockHz: 2e9, CommitWidth: 8, MLP: 1, BaseCPI: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{L1Hit: "L1", LLCHit: "LLC", Memory: "DRAM", Level(9): "Level(9)"} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestIPCBounds(t *testing.T) {
	p := DefaultParams()
	p.BaseCPI = 0
	c := New(p)
	c.RetireNonMem(1000)
	// With zero BaseCPI and no memory stalls, IPC equals the commit width.
	if got := c.IPC(); math.Abs(got-8) > 1e-9 {
		t.Errorf("IPC = %v, want 8", got)
	}
}

func TestMemoryStallsLowerIPC(t *testing.T) {
	mk := func(level Level) float64 {
		c := New(DefaultParams())
		for i := 0; i < 1000; i++ {
			c.RetireNonMem(3)
			c.RetireMem(level)
		}
		return c.IPC()
	}
	l1, llc, mem := mk(L1Hit), mk(LLCHit), mk(Memory)
	if !(l1 > llc && llc > mem) {
		t.Errorf("IPC ordering violated: L1 %v, LLC %v, DRAM %v", l1, llc, mem)
	}
}

func TestHigherMLPHidesLatency(t *testing.T) {
	mk := func(mlp float64) float64 {
		p := DefaultParams()
		p.MLP = mlp
		c := New(p)
		for i := 0; i < 100; i++ {
			c.RetireMem(Memory)
		}
		return c.IPC()
	}
	if low, high := mk(1), mk(8); low >= high {
		t.Errorf("MLP should raise IPC: MLP=1 gives %v, MLP=8 gives %v", low, high)
	}
}

func TestNowMatchesClock(t *testing.T) {
	p := DefaultParams() // 2 GHz
	p.BaseCPI = 0
	c := New(p)
	c.RetireNonMem(16e6) // 16M instructions at width 8 = 2M cycles = 1 ms
	if got := c.Now(); got != time.Millisecond {
		t.Errorf("Now = %v, want 1ms", got)
	}
}

func TestDurationCycleRoundTrip(t *testing.T) {
	c := New(DefaultParams())
	d := 3 * time.Millisecond
	if got := c.CyclesToDuration(c.DurationToCycles(d)); got != d {
		t.Errorf("round trip %v -> %v", d, got)
	}
}

func TestAdvanceToNeverRewinds(t *testing.T) {
	c := New(DefaultParams())
	c.RetireNonMem(1 << 20)
	before := c.Cycles()
	c.AdvanceTo(0)
	if c.Cycles() != before {
		t.Error("AdvanceTo rewound the clock")
	}
	c.AdvanceTo(time.Second)
	if c.Now() < time.Second {
		t.Errorf("AdvanceTo(1s) left clock at %v", c.Now())
	}
}

func TestSnapshotIntervalIPC(t *testing.T) {
	c := New(DefaultParams())
	c.RetireNonMem(1000)
	s := c.Snapshot()
	if got := c.IPCSince(s); got != 0 {
		t.Errorf("empty interval IPC = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		c.RetireMem(Memory)
	}
	slow := c.IPCSince(s)
	if slow <= 0 || slow >= c.IPC() {
		t.Errorf("DRAM-bound interval IPC %v should be below cumulative %v", slow, c.IPC())
	}
}

func TestPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid params did not panic")
		}
	}()
	New(Params{})
}

func TestPropertyCyclesMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(DefaultParams())
		prev := 0.0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				c.RetireNonMem(uint32(op))
			case 1:
				c.RetireMem(L1Hit)
			case 2:
				c.RetireMem(LLCHit)
			default:
				c.RetireMem(Memory)
			}
			if c.Cycles() < prev {
				return false
			}
			prev = c.Cycles()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The retirement charges are precomputed at construction; the model promises
// they accumulate bit-identically to evaluating the per-call formulas
// (BaseCPI + 1/CommitWidth [+ memCost]) on every retire. Replay a random
// trace against a manual accumulator using the original expression shapes.
func TestPropertyPrecomputedChargesBitIdentical(t *testing.T) {
	params := []Params{
		DefaultParams(),
		{ClockHz: 2e9, CommitWidth: 8, L1HitCycles: 2, LLCHitCycles: 8, MemCycles: 100, MLP: 3.7, BaseCPI: 0.55},
		{ClockHz: 3e9, CommitWidth: 6, L1HitCycles: 3, LLCHitCycles: 11, MemCycles: 87, MLP: 1.3, BaseCPI: 0.9},
	}
	f := func(pick uint8, ops []uint8) bool {
		p := params[int(pick)%len(params)]
		c := New(p)
		var want float64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				c.RetireNonMem(uint32(op))
				if op != 0 {
					want += float64(op) * (p.BaseCPI + 1/float64(p.CommitWidth))
				}
			default:
				level := Level(op%4 - 1)
				c.RetireMem(level)
				want += p.BaseCPI + 1/float64(p.CommitWidth) + p.memCost(level)
			}
		}
		return math.Float64bits(c.Cycles()) == math.Float64bits(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRetiredCountExact(t *testing.T) {
	f := func(nonMem []uint16, mems uint8) bool {
		c := New(DefaultParams())
		var want uint64
		for _, n := range nonMem {
			c.RetireNonMem(uint32(n))
			want += uint64(n)
		}
		for i := 0; i < int(mems); i++ {
			c.RetireMem(LLCHit)
			want++
		}
		return c.Retired() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
