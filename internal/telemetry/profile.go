package telemetry

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileConfig collects the host-side profiling switches shared by the
// commands. Unlike the tracer and registry, these observe the simulator
// process itself (real CPU time, real allocations), so they are wall-clock
// by nature and never feed the simulation.
type ProfileConfig struct {
	// CPUProfile, MemProfile and Trace are output paths for the pprof CPU
	// profile, the heap profile (written at Stop), and the runtime
	// execution trace. Empty disables each.
	CPUProfile string
	MemProfile string
	Trace      string
	// PprofAddr, when non-empty, serves net/http/pprof on this address
	// (e.g. "localhost:6060") for live inspection of long runs.
	PprofAddr string
}

// AddProfileFlags registers -cpuprofile, -memprofile, -trace and -pprof on
// fs and returns the config they populate.
func AddProfileFlags(fs *flag.FlagSet) *ProfileConfig {
	c := &ProfileConfig{}
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to this file")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return c
}

// Enabled reports whether any profiling output is requested.
func (c *ProfileConfig) Enabled() bool {
	return c != nil && (c.CPUProfile != "" || c.MemProfile != "" || c.Trace != "" || c.PprofAddr != "")
}

// Start begins the requested profiling and returns a stop function that
// finalizes every output. Callers must invoke stop (typically deferred)
// even on error paths that exit through log.Fatal alternatives; stop is
// idempotent.
func (c *ProfileConfig) Start() (stop func() error, err error) {
	var (
		cpuFile   *os.File
		traceFile *os.File
		listener  net.Listener
	)
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
			traceFile = nil
		}
		if listener != nil {
			listener.Close()
			listener = nil
		}
	}
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			cleanup()
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		traceFile, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("telemetry: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("telemetry: trace: %w", err)
		}
	}
	if c.PprofAddr != "" {
		listener, err = net.Listen("tcp", c.PprofAddr)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("telemetry: pprof listener: %w", err)
		}
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(listener) //nolint:errcheck // closed by stop
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
			cpuFile = nil
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			traceFile = nil
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize up-to-date allocation stats
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if listener != nil {
			listener.Close()
			listener = nil
		}
		return firstErr
	}, nil
}
