package telemetry

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("sim.assessments")
	c2 := r.Counter("sim.assessments")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	h1 := r.Histogram("sim.gap", LinearBuckets(1, 1, 4))
	h2 := r.Histogram("sim.gap", nil) // bounds ignored after first registration
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	// <=1: 0.5, 1 | <=2: 1.5, 2 | <=4: 3, 4 | overflow: 100
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+4+100 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

// The non-finite contract: NaN observations vanish, ±Inf land in the
// extreme buckets and count toward Count but not Sum — so a snapshot of a
// histogram that saw non-finite values still marshals to JSON.
func TestHistogramNonFiniteObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(1.5)
	s := r.Snapshot().Histograms["h"]
	// -Inf in the first bucket, 1.5 in the second, +Inf in overflow; NaN gone.
	want := []uint64{1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3 (NaN must be dropped)", s.Count)
	}
	if s.Sum != 1.5 {
		t.Fatalf("sum = %v, want 1.5 (infinities excluded)", s.Sum)
	}
	if _, err := r.Snapshot().MarshalJSONIndent(); err != nil {
		t.Fatalf("snapshot after non-finite observations does not marshal: %v", err)
	}
}

// Bounds are upper-inclusive: a value exactly on a bound belongs to that
// bound's bucket, and the next representable value above it to the next.
func TestHistogramBoundaryEqualValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(math.Nextafter(1, 2))
	h.Observe(2)
	h.Observe(4)
	h.Observe(math.Nextafter(4, 5))
	s := r.Snapshot().Histograms["h"]
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
}

// Concurrent observers (run this under -race; scripts/ci.sh does) must not
// lose observations, and the bucket mass must equal Count.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", ExpBuckets(1, 4, 6))
	const goroutines, each = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				switch i % 50 {
				case 0:
					h.Observe(math.NaN())
				case 1:
					h.Observe(math.Inf(1))
				default:
					h.Observe(float64((g*each + i) % 5000))
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot().Histograms["h"]
	wantCount := uint64(goroutines * each * 49 / 50) // NaNs dropped
	if s.Count != wantCount {
		t.Fatalf("count = %d, want %d", s.Count, wantCount)
	}
	var mass uint64
	for _, c := range s.Counts {
		mass += c
	}
	if mass != s.Count {
		t.Fatalf("bucket mass %d != count %d", mass, s.Count)
	}
	if math.IsNaN(s.Sum) || math.IsInf(s.Sum, 0) {
		t.Fatalf("sum = %v, want finite", s.Sum)
	}
}

// Snapshot key ordering is what makes metrics files diffable: the JSON
// encoding must list every map's keys sorted, independent of registration
// or observation order.
func TestSnapshotKeyOrderingDeterministic(t *testing.T) {
	forward := NewRegistry()
	forward.Counter("a").Inc()
	forward.Counter("z").Inc()
	forward.Gauge("g1").Set(1)
	forward.Gauge("g2").Set(2)
	reverse := NewRegistry()
	reverse.Gauge("g2").Set(2)
	reverse.Gauge("g1").Set(1)
	reverse.Counter("z").Inc()
	reverse.Counter("a").Inc()
	fw, err := forward.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	rv, err := reverse.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fw, rv) {
		t.Fatalf("registration order leaked into the snapshot:\n%s\n---\n%s", fw, rv)
	}
	if za, zz := bytes.Index(fw, []byte(`"a"`)), bytes.Index(fw, []byte(`"z"`)); za < 0 || zz < 0 || za > zz {
		t.Fatalf("counter keys not sorted:\n%s", fw)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		r.Counter("b.count").Add(3)
		r.Counter("a.count").Add(7)
		r.Gauge("z.gauge").Set(1.5)
		r.GaugeFunc("m.func", func() float64 { return 2.25 })
		r.Histogram("h", ExpBuckets(1, 2, 3)).Observe(3)
		out, err := r.Snapshot().MarshalJSONIndent()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	exp := ExpBuckets(1, 10, 3)
	for i, w := range []float64{1, 10, 100} {
		if exp[i] != w {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	for i, w := range []float64{0, 0.5, 1} {
		if lin[i] != w {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
