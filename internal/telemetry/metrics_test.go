package telemetry

import (
	"bytes"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("sim.assessments")
	c2 := r.Counter("sim.assessments")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	h1 := r.Histogram("sim.gap", LinearBuckets(1, 1, 4))
	h2 := r.Histogram("sim.gap", nil) // bounds ignored after first registration
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	// <=1: 0.5, 1 | <=2: 1.5, 2 | <=4: 3, 4 | overflow: 100
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+4+100 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		r.Counter("b.count").Add(3)
		r.Counter("a.count").Add(7)
		r.Gauge("z.gauge").Set(1.5)
		r.GaugeFunc("m.func", func() float64 { return 2.25 })
		r.Histogram("h", ExpBuckets(1, 2, 3)).Observe(3)
		out, err := r.Snapshot().MarshalJSONIndent()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	exp := ExpBuckets(1, 10, 3)
	for i, w := range []float64{1, 10, 100} {
		if exp[i] != w {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	for i, w := range []float64{0, 0.5, 1} {
		if lin[i] != w {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
