package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWritePrometheusRendersAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.quanta").Add(42)
	r.Gauge("cache.llc.d0.hits").Set(7.5)
	r.GaugeFunc("pool.utilization", func() float64 { return 0.25 })
	h := r.Histogram("obs.unit_seconds", []float64{0.5, 1, 2})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(1.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf, "untangle"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE untangle_sim_quanta counter\nuntangle_sim_quanta 42\n",
		"# TYPE untangle_cache_llc_d0_hits gauge\nuntangle_cache_llc_d0_hits 7.5\n",
		"untangle_pool_utilization 0.25\n",
		"# TYPE untangle_obs_unit_seconds histogram\n",
		`untangle_obs_unit_seconds_bucket{le="0.5"} 1`,
		`untangle_obs_unit_seconds_bucket{le="1"} 2`,
		`untangle_obs_unit_seconds_bucket{le="2"} 3`,
		`untangle_obs_unit_seconds_bucket{le="+Inf"} 4`,
		"untangle_obs_unit_seconds_sum 12.5\n",
		"untangle_obs_unit_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Inc()
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf, ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if a != b {
		t.Fatalf("registration order leaked into the exposition:\n%s\n---\n%s", a, b)
	}
	if strings.Index(a, "\na 1") > strings.Index(a, "\nb 1") {
		t.Fatalf("names not sorted:\n%s", a)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"sim.quanta":            "sim_quanta",
		"obs.sensitivity/pass":  "obs_sensitivity_pass",
		"9lives":                "_lives",
		"ok_name:with:colons_9": "ok_name:with:colons_9",
		"":                      "_",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatPromValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1.5, "1.5"},
		{0, "0"},
	} {
		if got := formatPromValue(tc.v); got != tc.want {
			t.Errorf("formatPromValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
