package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Header is the part every event shares. AtNs is simulated time in
// nanoseconds (cycle accounting converted to wall-clock of the simulated
// machine); Source labels the emitting run (scheme name, mix id); Domain is
// the security-domain index, or -1 for run-global events.
type Header struct {
	AtNs   int64  `json:"at_ns"`
	Source string `json:"source,omitempty"`
	Domain int    `json:"domain"`
}

// At returns the simulated timestamp as a duration.
func (h Header) At() time.Duration { return time.Duration(h.AtNs) }

// Hdr returns the mutable header (used by the tracer to stamp events).
func (h *Header) Hdr() *Header { return h }

// Event is one structured telemetry record. All concrete event types embed
// Header and are identified on the wire by Kind.
type Event interface {
	Hdr() *Header
	Kind() string
}

// Denial reasons carried by ResizeDenied.
const (
	// DenyDebounce: the decided target differed from the previous
	// assessment's target, so the two-agreeing-assessments filter vetoed it.
	DenyDebounce = "debounce"
	// DenyFrozen: the domain exhausted its leakage budget and may not
	// resize.
	DenyFrozen = "frozen"
	// DenyCapacity: the globally-optimal target did not fit in the capacity
	// currently free, so it was clamped down.
	DenyCapacity = "capacity"
)

// ResizeRequested records that a resizing assessment decided a target size
// different from the current one, before debounce or budget could veto it.
type ResizeRequested struct {
	Header
	PrevBytes   int64 `json:"prev_bytes"`
	TargetBytes int64 `json:"target_bytes"`
}

// ResizeGranted records a physical partition resize taking effect (after
// Untangle's random action delay; immediately for the Time scheme).
type ResizeGranted struct {
	Header
	PrevBytes int64 `json:"prev_bytes"`
	SizeBytes int64 `json:"size_bytes"`
}

// ResizeDenied records a requested resize that was not enacted, with the
// Deny* reason.
type ResizeDenied struct {
	Header
	PrevBytes   int64  `json:"prev_bytes"`
	TargetBytes int64  `json:"target_bytes"`
	Reason      string `json:"reason"`
}

// MonitorWindowClosed records a domain's UMON monitor completing one full
// window of Mw observed public memory accesses.
type MonitorWindowClosed struct {
	Header
	// Window is Mw, the configured window length.
	Window uint64 `json:"window"`
	// Windows is the lifetime count of closed windows.
	Windows uint64 `json:"windows"`
	// Observed is the lifetime count of observed public accesses.
	Observed uint64 `json:"observed"`
}

// CooldownStarted records the beginning of a scheme's post-assessment
// cooldown period.
type CooldownStarted struct {
	Header
	DurationNs int64 `json:"duration_ns"`
}

// CooldownExpired records that the cooldown begun at the previous
// assessment has elapsed (emitted when the next assessment observes the
// expiry; AtNs is the expiry instant, not the observation instant).
type CooldownExpired struct {
	Header
}

// LeakageBitCharged records the accountant charging leakage to a domain.
type LeakageBitCharged struct {
	Header
	Bits      float64 `json:"bits"`
	TotalBits float64 `json:"total_bits"`
	// MaintainRun is the consecutive-Maintain run length the charge was
	// rated at (Untangle's Section 5.3.4 optimization; 0 for Time).
	MaintainRun int `json:"maintain_run"`
}

// SchemeAssessment records one resizing assessment: the paper's unit of
// observable action. Visible means the size changed (a Maintain is
// invisible).
type SchemeAssessment struct {
	Header
	PrevBytes int64 `json:"prev_bytes"`
	SizeBytes int64 `json:"size_bytes"`
	Visible   bool  `json:"visible"`
	ApplyAtNs int64 `json:"apply_at_ns"`
}

// DomainQuantum records one domain's progress over one global scheduling
// quantum of the measured region.
type DomainQuantum struct {
	Header
	Retired        uint64  `json:"retired"`
	IPC            float64 `json:"ipc"`
	CommittedBytes int64   `json:"committed_bytes"`
}

// Kind implementations. The strings are the wire-format type tags; changing
// one is a schema break (docs/TELEMETRY.md).
func (*ResizeRequested) Kind() string     { return "ResizeRequested" }
func (*ResizeGranted) Kind() string       { return "ResizeGranted" }
func (*ResizeDenied) Kind() string        { return "ResizeDenied" }
func (*MonitorWindowClosed) Kind() string { return "MonitorWindowClosed" }
func (*CooldownStarted) Kind() string     { return "CooldownStarted" }
func (*CooldownExpired) Kind() string     { return "CooldownExpired" }
func (*LeakageBitCharged) Kind() string   { return "LeakageBitCharged" }
func (*SchemeAssessment) Kind() string    { return "SchemeAssessment" }
func (*DomainQuantum) Kind() string       { return "DomainQuantum" }

// eventFactories maps wire tags to constructors, for decoding.
var eventFactories = map[string]func() Event{
	"ResizeRequested":     func() Event { return &ResizeRequested{} },
	"ResizeGranted":       func() Event { return &ResizeGranted{} },
	"ResizeDenied":        func() Event { return &ResizeDenied{} },
	"MonitorWindowClosed": func() Event { return &MonitorWindowClosed{} },
	"CooldownStarted":     func() Event { return &CooldownStarted{} },
	"CooldownExpired":     func() Event { return &CooldownExpired{} },
	"LeakageBitCharged":   func() Event { return &LeakageBitCharged{} },
	"SchemeAssessment":    func() Event { return &SchemeAssessment{} },
	"DomainQuantum":       func() Event { return &DomainQuantum{} },
}

// EventKinds returns every defined wire tag, sorted, for schema checks.
func EventKinds() []string {
	kinds := make([]string, 0, len(eventFactories))
	for k := range eventFactories {
		kinds = append(kinds, k)
	}
	// Deterministic order without importing sort for one call site would be
	// silly; keep it simple.
	sortStrings(kinds)
	return kinds
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MarshalEvent renders one event as a single flat JSON object with a
// leading "type" tag:
//
//	{"type":"ResizeGranted","at_ns":1200,"domain":3,"prev_bytes":...,...}
func MarshalEvent(ev Event) ([]byte, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	// Splice the type tag into the object: body is {"at_ns":... -> prepend.
	line := make([]byte, 0, len(body)+len(ev.Kind())+12)
	line = append(line, `{"type":"`...)
	line = append(line, ev.Kind()...)
	line = append(line, `",`...)
	if len(body) <= 2 { // "{}" — no fields, close immediately
		line[len(line)-1] = '}'
		return line, nil
	}
	line = append(line, body[1:]...)
	return line, nil
}

// UnmarshalEvent decodes one flat JSON event line back into its concrete
// type.
func UnmarshalEvent(data []byte) (Event, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("telemetry: bad event line: %w", err)
	}
	mk, ok := eventFactories[probe.Type]
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown event type %q", probe.Type)
	}
	ev := mk()
	if err := json.Unmarshal(data, ev); err != nil {
		return nil, fmt.Errorf("telemetry: decoding %s: %w", probe.Type, err)
	}
	return ev, nil
}

// ReadJSONL decodes a stream of event lines (blank lines are skipped). A
// truncated final line — the expected shape of a run interrupted mid-write —
// yields the events before it and an error describing the tear.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := UnmarshalEvent(line)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
