package telemetry

import (
	"bytes"
	"errors"
	"testing"

	"untangle/internal/faultinject"
)

// EmitRaw replaying pre-marshaled lines must produce the same bytes Emit
// would — the property the checkpoint/resume path stands on.
func TestEmitRawMatchesEmit(t *testing.T) {
	events := oneOfEach()

	var live bytes.Buffer
	s1 := NewJSONL(&live)
	for _, ev := range events {
		s1.Emit(ev)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed bytes.Buffer
	s2 := NewJSONL(&replayed)
	for _, ev := range events {
		line, err := MarshalEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		s2.EmitRaw(line)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
		t.Errorf("replayed stream differs from live stream:\nlive:     %q\nreplayed: %q",
			live.Bytes(), replayed.Bytes())
	}
}

// A failing underlying writer surfaces through Flush/Err/Close and sticks;
// later emits are dropped instead of panicking or spinning on the dead file.
func TestJSONLInjectedWriterErrorSticks(t *testing.T) {
	fw := &faultinject.Writer{W: &bytes.Buffer{}, FailAt: 1}
	s := NewJSONL(fw)
	s.Emit(&CooldownExpired{Header: Header{AtNs: 1}})
	if err := s.Flush(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Flush = %v, want the injected error", err)
	}
	if !errors.Is(s.Err(), faultinject.ErrInjected) {
		t.Fatalf("Err = %v", s.Err())
	}
	s.Emit(&CooldownExpired{Header: Header{AtNs: 2}}) // must be a silent no-op
	s.EmitRaw([]byte(`{"type":"x"}`))
	if err := s.Close(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Close = %v, want the sticky injected error", err)
	}
}

// A torn half-line from a short device write is still an error the sink
// reports — the reader side (ReadJSONL) separately tolerates the torn tail.
func TestJSONLShortWriteReported(t *testing.T) {
	var out bytes.Buffer
	fw := &faultinject.Writer{W: &out, FailAt: 1, Short: true}
	s := NewJSONL(fw)
	s.Emit(&CooldownExpired{Header: Header{AtNs: 1}})
	if err := s.Close(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Close = %v", err)
	}
	if out.Len() == 0 {
		t.Skip("bufio flushed nothing before the fault")
	}
	if bytes.HasSuffix(out.Bytes(), []byte("\n")) {
		t.Error("short write unexpectedly delivered the full line")
	}
}
