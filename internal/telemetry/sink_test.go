package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(&DomainQuantum{Header: Header{AtNs: int64(i)}})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	for i, ev := range events {
		if want := int64(6 + i); ev.Hdr().AtNs != want {
			t.Fatalf("events[%d].AtNs = %d, want %d (oldest-first order)", i, ev.Hdr().AtNs, want)
		}
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Emit(&CooldownExpired{Header: Header{AtNs: int64(i)}})
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Hdr().AtNs != int64(i) {
			t.Fatalf("events[%d].AtNs = %d", i, ev.Hdr().AtNs)
		}
	}
}

// TestRingConcurrentEmit exercises the sink the way the experiments
// harness does — one emitting goroutine per simulated scheme/domain — and
// relies on -race (part of the verify recipe) to catch unsynchronized
// access.
func TestRingConcurrentEmit(t *testing.T) {
	const goroutines = 8
	const perGoroutine = 1000
	r := NewRing(256)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				r.Emit(&DomainQuantum{Header: Header{Domain: g, AtNs: int64(i)}})
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != goroutines*perGoroutine {
		t.Fatalf("total = %d, want %d", r.Total(), goroutines*perGoroutine)
	}
	if got := len(r.Events()); got != 256 {
		t.Fatalf("retained %d, want capacity 256", got)
	}
}

func TestJSONLConcurrentEmitLeavesWholeLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Emit(&SchemeAssessment{Header: Header{Domain: g, AtNs: int64(i)}, PrevBytes: 1, SizeBytes: 2})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("stream has torn or invalid lines: %v", err)
	}
	if len(events) != 2000 {
		t.Fatalf("got %d events, want 2000", len(events))
	}
}

func TestJSONLEmitAfterCloseDropped(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(&CooldownExpired{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := buf.Len()
	s.Emit(&CooldownExpired{})
	if buf.Len() != before {
		t.Fatal("emit after close wrote bytes")
	}
}

func TestBufferWriteJSONLRoundTrip(t *testing.T) {
	b := NewBuffer()
	in := oneOfEach()
	for _, ev := range in {
		b.Emit(ev)
	}
	var out bytes.Buffer
	if err := b.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(in) {
		t.Fatalf("got %d events, want %d", len(events), len(in))
	}
	for i := range in {
		if events[i].Kind() != in[i].Kind() {
			t.Fatalf("events[%d] = %s, want %s", i, events[i].Kind(), in[i].Kind())
		}
	}
}

func TestBufferConcurrentEmit(t *testing.T) {
	b := NewBuffer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Emit(&CooldownExpired{})
			}
		}()
	}
	wg.Wait()
	if b.Len() != 4000 {
		t.Fatalf("len = %d, want 4000", b.Len())
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// The call-site pattern: event construction sits behind the same
		// nil check, so disabled cost is exactly the check.
		if tr.Enabled() {
			tr.Emit(&DomainQuantum{})
		}
	}
}

func BenchmarkEmitRing(b *testing.B) {
	tr := New(NewRing(1024), nil, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(&DomainQuantum{Header: Header{AtNs: int64(i)}})
	}
}

func ExampleBuffer_WriteJSONL() {
	b := NewBuffer()
	tr := New(b, nil, "Untangle")
	tr.Emit(&ResizeGranted{Header: Header{AtNs: 1000, Domain: 2}, PrevBytes: 2 << 20, SizeBytes: 4 << 20})
	var out bytes.Buffer
	_ = b.WriteJSONL(&out)
	fmt.Print(out.String())
	// Output:
	// {"type":"ResizeGranted","at_ns":1000,"source":"Untangle","domain":2,"prev_bytes":2097152,"size_bytes":4194304}
}
