package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), the lingua franca of metrics scrapers. The dotted
// registry names ("sim.quanta", "cache.llc.d0.hits") are sanitized to the
// Prometheus character set ("sim_quanta"); namespace, when non-empty, is
// prefixed to every metric name ("untangle_sim_quanta"). Counters map to
// counter, gauges and gauge funcs to gauge, and histograms to the native
// histogram type with cumulative le buckets, _sum, and _count series.
//
// Output order is deterministic: kinds in a fixed order, names sorted within
// each kind — so scraping a deterministic run twice yields identical bodies.
func (s *Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	var ns string
	if namespace != "" {
		ns = sanitizeMetricName(namespace) + "_"
	}
	for _, name := range sortedKeys(s.Counters) {
		m := ns + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := ns + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m, m, formatPromValue(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := ns + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; the registry's are disjoint.
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, formatPromValue(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m, formatPromValue(h.Sum), m, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps an arbitrary registry name onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; every foreign character
// (the registry's dots, slashes in phase names) becomes an underscore.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip decimal, with the spellings NaN, +Inf, and -Inf for the
// non-finite values.
func formatPromValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
