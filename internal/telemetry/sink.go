package telemetry

import (
	"bufio"
	"io"
	"sync"
)

// Sink receives emitted events. Implementations must be safe for
// concurrent Emit (the experiments harness runs one simulation per scheme
// concurrently, and tests emit from multiple goroutines under -race).
type Sink interface {
	Emit(Event)
	// Close flushes buffered state and releases resources. Emit after
	// Close is a silent no-op.
	Close() error
}

// NopSink discards everything. It is the explicit form of "telemetry off";
// a nil *Tracer short-circuits even earlier.
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(Event) {}

// Close implements Sink.
func (NopSink) Close() error { return nil }

// JSONL writes one flat JSON object per event to an io.Writer, newline
// terminated. Each line is marshaled fully before any byte is written and
// written under one lock acquisition, so concurrent emitters never tear a
// line. Wrap the sink's own buffer around raw files; call Flush or Close
// so truncated runs leave whole lines.
type JSONL struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closed bool
	err    error
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Emit implements Sink. The first write or marshal error sticks and
// suppresses further output; check Err or Close.
func (s *JSONL) Emit(ev Event) {
	line, err := MarshalEvent(ev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// EmitRaw writes one pre-marshaled event line (no trailing newline) under
// the sink's lock, exactly as Emit would have written it. It exists for
// the checkpoint/resume path: a resumed run replays the event lines its
// journal recorded, byte for byte, instead of re-marshaling events — which
// is what makes a resumed run's trace provably identical to an
// uninterrupted one. Like Emit, errors stick and later calls no-op.
func (s *JSONL) EmitRaw(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// Flush pushes buffered lines to the underlying writer. A flush failure
// sticks like an emit failure: the sink stops accepting events and Err
// keeps reporting it.
func (s *JSONL) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first error encountered.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close implements Sink: flush and mark closed (the underlying writer is
// the caller's to close).
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Ring keeps the last capacity events in memory — the test sink, and a
// flight-recorder for long runs where only the tail matters.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRing builds a ring sink; capacity must be positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Close implements Sink.
func (r *Ring) Close() error { return nil }

// Total returns how many events were ever emitted.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the ring has overwritten.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Events returns the retained events, oldest first, freshly allocated.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Buffer retains every event in order — the sink behind deterministic
// trace files: simulations emit concurrently into per-run buffers, and the
// caller serializes them in a fixed order afterwards.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer builds an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit implements Sink.
func (b *Buffer) Emit(ev Event) {
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.mu.Unlock()
}

// Close implements Sink.
func (b *Buffer) Close() error { return nil }

// Len returns the number of buffered events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns the buffered events in emission order (shared backing
// array; callers must not mutate).
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.events
}

// WriteJSONL serializes the buffered events, one line each, to w.
func (b *Buffer) WriteJSONL(w io.Writer) error {
	b.mu.Lock()
	events := b.events
	b.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		line, err := MarshalEvent(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

var (
	_ Sink = NopSink{}
	_ Sink = (*JSONL)(nil)
	_ Sink = (*Ring)(nil)
	_ Sink = (*Buffer)(nil)
)
