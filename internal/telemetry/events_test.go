package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// oneOfEach builds one fully-populated instance of every event type, keyed
// by wire tag.
func oneOfEach() []Event {
	h := Header{AtNs: 1234, Source: "Untangle", Domain: 3}
	return []Event{
		&ResizeRequested{Header: h, PrevBytes: 2 << 20, TargetBytes: 4 << 20},
		&ResizeGranted{Header: h, PrevBytes: 2 << 20, SizeBytes: 4 << 20},
		&ResizeDenied{Header: h, PrevBytes: 2 << 20, TargetBytes: 4 << 20, Reason: DenyDebounce},
		&MonitorWindowClosed{Header: h, Window: 1_000_000, Windows: 7, Observed: 7_500_000},
		&CooldownStarted{Header: h, DurationNs: 1_000_000},
		&CooldownExpired{Header: h},
		&LeakageBitCharged{Header: h, Bits: 0.25, TotalBits: 3.5, MaintainRun: 4},
		&SchemeAssessment{Header: h, PrevBytes: 2 << 20, SizeBytes: 2 << 20, Visible: false, ApplyAtNs: 2048},
		&DomainQuantum{Header: h, Retired: 100_000, IPC: 1.75, CommittedBytes: 2 << 20},
	}
}

func TestEventRoundTripEveryType(t *testing.T) {
	events := oneOfEach()
	if len(events) != len(EventKinds()) {
		t.Fatalf("oneOfEach covers %d types, schema defines %d", len(events), len(EventKinds()))
	}
	for _, ev := range events {
		line, err := MarshalEvent(ev)
		if err != nil {
			t.Fatalf("%s: marshal: %v", ev.Kind(), err)
		}
		if !json.Valid(line) {
			t.Fatalf("%s: invalid JSON: %s", ev.Kind(), line)
		}
		if !bytes.HasPrefix(line, []byte(`{"type":"`+ev.Kind()+`"`)) {
			t.Fatalf("%s: line does not lead with its type tag: %s", ev.Kind(), line)
		}
		back, err := UnmarshalEvent(line)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", ev.Kind(), err)
		}
		if !reflect.DeepEqual(ev, back) {
			t.Fatalf("%s: round trip mismatch:\n in: %#v\nout: %#v", ev.Kind(), ev, back)
		}
	}
}

func TestEventLinesAreFlat(t *testing.T) {
	// The schema promises flat objects (docs/TELEMETRY.md): every field at
	// the top level, no nested "data" envelope.
	line, err := MarshalEvent(&ResizeGranted{Header: Header{AtNs: 5, Domain: 1}, PrevBytes: 1, SizeBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"type", "at_ns", "domain", "prev_bytes", "size_bytes"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("missing top-level key %q in %s", key, line)
		}
	}
}

func TestReadJSONLTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	for _, ev := range oneOfEach()[:3] {
		line, err := MarshalEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	// A torn final line, as a SIGKILLed writer would leave.
	buf.WriteString(`{"type":"DomainQuantum","at_ns":12,"dom`)
	events, err := ReadJSONL(&buf)
	if err == nil {
		t.Fatal("expected an error for the torn tail")
	}
	if len(events) != 3 {
		t.Fatalf("got %d whole events before the tear, want 3", len(events))
	}
}

func TestUnmarshalEventUnknownType(t *testing.T) {
	if _, err := UnmarshalEvent([]byte(`{"type":"NoSuchEvent"}`)); err == nil ||
		!strings.Contains(err.Error(), "NoSuchEvent") {
		t.Fatalf("want unknown-type error, got %v", err)
	}
}

func TestTracerStampsSourceAndClock(t *testing.T) {
	buf := NewBuffer()
	tr := New(buf, nil, "mix1/Time")
	tr.SetClock(ClockFunc(func() time.Duration { return 42 * time.Nanosecond }))

	// Explicit timestamp wins; the clock fills in only zero timestamps.
	tr.Emit(&CooldownExpired{Header: Header{AtNs: 7, Domain: 0}})
	tr.Emit(&CooldownExpired{Header: Header{Domain: 1}})

	events := buf.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if got := events[0].Hdr(); got.AtNs != 7 || got.Source != "mix1/Time" {
		t.Fatalf("explicit-time event header = %+v", got)
	}
	if got := events[1].Hdr(); got.AtNs != 42 || got.Source != "mix1/Time" {
		t.Fatalf("clock-stamped event header = %+v", got)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetClock(ClockFunc(func() time.Duration { return 0 }))
	tr.Emit(&CooldownExpired{}) // must not panic
}
