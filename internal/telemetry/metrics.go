package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Registry holds a run's named metrics. Registration is idempotent per
// (name, kind): asking for an existing counter returns the same *Counter,
// so packages can register at construction time without coordination.
// Registering one name as two different kinds panics — that is always a
// programming error.
//
// Instrument handles (Counter, Gauge, Histogram) are safe for concurrent
// use. Snapshot reads counters atomically but evaluates gauge functions
// in the caller's goroutine; snapshot after the instrumented run (or its
// quiescent point), which is how the simulator uses it.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		histograms: map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed bucket layout. Bounds are
// upper bucket edges; an observation lands in the first bucket whose bound
// is >= the value, or in the implicit overflow bucket past the last bound
// (so len(counts) == len(bounds)+1).
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64
	sum    float64
	n      uint64
}

// Observe records one value. Bounds are upper-inclusive: a value exactly
// equal to a bound lands in that bound's bucket. Non-finite values need
// special care because Snapshot marshals to JSON and encoding/json rejects
// NaN and ±Inf: a NaN observation is dropped entirely (it has no place on
// the bucket axis and one NaN would poison Sum forever), while ±Inf count
// into the extreme buckets (overflow for +Inf, first for -Inf) and
// increment Count but are excluded from Sum, which tracks the finite mass
// only.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	if !math.IsInf(v, 0) {
		h.sum += v
	}
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns n bounds starting at start, each factor times the
// previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge evaluated lazily at snapshot time. Useful for
// exposing counters a package already maintains (cache hit/miss totals)
// without adding hot-path work. Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFuncs[name]; !ok {
		r.checkFresh(name, "gauge func")
	}
	r.gaugeFuncs[name] = f
}

// Histogram returns (registering if needed) the named histogram. bounds is
// only consulted on first registration and must be non-empty and strictly
// increasing.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs bounds", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not increasing", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// checkFresh panics if name is already registered as another kind. Callers
// hold r.mu.
func (r *Registry) checkFresh(name, kind string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, gf := r.gaugeFuncs[name]
	_, h := r.histograms[name]
	if c || g || gf || h {
		panic(fmt.Sprintf("telemetry: %q already registered as a different kind than %s", name, kind))
	}
}

// HistogramSnapshot is a histogram's frozen state. Counts has one extra
// entry for the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot is a registry's frozen state, shaped for JSON export. Map keys
// serialize in sorted order (encoding/json), so a snapshot of a
// deterministic run is byte-identical across repetitions.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state, evaluating gauge
// functions.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges)+len(r.gaugeFuncs) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
		for name, f := range r.gaugeFuncs {
			s.Gauges[name] = f()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			h.mu.Lock()
			s.Histograms[name] = HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: append([]uint64(nil), h.counts...),
				Sum:    h.sum,
				Count:  h.n,
			}
			h.mu.Unlock()
		}
	}
	return s
}

// MarshalJSONIndent renders the snapshot as indented JSON.
func (s *Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
