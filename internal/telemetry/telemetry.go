// Package telemetry is the simulator's observability substrate: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms), a structured event tracer with pluggable sinks, and
// profiling hooks for the commands.
//
// Design constraints, in order:
//
//  1. Telemetry observes, it never participates. Nothing in this package
//     feeds back into a simulation decision, and event timestamps come from
//     simulated time (the cpu package's cycle accounting), never from the
//     wall clock, so an instrumented run's trace is byte-identical across
//     repetitions.
//  2. Disabled telemetry is free. Instrumented hot paths hold a *Tracer
//     that is nil when telemetry is off; Emit on a nil Tracer returns
//     immediately, so the cost is one nil-check and no allocations (event
//     construction sits behind the same check at every call site).
//  3. No dependencies. The package imports only the standard library and
//     no other internal package, so every layer of the simulator may
//     instrument itself without import cycles.
package telemetry

import "time"

// Clock supplies the simulated time used to stamp events that are emitted
// without an explicit timestamp. Implementations must derive their reading
// from simulation state (cycle accounting), not the wall clock, or traces
// stop being reproducible.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// Tracer stamps and routes events to a sink. The zero value of *Tracer
// (nil) is a valid disabled tracer: Emit is a no-op costing one nil-check.
type Tracer struct {
	sink   Sink
	clock  Clock
	source string
}

// New builds a tracer over a sink. source labels every emitted event (the
// scheme name, or any run identifier); clock may be nil when every call
// site stamps its events explicitly.
func New(sink Sink, clock Clock, source string) *Tracer {
	return &Tracer{sink: sink, clock: clock, source: source}
}

// SetClock installs the simulated-time fallback clock. The simulator calls
// this when it adopts a tracer, closing the Clock seam: callers build the
// tracer, the simulation supplies the time base.
func (t *Tracer) SetClock(c Clock) {
	if t != nil {
		t.clock = c
	}
}

// Enabled reports whether events will reach a sink.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit stamps the event's header (source always; time only when the call
// site left it zero and a clock is installed) and hands it to the sink.
// Emit on a nil tracer is a no-op.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.sink == nil {
		return
	}
	h := ev.Hdr()
	h.Source = t.source
	if h.AtNs == 0 && t.clock != nil {
		h.AtNs = t.clock.Now().Nanoseconds()
	}
	t.sink.Emit(ev)
}
