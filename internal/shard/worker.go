package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"untangle/internal/checkpoint"
)

// WorkerConfig wires one worker process (or in-process test harness) to its
// unit executor and its per-shard checkpoint journal.
type WorkerConfig struct {
	// Shard is this worker's index, for log lines.
	Shard int

	// Journal is the worker's own checkpoint file. Every completed unit is
	// recorded here *before* its result is streamed back, so a worker that
	// dies between the two leaves the result recoverable, and a re-assigned
	// unit replays from the journal instead of recomputing.
	Journal *checkpoint.Journal

	// Exec runs one unit and returns its journal-encoded value. The worker
	// runs units strictly sequentially — the process count is the
	// parallelism, which keeps each unit's inner execution identical to the
	// sequential campaign's.
	Exec func(ctx context.Context, key string) (json.RawMessage, error)

	// SetContext receives campaign state broadcast by the coordinator
	// before it is needed (e.g. the assembled sensitivity study that mix
	// units consume). May be nil if the campaign has no shared state.
	SetContext func(name string, value json.RawMessage) error

	// HeartbeatEvery is the liveness pulse interval; zero disables the
	// heartbeat goroutine (tests that drive the loop synchronously).
	HeartbeatEvery time.Duration

	// OnBeat, if set, runs after each heartbeat send — the commands use it
	// to also touch the shard journal's on-disk heartbeat sidecar.
	OnBeat func()

	// PostRecord, if set, runs after a unit is journaled but before its
	// result is streamed — the window a crashing worker leaves a
	// journaled-but-unstreamed unit in. Tests inject kills here.
	PostRecord func(key string)
}

// RunWorker consumes assignments from in and streams results to out until
// the coordinator sends shutdown or closes the stream. A unit execution
// error is reported to the coordinator and ends the worker — the
// coordinator decides whether the campaign survives.
func RunWorker(ctx context.Context, in io.Reader, out io.Writer, cfg WorkerConfig) error {
	if cfg.Exec == nil {
		return fmt.Errorf("shard: worker %d has no Exec", cfg.Shard)
	}
	w := newStream(out)

	// Deferred LIFO order matters here: the wait must run after the
	// cancel, or the worker would block on a heartbeat goroutine that was
	// never told to stop.
	var wg sync.WaitGroup
	defer wg.Wait()
	if cfg.HeartbeatEvery > 0 {
		beatCtx, stopBeats := context.WithCancel(ctx)
		defer stopBeats()
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(cfg.HeartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-beatCtx.Done():
					return
				case <-tick.C:
					// A send failure means the coordinator is gone; the
					// main loop will see the same on its next send.
					if w.send(message{Kind: kindHeartbeat}) != nil {
						return
					}
					if cfg.OnBeat != nil {
						cfg.OnBeat()
					}
				}
			}
		}()
	}

	sc := reader(in)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, err := decode(sc.Bytes())
		if err != nil {
			return err
		}
		switch m.Kind {
		case kindShutdown:
			return nil
		case kindContext:
			if cfg.SetContext == nil {
				return fmt.Errorf("shard: worker %d received context %q but has no SetContext", cfg.Shard, m.Name)
			}
			if err := cfg.SetContext(m.Name, m.Value); err != nil {
				return fmt.Errorf("shard: worker %d context %q: %w", cfg.Shard, m.Name, err)
			}
		case kindAssign:
			if err := w.send(runUnit(ctx, cfg, m.Key)); err != nil {
				return fmt.Errorf("shard: worker %d stream %s: %w", cfg.Shard, m.Key, err)
			}
		default:
			return fmt.Errorf("shard: worker %d received unexpected %q", cfg.Shard, m.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("shard: worker %d read assignments: %w", cfg.Shard, err)
	}
	// Coordinator closed our stdin without a shutdown message — treated the
	// same (it already has every result we streamed).
	return nil
}

// runUnit executes (or replays) one assigned unit and returns the protocol
// message to stream back.
func runUnit(ctx context.Context, cfg WorkerConfig, key string) message {
	if cfg.Journal != nil {
		var raw json.RawMessage
		ok, err := cfg.Journal.Lookup(key, &raw)
		if err != nil {
			return message{Kind: kindError, Key: key, Error: err.Error()}
		}
		if ok {
			return message{Kind: kindResult, Key: key, Value: raw, Resumed: true}
		}
	}
	value, err := cfg.Exec(ctx, key)
	if err != nil {
		return message{Kind: kindError, Key: key, Error: err.Error()}
	}
	if cfg.Journal != nil {
		if err := cfg.Journal.Record(key, value); err != nil {
			return message{Kind: kindError, Key: key, Error: err.Error()}
		}
	}
	if cfg.PostRecord != nil {
		cfg.PostRecord(key)
	}
	return message{Kind: kindResult, Key: key, Value: value}
}
