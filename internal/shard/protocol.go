// Package shard distributes a campaign's unit graph across worker
// processes: a coordinator partitions the units (sensitivity benchmark
// passes, mix runs — any key the caller can execute) over N workers, each
// worker journals completed units to its own crash-safe checkpoint file and
// streams the results back, and the coordinator merges everything in
// canonical unit order so the sharded campaign's outputs are byte-identical
// to the sequential run's.
//
// The package deliberately sits between internal/parallel (goroutines in
// one process, bounded by -jobs) and a future distributed campaign service:
// the same coordinator logic works over any pair of byte streams, so the
// unit tests drive it over in-memory pipes while the commands drive it over
// the stdin/stdout of re-executed worker processes
// (`cmd/experiments -shard-worker`). See EXPERIMENTS.md "Sharded campaigns"
// for the operational contract and docs/PERFORMANCE.md for measurements.
//
// # Protocol
//
// One JSON object per line in each direction.
//
// Coordinator → worker:
//
//	{"kind":"context","name":"study","value":...}   // shared campaign state
//	{"kind":"assign","key":"mix/3"}                  // execute one unit
//	{"kind":"shutdown"}                              // finish and exit
//
// Worker → coordinator:
//
//	{"kind":"result","key":"mix/3","value":...}      // unit completed
//	{"kind":"result","key":"mix/3","value":...,"resumed":true}
//	                                                 // replayed from the
//	                                                 // worker's journal
//	{"kind":"error","key":"mix/3","error":"..."}     // unit failed (after
//	                                                 // the worker's retries)
//	{"kind":"heartbeat"}                             // liveness pulse
//
// # Failure model
//
// A worker that stops heartbeating (death, wedge, kill -9) is declared dead
// after a lease timeout; the coordinator then recovers whatever the dead
// worker journaled but never streamed (checkpoint.ReadUnits on its shard
// journal), requeues the rest of its in-flight units, and respawns a
// replacement if the respawn budget allows. Because units are deterministic
// functions of the fingerprinted configuration, a unit that runs twice —
// journaled by a worker presumed dead, then re-executed by its replacement —
// produces byte-identical values, and the coordinator verifies exactly that
// instead of trusting it.
package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Message kinds, coordinator → worker.
const (
	kindContext  = "context"
	kindAssign   = "assign"
	kindShutdown = "shutdown"
)

// Message kinds, worker → coordinator.
const (
	kindResult    = "result"
	kindError     = "error"
	kindHeartbeat = "heartbeat"
)

// message is one protocol line in either direction.
type message struct {
	Kind string `json:"kind"`
	// Key names the unit (assign, result, error).
	Key string `json:"key,omitempty"`
	// Name labels a context broadcast ("study").
	Name string `json:"name,omitempty"`
	// Value carries the unit result or the context payload, verbatim.
	Value json.RawMessage `json:"value,omitempty"`
	// Error is the unit's failure, rendered (error values don't cross
	// process boundaries).
	Error string `json:"error,omitempty"`
	// Resumed marks a result replayed from the worker's own checkpoint
	// journal rather than executed — the observability layer keeps such
	// units out of its rate estimates.
	Resumed bool `json:"resumed,omitempty"`
}

// stream wraps one direction of a protocol connection: a line-buffered
// encoder safe for concurrent senders (the worker's heartbeat goroutine
// writes alongside its unit loop).
type stream struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func newStream(w io.Writer) *stream {
	return &stream{w: bufio.NewWriter(w)}
}

// send marshals m as one line and flushes it — every protocol message is
// latency-sensitive (assignments gate worker progress, heartbeats gate
// liveness), so nothing is left buffered.
func (s *stream) send(m message) error {
	line, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: marshal %s: %w", m.Kind, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// reader decodes protocol lines from r. Lines are capped generously — a mix
// unit's value carries its full telemetry event list.
func reader(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), maxLineBytes)
	return sc
}

// maxLineBytes bounds one protocol line. A full-fidelity mix unit's
// journaled form (rendered report group + telemetry events + rows) is a few
// MB at most; 256 MiB leaves two orders of magnitude of headroom while
// still catching a corrupted stream before it OOMs the coordinator.
const maxLineBytes = 256 << 20

// decode parses one line into a message.
func decode(line []byte) (message, error) {
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, fmt.Errorf("shard: bad protocol line %.80q: %w", line, err)
	}
	if m.Kind == "" {
		return message{}, fmt.Errorf("shard: protocol line %.80q has no kind", line)
	}
	return m, nil
}
