package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"untangle/internal/checkpoint"
)

func testFP() checkpoint.Fingerprint {
	return checkpoint.Fingerprint{Scale: 0.01, Instructions: 1000, Seed: 42,
		Schemes: []string{"a", "b"}, Units: "shard-test", ParamsTag: "tag"}
}

// harness spawns in-process workers over io.Pipe pairs — the same
// RunWorker loop the commands re-exec, without the process boundary.
type harness struct {
	t   *testing.T
	dir string
	fp  checkpoint.Fingerprint

	// exec runs a unit; incarnation counts how many times each shard index
	// has been spawned (1 for the original, 2+ for respawns).
	exec func(ctx context.Context, shard, incarnation int, key string) (json.RawMessage, error)
	// tweak adjusts a worker's config before it starts (kill injection,
	// heartbeat suppression). May be nil.
	tweak func(shard, incarnation int, cfg *WorkerConfig)

	mu      sync.Mutex
	spawns  map[int]int
	closers map[[2]int]func() // (shard, incarnation) → sever output stream
}

func (h *harness) journalPath(shard int) string {
	return filepath.Join(h.dir, fmt.Sprintf("run.ckpt.shard%d", shard))
}

func (h *harness) recover(shard int) (map[string]json.RawMessage, error) {
	return checkpoint.ReadUnits(h.journalPath(shard), h.fp)
}

// kill severs a worker incarnation's result stream, simulating a process
// death from inside the worker: the pending (or next) send fails, the
// worker loop exits, and the coordinator observes a broken stream.
func (h *harness) kill(shard, incarnation int) {
	h.mu.Lock()
	closer := h.closers[[2]int{shard, incarnation}]
	h.mu.Unlock()
	if closer != nil {
		closer()
	}
}

func (h *harness) spawn(shard int) (*Proc, error) {
	h.mu.Lock()
	h.spawns[shard]++
	incarnation := h.spawns[shard]
	h.mu.Unlock()

	j, err := checkpoint.Open(h.journalPath(shard), h.fp)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	inR, inW := io.Pipe()   // coordinator → worker
	outR, outW := io.Pipe() // worker → coordinator
	h.mu.Lock()
	h.closers[[2]int{shard, incarnation}] = func() { outW.CloseWithError(io.ErrClosedPipe) }
	h.mu.Unlock()

	cfg := WorkerConfig{
		Shard:   shard,
		Journal: j,
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			return h.exec(ctx, shard, incarnation, key)
		},
		HeartbeatEvery: 10 * time.Millisecond,
	}
	if h.tweak != nil {
		h.tweak(shard, incarnation, &cfg)
	}

	done := make(chan error, 1)
	go func() {
		err := RunWorker(ctx, inR, outW, cfg)
		j.Close()
		outW.CloseWithError(io.EOF)
		inR.Close()
		done <- err
	}()

	var waitOnce sync.Once
	var waitErr error
	return &Proc{
		In:  inW,
		Out: outR,
		Kill: func() {
			cancel()
			inR.CloseWithError(io.ErrClosedPipe)
			outW.CloseWithError(io.ErrClosedPipe)
		},
		Wait: func() error {
			waitOnce.Do(func() { waitErr = <-done })
			return waitErr
		},
	}, nil
}

func newHarness(t *testing.T, exec func(ctx context.Context, shard, incarnation int, key string) (json.RawMessage, error)) *harness {
	return &harness{t: t, dir: t.TempDir(), fp: testFP(), exec: exec,
		spawns: map[int]int{}, closers: map[[2]int]func(){}}
}

// valueFor is the deterministic unit function most tests use: the same key
// yields the same bytes no matter which shard or incarnation runs it.
func valueFor(key string) json.RawMessage {
	raw, _ := json.Marshal(map[string]string{"unit": key, "out": strings.ToUpper(key)})
	return raw
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("unit/%d", i)
	}
	return out
}

func TestShardedRunDistributesAndMerges(t *testing.T) {
	var execs atomic.Int64
	h := newHarness(t, func(_ context.Context, _, _ int, key string) (json.RawMessage, error) {
		execs.Add(1)
		return valueFor(key), nil
	})
	c, err := New(h.spawn, Options{Workers: 3, Recover: h.recover, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ks := keys(10)
	results, err := c.Run(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if string(results[k]) != string(valueFor(k)) {
			t.Errorf("%s: got %s", k, results[k])
		}
	}
	if got := execs.Load(); got != 10 {
		t.Errorf("execs = %d, want 10", got)
	}
	st := c.Stats()
	if st.Completed != 10 || st.Assigned != 10 || st.Spawned != 3 || st.Died != 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := c.Shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}

	// Every unit landed in exactly one shard journal, and the journals
	// merge into a complete picture.
	main, err := checkpoint.Open(filepath.Join(h.dir, "main.ckpt"), h.fp)
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	total := 0
	for shard := 0; shard < 3; shard++ {
		added, err := main.MergeFrom(h.journalPath(shard))
		if err != nil {
			t.Fatal(err)
		}
		total += added
	}
	if total != 10 || main.Len() != 10 {
		t.Errorf("merged %d units into Len %d, want 10", total, main.Len())
	}
}

// A worker killed after journaling a unit but before streaming it: the
// coordinator must harvest the unit from the shard journal (no recompute)
// and keep the campaign going on a respawned worker.
func TestWorkerDeathRecoversJournaledUnit(t *testing.T) {
	const victim = "unit/3"
	var perKey sync.Map
	h := newHarness(t, func(_ context.Context, _, _ int, key string) (json.RawMessage, error) {
		n, _ := perKey.LoadOrStore(key, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return valueFor(key), nil
	})
	var killed atomic.Bool
	h.tweak = func(shard, incarnation int, cfg *WorkerConfig) {
		cfg.PostRecord = func(key string) {
			if key == victim && killed.CompareAndSwap(false, true) {
				h.kill(shard, incarnation)
			}
		}
	}
	c, err := New(h.spawn, Options{Workers: 2, Recover: h.recover, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ks := keys(8)
	results, err := c.Run(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if string(results[k]) != string(valueFor(k)) {
			t.Errorf("%s: got %s", k, results[k])
		}
	}
	st := c.Stats()
	if st.Died != 1 {
		t.Errorf("Died = %d, want 1 (stats %+v)", st.Died, st)
	}
	if st.Recovered < 1 {
		t.Errorf("Recovered = %d, want >= 1 (stats %+v)", st.Recovered, st)
	}
	if n, ok := perKey.Load(victim); !ok || n.(*atomic.Int64).Load() != 1 {
		t.Errorf("victim executed %v times, want exactly 1 (journal recovery, not recompute)", n)
	}
}

// The backpressure bound: with Window W and N workers, at most N×W units
// are assigned-but-incomplete at any instant.
func TestBackpressureWindow(t *testing.T) {
	h := newHarness(t, func(_ context.Context, _, _ int, key string) (json.RawMessage, error) {
		time.Sleep(2 * time.Millisecond)
		return valueFor(key), nil
	})
	const workers, window = 2, 2
	outstanding, maxOutstanding := 0, 0
	c, err := New(h.spawn, Options{
		Workers: workers,
		Window:  window,
		OnAssign: func(string, int) {
			outstanding++
			if outstanding > maxOutstanding {
				maxOutstanding = outstanding
			}
		},
		OnResult: func(string, int, json.RawMessage, bool) { outstanding-- },
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Run(context.Background(), keys(20)); err != nil {
		t.Fatal(err)
	}
	if maxOutstanding > workers*window {
		t.Errorf("max outstanding = %d, want <= %d", maxOutstanding, workers*window)
	}
	if maxOutstanding == 0 {
		t.Error("OnAssign never fired")
	}
}

// A worker that goes silent (no heartbeat, no results) is declared dead at
// lease expiry and its units finish elsewhere.
func TestLeaseExpiryReassigns(t *testing.T) {
	h := newHarness(t, nil)
	h.exec = func(ctx context.Context, shard, incarnation int, key string) (json.RawMessage, error) {
		if shard == 1 && incarnation == 1 {
			// Wedged: never returns until killed.
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return valueFor(key), nil
	}
	h.tweak = func(shard, incarnation int, cfg *WorkerConfig) {
		if shard == 1 && incarnation == 1 {
			cfg.HeartbeatEvery = 0 // silent as well as wedged
		}
	}
	c, err := New(h.spawn, Options{Workers: 2, Lease: 100 * time.Millisecond, Recover: h.recover, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ks := keys(6)
	results, err := c.Run(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if string(results[k]) != string(valueFor(k)) {
			t.Errorf("%s: got %s", k, results[k])
		}
	}
	if st := c.Stats(); st.Died != 1 || st.Requeued == 0 {
		t.Errorf("stats = %+v, want Died 1 and Requeued > 0", st)
	}
}

// Broadcast state must reach workers spawned after the broadcast (respawn
// replay) — mix units need the sensitivity study no matter which
// incarnation runs them.
func TestBroadcastReplaysToRespawnedWorker(t *testing.T) {
	h := newHarness(t, nil)
	var contexts sync.Map // shard*100+incarnation → value
	h.exec = func(ctx context.Context, shard, incarnation int, key string) (json.RawMessage, error) {
		v, ok := contexts.Load(shard*100 + incarnation)
		if !ok {
			return nil, fmt.Errorf("worker %d/%d executing %s without campaign context", shard, incarnation, key)
		}
		raw, _ := json.Marshal(map[string]string{"unit": key, "study": v.(string)})
		return raw, nil
	}
	var killed atomic.Bool
	h.tweak = func(shard, incarnation int, cfg *WorkerConfig) {
		cfg.SetContext = func(name string, value json.RawMessage) error {
			var s string
			if err := json.Unmarshal(value, &s); err != nil {
				return err
			}
			contexts.Store(shard*100+incarnation, s)
			return nil
		}
		if incarnation == 1 {
			cfg.PostRecord = func(key string) {
				if shard == 0 && killed.CompareAndSwap(false, true) {
					h.kill(shard, incarnation)
				}
			}
		}
	}
	c, err := New(h.spawn, Options{Workers: 2, Recover: h.recover, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	study, _ := json.Marshal("figure-11-study")
	if err := c.Broadcast("study", study); err != nil {
		t.Fatal(err)
	}
	ks := keys(8)
	results, err := c.Run(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		var got map[string]string
		if err := json.Unmarshal(results[k], &got); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if got["study"] != "figure-11-study" {
			t.Errorf("%s: study = %q", k, got["study"])
		}
	}
	if st := c.Stats(); st.Died != 1 || st.Spawned != 3 {
		t.Errorf("stats = %+v, want one death and one respawn", st)
	}
}

// Workers replay their own journals: a unit already journaled by a previous
// session is streamed back without re-execution and flagged resumed.
func TestWorkerReplaysOwnJournal(t *testing.T) {
	var execs atomic.Int64
	h := newHarness(t, func(_ context.Context, _, _ int, key string) (json.RawMessage, error) {
		execs.Add(1)
		return valueFor(key), nil
	})
	// Pre-journal three units into shard 0's journal, as a killed previous
	// campaign session would have left them.
	pre, err := checkpoint.Open(h.journalPath(0), h.fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"unit/0", "unit/1", "unit/2"} {
		if err := pre.Record(k, json.RawMessage(valueFor(k))); err != nil {
			t.Fatal(err)
		}
	}
	pre.Close()

	resumed := map[string]bool{}
	c, err := New(h.spawn, Options{Workers: 1, Recover: h.recover,
		OnResult: func(key string, _ int, _ json.RawMessage, r bool) { resumed[key] = r },
		Logf:     t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ks := keys(5)
	results, err := c.Run(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if string(results[k]) != string(valueFor(k)) {
			t.Errorf("%s: got %s", k, results[k])
		}
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("execs = %d, want 2 (three replayed)", got)
	}
	for _, k := range []string{"unit/0", "unit/1", "unit/2"} {
		if !resumed[k] {
			t.Errorf("%s not flagged resumed", k)
		}
	}
	for _, k := range []string{"unit/3", "unit/4"} {
		if resumed[k] {
			t.Errorf("%s wrongly flagged resumed", k)
		}
	}
}

// A unit that fails (after the worker's own retries) fails the campaign
// fast, naming the unit.
func TestUnitErrorFailsFast(t *testing.T) {
	h := newHarness(t, func(_ context.Context, _, _ int, key string) (json.RawMessage, error) {
		if key == "unit/2" {
			return nil, fmt.Errorf("engine exploded")
		}
		return valueFor(key), nil
	})
	c, err := New(h.spawn, Options{Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	_, err = c.Run(context.Background(), keys(5))
	if err == nil {
		t.Fatal("failing unit did not fail the run")
	}
	if !strings.Contains(err.Error(), "unit/2") || !strings.Contains(err.Error(), "engine exploded") {
		t.Errorf("error does not name unit and cause: %v", err)
	}
}

// Divergent duplicate bytes — a nondeterministic unit — must fail loudly,
// never silently pick a side.
func TestDivergentDuplicateRejected(t *testing.T) {
	c := &Coordinator{results: map[string]json.RawMessage{"mix/1": json.RawMessage(`{"v":1}`)}}
	if err := c.accept("mix/1", json.RawMessage(`{"v":2}`), 0, false); err == nil {
		t.Fatal("divergent duplicate accepted")
	} else if !strings.Contains(err.Error(), "mix/1") {
		t.Errorf("error does not name the unit: %v", err)
	}
	if err := c.accept("mix/1", json.RawMessage(`{"v":1}`), 0, false); err != nil {
		t.Errorf("identical duplicate rejected: %v", err)
	}
	if c.Stats().Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", c.Stats().Duplicates)
	}
}

// Cancelling the campaign context unwinds Run promptly even with a wedged
// worker.
func TestRunHonorsContextCancel(t *testing.T) {
	h := newHarness(t, func(ctx context.Context, _, _ int, key string) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c, err := New(h.spawn, Options{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(30 * time.Millisecond); cancel() }()
	if _, err := c.Run(ctx, keys(3)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers are wedged on their own ctx — kill them directly.
	for _, w := range c.workers {
		w.proc.Kill()
		w.proc.Wait()
	}
}
