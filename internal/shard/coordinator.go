package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Proc is one spawned worker as the coordinator sees it: a pair of byte
// streams plus lifecycle hooks. cmd wrappers back it with an exec.Cmd and
// OS pipes; the package tests back it with io.Pipe and a goroutine.
type Proc struct {
	// In carries coordinator→worker protocol lines (the worker's stdin).
	In io.WriteCloser
	// Out carries worker→coordinator lines (the worker's stdout).
	Out io.Reader
	// Kill forcibly terminates the worker; must be safe to call twice and
	// after Wait.
	Kill func()
	// Wait blocks until the worker has exited and releases its resources.
	Wait func() error
}

// Spawn starts the worker process for a shard index. Respawns after a death
// reuse the same index, so the replacement opens the same per-shard journal
// and replays whatever its predecessor completed.
type Spawn func(shard int) (*Proc, error)

// Options tunes the coordinator.
type Options struct {
	// Workers is the number of worker processes (shards). Minimum 1.
	Workers int

	// Window caps units in flight per worker. The default 2 keeps every
	// worker's next unit queued behind its current one — enough to hide
	// assignment latency without letting a dying worker strand a long
	// backlog. This is the coordinator's backpressure bound: at most
	// Workers×Window units are outstanding.
	Window int

	// Lease is how long a worker may stay silent (no result, no heartbeat)
	// before it is declared dead and its units reassigned. Zero disables
	// liveness monitoring — death is then detected only by stream EOF.
	Lease time.Duration

	// MaxRespawns bounds replacement workers across the coordinator's
	// lifetime, preventing a crash-looping unit from respawning forever.
	// Default: Workers.
	MaxRespawns int

	// Recover harvests a dead worker's per-shard journal
	// (checkpoint.ReadUnits) so units it completed-but-never-streamed are
	// not recomputed. May be nil (everything in flight is recomputed).
	Recover func(shard int) (map[string]json.RawMessage, error)

	// OnAssign and OnResult observe unit flow (observability spans,
	// progress counting, main-journal recording). Called from the Run
	// goroutine, never concurrently.
	OnAssign func(key string, shard int)
	OnResult func(key string, shard int, value json.RawMessage, resumed bool)

	// Logf reports worker lifecycle events (death, recovery, respawn).
	// Default: discard.
	Logf func(format string, args ...any)
}

// Stats counts coordinator lifecycle events, for tests and campaign logs.
type Stats struct {
	Spawned    int // workers started, including replacements
	Died       int // workers declared dead (EOF, stream error, lease expiry)
	Assigned   int // assignment messages sent
	Completed  int // distinct units completed
	Recovered  int // units harvested from dead workers' journals
	Requeued   int // in-flight units reassigned after a death
	Duplicates int // byte-identical duplicate results discarded
}

// Coordinator partitions unit keys across worker processes and collects
// their results. It is not safe for concurrent use — drive it from one
// goroutine (Broadcast and Run between phases, then Shutdown).
type Coordinator struct {
	spawn Spawn
	opts  Options

	workers  []*workerState
	events   chan event
	contexts []message // broadcasts, replayed to respawned workers
	respawns int

	// results accumulates every completed unit across Run calls, both to
	// return and to verify that duplicates (recovery races) are
	// byte-identical.
	results map[string]json.RawMessage

	mu    sync.Mutex // guards stats (read by Stats from any goroutine)
	stats Stats
}

type workerState struct {
	shard int
	proc  *Proc
	// sendq decouples the coordinator's event loop from the worker's stdin:
	// a wedged worker that stops reading must never block Run (a
	// synchronous send there would also stall the lease ticker that is
	// supposed to detect exactly that worker). A dedicated sender goroutine
	// drains the queue; the coordinator only ever enqueues, and a full
	// queue is treated as worker death.
	sendq    chan message
	inflight []string // FIFO: assigned, no result yet
	lastSeen time.Time
	dead     bool
}

// enqueue hands a message to the worker's sender goroutine without ever
// blocking. The queue is sized so it can only fill when the worker has
// stopped draining its stdin for a long time — the caller treats false as
// worker death. Must not be called after handleDeath closed the queue
// (every call site checks dead first).
func (w *workerState) enqueue(m message) bool {
	select {
	case w.sendq <- m:
		return true
	default:
		return false
	}
}

// event is one item from a worker's reader goroutine. A nil err carries a
// protocol message; a non-nil err (io.EOF included) means the stream ended.
type event struct {
	w   *workerState
	msg message
	err error
}

// New spawns the workers and returns a coordinator ready for Broadcast and
// Run. On error, any workers already spawned are killed.
func New(spawn Spawn, opts Options) (*Coordinator, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("shard: Workers = %d, need at least 1", opts.Workers)
	}
	if opts.Window <= 0 {
		opts.Window = 2
	}
	if opts.MaxRespawns == 0 {
		opts.MaxRespawns = opts.Workers
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		spawn:   spawn,
		opts:    opts,
		events:  make(chan event, 256),
		results: make(map[string]json.RawMessage),
	}
	for i := 0; i < opts.Workers; i++ {
		w, err := c.startWorker(i)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.workers = append(c.workers, w)
	}
	return c, nil
}

func (c *Coordinator) startWorker(shard int) (*workerState, error) {
	proc, err := c.spawn(shard)
	if err != nil {
		return nil, fmt.Errorf("shard: spawn worker %d: %w", shard, err)
	}
	w := &workerState{
		shard: shard,
		proc:  proc,
		// Window assignments + context replays + shutdown all fit with
		// room to spare; see enqueue.
		sendq:    make(chan message, c.opts.Window+len(c.contexts)+16),
		lastSeen: time.Now(),
	}
	c.mu.Lock()
	c.stats.Spawned++
	c.mu.Unlock()
	// Sender: owns the worker's stdin. Exits when the queue is closed
	// (handleDeath/Shutdown) or a write fails, closing stdin on the way out
	// so the worker also sees EOF.
	go func() {
		out := newStream(proc.In)
		for m := range w.sendq {
			if err := out.send(m); err != nil {
				// The reader goroutine will surface the death (its end of
				// the pipes fails too); just drain so enqueuers never
				// block, until handleDeath closes the queue.
				for range w.sendq {
				}
				break
			}
		}
		proc.In.Close()
	}()
	go func() {
		sc := reader(proc.Out)
		for sc.Scan() {
			m, err := decode(sc.Bytes())
			if err != nil {
				c.events <- event{w: w, err: err}
				return
			}
			if m.Kind == kindHeartbeat {
				// Heartbeats are advisory and must never stall this
				// reader: between Run calls nothing drains the event
				// channel, and a reader blocked here would stop draining
				// the worker's pipe until the worker itself wedged on a
				// full pipe mid-send. Drop them when the channel is full.
				select {
				case c.events <- event{w: w, msg: m}:
				default:
				}
				continue
			}
			c.events <- event{w: w, msg: m}
		}
		err := sc.Err()
		if err == nil {
			err = io.EOF
		}
		c.events <- event{w: w, err: err}
	}()
	// Replay campaign context so a respawned worker has everything its
	// predecessor was sent. The queue was sized to hold all of it.
	for _, m := range c.contexts {
		if !w.enqueue(m) {
			proc.Kill()
			proc.Wait()
			return nil, fmt.Errorf("shard: replay context to worker %d: queue full", shard)
		}
	}
	return w, nil
}

// Broadcast sends shared campaign state (e.g. the assembled sensitivity
// study) to every live worker and stores it for replay to respawns.
func (c *Coordinator) Broadcast(name string, value json.RawMessage) error {
	m := message{Kind: kindContext, Name: name, Value: value}
	c.contexts = append(c.contexts, m)
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		if !w.enqueue(m) {
			// The worker will be declared dead when Run observes its
			// stream end or lease expiry; don't fail the whole campaign.
			c.opts.Logf("shard: broadcast %q to worker %d: queue full", name, w.shard)
		}
	}
	return nil
}

// Run executes the given unit keys across the workers and returns every
// key's result. Workers stay alive afterwards for further Run calls.
// Results already collected in a previous Run (or recovered from a journal)
// are returned without re-execution.
func (c *Coordinator) Run(ctx context.Context, keys []string) (map[string]json.RawMessage, error) {
	want := make(map[string]bool, len(keys))
	pending := make([]string, 0, len(keys))
	for _, k := range keys {
		want[k] = true
		if _, done := c.results[k]; !done {
			pending = append(pending, k)
		}
	}
	remaining := len(pending)

	// Leases measure silence while the campaign is actively running, so
	// each Run starts every live worker fresh — heartbeats arriving between
	// phases may have been dropped (see the reader goroutine), and that
	// must not read as death.
	for _, w := range c.workers {
		if !w.dead {
			w.lastSeen = time.Now()
		}
	}
	var leaseTick <-chan time.Time
	if c.opts.Lease > 0 {
		t := time.NewTicker(c.opts.Lease / 2)
		defer t.Stop()
		leaseTick = t.C
	}

	for remaining > 0 {
		// Fill every live worker's window before blocking.
		for _, w := range c.workers {
			for !w.dead && len(w.inflight) < c.opts.Window && len(pending) > 0 {
				key := pending[0]
				if !w.enqueue(message{Kind: kindAssign, Key: key}) {
					c.opts.Logf("shard: assign %s to worker %d: queue full, declaring dead", key, w.shard)
					requeued, err := c.handleDeath(w, want)
					if err != nil {
						return nil, err
					}
					pending = append(pending, requeued...)
					break
				}
				pending = pending[1:]
				w.inflight = append(w.inflight, key)
				c.mu.Lock()
				c.stats.Assigned++
				c.mu.Unlock()
				if c.opts.OnAssign != nil {
					c.opts.OnAssign(key, w.shard)
				}
			}
		}
		// Recovery during handleDeath may have completed units.
		if remaining = countRemaining(want, c.results); remaining == 0 {
			break
		}
		if err := c.liveOrLost(pending); err != nil {
			return nil, err
		}

		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-leaseTick:
			for _, w := range c.workers {
				if w.dead || time.Since(w.lastSeen) <= c.opts.Lease {
					continue
				}
				c.opts.Logf("shard: worker %d silent for %s, declaring dead", w.shard, time.Since(w.lastSeen).Round(time.Millisecond))
				w.proc.Kill()
				requeued, err := c.handleDeath(w, want)
				if err != nil {
					return nil, err
				}
				pending = append(pending, requeued...)
			}
		case ev := <-c.events:
			w := ev.w
			if w.dead {
				break // stale event from a killed worker's reader
			}
			if ev.err != nil {
				if ev.err != io.EOF {
					c.opts.Logf("shard: worker %d stream: %v", w.shard, ev.err)
				} else {
					c.opts.Logf("shard: worker %d exited unexpectedly", w.shard)
				}
				requeued, err := c.handleDeath(w, want)
				if err != nil {
					return nil, err
				}
				pending = append(pending, requeued...)
				break
			}
			w.lastSeen = time.Now()
			switch ev.msg.Kind {
			case kindHeartbeat:
				// lastSeen update above is the whole point.
			case kindResult:
				w.inflight = removeKey(w.inflight, ev.msg.Key)
				if err := c.accept(ev.msg.Key, ev.msg.Value, w.shard, ev.msg.Resumed); err != nil {
					return nil, err
				}
			case kindError:
				return nil, fmt.Errorf("shard: worker %d unit %s: %s", w.shard, ev.msg.Key, ev.msg.Error)
			default:
				return nil, fmt.Errorf("shard: worker %d sent unexpected %q", w.shard, ev.msg.Kind)
			}
		}
		remaining = countRemaining(want, c.results)
	}

	out := make(map[string]json.RawMessage, len(keys))
	for _, k := range keys {
		out[k] = c.results[k]
	}
	return out, nil
}

// liveOrLost fails the campaign when units remain but no worker can run
// them.
func (c *Coordinator) liveOrLost(pending []string) error {
	for _, w := range c.workers {
		if !w.dead {
			return nil
		}
	}
	return fmt.Errorf("shard: all %d workers dead with %d units unassigned (respawn budget %d exhausted)",
		len(c.workers), len(pending), c.opts.MaxRespawns)
}

// accept records a completed unit, verifying that a duplicate (a unit that
// ran on a presumed-dead worker and again on its replacement) is
// byte-identical — anything else means the campaign is nondeterministic and
// its outputs can't be trusted.
func (c *Coordinator) accept(key string, value json.RawMessage, shard int, resumed bool) error {
	if prev, ok := c.results[key]; ok {
		if !bytes.Equal(prev, value) {
			return fmt.Errorf("shard: unit %s produced different bytes on re-execution (worker %d) — nondeterministic unit or fingerprint drift", key, shard)
		}
		c.mu.Lock()
		c.stats.Duplicates++
		c.mu.Unlock()
		return nil
	}
	c.results[key] = value
	c.mu.Lock()
	c.stats.Completed++
	c.mu.Unlock()
	if c.opts.OnResult != nil {
		c.opts.OnResult(key, shard, value, resumed)
	}
	return nil
}

// handleDeath marks w dead, harvests its journal, and requeues what could
// not be recovered. It respawns a replacement on the same shard index if
// the budget allows; the replacement's journal replay makes recovered-here
// units cheap even if they get reassigned to it. Returns the keys to
// requeue.
func (c *Coordinator) handleDeath(w *workerState, want map[string]bool) ([]string, error) {
	if w.dead {
		return nil, nil
	}
	w.dead = true
	close(w.sendq) // release the sender goroutine
	w.proc.Kill()
	w.proc.Wait()
	c.mu.Lock()
	c.stats.Died++
	c.mu.Unlock()

	// Harvest the shard journal: units the worker completed and fsynced
	// but never streamed survive its death.
	var recovered map[string]json.RawMessage
	if c.opts.Recover != nil {
		var err error
		recovered, err = c.opts.Recover(w.shard)
		if err != nil {
			return nil, fmt.Errorf("shard: recover worker %d journal: %w", w.shard, err)
		}
	}
	var requeue []string
	for _, key := range w.inflight {
		if raw, ok := recovered[key]; ok {
			c.mu.Lock()
			c.stats.Recovered++
			c.mu.Unlock()
			c.opts.Logf("shard: worker %d: unit %s recovered from journal", w.shard, key)
			if err := c.accept(key, raw, w.shard, true); err != nil {
				return nil, err
			}
			continue
		}
		c.mu.Lock()
		c.stats.Requeued++
		c.mu.Unlock()
		requeue = append(requeue, key)
	}
	// The journal may also hold units from keys not currently in flight
	// (earlier phases, or streamed results we already have): verify them
	// against what we collected — a mismatch is the same determinism
	// violation accept guards against.
	for key, raw := range recovered {
		if prev, ok := c.results[key]; ok && !bytes.Equal(prev, raw) {
			return nil, fmt.Errorf("shard: worker %d journal disagrees with streamed result for %s", w.shard, key)
		} else if !ok && want[key] {
			c.mu.Lock()
			c.stats.Recovered++
			c.mu.Unlock()
			if err := c.accept(key, raw, w.shard, true); err != nil {
				return nil, err
			}
		}
	}
	w.inflight = nil

	if c.respawns < c.opts.MaxRespawns {
		c.respawns++
		c.opts.Logf("shard: respawning worker %d (%d/%d respawns used)", w.shard, c.respawns, c.opts.MaxRespawns)
		nw, err := c.startWorker(w.shard)
		if err != nil {
			return nil, err
		}
		// Replace in place so shard indices stay stable.
		for i, cur := range c.workers {
			if cur == w {
				c.workers[i] = nw
			}
		}
	}
	return requeue, nil
}

// Shutdown tells every live worker to exit and waits for them. Safe after
// partial construction and after worker deaths.
func (c *Coordinator) Shutdown() error {
	var firstErr error
	for _, w := range c.workers {
		if w == nil || w.dead {
			continue
		}
		if !w.enqueue(message{Kind: kindShutdown}) && firstErr == nil {
			firstErr = fmt.Errorf("shard: worker %d: shutdown queue full", w.shard)
		}
		// Closing the queue makes the sender flush the shutdown message and
		// then close the worker's stdin — either is enough for a clean exit.
		close(w.sendq)
		if err := w.proc.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard: worker %d: %w", w.shard, err)
		}
		w.dead = true
	}
	return firstErr
}

// Stats returns a snapshot of lifecycle counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func removeKey(keys []string, key string) []string {
	for i, k := range keys {
		if k == key {
			return append(keys[:i], keys[i+1:]...)
		}
	}
	return keys
}

func countRemaining(want map[string]bool, results map[string]json.RawMessage) int {
	n := 0
	for k := range want {
		if _, ok := results[k]; !ok {
			n++
		}
	}
	return n
}
