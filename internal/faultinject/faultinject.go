// Package faultinject is the deterministic fault harness behind the
// robustness tests: it arms a single, precisely-placed fault — a panic, an
// error, a context cancellation, or a misbehaving io.Writer — at the Nth
// call of an instrumented hook, with no randomness and no wall-clock
// involvement, so every injected failure is reproducible down to the call
// index under -race and across machines.
//
// The injection points are ordinary test hooks, present in release builds
// (no build tags): the worker pool's task function, the multi-lane engine's
// per-chunk hook (experiments.SetEngineChunkHook), and the telemetry sinks'
// underlying writers. docs/ROBUSTNESS.md catalogs the faults and the
// recovery property each one proves.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// ErrInjected is the default error delivered by error-mode injectors.
var ErrInjected = errors.New("faultinject: injected fault")

// Injector fires one kind of fault at a chosen call number. The zero value
// never fires. Injectors are safe for concurrent use: the call counter is
// atomic, and exactly one caller observes each armed call number.
type Injector struct {
	calls atomic.Uint64
	// at is the 1-based call number that faults; 0 disarms the injector.
	at     uint64
	count  uint64 // consecutive calls (starting at `at`) that fault
	panicV any
	err    error
	onFire func()
}

// PanicAt returns an injector whose nth call (1-based) panics with value v.
func PanicAt(n uint64, v any) *Injector {
	return &Injector{at: n, count: 1, panicV: v}
}

// ErrorAt returns an injector whose calls n..n+count-1 (1-based) return
// err — `count` consecutive failures model a transient fault that a
// bounded retry must outlast. A nil err becomes ErrInjected.
func ErrorAt(n, count uint64, err error) *Injector {
	if err == nil {
		err = ErrInjected
	}
	return &Injector{at: n, count: count, err: err}
}

// CancelAt returns an injector whose nth call (1-based) invokes cancel —
// typically a context.CancelFunc, modeling an operator interrupt landing at
// an exact point in the run.
func CancelAt(n uint64, cancel func()) *Injector {
	return &Injector{at: n, count: 1, onFire: cancel}
}

// Seeded derives a deterministic call index in [1, period] from seed via a
// splitmix64 step, for sweeping fault placements without hand-picking call
// numbers. The same (seed, period) always faults at the same call.
func Seeded(seed, period uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z%period + 1
}

// Fire records one call and delivers the armed fault if this call is the
// one. Error-mode injectors return the injected error; panic-mode ones
// panic; cancel-mode ones call their function and return nil (the
// cancellation is observed through the context, as in a real interrupt).
// All other calls return nil.
func (j *Injector) Fire() error {
	if j == nil || j.at == 0 {
		return nil
	}
	n := j.calls.Add(1)
	end := j.at + j.count
	if end < j.at { // saturate: ErrorAt(n, ^uint64(0), …) means "fail forever"
		end = ^uint64(0)
	}
	if n < j.at || n >= end {
		return nil
	}
	if j.panicV != nil {
		panic(j.panicV)
	}
	if j.onFire != nil {
		j.onFire()
		return nil
	}
	return j.err
}

// Calls returns how many times Fire has been invoked.
func (j *Injector) Calls() uint64 { return j.calls.Load() }

// Keyed fires a fault on every call that matches a specific unit key —
// the "poisoned unit" model: one piece of campaign work fails on every
// attempt (so bounded retries exhaust) while all its siblings stay healthy.
// Unlike Injector's call-indexed placement, Keyed is position-independent:
// the poisoned unit fails no matter which worker picks it up or in what
// order, which is what a dead-letter test needs under a concurrent pool.
// The zero value never fires.
type Keyed struct {
	key   string
	err   error
	calls atomic.Uint64 // matching calls only
}

// KeyedError returns an injector that fails every call whose key equals
// key. A nil err becomes ErrInjected.
func KeyedError(key string, err error) *Keyed {
	if err == nil {
		err = ErrInjected
	}
	return &Keyed{key: key, err: err}
}

// Fire records the call and returns the armed error when key matches, nil
// otherwise (including on a nil or zero-valued receiver).
func (k *Keyed) Fire(key string) error {
	if k == nil || k.key == "" || key != k.key {
		return nil
	}
	k.calls.Add(1)
	return k.err
}

// Calls returns how many matching calls have fired.
func (k *Keyed) Calls() uint64 { return k.calls.Load() }

// Writer wraps an io.Writer and corrupts the Nth Write call: in short mode
// it writes only half the buffer and reports the truncated count with an
// error (the classic torn write); otherwise it writes nothing and fails.
// Subsequent writes fail too — a crashed device stays crashed — which is
// exactly the behaviour WriteFileAtomic must mask.
type Writer struct {
	W       io.Writer
	FailAt  uint64 // 1-based Write call that fails; 0 = never
	Short   bool   // deliver a torn half-write instead of a clean failure
	Err     error  // error to return; nil = ErrInjected
	calls   atomic.Uint64
	tripped atomic.Bool
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	err := w.Err
	if err == nil {
		err = ErrInjected
	}
	if w.tripped.Load() {
		return 0, err
	}
	n := w.calls.Add(1)
	if w.FailAt != 0 && n >= w.FailAt {
		w.tripped.Store(true)
		if w.Short {
			k, _ := w.W.Write(p[:len(p)/2])
			return k, fmt.Errorf("faultinject: short write after %d bytes: %w", k, err)
		}
		return 0, err
	}
	return w.W.Write(p)
}
