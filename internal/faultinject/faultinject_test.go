package faultinject

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestErrorAtFiresExactly(t *testing.T) {
	j := ErrorAt(3, 2, nil)
	var errs []int
	for i := 1; i <= 6; i++ {
		if err := j.Fire(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: %v", i, err)
			}
			errs = append(errs, i)
		}
	}
	if len(errs) != 2 || errs[0] != 3 || errs[1] != 4 {
		t.Errorf("faulting calls = %v, want [3 4]", errs)
	}
	if j.Calls() != 6 {
		t.Errorf("Calls = %d", j.Calls())
	}
}

func TestPanicAt(t *testing.T) {
	j := PanicAt(2, "boom")
	if err := j.Fire(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v", r)
		}
	}()
	j.Fire()
	t.Fatal("second call did not panic")
}

func TestCancelAt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	j := CancelAt(2, cancel)
	j.Fire()
	if ctx.Err() != nil {
		t.Fatal("canceled too early")
	}
	if err := j.Fire(); err != nil {
		t.Fatal(err)
	}
	if ctx.Err() == nil {
		t.Fatal("nth call did not cancel")
	}
}

func TestZeroValueAndNilNeverFire(t *testing.T) {
	var zero Injector
	var nilInj *Injector
	for i := 0; i < 10; i++ {
		if zero.Fire() != nil || nilInj.Fire() != nil {
			t.Fatal("disarmed injector fired")
		}
	}
}

// Exactly one concurrent caller observes an armed single-shot fault.
func TestConcurrentFireDeliversOnce(t *testing.T) {
	j := ErrorAt(50, 1, nil)
	var hits atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if j.Fire() != nil {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 1 {
		t.Errorf("fault delivered %d times", hits.Load())
	}
}

func TestSeededDeterministicInRange(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		n := Seeded(seed, 17)
		if n < 1 || n > 17 {
			t.Fatalf("Seeded(%d, 17) = %d out of range", seed, n)
		}
		if n != Seeded(seed, 17) {
			t.Fatalf("Seeded(%d, 17) not deterministic", seed)
		}
	}
}

func TestWriterCleanFailAndStaysTripped(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 2}
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("lost")); err == nil {
		t.Fatal("second write did not fail")
	}
	if _, err := w.Write([]byte("also lost")); err == nil {
		t.Fatal("tripped writer recovered")
	}
	if buf.String() != "ok" {
		t.Errorf("buffer = %q", buf.String())
	}
}

func TestWriterShortWrite(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 1, Short: true}
	n, err := w.Write([]byte("abcdef"))
	if err == nil || n != 3 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if buf.String() != "abc" {
		t.Errorf("buffer = %q, want the torn half", buf.String())
	}
}

func TestKeyedFiresOnEveryMatchingCall(t *testing.T) {
	sentinel := errors.New("poison")
	k := KeyedError("mix/2", sentinel)
	for i := 0; i < 3; i++ {
		if err := k.Fire("mix/2"); !errors.Is(err, sentinel) {
			t.Fatalf("call %d: err = %v", i, err)
		}
		if err := k.Fire("mix/1"); err != nil {
			t.Fatalf("non-matching key fired: %v", err)
		}
	}
	if k.Calls() != 3 {
		t.Errorf("Calls = %d", k.Calls())
	}
	if err := KeyedError("x", nil).Fire("x"); !errors.Is(err, ErrInjected) {
		t.Errorf("nil err not defaulted: %v", err)
	}
}

func TestKeyedZeroAndNilNeverFire(t *testing.T) {
	var k *Keyed
	if err := k.Fire("anything"); err != nil {
		t.Errorf("nil receiver fired: %v", err)
	}
	var z Keyed
	if err := z.Fire(""); err != nil {
		t.Errorf("zero value fired on empty key: %v", err)
	}
}
