package lang

import "fmt"

// The static taint analysis of Section 2.1: secret parameters are taint
// sources; taint propagates through data flow (expressions, loads from
// secret-written arrays) and control flow (everything inside a branch or
// loop whose condition/bounds are tainted is control-dependent on the
// secret). The analysis is a fixpoint over a two-point lattice per variable
// and per array, iterated until stable, and is sound in the usual
// may-taint sense: it over-approximates, never under-approximates, which is
// exactly the conservatism the paper's annotations require.
//
// Its outputs map directly onto the paper's two annotation kinds
// (Section 5.2):
//
//   - a Load/Store whose address is data-tainted or that executes under
//     tainted control gets FlagSecretUse (excluded from the utilization
//     metric), and
//   - any statement under tainted control gets FlagSecretProgress (excluded
//     from execution-progress counting).
//
// Spin statements under tainted control additionally model Section 6.1's
// timing-dependent regions and get FlagTimingDep.

// Taint is the two-point lattice.
type Taint bool

// Lattice points.
const (
	Public Taint = false
	Secret Taint = true
)

func (t Taint) join(other Taint) Taint { return t || other }

// Analysis is the result of the static pass.
type Analysis struct {
	// VarTaint is the final (post-fixpoint) taint of each scalar.
	VarTaint map[string]Taint
	// ArrayTaint marks arrays that may hold secret-derived data.
	ArrayTaint map[string]Taint
	// stmt-level results are attached during Annotate (see exec.go); the
	// analysis itself is flow-insensitive over variables but tracks control
	// taint per lexical region.
}

// Analyze runs the fixpoint taint analysis.
func Analyze(p *Program) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{
		VarTaint:   map[string]Taint{},
		ArrayTaint: map[string]Taint{},
	}
	for _, prm := range p.Params {
		a.VarTaint[prm.Name] = Taint(prm.Secret)
	}
	// Iterate to a fixpoint: loops can feed taint around cycles
	// (x = arr[x] style), and array taint can flow back into scalars.
	for iter := 0; iter < 1000; iter++ {
		if !a.pass(p.Body, Public) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lang: taint analysis did not converge")
}

// pass propagates taint through one traversal; ctrl is the control taint of
// the enclosing region. It reports whether anything changed.
func (a *Analysis) pass(body []Stmt, ctrl Taint) bool {
	changed := false
	setVar := func(name string, t Taint) {
		if t.join(ctrl) && !a.VarTaint[name] {
			a.VarTaint[name] = Secret
			changed = true
		}
	}
	setArr := func(name string, t Taint) {
		if t.join(ctrl) && !a.ArrayTaint[name] {
			a.ArrayTaint[name] = Secret
			changed = true
		}
	}
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			setVar(st.Dst, a.exprTaint(st.Expr))
		case Load:
			// The loaded value is tainted if the index is (the value read
			// depends on which element) or the array may hold secrets.
			setVar(st.Dst, a.exprTaint(st.Index).join(a.ArrayTaint[st.Array]))
		case Store:
			// A secret-indexed store taints the array contents too: later
			// loads cannot be proven clean (sound over-approximation).
			setArr(st.Array, a.exprTaint(st.Val).join(a.exprTaint(st.Index)))
		case If:
			inner := ctrl.join(a.exprTaint(st.Cond))
			if a.pass(st.Then, inner) {
				changed = true
			}
			if a.pass(st.Else, inner) {
				changed = true
			}
		case For:
			inner := ctrl.join(a.exprTaint(st.From)).join(a.exprTaint(st.To))
			if a.pass(st.Body, inner) {
				changed = true
			}
		case Spin:
			// No data effects.
		}
	}
	return changed
}

// exprTaint evaluates an expression's taint under the current state.
func (a *Analysis) exprTaint(e Expr) Taint {
	switch ex := e.(type) {
	case Const:
		return Public
	case Var:
		return a.VarTaint[ex.Name]
	case BinOp:
		return a.exprTaint(ex.L).join(a.exprTaint(ex.R))
	default:
		return Secret // unknown nodes are conservatively secret
	}
}

// ControlTaintOf computes the control taint of a condition/bounds pair at
// annotation time (used by the interpreter; identical logic to pass).
func (a *Analysis) controlTaint(ctrl Taint, exprs ...Expr) Taint {
	t := ctrl
	for _, e := range exprs {
		t = t.join(a.exprTaint(e))
	}
	return t
}
