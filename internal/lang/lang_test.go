package lang

import (
	"testing"

	"untangle/internal/isa"
)

func mustExec(t *testing.T, p *Program, inputs map[string]int64) *Exec {
	t.Helper()
	e, err := NewExec(p, inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func drain(e *Exec) []isa.Op {
	var out []isa.Op
	buf := make([]isa.Op, 256)
	for {
		n := e.Fill(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []*Program{
		{Arrays: []ArrayDecl{{Name: "", Elems: 4, ElemBytes: 8}}},
		{Arrays: []ArrayDecl{{Name: "a", Elems: 4, ElemBytes: 8}, {Name: "a", Elems: 4, ElemBytes: 8}}},
		{Params: []ParamDecl{{Name: "x"}, {Name: "x"}}},
		{Body: []Stmt{Load{Dst: "v", Array: "nope", Index: Const{0}}}},
		{Body: []Stmt{Assign{Dst: "v", Expr: Var{"undefined"}}}},
		{Body: []Stmt{Assign{Dst: "v", Expr: nil}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	ok := Figure1aProgram(100, 10)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestExprString(t *testing.T) {
	e := BinOp{Op: Add, L: Var{"x"}, R: Const{3}}
	if got := e.String(); got != "(x + 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestTaintDataFlow(t *testing.T) {
	p := &Program{
		Params: []ParamDecl{{Name: "s", Secret: true}, {Name: "p"}},
		Body: []Stmt{
			Assign{Dst: "a", Expr: BinOp{Op: Add, L: Var{"p"}, R: Const{1}}}, // public
			Assign{Dst: "b", Expr: BinOp{Op: Mul, L: Var{"s"}, R: Const{2}}}, // secret
			Assign{Dst: "c", Expr: BinOp{Op: Add, L: Var{"a"}, R: Var{"b"}}}, // secret via b
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.VarTaint["a"] {
		t.Error("public-derived variable tainted")
	}
	if !a.VarTaint["b"] || !a.VarTaint["c"] {
		t.Error("secret data flow not propagated")
	}
}

func TestTaintControlFlow(t *testing.T) {
	p := &Program{
		Params: []ParamDecl{{Name: "s", Secret: true}},
		Body: []Stmt{
			If{Cond: Var{"s"}, Then: []Stmt{
				Assign{Dst: "x", Expr: Const{1}}, // assigned under secret control
			}},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.VarTaint["x"] {
		t.Error("implicit flow through secret branch not caught")
	}
}

func TestTaintThroughArrays(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Elems: 16, ElemBytes: 8}},
		Params: []ParamDecl{{Name: "s", Secret: true}},
		Body: []Stmt{
			Store{Array: "a", Index: Const{0}, Val: Var{"s"}}, // taints the array
			Load{Dst: "x", Array: "a", Index: Const{1}},       // x tainted via array
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ArrayTaint["a"] || !a.VarTaint["x"] {
		t.Error("array taint not propagated")
	}
}

func TestTaintFixpointLoop(t *testing.T) {
	// x starts public, becomes tainted through a loop-carried dependency.
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Elems: 16, ElemBytes: 8}},
		Params: []ParamDecl{{Name: "s", Secret: true}},
		Body: []Stmt{
			Assign{Dst: "x", Expr: Const{0}},
			For{Var: "i", From: Const{0}, To: Const{4}, Body: []Stmt{
				Store{Array: "a", Index: Var{"x"}, Val: Var{"s"}},
				Load{Dst: "x", Array: "a", Index: Var{"i"}},
			}},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.VarTaint["x"] {
		t.Error("loop-carried taint not reached by the fixpoint")
	}
}

func TestExecMissingInput(t *testing.T) {
	if _, err := NewExec(Figure1aProgram(10, 10), map[string]int64{}, 0); err == nil {
		t.Error("missing input accepted")
	}
}

func TestExecBudgetGuard(t *testing.T) {
	p := Figure1aProgram(1<<20, 1<<20)
	if _, err := NewExec(p, map[string]int64{"secret": 1}, 1000); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestFigure1aAnnotationsDerived(t *testing.T) {
	// The analysis must annotate the secret-gated traversal with both
	// usage AND progress exclusion, and leave the public phase clean —
	// without any hand-placed flags.
	e := mustExec(t, Figure1aProgram(512, 256), map[string]int64{"secret": 1})
	ops := drain(e)
	var secretMem, publicMem int
	for _, op := range ops {
		if !op.IsMem() {
			continue
		}
		if op.SecretUse() {
			if !op.SecretProgress() {
				t.Fatal("control-dependent access lacks progress exclusion")
			}
			secretMem++
		} else {
			publicMem++
		}
	}
	if secretMem != 3*512 {
		t.Errorf("secret accesses = %d, want 1536 (three traversal passes)", secretMem)
	}
	if publicMem != 2*256 {
		t.Errorf("public accesses = %d, want 512 (the public phase)", publicMem)
	}
	// With secret=0 the traversal vanishes entirely.
	e0 := mustExec(t, Figure1aProgram(512, 256), map[string]int64{"secret": 0})
	for _, op := range drain(e0) {
		if op.IsMem() && op.SecretUse() {
			t.Fatal("secret=0 run emitted annotated accesses")
		}
	}
}

func TestFigure1bAnnotationsDataOnly(t *testing.T) {
	// Figure 1b's accesses are data-dependent (usage-excluded) but NOT
	// control-dependent: the loop itself is public, so the instructions
	// still count toward progress.
	e := mustExec(t, Figure1bProgram(256, 128), map[string]int64{"secret": 3})
	sawDataOnly := false
	for _, op := range drain(e) {
		if op.IsMem() && op.SecretUse() && !op.SecretProgress() {
			sawDataOnly = true
		}
	}
	if !sawDataOnly {
		t.Error("no data-tainted, progress-counted accesses found")
	}
}

func TestFigure1cSpinBecomesTimingDep(t *testing.T) {
	e := mustExec(t, Figure1cProgram(256, 50_000, 128), map[string]int64{"secret": 1})
	var spin uint64
	for _, op := range drain(e) {
		if op.Flags&isa.FlagTimingDep != 0 {
			spin += uint64(op.NonMem)
		}
		if op.IsMem() && op.Addr >= arrayBase && op.SecretUse() {
			t.Fatal("the public traversal was annotated secret")
		}
	}
	if spin != 50_000 {
		t.Errorf("timing-dep spin = %d instructions, want 50000", spin)
	}
}

func TestPublicSequenceIdenticalAcrossSecretsFigure1a(t *testing.T) {
	// The property the whole framework rests on: the PUBLIC subsequence of
	// the emitted stream is identical for every secret value.
	public := func(secret int64) []isa.Op {
		e := mustExec(t, Figure1aProgram(512, 256), map[string]int64{"secret": secret})
		var out []isa.Op
		for _, op := range drain(e) {
			if !op.SecretProgress() {
				out = append(out, op)
			}
		}
		return out
	}
	a, b := public(0), public(1)
	if len(a) != len(b) {
		t.Fatalf("public lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("public op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAESLikeProgramTaint(t *testing.T) {
	e := mustExec(t, AESLikeProgram(64), map[string]int64{"key": 0x5A})
	var ttableSecret, payloadLoads, payloadSecretLoads, payloadSecretStores int
	for _, op := range drain(e) {
		if !op.IsMem() {
			continue
		}
		switch {
		case op.Addr >= arrayBase && op.Addr < arrayBase+arrayStride: // ttable
			if op.SecretUse() {
				ttableSecret++
			}
		default: // payload
			if op.IsWrite() {
				if op.SecretUse() {
					payloadSecretStores++
				}
			} else {
				payloadLoads++
				if op.SecretUse() {
					payloadSecretLoads++
				}
			}
		}
	}
	if ttableSecret != 64 {
		t.Errorf("secret-indexed T-table lookups = %d, want 64", ttableSecret)
	}
	if payloadLoads != 64 {
		t.Errorf("payload loads = %d, want 64", payloadLoads)
	}
	// The cipher writes key-derived ciphertext back into the payload, so
	// the sound analysis must taint the array and hence every payload load
	// and store (the may-taint over-approximation the paper's conservative
	// annotation strategy expects).
	if payloadSecretLoads != 64 || payloadSecretStores != 64 {
		t.Errorf("payload taint: %d/64 loads, %d/64 stores marked secret",
			payloadSecretLoads, payloadSecretStores)
	}
}

func TestExecDeterministicAndResettable(t *testing.T) {
	e := mustExec(t, AESLikeProgram(32), map[string]int64{"key": 7})
	a := drain(e)
	e.Reset()
	b := drain(e)
	if len(a) != len(b) || len(a) != e.Ops() {
		t.Fatalf("replay lengths: %d vs %d vs %d", len(a), len(b), e.Ops())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay differs")
		}
	}
}

func TestEvalOperators(t *testing.T) {
	e := mustExec(t, &Program{Params: []ParamDecl{{Name: "p"}}}, map[string]int64{"p": 10})
	env := map[string]int64{"x": 7, "y": 2}
	cases := []struct {
		expr Expr
		want int64
	}{
		{BinOp{Op: Add, L: Var{"x"}, R: Var{"y"}}, 9},
		{BinOp{Op: Sub, L: Var{"x"}, R: Var{"y"}}, 5},
		{BinOp{Op: Mul, L: Var{"x"}, R: Var{"y"}}, 14},
		{BinOp{Op: Div, L: Var{"x"}, R: Var{"y"}}, 3},
		{BinOp{Op: Div, L: Var{"x"}, R: Const{0}}, 0},
		{BinOp{Op: Mod, L: Var{"x"}, R: Var{"y"}}, 1},
		{BinOp{Op: Mod, L: Var{"x"}, R: Const{0}}, 0},
		{BinOp{Op: Lt, L: Var{"y"}, R: Var{"x"}}, 1},
		{BinOp{Op: Lt, L: Var{"x"}, R: Var{"y"}}, 0},
		{BinOp{Op: Eq, L: Var{"x"}, R: Const{7}}, 1},
		{BinOp{Op: And, L: Var{"x"}, R: Const{3}}, 3},
	}
	for i, c := range cases {
		if got := e.eval(c.expr, env); got != c.want {
			t.Errorf("case %d: %v = %d, want %d", i, c.expr, got, c.want)
		}
	}
}

func TestAnalysisAccessor(t *testing.T) {
	e := mustExec(t, AESLikeProgram(8), map[string]int64{"key": 1})
	if e.Analysis() == nil || !e.Analysis().VarTaint["idx"] {
		t.Error("Analysis() accessor broken")
	}
}

func TestElemAddrWrapsNegativeAndOverflow(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Elems: 8, ElemBytes: 64}},
		Params: []ParamDecl{{Name: "n"}},
		Body: []Stmt{
			Load{Dst: "x", Array: "a", Index: BinOp{Op: Sub, L: Const{0}, R: Const{3}}}, // -3
			Load{Dst: "y", Array: "a", Index: Const{100}},                               // wraps
		},
	}
	e := mustExec(t, p, map[string]int64{"n": 0})
	ops := drain(e)
	var mems []isa.Op
	for _, op := range ops {
		if op.IsMem() {
			mems = append(mems, op)
		}
	}
	if len(mems) != 2 {
		t.Fatalf("%d accesses", len(mems))
	}
	// -3 mod 8 = 5; 100 mod 8 = 4.
	if (mems[0].Addr-arrayBase)/64 != 5 {
		t.Errorf("negative index mapped to line %d", (mems[0].Addr-arrayBase)/64)
	}
	if (mems[1].Addr-arrayBase)/64 != 4 {
		t.Errorf("overflow index mapped to line %d", (mems[1].Addr-arrayBase)/64)
	}
}

func TestValidateRejectsNilStatementAndBadFor(t *testing.T) {
	bad := &Program{Body: []Stmt{nil}}
	if err := bad.Validate(); err == nil {
		t.Error("nil statement accepted")
	}
	bad = &Program{Body: []Stmt{For{Var: "i", From: Var{"missing"}, To: Const{3}}}}
	if err := bad.Validate(); err == nil {
		t.Error("for with undefined bound accepted")
	}
	bad = &Program{Body: []Stmt{If{Cond: Var{"missing"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("if with undefined cond accepted")
	}
	bad = &Program{Body: []Stmt{Spin{Count: Var{"missing"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("spin with undefined count accepted")
	}
	bad = &Program{
		Arrays: []ArrayDecl{{Name: "a", Elems: 4, ElemBytes: 8}},
		Body:   []Stmt{Store{Array: "a", Index: Const{0}, Val: Var{"missing"}}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("store with undefined value accepted")
	}
}

func TestIfElseBranchTaken(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Elems: 8, ElemBytes: 64}},
		Params: []ParamDecl{{Name: "c"}},
		Body: []Stmt{
			If{Cond: Var{"c"},
				Then: []Stmt{Load{Dst: "x", Array: "a", Index: Const{1}}},
				Else: []Stmt{Load{Dst: "x", Array: "a", Index: Const{2}}},
			},
		},
	}
	line := func(c int64) uint64 {
		e := mustExec(t, p, map[string]int64{"c": c})
		for _, op := range drain(e) {
			if op.IsMem() {
				return (op.Addr - arrayBase) / 64
			}
		}
		return 999
	}
	if line(1) != 1 || line(0) != 2 {
		t.Errorf("branches: then->%d else->%d", line(1), line(0))
	}
}

func TestXorShrOperators(t *testing.T) {
	e := mustExec(t, &Program{Params: []ParamDecl{{Name: "p"}}}, map[string]int64{"p": 0})
	env := map[string]int64{"x": 0b1100, "y": 0b1010}
	if got := e.eval(BinOp{Op: Xor, L: Var{"x"}, R: Var{"y"}}, env); got != 0b0110 {
		t.Errorf("xor = %b", got)
	}
	if got := e.eval(BinOp{Op: Shr, L: Var{"x"}, R: Const{2}}, env); got != 0b11 {
		t.Errorf("shr = %b", got)
	}
	if got := e.eval(BinOp{Op: Shr, L: Var{"x"}, R: Const{99}}, env); got != 0 {
		t.Errorf("oversized shift = %d", got)
	}
}

func TestParseXorShr(t *testing.T) {
	prog, err := Parse(`
param a
let b = a ^ 3
let c = a >> 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Body[0].(Assign).Expr.(BinOp).Op != Xor {
		t.Error("^ not parsed as Xor")
	}
	if prog.Body[1].(Assign).Expr.(BinOp).Op != Shr {
		t.Error(">> not parsed as Shr")
	}
}

func TestModExpAnnotations(t *testing.T) {
	prog := ModExpProgram(16)
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	// result becomes secret (the multiply assigns under secret control),
	// and both tables' lookups end up usage-excluded.
	if !a.VarTaint["result"] {
		t.Error("result not tainted")
	}
	e := mustExec(t, prog, map[string]int64{"exp": 0b1011001, "base": 7})
	var multLoads, progExcluded int
	for _, op := range drain(e) {
		if op.IsMem() && op.SecretProgress() {
			multLoads++
		}
		if !op.IsMem() && op.SecretProgress() {
			progExcluded++
		}
	}
	// exp has 4 one-bits within 16 iterations: exactly 4 multiply loads
	// under secret control.
	if multLoads != 4 {
		t.Errorf("control-dependent multiply loads = %d, want 4", multLoads)
	}
	if progExcluded == 0 {
		t.Error("no progress-excluded plain instructions in the multiply branch")
	}
}

func TestModExpPublicSequenceIdenticalAcrossExponents(t *testing.T) {
	public := func(exp int64) []isa.Op {
		e := mustExec(t, ModExpProgram(32), map[string]int64{"exp": exp, "base": 5})
		var out []isa.Op
		for _, op := range drain(e) {
			if !op.SecretProgress() {
				// Usage-excluded-but-progress-counted ops still execute;
				// compare only their non-address shape, since the (excluded)
				// addresses legitimately depend on the tainted result value.
				op.Addr = 0
				out = append(out, op)
			}
		}
		return out
	}
	a, b := public(0), public(0xFFFF)
	if len(a) != len(b) {
		t.Fatalf("public op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("public op %d differs", i)
		}
	}
}
