package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Text syntax for the language, so victim programs can live in files and be
// fed to the cmd/annotate toolchain:
//
//	array  arr[65536]          # 64-byte elements by default
//	array  tbl[256]x8          # 8-byte elements
//	secret key                 # secret parameter (taint source)
//	param  n                   # public parameter
//
//	if key % 2 {
//	    for i in 0..65536 {
//	        load x = arr[i]
//	    }
//	}
//	for j in 0..n {
//	    load y = tbl[(x + key) % 256]
//	    store arr[j % 65536] = y
//	}
//	spin 1000000
//
// Expressions use + - * / % < == & ^ >> with the usual precedence and
// parentheses. '#' starts a comment. Newlines or ';' terminate statements.

// Parse builds a Program from source text.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse panics on error; for tests and embedded programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// --- lexer -----------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokPunct // single/double char punctuation and operators
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src, line: 1}
	l.run()
	return l
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n' || c == ';':
			l.emit(tokNewline, string(c))
			if c == '\n' {
				l.line++
			}
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tokNumber, strings.ReplaceAll(l.src[start:l.pos], "_", ""))
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos])
		case strings.HasPrefix(l.src[l.pos:], "==") || strings.HasPrefix(l.src[l.pos:], "..") || strings.HasPrefix(l.src[l.pos:], ">>"):
			l.emit(tokPunct, l.src[l.pos:l.pos+2])
			l.pos += 2
		case strings.ContainsRune("+-*/%<&^(){}[]=", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			l.emit(tokPunct, string(c)) // surfaced as a parse error later
			l.pos++
		}
	}
	l.emit(tokEOF, "")
}

// --- parser ----------------------------------------------------------------

type parser struct {
	lex *lexer
	pos int
}

func (p *parser) peek() token { return p.lex.toks[p.pos] }

func (p *parser) next() token {
	t := p.lex.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.next()
	}
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("lang: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, found %q", s, t.text)
	}
	return nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == tokEOF {
			return prog, nil
		}
		switch {
		case t.kind == tokIdent && t.text == "array":
			p.next()
			decl, err := p.parseArrayDecl()
			if err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, decl)
		case t.kind == tokIdent && (t.text == "param" || t.text == "secret"):
			p.next()
			name := p.next()
			if name.kind != tokIdent {
				return nil, p.errf(name, "expected parameter name")
			}
			prog.Params = append(prog.Params, ParamDecl{Name: name.text, Secret: t.text == "secret"})
		default:
			stmt, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			prog.Body = append(prog.Body, stmt)
		}
	}
}

func (p *parser) parseArrayDecl() (ArrayDecl, error) {
	name := p.next()
	if name.kind != tokIdent {
		return ArrayDecl{}, p.errf(name, "expected array name")
	}
	if err := p.expectPunct("["); err != nil {
		return ArrayDecl{}, err
	}
	sizeTok := p.next()
	if sizeTok.kind != tokNumber {
		return ArrayDecl{}, p.errf(sizeTok, "expected array length")
	}
	elems, err := strconv.ParseInt(sizeTok.text, 10, 64)
	if err != nil {
		return ArrayDecl{}, p.errf(sizeTok, "bad length: %v", err)
	}
	if err := p.expectPunct("]"); err != nil {
		return ArrayDecl{}, err
	}
	// Optional element size: the lexer folds "x8" into one identifier, so
	// accept an ident of the form x<digits> here.
	elemBytes := int64(64)
	if t := p.peek(); t.kind == tokIdent && len(t.text) > 1 && t.text[0] == 'x' {
		if sz, err := strconv.ParseInt(t.text[1:], 10, 64); err == nil {
			p.next()
			elemBytes = sz
		}
	}
	return ArrayDecl{Name: name.text, Elems: elems, ElemBytes: elemBytes}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for {
		p.skipNewlines()
		if t := p.peek(); t.kind == tokPunct && t.text == "}" {
			p.next()
			return body, nil
		}
		if p.peek().kind == tokEOF {
			return nil, p.errf(p.peek(), "unterminated block")
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, stmt)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected statement, found %q", t.text)
	}
	switch t.text {
	case "let":
		name := p.next()
		if name.kind != tokIdent {
			return nil, p.errf(name, "expected variable name")
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Assign{Dst: name.text, Expr: expr}, nil
	case "load":
		dst := p.next()
		if dst.kind != tokIdent {
			return nil, p.errf(dst, "expected destination variable")
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		arr := p.next()
		if arr.kind != tokIdent {
			return nil, p.errf(arr, "expected array name")
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return Load{Dst: dst.text, Array: arr.text, Index: idx}, nil
	case "store":
		arr := p.next()
		if arr.kind != tokIdent {
			return nil, p.errf(arr, "expected array name")
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Store{Array: arr.text, Index: idx, Val: val}, nil
	case "if":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		thenBody, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var elseBody []Stmt
		p.skipNewlines()
		if e := p.peek(); e.kind == tokIdent && e.text == "else" {
			p.next()
			elseBody, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: thenBody, Else: elseBody}, nil
	case "for":
		v := p.next()
		if v.kind != tokIdent {
			return nil, p.errf(v, "expected loop variable")
		}
		in := p.next()
		if in.kind != tokIdent || in.text != "in" {
			return nil, p.errf(in, "expected 'in'")
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(".."); err != nil {
			return nil, err
		}
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return For{Var: v.text, From: from, To: to, Body: body}, nil
	case "spin":
		count, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Spin{Count: count}, nil
	default:
		return nil, p.errf(t, "unknown statement %q", t.text)
	}
}

// Expression grammar with precedence:
//
//	cmp  := add ( ('<' | '==') add )*
//	add  := mul ( ('+' | '-' | '&') mul )*
//	mul  := atom ( ('*' | '/' | '%') atom )*
//	atom := number | ident | '(' cmp ')'
func (p *parser) parseExpr() (Expr, error) { return p.parseCmp() }

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct || (t.text != "<" && t.text != "==") {
			return left, nil
		}
		p.next()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := Lt
		if t.text == "==" {
			op = Eq
		}
		left = BinOp{Op: op, L: left, R: right}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct || (t.text != "+" && t.text != "-" && t.text != "&" && t.text != "^" && t.text != ">>") {
			return left, nil
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := Add
		switch t.text {
		case "-":
			op = Sub
		case "&":
			op = And
		case "^":
			op = Xor
		case ">>":
			op = Shr
		}
		left = BinOp{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.next()
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		op := Mul
		switch t.text {
		case "/":
			op = Div
		case "%":
			op = Mod
		}
		left = BinOp{Op: op, L: left, R: right}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad number: %v", err)
		}
		return Const{Value: v}, nil
	case t.kind == tokIdent:
		return Var{Name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(t, "expected expression, found %q", t.text)
	}
}
