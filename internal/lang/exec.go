package lang

import (
	"fmt"

	"untangle/internal/isa"
)

// The interpreter: executes a program with concrete inputs and emits the
// retired instruction stream, carrying the annotations derived by the static
// analysis. Each statement costs a few plain retired instructions (the
// "computation" around the memory access) so the emitted streams have
// realistic instruction-to-access ratios.

// Cost model: retired plain instructions charged per construct.
const (
	costAssign = 2
	costAddr   = 2 // address computation before a load/store
	costBranch = 2
	costLoopIt = 3 // induction-variable update + compare + branch
)

// arrayBase spaces program arrays in the synthetic address space.
const arrayBase = 0x4_0000_0000
const arrayStride = 0x0_4000_0000

// Exec is a compiled program instance: a program, its analysis, and
// concrete input values, ready to stream ops.
type Exec struct {
	prog     *Program
	analysis *Analysis
	inputs   map[string]int64

	arrays map[string]arrayInfo
	// pending ops buffered between Fill calls.
	pend []isa.Op
	off  int
	done bool
	// iteration guard against runaway loops.
	budget int64
}

type arrayInfo struct {
	base      uint64
	elems     int64
	elemBytes int64
	decl      ArrayDecl
}

// NewExec validates, analyzes, and instantiates a program. inputs must
// provide a value for every parameter. maxInstructions bounds execution
// (the interpreter refuses to run away; 0 means a 100M-instruction cap).
func NewExec(p *Program, inputs map[string]int64, maxInstructions int64) (*Exec, error) {
	analysis, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	for _, prm := range p.Params {
		if _, ok := inputs[prm.Name]; !ok {
			return nil, fmt.Errorf("lang: missing input %q", prm.Name)
		}
	}
	if maxInstructions <= 0 {
		maxInstructions = 100_000_000
	}
	e := &Exec{
		prog:     p,
		analysis: analysis,
		inputs:   inputs,
		arrays:   map[string]arrayInfo{},
		budget:   maxInstructions,
	}
	for i, a := range p.Arrays {
		e.arrays[a.Name] = arrayInfo{
			base:      arrayBase + uint64(i)*arrayStride,
			elems:     a.Elems,
			elemBytes: a.ElemBytes,
			decl:      a,
		}
	}
	// Run the whole program eagerly; victim programs here are small by
	// construction (the budget guards against bugs), and eager execution
	// keeps Fill trivially deterministic.
	env := map[string]int64{}
	for k, v := range inputs {
		env[k] = v
	}
	if err := e.run(p.Body, env, Public); err != nil {
		return nil, err
	}
	return e, nil
}

// Analysis exposes the static analysis results.
func (e *Exec) Analysis() *Analysis { return e.analysis }

// emit appends an op, charging the instruction budget.
func (e *Exec) emit(op isa.Op) error {
	e.budget -= int64(op.Instructions())
	if e.budget < 0 {
		return fmt.Errorf("lang: instruction budget exhausted (runaway loop?)")
	}
	e.pend = append(e.pend, op)
	return nil
}

// flags builds the annotation flags for a memory access.
func (e *Exec) memFlags(ctrl Taint, addrTaint Taint, write bool) isa.Flags {
	f := isa.FlagMem
	if write {
		f |= isa.FlagWrite
	}
	// Section 5.2: annotate accesses that are data- OR control-dependent on
	// secrets (usage exclusion); annotate control-dependent instructions
	// for progress exclusion.
	if addrTaint || ctrl {
		f |= isa.FlagSecretUse
	}
	if ctrl {
		f |= isa.FlagSecretProgress
	}
	return f
}

func (e *Exec) plainFlags(ctrl Taint) isa.Flags {
	if ctrl {
		return isa.FlagSecretProgress
	}
	return 0
}

// run interprets a statement list under the given control taint.
func (e *Exec) run(body []Stmt, env map[string]int64, ctrl Taint) error {
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			env[st.Dst] = e.eval(st.Expr, env)
			if err := e.emit(isa.Op{NonMem: costAssign, Flags: e.plainFlags(ctrl)}); err != nil {
				return err
			}
		case Load:
			idx := e.eval(st.Index, env)
			info := e.arrays[st.Array]
			addr, err := e.elemAddr(info, idx, st.Array)
			if err != nil {
				return err
			}
			taint := e.analysis.exprTaint(st.Index).join(e.analysis.ArrayTaint[st.Array])
			op := isa.Op{NonMem: costAddr, Addr: addr, Flags: e.memFlags(ctrl, taint, false)}
			if err := e.emit(op); err != nil {
				return err
			}
			// The loaded value: model as the element index mixed with the
			// array identity (deterministic, data-dependent).
			env[st.Dst] = idx ^ int64(info.base>>20)
		case Store:
			idx := e.eval(st.Index, env)
			info := e.arrays[st.Array]
			addr, err := e.elemAddr(info, idx, st.Array)
			if err != nil {
				return err
			}
			taint := e.analysis.exprTaint(st.Index).join(e.analysis.exprTaint(st.Val))
			op := isa.Op{NonMem: costAddr, Addr: addr, Flags: e.memFlags(ctrl, taint, true)}
			if err := e.emit(op); err != nil {
				return err
			}
		case If:
			inner := e.analysis.controlTaint(ctrl, st.Cond)
			if err := e.emit(isa.Op{NonMem: costBranch, Flags: e.plainFlags(ctrl)}); err != nil {
				return err
			}
			branch := st.Else
			if e.eval(st.Cond, env) != 0 {
				branch = st.Then
			}
			if err := e.run(branch, env, inner); err != nil {
				return err
			}
		case For:
			inner := e.analysis.controlTaint(ctrl, st.From, st.To)
			from, to := e.eval(st.From, env), e.eval(st.To, env)
			for i := from; i < to; i++ {
				env[st.Var] = i
				if err := e.emit(isa.Op{NonMem: costLoopIt, Flags: e.plainFlags(inner)}); err != nil {
					return err
				}
				if err := e.run(st.Body, env, inner); err != nil {
					return err
				}
			}
		case Spin:
			n := e.eval(st.Count, env)
			inner := e.analysis.controlTaint(ctrl, st.Count)
			f := e.plainFlags(ctrl)
			if inner {
				// A spin whose duration depends on a secret is exactly the
				// Section 6.1 timing-dependent region.
				f = isa.FlagTimingDep
			}
			for n > 0 {
				chunk := n
				if chunk > 1<<20 {
					chunk = 1 << 20
				}
				if err := e.emit(isa.Op{NonMem: uint32(chunk), Flags: f}); err != nil {
					return err
				}
				n -= chunk
			}
		}
	}
	return nil
}

func (e *Exec) elemAddr(info arrayInfo, idx int64, name string) (uint64, error) {
	if info.elems == 0 {
		return 0, fmt.Errorf("lang: unknown array %q", name)
	}
	idx %= info.elems
	if idx < 0 {
		idx += info.elems
	}
	return info.base + uint64(idx)*uint64(info.elemBytes), nil
}

// eval computes an expression value.
func (e *Exec) eval(expr Expr, env map[string]int64) int64 {
	switch ex := expr.(type) {
	case Const:
		return ex.Value
	case Var:
		return env[ex.Name]
	case BinOp:
		l, r := e.eval(ex.L, env), e.eval(ex.R, env)
		switch ex.Op {
		case Add:
			return l + r
		case Sub:
			return l - r
		case Mul:
			return l * r
		case Div:
			if r == 0 {
				return 0
			}
			return l / r
		case Mod:
			if r == 0 {
				return 0
			}
			return l % r
		case Lt:
			if l < r {
				return 1
			}
			return 0
		case Eq:
			if l == r {
				return 1
			}
			return 0
		case And:
			return l & r
		case Xor:
			return l ^ r
		case Shr:
			if r < 0 || r > 63 {
				return 0
			}
			return int64(uint64(l) >> uint(r))
		}
	}
	return 0
}

// Fill implements isa.Stream, replaying the eagerly executed op list.
func (e *Exec) Fill(buf []isa.Op) int {
	n := copy(buf, e.pend[e.off:])
	e.off += n
	return n
}

// Ops returns the total emitted op count.
func (e *Exec) Ops() int { return len(e.pend) }

// Reset rewinds the stream to the beginning (the execution is already
// materialized, so replay is free).
func (e *Exec) Reset() { e.off = 0 }
