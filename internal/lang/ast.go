// Package lang provides the annotation toolchain the paper assumes exists
// (Sections 2.1, 4 and 6.5): a small imperative language for writing victim
// programs, a sound taint-tracking static analysis that finds instructions
// with secret-dependent resource usage and secret-dependent control flow
// (standing in for CacheAudit/CaSym-style analyses), and an interpreter that
// compiles a program with concrete inputs into an annotated retired
// instruction stream (isa.Op) ready for the simulator.
//
// The language is deliberately tiny — scalars, byte arrays, arithmetic,
// counted loops, conditionals, and a spin statement for Section 6.1's
// timing-dependent regions — but expressive enough to write the paper's
// Figure 1 snippets literally (see the examples in lang_test.go and
// figures.go).
package lang

import "fmt"

// Expr is an integer expression.
type Expr interface {
	exprNode()
	String() string
}

// Const is an integer literal.
type Const struct{ Value int64 }

// Var references a scalar variable or parameter.
type Var struct{ Name string }

// BinOp applies an arithmetic or comparison operator.
type BinOp struct {
	Op   Op
	L, R Expr
}

// Op enumerates the binary operators.
type Op int

// Binary operators.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Mod
	Lt
	Eq
	And
	Xor
	Shr
)

func (Const) exprNode() {}
func (Var) exprNode()   {}
func (BinOp) exprNode() {}

// String implements fmt.Stringer.
func (c Const) String() string { return fmt.Sprint(c.Value) }

// String implements fmt.Stringer.
func (v Var) String() string { return v.Name }

// String implements fmt.Stringer.
func (b BinOp) String() string {
	ops := map[Op]string{Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%", Lt: "<", Eq: "==", And: "&", Xor: "^", Shr: ">>"}
	return fmt.Sprintf("(%s %s %s)", b.L, ops[b.Op], b.R)
}

// Stmt is a statement.
type Stmt interface {
	stmtNode()
}

// Assign sets a scalar: Dst = Expr.
type Assign struct {
	Dst  string
	Expr Expr
}

// Load reads Array[Index] into Dst (one memory access).
type Load struct {
	Dst   string
	Array string
	Index Expr
}

// Store writes Val to Array[Index] (one memory access).
type Store struct {
	Array string
	Index Expr
	Val   Expr
}

// If branches on Cond != 0.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For runs Body with Var = From .. To-1 (counted loop).
type For struct {
	Var      string
	From, To Expr
	Body     []Stmt
}

// Spin retires Count plain instructions — the Section 6.1 timing-dependent
// construct (a sleep/spin whose length the program controls).
type Spin struct {
	Count Expr
}

func (Assign) stmtNode() {}
func (Load) stmtNode()   {}
func (Store) stmtNode()  {}
func (If) stmtNode()     {}
func (For) stmtNode()    {}
func (Spin) stmtNode()   {}

// ArrayDecl declares a byte-addressable array of ElemBytes-sized elements.
type ArrayDecl struct {
	Name      string
	Elems     int64
	ElemBytes int64
}

// ParamDecl declares an integer input parameter; Secret parameters are the
// taint sources (Section 2.1: "secret data are annotated as taint sources").
type ParamDecl struct {
	Name   string
	Secret bool
}

// Program is a complete victim program.
type Program struct {
	Arrays []ArrayDecl
	Params []ParamDecl
	Body   []Stmt
}

// Validate checks declarations and references.
func (p *Program) Validate() error {
	arrays := map[string]ArrayDecl{}
	for _, a := range p.Arrays {
		if a.Name == "" || a.Elems <= 0 || a.ElemBytes <= 0 {
			return fmt.Errorf("lang: bad array declaration %+v", a)
		}
		if _, dup := arrays[a.Name]; dup {
			return fmt.Errorf("lang: duplicate array %q", a.Name)
		}
		arrays[a.Name] = a
	}
	scope := map[string]bool{}
	for _, prm := range p.Params {
		if prm.Name == "" {
			return fmt.Errorf("lang: unnamed parameter")
		}
		if scope[prm.Name] {
			return fmt.Errorf("lang: duplicate parameter %q", prm.Name)
		}
		scope[prm.Name] = true
	}
	return validateStmts(p.Body, arrays, scope)
}

func validateStmts(body []Stmt, arrays map[string]ArrayDecl, scope map[string]bool) error {
	defined := func(name string) { scope[name] = true }
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			if err := validateExpr(st.Expr, scope); err != nil {
				return err
			}
			defined(st.Dst)
		case Load:
			if _, ok := arrays[st.Array]; !ok {
				return fmt.Errorf("lang: load from undeclared array %q", st.Array)
			}
			if err := validateExpr(st.Index, scope); err != nil {
				return err
			}
			defined(st.Dst)
		case Store:
			if _, ok := arrays[st.Array]; !ok {
				return fmt.Errorf("lang: store to undeclared array %q", st.Array)
			}
			if err := validateExpr(st.Index, scope); err != nil {
				return err
			}
			if err := validateExpr(st.Val, scope); err != nil {
				return err
			}
		case If:
			if err := validateExpr(st.Cond, scope); err != nil {
				return err
			}
			if err := validateStmts(st.Then, arrays, scope); err != nil {
				return err
			}
			if err := validateStmts(st.Else, arrays, scope); err != nil {
				return err
			}
		case For:
			if err := validateExpr(st.From, scope); err != nil {
				return err
			}
			if err := validateExpr(st.To, scope); err != nil {
				return err
			}
			defined(st.Var)
			if err := validateStmts(st.Body, arrays, scope); err != nil {
				return err
			}
		case Spin:
			if err := validateExpr(st.Count, scope); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lang: unknown statement %T", s)
		}
	}
	return nil
}

func validateExpr(e Expr, scope map[string]bool) error {
	switch ex := e.(type) {
	case Const:
		return nil
	case Var:
		if !scope[ex.Name] {
			return fmt.Errorf("lang: undefined variable %q", ex.Name)
		}
		return nil
	case BinOp:
		if err := validateExpr(ex.L, scope); err != nil {
			return err
		}
		return validateExpr(ex.R, scope)
	case nil:
		return fmt.Errorf("lang: nil expression")
	default:
		return fmt.Errorf("lang: unknown expression %T", e)
	}
}
