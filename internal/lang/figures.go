package lang

// The three Figure 1 snippets, written literally in the language. The taint
// analysis derives the paper's annotations automatically — no hand-placed
// flags — and the interpreter emits the corresponding annotated streams.

// Figure1aProgram is Figure 1a:
//
//	if (secret)
//	    for r in 0..3: for i in 0..N: access(&arr[i])
//
// followed by a public workload phase (a loop over a small public array) so
// the schemes keep assessing after the secret-dependent part. The traversal
// runs three passes so the array is *reused* — a hit-counting utilization
// metric only registers demand for data that is re-accessed, which is what
// lets the snippet "increase the cache utilization and cause a partition
// expansion" when the annotations are not honoured.
func Figure1aProgram(arrayElems, publicIters int64) *Program {
	return &Program{
		Arrays: []ArrayDecl{
			{Name: "arr", Elems: arrayElems, ElemBytes: 64},
			{Name: "pub", Elems: 1024, ElemBytes: 64},
		},
		Params: []ParamDecl{{Name: "secret", Secret: true}},
		Body: []Stmt{
			If{
				Cond: Var{"secret"},
				Then: []Stmt{
					For{Var: "r", From: Const{0}, To: Const{3}, Body: []Stmt{
						For{Var: "i", From: Const{0}, To: Const{arrayElems}, Body: []Stmt{
							Load{Dst: "x", Array: "arr", Index: Var{"i"}},
						}},
					}},
				},
			},
			publicPhase(publicIters),
		},
	}
}

// Figure1bProgram is Figure 1b:
//
//	for i in 0..N: access(&arr[i*secret])
func Figure1bProgram(arrayElems, publicIters int64) *Program {
	return &Program{
		Arrays: []ArrayDecl{
			{Name: "arr", Elems: arrayElems, ElemBytes: 64},
			{Name: "pub", Elems: 1024, ElemBytes: 64},
		},
		Params: []ParamDecl{{Name: "secret", Secret: true}},
		Body: []Stmt{
			For{Var: "i", From: Const{0}, To: Const{arrayElems}, Body: []Stmt{
				Load{Dst: "x", Array: "arr", Index: BinOp{Op: Mul, L: Var{"i"}, R: Var{"secret"}}},
			}},
			publicPhase(publicIters),
		},
	}
}

// Figure1cProgram is Figure 1c:
//
//	if (secret) usleep(...)       // modelled as a spin
//	for i in 0..N: access(&arr[i])
//
// The traversal is public; only its start time depends on the secret.
func Figure1cProgram(arrayElems, spinInstructions, publicIters int64) *Program {
	return &Program{
		Arrays: []ArrayDecl{
			{Name: "arr", Elems: arrayElems, ElemBytes: 64},
			{Name: "pub", Elems: 1024, ElemBytes: 64},
		},
		Params: []ParamDecl{{Name: "secret", Secret: true}},
		Body: []Stmt{
			If{
				Cond: Var{"secret"},
				Then: []Stmt{Spin{Count: Const{spinInstructions}}},
			},
			For{Var: "i", From: Const{0}, To: Const{arrayElems}, Body: []Stmt{
				Load{Dst: "x", Array: "arr", Index: Var{"i"}},
			}},
			publicPhase(publicIters),
		},
	}
}

// publicPhase is a small public working loop.
func publicPhase(iters int64) Stmt {
	return For{Var: "j", From: Const{0}, To: Const{iters}, Body: []Stmt{
		Load{Dst: "y", Array: "pub", Index: BinOp{Op: Mod, L: BinOp{Op: Mul, L: Var{"j"}, R: Const{37}}, R: Const{1024}}},
		Store{Array: "pub", Index: BinOp{Op: Mod, L: Var{"j"}, R: Const{1024}}, Val: Var{"y"}},
	}}
}

// ModExpProgram models square-and-multiply modular exponentiation with a
// secret exponent — the classic RSA timing/cache victim behind Table 5's
// RSA-2048/RSA-4096 benchmarks. Each exponent bit controls whether the
// multiply step (with its table accesses) executes:
//
//	for i in 0..bits:
//	    result = square(result)          // always
//	    if (exp >> i) & 1:
//	        result = result * base       // only for 1-bits  <- the leak
//
// The taint analysis marks the multiply branch control-dependent on the
// secret, so under annotated Untangle the action sequence is identical for
// every exponent; without annotations the per-bit demand swings leak the
// key, bit by bit.
func ModExpProgram(bits int64) *Program {
	return &Program{
		Arrays: []ArrayDecl{
			{Name: "square_tbl", Elems: 512, ElemBytes: 64},
			{Name: "mult_tbl", Elems: 512, ElemBytes: 64},
		},
		Params: []ParamDecl{{Name: "exp", Secret: true}, {Name: "base"}},
		Body: []Stmt{
			Assign{Dst: "result", Expr: Const{1}},
			For{Var: "i", From: Const{0}, To: Const{bits}, Body: []Stmt{
				// Squaring: public control flow, result-dependent lookups.
				// result is secret-tainted after the first secret-gated
				// multiply, so these become usage-excluded too (soundly).
				Load{Dst: "sq", Array: "square_tbl", Index: BinOp{Op: Mod, L: Var{"result"}, R: Const{512}}},
				Assign{Dst: "result", Expr: BinOp{Op: Xor, L: Var{"sq"}, R: Var{"result"}}},
				// The multiply, gated on the secret exponent bit.
				If{
					Cond: BinOp{Op: And, L: BinOp{Op: Shr, L: Var{"exp"}, R: Var{"i"}}, R: Const{1}},
					Then: []Stmt{
						Load{Dst: "m", Array: "mult_tbl", Index: BinOp{Op: Mod, L: BinOp{Op: Add, L: Var{"result"}, R: Var{"base"}}, R: Const{512}}},
						Assign{Dst: "result", Expr: BinOp{Op: Xor, L: Var{"m"}, R: Var{"result"}}},
					},
				},
			}},
		},
	}
}

// AESLikeProgram models a table-driven cipher round: secret-indexed
// T-table lookups over a public payload — the canonical cache-side-channel
// victim the paper's analyses (CacheAudit, CaSym) target.
func AESLikeProgram(payloadBlocks int64) *Program {
	return &Program{
		Arrays: []ArrayDecl{
			{Name: "ttable", Elems: 256, ElemBytes: 64},
			{Name: "payload", Elems: payloadBlocks, ElemBytes: 64},
		},
		Params: []ParamDecl{
			{Name: "key", Secret: true},
		},
		Body: []Stmt{
			For{Var: "b", From: Const{0}, To: Const{payloadBlocks}, Body: []Stmt{
				Load{Dst: "pt", Array: "payload", Index: Var{"b"}},
				// idx = (pt ^ key) & 0xFF, approximated with arithmetic the
				// language has: (pt + key) % 256.
				Assign{Dst: "idx", Expr: BinOp{Op: Mod, L: BinOp{Op: Add, L: Var{"pt"}, R: Var{"key"}}, R: Const{256}}},
				Load{Dst: "t", Array: "ttable", Index: Var{"idx"}},
				Store{Array: "payload", Index: Var{"b"}, Val: Var{"t"}},
			}},
		},
	}
}
