package lang

import (
	"strings"
	"testing"
)

const figure1aSrc = `
# Figure 1a, in the text syntax.
array arr[32768]
array pub[1024]
secret secret

if secret {
    for r in 0..3 {
        for i in 0..32768 { load x = arr[i] }
    }
}
for j in 0..10000 {
    load y = pub[(j*37) % 1024]
    store pub[j % 1024] = y
}
`

func TestParseFigure1a(t *testing.T) {
	prog, err := Parse(figure1aSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Arrays) != 2 || len(prog.Params) != 1 || len(prog.Body) != 2 {
		t.Fatalf("shape: %d arrays, %d params, %d stmts", len(prog.Arrays), len(prog.Params), len(prog.Body))
	}
	if !prog.Params[0].Secret {
		t.Error("secret parameter not marked")
	}
	// The parsed program must behave like the hand-built one: same analysis
	// outcome and same annotated-op counts.
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !a.VarTaint["x"] {
		t.Error("traversal destination not tainted (control dependence)")
	}
	if a.VarTaint["y"] {
		t.Error("public phase tainted")
	}
	e, err := NewExec(prog, map[string]int64{"secret": 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var secretMem, publicMem int
	for _, op := range drain(e) {
		if op.IsMem() {
			if op.SecretUse() {
				secretMem++
			} else {
				publicMem++
			}
		}
	}
	if secretMem != 3*32768 {
		t.Errorf("secret accesses = %d", secretMem)
	}
	if publicMem != 2*10000 {
		t.Errorf("public accesses = %d", publicMem)
	}
}

func TestParseElementSizeAndComments(t *testing.T) {
	prog, err := Parse(`
array t[256]x8   # 8-byte elements
param n
for i in 0..n { load v = t[i % 256] }
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Arrays[0].ElemBytes != 8 {
		t.Errorf("elem bytes = %d", prog.Arrays[0].ElemBytes)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`
param a
param b
let c = a + b * 2
let d = (a + b) * 2
let e = a < b + 1
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Body[0].(Assign).Expr.(BinOp)
	if c.Op != Add {
		t.Errorf("c top op = %v, want Add (mul binds tighter)", c.Op)
	}
	d := prog.Body[1].(Assign).Expr.(BinOp)
	if d.Op != Mul {
		t.Errorf("d top op = %v, want Mul (parens)", d.Op)
	}
	e := prog.Body[2].(Assign).Expr.(BinOp)
	if e.Op != Lt {
		t.Errorf("e top op = %v, want Lt (loosest)", e.Op)
	}
}

func TestParseIfElseAndSpin(t *testing.T) {
	prog, err := Parse(`
secret s
if s == 0 {
    spin 1000
} else {
    spin 2000
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ifStmt := prog.Body[0].(If)
	if len(ifStmt.Then) != 1 || len(ifStmt.Else) != 1 {
		t.Fatalf("if shape: %d/%d", len(ifStmt.Then), len(ifStmt.Else))
	}
	// Both spins are under secret control: timing-dependent regions.
	e, err := NewExec(prog, map[string]int64{"s": 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := drain(e)
	found := false
	for _, op := range ops {
		if op.SecretProgress() && !op.IsMem() && op.NonMem >= 1000 {
			found = true
		}
	}
	if !found {
		t.Error("secret-gated spin not excluded from progress")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"array [10]",             // missing name
		"array a[10",             // missing bracket
		"array a[x]",             // non-numeric length
		"param",                  // missing name
		"load x arr[0]",          // missing '='
		"store arr[0] 5",         // missing '='
		"for i 0..10 { }",        // missing 'in'
		"for i in 0..10 (",       // missing block
		"if 1 { spin 5",          // unterminated block
		"let x = ",               // missing expression
		"let x = (1 + 2",         // unbalanced paren
		"frobnicate 3",           // unknown statement
		"let x = @",              // bad token
		"load x = nope[0]",       // undeclared array (validation)
		"let x = y",              // undefined variable (validation)
		"array a[8]\narray a[8]", // duplicate array (validation)
		"secret s\nsecret s",     // duplicate param (validation)
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Parse("param a\nparam b\nbogus stmt\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v lacks a line number", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("garbage !")
}

func TestParsedEquivalentToBuilt(t *testing.T) {
	// Execute the parsed Figure 1a and the constructed one with the same
	// inputs: identical op streams (addresses may differ because array
	// declaration order matches, so they should be byte-identical here).
	parsed, err := Parse(figure1aSrc)
	if err != nil {
		t.Fatal(err)
	}
	built := Figure1aProgram(32768, 10000)
	ep, err := NewExec(parsed, map[string]int64{"secret": 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewExec(built, map[string]int64{"secret": 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(ep), drain(eb)
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
