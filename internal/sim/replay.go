package sim

import (
	"time"

	"untangle/internal/cache"
	"untangle/internal/cpu"
	"untangle/internal/partition"
	"untangle/internal/tracecache"
)

// ReplaySource feeds a domain with a pre-resolved post-L1 event stream
// instead of a live instruction stream + private L1. The events carry
// everything runDomainUntil would otherwise derive from the op and the L1:
// the hit/miss resolution, the write bit, the monitor-observation and
// public-progress gates, and L1 eviction/writeback counts (tracecache's
// rich encoding). The fused mix engine uses this to run the front-end once
// and replay it into every scheme's back-end.
//
// Protocol: NextEvents returns the next batch, valid until the next call.
// An empty batch marks the end of the measured stream — the simulator
// freezes the domain's statistics, exactly as a drained Stream does — and
// pressure-tail batches may follow. A second empty batch means nothing
// remains and the domain idles forward.
//
// Events with FlagMonObserve must carry MonMask, the precomputed shadow
// hit vector (monitor.Monitor.HitMask under the configuration this sim
// uses): replayed domains apply masks via ObserveMask rather than
// re-simulating the shadow arrays, which is what makes monitor work
// per-mix instead of per-scheme.
type ReplaySource interface {
	NextEvents() []tracecache.Event
}

// runDomainReplayUntil is runDomainUntil for a replay-fed domain. The two
// loops must stay in lockstep: every core charge, cache access, monitor
// observation, and progress-counter update happens in the same order with
// the same arguments, so the fused engine's results are bitwise equal to
// the live path's (TestMixFusionMatchesOracle).
func (s *Sim) runDomainReplayUntil(d *domain, horizon time.Duration) {
	cfg := &s.cfg
	horizonCycles := d.core.DurationToCycles(horizon)
	for d.core.Cycles() < horizonCycles {
		if d.rpos >= len(d.rbatch) {
			d.rbatch = d.replay.NextEvents()
			d.rpos = 0
			if len(d.rbatch) == 0 {
				if !d.finished {
					s.finishDomain(d)
					continue // the pressure tail, if recorded, follows
				}
				d.core.AdvanceTo(horizon)
				return
			}
		}
		ev := d.rbatch[d.rpos]
		d.rpos++

		d.core.RetireNonMem(ev.NonMem)
		instr := uint64(ev.NonMem)
		if ev.Kind != tracecache.KindNoMem {
			instr++
			write := ev.Flags&tracecache.FlagWrite != 0
			if ev.Kind == tracecache.KindL1Hit {
				d.core.RetireMem(cpu.L1Hit)
				d.l1Stats.Hits++
			} else {
				d.l1Stats.Misses++
				if ev.Flags&tracecache.FlagL1Evict != 0 {
					d.l1Stats.Evictions++
				}
				if ev.Flags&tracecache.FlagL1Writeback != 0 {
					d.l1Stats.Writebacks++
				}
				if s.llcAccess(d, ev.Addr, write) {
					d.core.RetireMem(cpu.LLCHit)
				} else {
					d.core.RetireMem(cpu.Memory)
					d.dramInQuantum++
					if cfg.NextLinePrefetch && d.part != nil {
						d.part.Prefetch(ev.Addr + cache.LineBytes)
					}
				}
			}
			// The monitor gate (annotation filter + the monitor's own
			// private-cache filter) is scheme-independent, so the front-end
			// resolved it once into FlagMonObserve — and the shadow-array
			// resolution is too, so the event carries the precomputed hit
			// vector and the lane only updates its window counters.
			if d.mon != nil && ev.Flags&tracecache.FlagMonObserve != 0 {
				d.mon.ObserveMask(ev.MonMask)
			}
		}
		d.retired += instr
		if ev.Flags&tracecache.FlagPublic != 0 {
			d.publicRetired += instr
		}
		if d.havePending && d.core.Now() >= d.pendingAt {
			s.applyResize(d)
		}
		if cfg.Scheme.Kind == partition.Untangle && d.publicRetired >= d.nextAssessAt {
			s.assessUntangle(d)
		}
	}
}

// l1Snapshot returns the domain's private-L1 statistics: the live cache's
// counters, or the replayed counters accumulated from the event flags.
func (d *domain) l1Snapshot() cache.Stats {
	if d.l1 != nil {
		return d.l1.Stats()
	}
	return d.l1Stats
}
