package sim

import (
	"testing"
	"time"

	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/workload"
)

// runVictimAlone runs a single victim domain under the scheme and returns
// its action sequence and apply times.
func runVictimAlone(t *testing.T, scheme partition.SchemeConfig, stream isa.Stream) ([]int64, []time.Duration) {
	t.Helper()
	cfg := Scaled(scheme, testScale)
	cfg.Warmup = 0
	p, err := workload.SPECByName("imagick_0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, []DomainSpec{{
		Name:   "victim",
		Stream: isa.NewLimitedPublic(stream, 600_000),
		CPU:    p.CPUParams(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	var times []time.Duration
	for _, a := range res.Domains[0].Trace {
		sizes = append(sizes, a.Size)
		times = append(times, a.ApplyAt)
	}
	return sizes, times
}

func sameInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure1SecretIndependenceMatrix verifies the paper's central security
// result against the Figure 1 snippets: under annotated Untangle the action
// sequence is identical for both secret values in all three cases (no action
// leakage), while the Time baseline and unannotated Untangle leak through
// actions in the control-flow and data-flow cases.
func TestFigure1SecretIndependenceMatrix(t *testing.T) {
	timeScheme := partition.DefaultScheme(partition.TimeBased)
	timeScheme.Annotated = false
	unannotated := partition.DefaultScheme(partition.Untangle)
	unannotated.Annotated = false
	annotated := partition.DefaultScheme(partition.Untangle)

	snippets := []struct {
		name string
		mk   func(secret bool) isa.Stream
	}{
		{"Figure1a", func(secret bool) isa.Stream { return workload.Figure1a(secret, true) }},
		{"Figure1b", func(secret bool) isa.Stream {
			stride := uint64(1)
			if secret {
				stride = 8
			}
			return workload.Figure1b(stride, true)
		}},
		{"Figure1c", func(secret bool) isa.Stream { return workload.Figure1c(secret, true, 400_000) }},
	}

	for _, sn := range snippets {
		// Annotated Untangle: identical action sequences.
		a0, _ := runVictimAlone(t, annotated, sn.mk(false))
		a1, _ := runVictimAlone(t, annotated, sn.mk(true))
		if len(a0) == 0 {
			t.Fatalf("%s: no assessments recorded", sn.name)
		}
		if !sameInt64(a0, a1) {
			t.Errorf("%s: annotated Untangle action sequences differ with the secret (action leakage)", sn.name)
		}
	}

	// The leaking configurations must actually leak in at least the
	// demand-driven snippets (1a: control flow, 1b: data flow), or the test
	// above would be vacuous.
	for _, leaky := range []struct {
		label  string
		scheme partition.SchemeConfig
	}{{"Time", timeScheme}, {"Untangle-unannotated", unannotated}} {
		a0, _ := runVictimAlone(t, leaky.scheme, workload.Figure1a(false, true))
		a1, _ := runVictimAlone(t, leaky.scheme, workload.Figure1a(true, true))
		if sameInt64(a0, a1) {
			t.Errorf("%s: Figure 1a action sequences identical; expected action leakage", leaky.label)
		}
	}
}

// TestFigure1cSchedulingLeakageRemains verifies the Figure 5 statement: with
// annotations, the Figure 1c secret still shifts WHEN the actions happen,
// and that timing difference is the (bounded) scheduling leakage.
func TestFigure1cSchedulingLeakageRemains(t *testing.T) {
	annotated := partition.DefaultScheme(partition.Untangle)
	_, t0 := runVictimAlone(t, annotated, workload.Figure1c(false, true, 400_000))
	_, t1 := runVictimAlone(t, annotated, workload.Figure1c(true, true, 400_000))
	if len(t0) == 0 || len(t0) != len(t1) {
		t.Fatalf("trace lengths: %d vs %d", len(t0), len(t1))
	}
	same := true
	for i := range t0 {
		if t0[i] != t1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("secret delay did not shift action timing; Figure 1c should exhibit scheduling leakage")
	}
}
