// Package sim is the multicore simulation driver standing in for the
// paper's gem5 setup (Table 3): 8 domains, private L1s, a 16MB shared LLC
// under one of the four Table 4 partitioning schemes, UMON-style monitoring,
// Untangle's progress-based schedule with cooldown and random action delay,
// and runtime leakage accounting.
//
// The simulator is trace-driven and deterministic: given a configuration and
// the domain streams, every run produces the identical resizing trace. All
// timing comes from the cpu package's cycle accounting; the global loop
// advances domains in fixed wall-clock quanta so cross-domain interactions
// (allocation decisions, the Time scheme's synchronous assessments, shared-
// cache interference) happen at a bounded time skew.
package sim

import (
	"fmt"
	"time"

	"untangle/internal/cache"
	"untangle/internal/core"
	"untangle/internal/covert"
	"untangle/internal/cpu"
	"untangle/internal/isa"
	"untangle/internal/monitor"
	"untangle/internal/partition"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
)

// domainAddrShift separates domain address spaces in the shared LLC.
const domainAddrShift = 44

// DomainAddrOffset returns the address-space offset the simulator adds to
// domain i's accesses before they reach the caches. Exported so replay
// engines that reproduce a simulation outside the driver (the multi-lane
// sensitivity engine) hash the exact addresses the driver would.
func DomainAddrOffset(i int) uint64 { return uint64(i+1) << domainAddrShift }

// Config describes one simulation.
type Config struct {
	// LLCBytes and LLCWays give the shared LLC geometry (Table 3: 16MB,
	// 16-way).
	LLCBytes int64
	LLCWays  int
	// L1Bytes and L1Ways give each private L1D (Table 3: 32kB, 8-way).
	L1Bytes int64
	L1Ways  int
	// Scheme selects and parameterizes the partitioning scheme.
	Scheme partition.SchemeConfig
	// Sizes are the supported partition sizes (Table 3's 9 sizes).
	Sizes []int64
	// MonitorWindow is Mw in retired public memory instructions.
	MonitorWindow uint64
	// MonitorSampleLog2 is the monitor's set-sampling factor.
	MonitorSampleLog2 uint
	// Warmup is simulated time before statistics collection starts.
	Warmup time.Duration
	// WarmupInstructions additionally delays measurement until every domain
	// has retired this many instructions — the right warmup notion for
	// single-domain steady-state studies such as the Figure 11 sensitivity
	// sweep, where cold caches would otherwise mask LLC demand.
	WarmupInstructions uint64
	// SampleEvery is the partition-size sampling period (paper: 100 µs) and
	// also the simulator's scheduling quantum.
	SampleEvery time.Duration
	// TableConfig parameterizes the covert-channel rate table used by the
	// Untangle accountant. Leave zero to derive it from the scheme's
	// cooldown and delay (the usual case).
	TableConfig covert.TableConfig
	// WayPartitioned switches the LLC from set partitioning (the paper's
	// evaluation) to classic way partitioning: partition sizes move in
	// whole-way (1MB) steps and Sizes must be Config.WaySizes(). It exists
	// for the granularity ablation.
	WayPartitioned bool
	// NextLinePrefetch enables a simple hardware prefetcher: every LLC
	// demand miss also installs the next sequential line into the domain's
	// partition. Off by default (the paper does not model one); streaming
	// workloads gain, random-access workloads are unaffected. Prefetching
	// is a pure function of the access sequence, so Untangle's guarantees
	// are untouched.
	NextLinePrefetch bool
	// MemBandwidth, when positive, models a finite shared memory bandwidth
	// in bytes per simulated second: all domains' LLC misses draw from one
	// DRAM channel pool, and when a quantum's demand exceeds the pool the
	// overflow turns into queueing stalls distributed proportionally to
	// each domain's traffic. Zero (the default, and the paper's
	// configuration) leaves bandwidth unmodeled. The stall is pure timing,
	// so Untangle's action-sequence guarantees are unaffected.
	MemBandwidth float64
	// OptimizeMaintain enables the Section 5.3.4 accounting optimization.
	OptimizeMaintain bool
	// Budget is the per-domain leakage budget in bits (0 = unlimited).
	Budget float64
	// Tiers, when non-nil, assigns each domain a Section 6.4 security tier
	// (indexes must match the DomainSpec order): a domain's visible resizes
	// are free of charge when every co-located domain is strictly
	// higher-tiered (information may flow upward). Nil means the paper's
	// default peer model.
	Tiers []core.Tier
	// Seed drives the random action delays.
	Seed uint64
	// Tracer, when non-nil, receives structured telemetry events
	// (assessments, resizes, monitor window closures, leakage charges,
	// per-quantum progress). Telemetry observes and never participates:
	// events are stamped with simulated time and a traced run's outcome —
	// and its trace — are byte-identical to an untraced run's. Nil (the
	// default) costs one nil-check per emission site.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, receives the run's counters, gauges and
	// histograms (cache hit/miss totals, allocator decision outcomes,
	// quantum IPC distribution). Snapshot it after Run returns.
	Metrics *telemetry.Registry
}

// DefaultConfig returns the Table 3 machine at full scale for the given
// scheme.
func DefaultConfig(scheme partition.SchemeConfig) Config {
	return Config{
		LLCBytes:          16 << 20,
		LLCWays:           16,
		L1Bytes:           32 << 10,
		L1Ways:            8,
		Scheme:            scheme,
		Sizes:             monitor.DefaultSizes(),
		MonitorWindow:     1_000_000,
		MonitorSampleLog2: 4,
		Warmup:            5 * time.Millisecond,
		SampleEvery:       100 * time.Microsecond,
		OptimizeMaintain:  true,
		Seed:              1,
	}
}

// Scaled shrinks a full-scale configuration by scale (0 < scale <= 1): all
// time quantities, the progress quantum, and the monitor window shrink
// together, so the number of assessments per run — and, because the covert
// channel is scale-invariant when Unit, cooldown and delay scale together,
// the leakage per assessment — are preserved while runs get proportionally
// cheaper. Cache geometry and latencies are never scaled.
func Scaled(scheme partition.SchemeConfig, scale float64) Config {
	cfg := DefaultConfig(scheme)
	if scale <= 0 || scale > 1 {
		return cfg
	}
	scaleDur := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) * scale)
		if s < time.Microsecond {
			s = time.Microsecond
		}
		return s
	}
	cfg.Scheme.Interval = scaleDur(cfg.Scheme.Interval)
	cfg.Scheme.Cooldown = scaleDur(cfg.Scheme.Cooldown)
	cfg.Scheme.DelayWidth = scaleDur(cfg.Scheme.DelayWidth)
	cfg.Scheme.ProgressN = uint64(float64(cfg.Scheme.ProgressN) * scale)
	if cfg.Scheme.ProgressN == 0 {
		cfg.Scheme.ProgressN = 1
	}
	cfg.MonitorWindow = uint64(float64(cfg.MonitorWindow) * scale)
	if cfg.MonitorWindow < 256 {
		cfg.MonitorWindow = 256
	}
	cfg.Warmup = scaleDur(cfg.Warmup)
	cfg.SampleEvery = scaleDur(cfg.SampleEvery)
	switch {
	case scale >= 0.05:
		cfg.MonitorSampleLog2 = 3
	case scale >= 0.005:
		cfg.MonitorSampleLog2 = 1
	default:
		cfg.MonitorSampleLog2 = 0
	}
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Scheme.Validate(); err != nil {
		return err
	}
	if err := (cache.Config{SizeBytes: c.LLCBytes, Ways: c.LLCWays}).Validate(); err != nil {
		return fmt.Errorf("sim: LLC: %w", err)
	}
	if err := (cache.Config{SizeBytes: c.L1Bytes, Ways: c.L1Ways}).Validate(); err != nil {
		return fmt.Errorf("sim: L1: %w", err)
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("sim: no supported sizes")
	}
	if c.Scheme.Dynamic() && c.MonitorWindow == 0 {
		return fmt.Errorf("sim: dynamic scheme needs a monitor window")
	}
	if c.SampleEvery <= 0 {
		return fmt.Errorf("sim: non-positive sampling quantum")
	}
	return nil
}

// rateTableConfig derives the covert table configuration from the scheme if
// the caller did not provide one.
func (c Config) rateTableConfig() covert.TableConfig {
	tc := c.TableConfig
	if tc.Cooldown == 0 {
		tc.Cooldown = c.Scheme.Cooldown
		tc.DelayWidth = c.Scheme.DelayWidth
		// 1/40th of the cooldown keeps the discretization identical across
		// scales (the channel bound depends only on the ratios).
		tc.Unit = c.Scheme.Cooldown / 40
		if tc.Unit <= 0 {
			tc.Unit = time.Microsecond
		}
		tc.MaxMaintains = 16
	}
	return tc
}

// WarmRateTables precomputes the process-wide covert rate table this
// configuration's Untangle accountant consults (covert.Shared). Table
// construction is a one-time multi-second cost that otherwise lands inside
// whichever caller first builds an Untangle sim; benchmarks call this in
// their setup so no timed region absorbs it.
func (c Config) WarmRateTables() error {
	_, err := covert.Shared(c.rateTableConfig())
	return err
}

// DomainSpec describes one security domain's workload.
type DomainSpec struct {
	// Name labels the domain in results.
	Name string
	// Stream provides the retired instruction stream. The simulator drains
	// it once for the measured run; when it ends, the domain is finished.
	Stream isa.Stream
	// Pressure, if non-nil, supplies an endless stream that keeps pressure
	// on the LLC after Stream finishes ("the finished workload maintains
	// its pressure on the LLC, but does not update the statistics").
	Pressure isa.Stream
	// Replay, if non-nil, feeds the domain a pre-resolved post-L1 event
	// stream instead of Stream: the simulator runs no private L1 of its
	// own and takes hit/miss resolution, monitor gates, and the pressure
	// tail from the events (see ReplaySource). Mutually exclusive with
	// Stream and Pressure.
	Replay ReplaySource
	// CPU parameterizes the timing model for this workload.
	CPU cpu.Params
}

// DomainResult reports one domain's measured behaviour.
type DomainResult struct {
	Name string
	// Instructions and Cycles cover the measured (post-warmup, pre-finish)
	// region; IPC is their ratio.
	Instructions uint64
	Cycles       float64
	IPC          float64
	// FinishTime is when the stream ended (simulated time).
	FinishTime time.Duration
	// Trace is the domain's resizing trace (post-warmup).
	Trace partition.Trace
	// Leakage is the accountant's view of the domain.
	Leakage core.DomainLeakage
	// PartitionSamples are the partition sizes observed every SampleEvery
	// during the measured region.
	PartitionSamples []int64
	// IPCSamples is the per-quantum IPC timeline over the measured region,
	// aligned with PartitionSamples; it lets experiments correlate
	// performance with partition adaptation over time.
	IPCSamples []float64
	// LLC are the domain's LLC stats over the measured region (for Shared,
	// the per-domain breakdown is not available and the shared totals are
	// reported on every domain).
	LLC cache.Stats
	// L1 are the domain's private L1 stats over the measured region.
	L1 cache.Stats
}

// Result is a full simulation outcome.
type Result struct {
	Scheme  partition.SchemeConfig
	Domains []DomainResult
	// Duration is the total simulated time.
	Duration time.Duration
}

// domain is the runtime state of one security domain.
type domain struct {
	spec DomainSpec
	core *cpu.Core
	l1   *cache.Cache
	part *cache.Cache // nil when the scheme is Shared
	mon  *monitor.Monitor
	// monL1 is the monitor's own private-cache filter (Section 7: accesses
	// that would hit in the private caches are filtered out). It is fed
	// only the accesses the monitor may see, so — unlike the real L1, whose
	// state secret accesses perturb — the filtering decision is a pure
	// function of the public access sequence, as Principle 1 requires.
	monL1  *cache.Cache
	stream isa.Stream
	buf    []isa.Op
	bufLen int
	bufPos int

	// Replay-fed domains (DomainSpec.Replay): the event cursor and the
	// L1 counters accumulated from the event flags in place of a live l1.
	replay  ReplaySource
	rbatch  []tracecache.Event
	rpos    int
	l1Stats cache.Stats

	idx    int    // this domain's index
	offset uint64 // address-space offset

	// progress counters
	retired       uint64
	publicRetired uint64
	nextAssessAt  uint64

	// committed partition size (capacity bookkeeping) and the pending
	// physical resize.
	committed int64
	// lastTarget debounces the action heuristic: a resize is only enacted
	// when two consecutive assessments agree on the same non-current
	// target, so one noisy monitor window cannot trigger a visible action.
	// The debounce is a pure function of the metric history, so it keeps
	// the action sequence timing-independent.
	lastTarget   int64
	pendingSize  int64
	pendingAt    time.Duration
	havePending  bool
	lastAssessAt time.Duration

	// dramInQuantum counts this domain's DRAM accesses in the current
	// scheduling quantum (bandwidth model).
	dramInQuantum uint64

	// measurement baselines and state
	base         cpu.Snapshot
	baseLLC      cache.Stats
	baseL1       cache.Stats
	finished     bool
	finishTime   time.Duration
	finishCore   cpu.Snapshot
	finishLLC    cache.Stats
	finishL1     cache.Stats
	trace        partition.Trace
	samples      []int64
	ipcSamples   []float64
	lastSample   cpu.Snapshot
	rng          uint64
	assessedOnce bool

	// telemetry bookkeeping: monitor windows already reported as closed,
	// and the last physically-granted partition size (for ResizeGranted's
	// prev field, which works across all three LLC backends).
	monWindows      uint64
	lastGrantedSize int64
}

func (d *domain) nextRand() uint64 {
	d.rng += 0x9E3779B97F4A7C15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Sim is a configured simulation, ready to Run.
type Sim struct {
	cfg     Config
	domains []*domain
	shared  *cache.Cache          // only for the Shared scheme
	wayLLC  *cache.WayPartitioned // only when Config.WayPartitioned is set
	alloc   *partition.Allocator
	acct    core.Accountant
	warm    bool // true once warmup ended
	now     time.Duration
	metrics *simMetrics // nil unless Config.Metrics is set
}

// simMetrics are the driver-level registry instruments.
type simMetrics struct {
	quanta      *telemetry.Counter
	assessments *telemetry.Counter
	resizes     *telemetry.Counter
	ipcHist     *telemetry.Histogram
}

// trace returns the tracer for a domain's scheme events, or nil while the
// domain is outside its measured region — the same gate the resizing trace
// and the accountant use, so the event stream and internal/report agree.
func (s *Sim) trace(d *domain) *telemetry.Tracer {
	if s.warm && !d.finished {
		return s.cfg.Tracer
	}
	return nil
}

// wayBytes is the capacity of one LLC way (Table 3: 16MB/16 ways = 1MB).
func (c Config) wayBytes() int64 { return c.LLCBytes / int64(c.LLCWays) }

// WaySizes returns the supported partition sizes under way partitioning:
// whole ways, from 1 to half the associativity (so a single domain cannot
// monopolize the LLC, mirroring the 8MB cap of the set-partitioned list).
func (c Config) WaySizes() []int64 {
	out := make([]int64, 0, c.LLCWays/2)
	for w := 1; w <= c.LLCWays/2; w++ {
		out = append(out, int64(w)*c.wayBytes())
	}
	return out
}

// New builds a simulation over the given domains.
func New(cfg Config, specs []DomainSpec) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: no domains")
	}
	s := &Sim{cfg: cfg}
	var err error
	s.alloc, err = partition.NewAllocator(cfg.Sizes, cfg.LLCBytes)
	if err != nil {
		return nil, err
	}
	if cfg.Scheme.Kind == partition.Shared {
		s.shared, err = cache.New(cache.Config{SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays})
		if err != nil {
			return nil, err
		}
	}
	startSize := s.alloc.FloorSize(cfg.Scheme.StartSize)
	if int64(len(specs))*startSize > cfg.LLCBytes {
		return nil, fmt.Errorf("sim: %d domains at start size %d exceed the %d LLC", len(specs), startSize, cfg.LLCBytes)
	}
	if cfg.WayPartitioned && cfg.Scheme.Kind != partition.Shared {
		wb := cfg.wayBytes()
		for _, sz := range cfg.Sizes {
			if sz%wb != 0 {
				return nil, fmt.Errorf("sim: way partitioning needs whole-way sizes; %d is not a multiple of %d", sz, wb)
			}
		}
		grants := make([]int, len(specs))
		for i := range grants {
			grants[i] = int(startSize / wb)
		}
		s.wayLLC, err = cache.NewWayPartitioned(cache.Config{SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays}, grants)
		if err != nil {
			return nil, err
		}
	}
	for i, spec := range specs {
		if spec.Stream == nil && spec.Replay == nil {
			return nil, fmt.Errorf("sim: domain %d has no stream", i)
		}
		if spec.Replay != nil && (spec.Stream != nil || spec.Pressure != nil) {
			return nil, fmt.Errorf("sim: domain %d mixes Replay with Stream/Pressure", i)
		}
		d := &domain{
			spec:   spec,
			core:   cpu.New(spec.CPU),
			stream: spec.Stream,
			replay: spec.Replay,
			idx:    i,
			offset: DomainAddrOffset(i),
			rng:    cfg.Seed*0x9E3779B97F4A7C15 + uint64(i+1),
		}
		if d.replay == nil {
			d.buf = make([]isa.Op, 4096)
			// Replay domains carry their L1 resolution in the events; only
			// live domains simulate one.
			d.l1, err = cache.New(cache.Config{SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways})
			if err != nil {
				return nil, err
			}
		}
		if cfg.Scheme.Kind != partition.Shared {
			if s.wayLLC == nil {
				d.part, err = cache.New(cache.Config{SizeBytes: startSize, Ways: cfg.LLCWays})
				if err != nil {
					return nil, err
				}
			}
			d.committed = startSize
			d.lastGrantedSize = startSize
		}
		if cfg.Scheme.Dynamic() {
			d.mon, err = monitor.New(monitor.Config{
				Sizes:      cfg.Sizes,
				Ways:       cfg.LLCWays,
				Window:     cfg.MonitorWindow,
				SampleLog2: cfg.MonitorSampleLog2,
				// Replay events carry precomputed shadow hit vectors
				// (ReplaySource docs), so replay domains never simulate
				// the shadow arrays.
				SkipShadows: d.replay != nil,
			})
			if err != nil {
				return nil, err
			}
			// Replay domains carry the monitor's private-cache filter
			// decision in FlagMonObserve; only live domains simulate it.
			if d.replay == nil {
				d.monL1, err = cache.New(cache.Config{SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways})
				if err != nil {
					return nil, err
				}
			}
			d.nextAssessAt = cfg.Scheme.ProgressN
		}
		s.domains = append(s.domains, d)
	}
	// Build the accountant.
	switch cfg.Scheme.Kind {
	case partition.TimeBased:
		s.acct, err = core.NewTimeAccountant(core.AccountantConfig{
			Domains: len(specs),
			Actions: len(cfg.Sizes),
			Budget:  cfg.Budget,
		})
	case partition.Untangle:
		var tbl *covert.RateTable
		tbl, err = covert.Shared(cfg.rateTableConfig())
		if err != nil {
			return nil, err
		}
		s.acct, err = core.NewUntangleAccountant(core.AccountantConfig{
			Domains:          len(specs),
			Table:            tbl,
			OptimizeMaintain: cfg.OptimizeMaintain,
			Budget:           cfg.Budget,
		})
	default:
		s.acct = core.NewNullAccountant(len(specs))
	}
	if err != nil {
		return nil, err
	}
	if cfg.Tiers != nil {
		if len(cfg.Tiers) != len(specs) {
			return nil, fmt.Errorf("sim: %d tiers for %d domains", len(cfg.Tiers), len(specs))
		}
		s.acct, err = core.NewTieredAccountant(s.acct, cfg.Tiers)
		if err != nil {
			return nil, err
		}
	}
	// Telemetry wiring. The tracer's fallback clock is the global simulated
	// time; per-domain events stamp their own (cycle-derived) times.
	if cfg.Tracer != nil {
		cfg.Tracer.SetClock(telemetry.ClockFunc(func() time.Duration { return s.now }))
	}
	if reg := cfg.Metrics; reg != nil {
		s.registerMetrics(reg)
	}
	return s, nil
}

// registerMetrics hooks every layer's counters into the registry. Gauges
// are lazily evaluated at snapshot time, so nothing here adds work to the
// access hot paths; the driver-level counters fire at quantum/assessment
// granularity.
func (s *Sim) registerMetrics(reg *telemetry.Registry) {
	s.alloc.Metrics = partition.NewDecisionMetrics(reg, "partition.alloc")
	s.metrics = &simMetrics{
		quanta:      reg.Counter("sim.quanta"),
		assessments: reg.Counter("sim.assessments"),
		resizes:     reg.Counter("sim.resizes_applied"),
		ipcHist:     reg.Histogram("sim.quantum_ipc", telemetry.LinearBuckets(0.25, 0.25, 16)),
	}
	if s.shared != nil {
		s.shared.RegisterMetrics(reg, "cache.llc.shared")
	}
	for _, d := range s.domains {
		d := d
		prefix := fmt.Sprintf("cache.l1.d%d", d.idx)
		if d.l1 != nil {
			d.l1.RegisterMetrics(reg, prefix)
		} else {
			// Replay domains: same gauge names over the replayed counters,
			// so dashboards see one schema either way. The geometry is
			// fixed, so size_bytes reports the configured L1 size.
			reg.GaugeFunc(prefix+".hits", func() float64 { return float64(d.l1Stats.Hits) })
			reg.GaugeFunc(prefix+".misses", func() float64 { return float64(d.l1Stats.Misses) })
			reg.GaugeFunc(prefix+".evictions", func() float64 { return float64(d.l1Stats.Evictions) })
			reg.GaugeFunc(prefix+".writebacks", func() float64 { return float64(d.l1Stats.Writebacks) })
			reg.GaugeFunc(prefix+".prefetches", func() float64 { return float64(d.l1Stats.Prefetches) })
			reg.GaugeFunc(prefix+".size_bytes", func() float64 { return float64(s.cfg.L1Bytes) })
		}
		if d.part != nil {
			d.part.RegisterMetrics(reg, fmt.Sprintf("cache.llc.d%d", d.idx))
		}
		if s.wayLLC != nil {
			p := fmt.Sprintf("cache.llc.d%d", d.idx)
			reg.GaugeFunc(p+".hits", func() float64 { return float64(s.wayLLC.Stats(d.idx).Hits) })
			reg.GaugeFunc(p+".misses", func() float64 { return float64(s.wayLLC.Stats(d.idx).Misses) })
			reg.GaugeFunc(p+".evictions", func() float64 { return float64(s.wayLLC.Stats(d.idx).Evictions) })
		}
		if d.mon != nil {
			d.mon.RegisterMetrics(reg, fmt.Sprintf("monitor.d%d", d.idx))
		}
	}
}

// llcAccess sends one L1 miss to the domain's share of the LLC.
func (s *Sim) llcAccess(d *domain, addr uint64, write bool) bool {
	switch {
	case s.shared != nil:
		return s.shared.Access(addr, write)
	case s.wayLLC != nil:
		return s.wayLLC.Access(d.idx, addr, write)
	default:
		return d.part.Access(addr, write)
	}
}

// llcStats returns the domain's LLC counters.
func (s *Sim) llcStats(d *domain) cache.Stats {
	switch {
	case s.shared != nil:
		return s.shared.Stats()
	case s.wayLLC != nil:
		return s.wayLLC.Stats(d.idx)
	default:
		return d.part.Stats()
	}
}

// runDomainUntil advances one domain until its local clock reaches horizon
// or its stream ends (switching to the pressure stream if provided).
func (s *Sim) runDomainUntil(d *domain, horizon time.Duration) {
	if d.replay != nil {
		s.runDomainReplayUntil(d, horizon)
		return
	}
	cfg := &s.cfg
	horizonCycles := d.core.DurationToCycles(horizon)
	for d.core.Cycles() < horizonCycles {
		if d.bufPos >= d.bufLen {
			d.bufLen = d.stream.Fill(d.buf)
			d.bufPos = 0
			if d.bufLen == 0 {
				if !d.finished {
					s.finishDomain(d)
				}
				if d.spec.Pressure == nil {
					// Nothing to keep the pressure up with: idle forward.
					d.core.AdvanceTo(horizon)
					return
				}
				d.stream = d.spec.Pressure
				continue
			}
		}
		op := d.buf[d.bufPos]
		d.bufPos++

		d.core.RetireNonMem(op.NonMem)
		if op.IsMem() {
			addr := op.Addr + d.offset
			if d.l1.Access(addr, op.IsWrite()) {
				d.core.RetireMem(cpu.L1Hit)
			} else if s.llcAccess(d, addr, op.IsWrite()) {
				d.core.RetireMem(cpu.LLCHit)
			} else {
				d.core.RetireMem(cpu.Memory)
				d.dramInQuantum++
				if cfg.NextLinePrefetch && d.part != nil {
					d.part.Prefetch(addr + cache.LineBytes)
				}
			}
			// Principle 1: secret-dependent accesses are excluded from the
			// utilization metric (the ablation switch Annotated=false feeds
			// them anyway), and the private-cache filter is the monitor's
			// own, so its state never carries secret history.
			if d.mon != nil && (!op.SecretUse() || !cfg.Scheme.Annotated) {
				if !d.monL1.Access(addr, op.IsWrite()) {
					d.mon.Observe(addr, op.IsWrite())
				}
			}
		}
		d.retired += op.Instructions()
		// Principle 2: only public instructions advance execution progress.
		if !op.SecretProgress() || !cfg.Scheme.Annotated {
			d.publicRetired += op.Instructions()
		}
		// Apply a pending resize the moment its delay elapses.
		if d.havePending && d.core.Now() >= d.pendingAt {
			s.applyResize(d)
		}
		// Untangle's progress-based schedule.
		if cfg.Scheme.Kind == partition.Untangle && d.publicRetired >= d.nextAssessAt {
			s.assessUntangle(d)
		}
	}
}

// finishDomain freezes a domain's measured statistics.
func (s *Sim) finishDomain(d *domain) {
	d.finished = true
	d.finishTime = d.core.Now()
	d.finishCore = d.core.Snapshot()
	d.finishLLC = s.llcStats(d)
	d.finishL1 = d.l1Snapshot()
}

// applyResize performs the physical partition resize.
func (s *Sim) applyResize(d *domain) {
	d.havePending = false
	if d.pendingSize != d.lastGrantedSize {
		if tr := s.trace(d); tr != nil {
			tr.Emit(&telemetry.ResizeGranted{
				Header:    telemetry.Header{AtNs: d.core.Now().Nanoseconds(), Domain: d.idx},
				PrevBytes: d.lastGrantedSize,
				SizeBytes: d.pendingSize,
			})
		}
		if s.metrics != nil {
			s.metrics.resizes.Inc()
		}
		d.lastGrantedSize = d.pendingSize
	}
	if s.wayLLC != nil {
		// Way repartitioning is a global operation: reshape with every
		// domain's currently-committed grant (pending peers reshape again
		// when their own delays elapse).
		grants := make([]int, len(s.domains))
		wb := s.cfg.wayBytes()
		for i, dom := range s.domains {
			grants[i] = int(dom.committed / wb)
			if dom == d {
				grants[i] = int(d.pendingSize / wb)
			}
		}
		if err := s.wayLLC.Resize(grants); err != nil {
			panic(err)
		}
		return
	}
	if d.part == nil {
		return
	}
	// The committed bookkeeping changed at decision time; the tag array
	// reshapes now.
	if err := d.part.Resize(d.pendingSize); err != nil {
		// Sizes come from the allocator's validated list; failure here is a
		// programming error.
		panic(err)
	}
}

// utilitiesAll snapshots every domain's monitored utilities.
func (s *Sim) utilitiesAll() [][]float64 {
	out := make([][]float64, len(s.domains))
	for i, d := range s.domains {
		u := d.mon.Utilities()
		row := make([]float64, len(u))
		for j, v := range u {
			row[j] = v.Hits
		}
		out[i] = row
	}
	return out
}

// committedSizes returns every domain's committed partition size.
func (s *Sim) committedSizes() []int64 {
	out := make([]int64, len(s.domains))
	for i, d := range s.domains {
		out[i] = d.committed
	}
	return out
}

// assessUntangle performs one progress-triggered resizing assessment for a
// domain (Section 5.2 Principle 2 plus the Section 5.3.2 mechanisms).
func (s *Sim) assessUntangle(d *domain) {
	cfg := &s.cfg
	tr := s.trace(d)
	// The metric snapshot happens at the progress boundary — a pure
	// function of the retired public instruction sequence. The assessment
	// itself cannot occur before the cooldown since the last one.
	at := d.core.Now()
	if earliest := d.lastAssessAt + cfg.Scheme.Cooldown; d.assessedOnce && at < earliest {
		at = earliest
	}
	if tr != nil && d.assessedOnce && cfg.Scheme.Cooldown > 0 {
		tr.Emit(&telemetry.CooldownExpired{Header: telemetry.Header{
			AtNs: (d.lastAssessAt + cfg.Scheme.Cooldown).Nanoseconds(), Domain: d.idx,
		}})
	}
	idx := d.idx
	prev := d.committed
	size := prev
	if !s.acct.Frozen(idx) {
		raw := s.alloc.Decide(idx, s.committedSizes(), s.utilitiesAll(),
			cfg.Scheme.MaintainFraction, float64(cfg.MonitorWindow))
		size = d.debounce(raw)
		if tr != nil && raw != prev {
			tr.Emit(&telemetry.ResizeRequested{
				Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: idx},
				PrevBytes: prev, TargetBytes: raw,
			})
			if size == prev {
				tr.Emit(&telemetry.ResizeDenied{
					Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: idx},
					PrevBytes: prev, TargetBytes: raw, Reason: telemetry.DenyDebounce,
				})
			}
		}
	} else if tr != nil {
		tr.Emit(&telemetry.ResizeDenied{
			Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: idx},
			PrevBytes: prev, TargetBytes: prev, Reason: telemetry.DenyFrozen,
		})
	}
	// Mechanism 2: delay the action by a uniform random delay.
	delay := time.Duration(0)
	if cfg.Scheme.DelayWidth > 0 {
		delay = time.Duration(d.nextRand() % uint64(cfg.Scheme.DelayWidth))
	}
	applyAt := at + delay
	visible := size != prev
	d.committed = size
	d.pendingSize = size
	d.pendingAt = applyAt
	d.havePending = true
	d.lastAssessAt = at
	d.assessedOnce = true
	if s.metrics != nil {
		s.metrics.assessments.Inc()
	}
	// Progress toward the next assessment starts counting now (Figure 6).
	d.nextAssessAt = d.publicRetired + cfg.Scheme.ProgressN
	if s.warm && !d.finished {
		before := s.acct.Domain(idx)
		s.acct.RecordAssessment(idx, visible, applyAt)
		d.trace = append(d.trace, partition.Assessment{
			Domain: idx, At: at, ApplyAt: applyAt,
			Prev: prev, Size: size, Visible: visible,
		})
		if tr != nil {
			tr.Emit(&telemetry.SchemeAssessment{
				Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: idx},
				PrevBytes: prev, SizeBytes: size, Visible: visible,
				ApplyAtNs: applyAt.Nanoseconds(),
			})
			if cfg.Scheme.Cooldown > 0 {
				tr.Emit(&telemetry.CooldownStarted{
					Header:     telemetry.Header{AtNs: at.Nanoseconds(), Domain: idx},
					DurationNs: cfg.Scheme.Cooldown.Nanoseconds(),
				})
			}
			if dl := s.acct.Domain(idx); dl.TotalBits > before.TotalBits {
				tr.Emit(&telemetry.LeakageBitCharged{
					Header: telemetry.Header{AtNs: applyAt.Nanoseconds(), Domain: idx},
					Bits:   dl.TotalBits - before.TotalBits, TotalBits: dl.TotalBits,
					MaintainRun: before.MaintainRun,
				})
			}
		}
	}
}

// assessTimeBased performs the synchronous fixed-interval assessment of the
// Time scheme for all domains.
func (s *Sim) assessTimeBased(at time.Duration) {
	cfg := &s.cfg
	current := s.committedSizes()
	raw := s.alloc.DecideAll(current, s.utilitiesAll(),
		cfg.Scheme.MaintainFraction, float64(cfg.MonitorWindow))
	next := make([]int64, len(raw))
	for i, d := range s.domains {
		next[i] = d.debounce(raw[i])
		if s.acct.Frozen(i) {
			next[i] = current[i]
		}
	}
	// The debounce may veto a shrink another domain's growth relied on;
	// re-establish the capacity invariant by applying shrinks first and
	// clamping growths to what is actually free.
	final := append([]int64(nil), current...)
	for i := range final {
		if next[i] < final[i] {
			final[i] = next[i]
		}
	}
	for i := range final {
		if next[i] > final[i] {
			var others int64
			for j, v := range final {
				if j != i {
					others += v
				}
			}
			free := s.cfg.LLCBytes - others
			target := next[i]
			if target > free {
				target = s.alloc.FloorSize(free)
			}
			if target > final[i] {
				final[i] = target
			}
		}
	}
	for i, d := range s.domains {
		size := final[i]
		prev := d.committed
		visible := size != prev
		d.committed = size
		d.pendingSize = size
		d.pendingAt = at
		d.havePending = true
		d.lastAssessAt = at
		if s.metrics != nil {
			s.metrics.assessments.Inc()
		}
		if s.warm && !d.finished {
			before := s.acct.Domain(i)
			s.acct.RecordAssessment(i, visible, at)
			d.trace = append(d.trace, partition.Assessment{
				Domain: i, At: at, ApplyAt: at,
				Prev: prev, Size: size, Visible: visible,
			})
			if tr := s.trace(d); tr != nil {
				if raw[i] != prev {
					tr.Emit(&telemetry.ResizeRequested{
						Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: i},
						PrevBytes: prev, TargetBytes: raw[i],
					})
					if size == prev {
						// Work out which stage vetoed the request: the
						// frozen budget, the two-agreeing-assessments
						// debounce, or the capacity re-fit after shrinks.
						reason := telemetry.DenyCapacity
						switch {
						case s.acct.Frozen(i):
							reason = telemetry.DenyFrozen
						case next[i] == prev:
							reason = telemetry.DenyDebounce
						}
						tr.Emit(&telemetry.ResizeDenied{
							Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: i},
							PrevBytes: prev, TargetBytes: raw[i], Reason: reason,
						})
					}
				}
				tr.Emit(&telemetry.SchemeAssessment{
					Header:    telemetry.Header{AtNs: at.Nanoseconds(), Domain: i},
					PrevBytes: prev, SizeBytes: size, Visible: visible,
					ApplyAtNs: at.Nanoseconds(),
				})
				if dl := s.acct.Domain(i); dl.TotalBits > before.TotalBits {
					tr.Emit(&telemetry.LeakageBitCharged{
						Header: telemetry.Header{AtNs: at.Nanoseconds(), Domain: i},
						Bits:   dl.TotalBits - before.TotalBits, TotalBits: dl.TotalBits,
						MaintainRun: before.MaintainRun,
					})
				}
			}
		}
	}
}

// debounce passes a decided target through the two-agreeing-assessments
// filter.
func (d *domain) debounce(target int64) int64 {
	prev := d.lastTarget
	d.lastTarget = target
	if target != d.committed && target != prev {
		return d.committed
	}
	return target
}

// applyBandwidthStalls charges queueing delay when the quantum's aggregate
// DRAM traffic exceeds the shared channel capacity: the overflow's service
// time is distributed across domains in proportion to their traffic.
func (s *Sim) applyBandwidthStalls(quantum time.Duration) {
	var total uint64
	for _, d := range s.domains {
		total += d.dramInQuantum
	}
	capLines := s.cfg.MemBandwidth * quantum.Seconds() / float64(cache.LineBytes)
	if total > 0 && float64(total) > capLines && capLines > 0 {
		// Aggregate queue growth this quantum, as wall-clock time.
		overflow := (float64(total) - capLines) / capLines * float64(quantum)
		for _, d := range s.domains {
			if d.dramInQuantum == 0 {
				continue
			}
			share := float64(d.dramInQuantum) / float64(total)
			d.core.AdvanceTo(s.now + time.Duration(overflow*share))
		}
	}
	for _, d := range s.domains {
		d.dramInQuantum = 0
	}
}

// beginMeasurement resets statistics at the end of warmup.
func (s *Sim) beginMeasurement() {
	s.warm = true
	for _, d := range s.domains {
		d.base = d.core.Snapshot()
		d.baseLLC = s.llcStats(d)
		d.baseL1 = d.l1Snapshot()
		d.trace = nil
		d.samples = nil
		d.ipcSamples = nil
		d.lastSample = d.core.Snapshot()
		// Windows closed during warmup are not reported; the event stream
		// covers the measured region, like the resizing trace.
		if d.mon != nil {
			d.monWindows = d.mon.WindowsClosed()
		}
	}
}

// Run executes the simulation until every domain has finished its stream,
// then assembles the results.
func (s *Sim) Run() (*Result, error) {
	cfg := &s.cfg
	step := cfg.SampleEvery
	var nextTimeAssess time.Duration
	if cfg.Scheme.Kind == partition.TimeBased {
		nextTimeAssess = cfg.Scheme.Interval
	}
	if cfg.Warmup == 0 && cfg.WarmupInstructions == 0 {
		s.beginMeasurement()
	}
	const maxSteps = 100_000_000 // defensive bound against runaway configs
	for stepCount := 0; ; stepCount++ {
		if stepCount > maxSteps {
			return nil, fmt.Errorf("sim: exceeded %d steps without finishing", maxSteps)
		}
		s.now += step
		for _, d := range s.domains {
			s.runDomainUntil(d, s.now)
		}
		if cfg.MemBandwidth > 0 {
			s.applyBandwidthStalls(step)
		}
		if !s.warm && s.now >= cfg.Warmup {
			ready := true
			for _, d := range s.domains {
				if d.retired < cfg.WarmupInstructions {
					ready = false
					break
				}
			}
			if ready {
				s.beginMeasurement()
			}
		}
		if cfg.Scheme.Kind == partition.TimeBased {
			for s.now >= nextTimeAssess {
				s.assessTimeBased(nextTimeAssess)
				nextTimeAssess += cfg.Scheme.Interval
			}
		}
		if s.metrics != nil {
			s.metrics.quanta.Inc()
		}
		if s.warm {
			for _, d := range s.domains {
				if d.finished {
					continue
				}
				if d.part != nil || s.wayLLC != nil {
					d.samples = append(d.samples, d.committed)
				}
				ipc := d.core.IPCSince(d.lastSample)
				d.ipcSamples = append(d.ipcSamples, ipc)
				if tr := s.cfg.Tracer; tr != nil {
					snap := d.core.Snapshot()
					tr.Emit(&telemetry.DomainQuantum{
						Header:  telemetry.Header{AtNs: s.now.Nanoseconds(), Domain: d.idx},
						Retired: snap.Retired - d.lastSample.Retired,
						IPC:     ipc, CommittedBytes: d.committed,
					})
					// Monitor window closures are detected at quantum
					// granularity; the timestamp is the quantum boundary.
					if d.mon != nil {
						for w := d.mon.WindowsClosed(); d.monWindows < w; {
							d.monWindows++
							tr.Emit(&telemetry.MonitorWindowClosed{
								Header:   telemetry.Header{AtNs: s.now.Nanoseconds(), Domain: d.idx},
								Window:   d.mon.Window(),
								Windows:  d.monWindows,
								Observed: d.mon.Observed(),
							})
						}
					}
				}
				if s.metrics != nil {
					s.metrics.ipcHist.Observe(ipc)
				}
				d.lastSample = d.core.Snapshot()
			}
		}
		allDone := true
		for _, d := range s.domains {
			if !d.finished {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	return s.collect(), nil
}

// collect assembles the result.
func (s *Sim) collect() *Result {
	res := &Result{Scheme: s.cfg.Scheme, Duration: s.now}
	for i, d := range s.domains {
		end, endLLC, endL1 := d.finishCore, d.finishLLC, d.finishL1
		if !d.finished {
			end, endLLC, endL1 = d.core.Snapshot(), s.llcStats(d), d.l1Snapshot()
		}
		instr := end.Retired - d.base.Retired
		cycles := end.Cycles - d.base.Cycles
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(instr) / cycles
		}
		llc := endLLC
		llc.Sub(d.baseLLC)
		l1 := endL1
		l1.Sub(d.baseL1)
		res.Domains = append(res.Domains, DomainResult{
			Name:             d.spec.Name,
			Instructions:     instr,
			Cycles:           cycles,
			IPC:              ipc,
			FinishTime:       d.finishTime,
			Trace:            d.trace,
			Leakage:          s.acct.Domain(i),
			PartitionSamples: d.samples,
			IPCSamples:       d.ipcSamples,
			LLC:              llc,
			L1:               l1,
		})
	}
	return res
}
