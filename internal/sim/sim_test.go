package sim

import (
	"testing"
	"time"

	"untangle/internal/core"
	"untangle/internal/cpu"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/workload"
)

// testScale keeps unit-test runs around a few milliseconds of work.
const testScale = 0.002

// benchStream builds a limited stream for a named SPEC benchmark.
func benchStream(t testing.TB, name string, instructions uint64) isa.Stream {
	t.Helper()
	p, err := workload.SPECByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	return isa.NewLimited(g, instructions)
}

func benchPressure(t testing.TB, name string) isa.Stream {
	t.Helper()
	p, err := workload.SPECByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed += 7777 // distinct stream, same behaviour
	g, err := workload.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func specDomain(t testing.TB, name string, instructions uint64) DomainSpec {
	t.Helper()
	p, err := workload.SPECByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return DomainSpec{
		Name:     name,
		Stream:   benchStream(t, name, instructions),
		Pressure: benchPressure(t, name),
		CPU:      p.CPUParams(),
	}
}

func testConfig(kind partition.Kind) Config {
	cfg := Scaled(partition.DefaultScheme(kind), testScale)
	cfg.Warmup = 0
	return cfg
}

func TestValidateConfig(t *testing.T) {
	cfg := testConfig(partition.Static)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.LLCBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("bad LLC accepted")
	}
	bad = cfg
	bad.SampleEvery = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero quantum accepted")
	}
	bad = testConfig(partition.Untangle)
	bad.MonitorWindow = 0
	if err := bad.Validate(); err == nil {
		t.Error("dynamic scheme without window accepted")
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := testConfig(partition.Static)
	if _, err := New(cfg, nil); err == nil {
		t.Error("no domains accepted")
	}
	if _, err := New(cfg, []DomainSpec{{Name: "x", CPU: cpu.DefaultParams()}}); err == nil {
		t.Error("nil stream accepted")
	}
	// 9 domains at 2MB exceed 16MB.
	var many []DomainSpec
	for i := 0; i < 9; i++ {
		many = append(many, specDomain(t, "imagick_0", 1000))
	}
	if _, err := New(cfg, many); err == nil {
		t.Error("over-committed start sizes accepted")
	}
}

func TestStaticRunsToCompletion(t *testing.T) {
	cfg := testConfig(partition.Static)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "imagick_0", 400_000),
		specDomain(t, "deepsjeng_0", 400_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Domains {
		if d.Instructions < 390_000 {
			t.Errorf("%s retired %d instructions, want ~400k", d.Name, d.Instructions)
		}
		if d.IPC <= 0 || d.IPC > 8 {
			t.Errorf("%s IPC = %v out of range", d.Name, d.IPC)
		}
		if len(d.Trace) != 0 {
			t.Errorf("%s: Static scheme recorded %d assessments", d.Name, len(d.Trace))
		}
		if d.Leakage.TotalBits != 0 {
			t.Errorf("%s: Static scheme leaked %v bits", d.Name, d.Leakage.TotalBits)
		}
		if d.FinishTime <= 0 {
			t.Errorf("%s: finish time %v", d.Name, d.FinishTime)
		}
	}
	if res.Duration <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestSharedUsesOneCache(t *testing.T) {
	cfg := testConfig(partition.Shared)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "imagick_0", 200_000),
		specDomain(t, "imagick_0", 200_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.shared == nil {
		t.Fatal("shared scheme did not build a shared cache")
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Domains {
		if len(d.PartitionSamples) != 0 {
			t.Error("shared scheme should have no partition samples")
		}
	}
}

func TestTimeSchemeAssessesAtInterval(t *testing.T) {
	cfg := testConfig(partition.TimeBased)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 600_000),
		specDomain(t, "imagick_0", 600_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	d0 := res.Domains[0]
	if len(d0.Trace) == 0 {
		t.Fatal("Time scheme made no assessments")
	}
	// Assessments are spaced exactly one interval apart.
	for i := 1; i < len(d0.Trace); i++ {
		if gap := d0.Trace[i].At - d0.Trace[i-1].At; gap != cfg.Scheme.Interval {
			t.Fatalf("assessment gap %v, want %v", gap, cfg.Scheme.Interval)
		}
	}
	// Leakage: log2(9) bits per assessment.
	want := 3.1699 * float64(d0.Leakage.Assessments)
	if d0.Leakage.TotalBits < want*0.99 || d0.Leakage.TotalBits > want*1.01 {
		t.Errorf("Time leakage = %v bits over %d assessments, want ~%v",
			d0.Leakage.TotalBits, d0.Leakage.Assessments, want)
	}
}

func TestUntangleAssessesOnProgress(t *testing.T) {
	cfg := testConfig(partition.Untangle)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 600_000),
		specDomain(t, "imagick_0", 600_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	d0 := res.Domains[0]
	if len(d0.Trace) == 0 {
		t.Fatal("Untangle made no assessments")
	}
	// Mechanism 1: assessments are at least the cooldown apart.
	for i := 1; i < len(d0.Trace); i++ {
		if gap := d0.Trace[i].At - d0.Trace[i-1].At; gap < cfg.Scheme.Cooldown {
			t.Fatalf("assessment gap %v below cooldown %v", gap, cfg.Scheme.Cooldown)
		}
	}
	// Mechanism 2: actions apply after their assessment, within the delay
	// width.
	for _, a := range d0.Trace {
		if a.ApplyAt < a.At || a.ApplyAt > a.At+cfg.Scheme.DelayWidth {
			t.Fatalf("apply time %v outside [%v, %v]", a.ApplyAt, a.At, a.At+cfg.Scheme.DelayWidth)
		}
	}
}

func TestUntangleActionSequenceTimingIndependent(t *testing.T) {
	// The paper's central claim (Section 5.2): with a timing-independent
	// metric, a progress-based schedule, and annotations, the action
	// sequence depends only on the retired public instruction sequence —
	// NOT on instruction timing. Perturb the core's timing parameters
	// wildly and check the action sequence is bit-identical.
	run := func(mlp, baseCPI float64) []int64 {
		cfg := testConfig(partition.Untangle)
		spec := specDomain(t, "mcf_0", 600_000)
		spec.CPU.MLP = mlp
		spec.CPU.BaseCPI = baseCPI
		s, err := New(cfg, []DomainSpec{spec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].Trace.ActionSizes()
	}
	fast := run(8, 0.1)
	slow := run(1.5, 1.0)
	if len(fast) == 0 {
		t.Fatal("no assessments recorded")
	}
	if len(fast) != len(slow) {
		t.Fatalf("assessment counts differ under timing perturbation: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("action %d differs under timing perturbation: %d vs %d", i, fast[i], slow[i])
		}
	}
}

func TestTimeSchemeActionSequenceIsTimingDependent(t *testing.T) {
	// The contrast case: under the Time baseline the same perturbation
	// changes what the metric sees at each tick, so the action sequence
	// (or at least the per-assessment sizes over time) changes. This is
	// Figure 2's Edge 3 in action.
	run := func(mlp, baseCPI float64) []int64 {
		cfg := testConfig(partition.TimeBased)
		spec := specDomain(t, "mcf_0", 600_000)
		spec.CPU.MLP = mlp
		spec.CPU.BaseCPI = baseCPI
		other := specDomain(t, "parest_0", 600_000)
		s, err := New(cfg, []DomainSpec{spec, other})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].Trace.ActionSizes()
	}
	fast := run(8, 0.1)
	slow := run(1.5, 1.0)
	same := len(fast) == len(slow)
	if same {
		for i := range fast {
			if fast[i] != slow[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("Time scheme action sequence was timing-independent; expected divergence")
	}
}

func TestUntangleLeaksLessThanTimePerAssessment(t *testing.T) {
	mk := func(kind partition.Kind) *Result {
		cfg := testConfig(kind)
		s, err := New(cfg, []DomainSpec{
			specDomain(t, "mcf_0", 500_000),
			specDomain(t, "imagick_0", 500_000),
			specDomain(t, "parest_0", 500_000),
			specDomain(t, "deepsjeng_0", 500_000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	timeRes := mk(partition.TimeBased)
	untangleRes := mk(partition.Untangle)
	for i := range timeRes.Domains {
		tl := timeRes.Domains[i].Leakage.PerAssessment()
		ul := untangleRes.Domains[i].Leakage.PerAssessment()
		if untangleRes.Domains[i].Leakage.Assessments == 0 {
			t.Fatalf("domain %d: no Untangle assessments", i)
		}
		if ul >= tl {
			t.Errorf("domain %d: Untangle %.3f bits/assessment not below Time %.3f",
				i, ul, tl)
		}
	}
}

func TestPartitionSamplesTrackCommittedSizes(t *testing.T) {
	cfg := testConfig(partition.Untangle)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 400_000),
		specDomain(t, "imagick_0", 400_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Domains {
		if len(d.PartitionSamples) == 0 {
			t.Fatalf("%s: no partition samples", d.Name)
		}
		for _, size := range d.PartitionSamples {
			ok := false
			for _, sz := range cfg.Sizes {
				if size == sz {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%s: sampled size %d not in supported list", d.Name, size)
			}
		}
	}
}

func TestCapacityNeverOvercommitted(t *testing.T) {
	// Instrumented run: after every quantum the committed sizes must sum
	// to at most the LLC capacity. We approximate by sampling traces: at
	// every assessment, replay the committed sizes.
	cfg := testConfig(partition.Untangle)
	var specs []DomainSpec
	for _, name := range []string{"mcf_0", "parest_0", "lbm_0", "wrf_0", "gcc_2", "roms_0", "cam4_0", "gcc_4"} {
		specs = append(specs, specDomain(t, name, 300_000))
	}
	s, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, d := range s.domains {
		sum += d.committed
	}
	if sum > cfg.LLCBytes {
		t.Errorf("committed %d bytes > LLC %d", sum, cfg.LLCBytes)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(partition.Untangle)
		s, err := New(cfg, []DomainSpec{
			specDomain(t, "mcf_0", 300_000),
			specDomain(t, "imagick_0", 300_000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Domains {
		if a.Domains[i].IPC != b.Domains[i].IPC {
			t.Errorf("domain %d IPC differs across identical runs", i)
		}
		if a.Domains[i].Leakage.TotalBits != b.Domains[i].Leakage.TotalBits {
			t.Errorf("domain %d leakage differs across identical runs", i)
		}
		at, bt := a.Domains[i].Trace, b.Domains[i].Trace
		if len(at) != len(bt) {
			t.Fatalf("domain %d trace lengths differ", i)
		}
		for j := range at {
			if at[j] != bt[j] {
				t.Fatalf("domain %d assessment %d differs", i, j)
			}
		}
	}
}

func TestWarmupExcludedFromMeasurement(t *testing.T) {
	mk := func(warmup time.Duration) *Result {
		cfg := testConfig(partition.Static)
		cfg.Warmup = warmup
		s, err := New(cfg, []DomainSpec{specDomain(t, "imagick_0", 400_000)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := mk(0)
	warm := mk(50 * time.Microsecond)
	if warm.Domains[0].Instructions >= cold.Domains[0].Instructions {
		t.Error("warmup did not reduce measured instructions")
	}
	// Warm measurement skips the cold-cache region, so IPC is at least as
	// high (the stream is statistically stationary).
	if warm.Domains[0].IPC < cold.Domains[0].IPC*0.98 {
		t.Errorf("warm IPC %v unexpectedly below cold IPC %v", warm.Domains[0].IPC, cold.Domains[0].IPC)
	}
}

func TestBudgetFreezesResizing(t *testing.T) {
	cfg := testConfig(partition.Untangle)
	cfg.Budget = 1 // bits: exhausted almost immediately
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 500_000),
		specDomain(t, "imagick_0", 500_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Domains[0]
	if !d.Leakage.Frozen {
		t.Skip("budget not reached in this short run")
	}
	if d.Leakage.TotalBits > 1+8 {
		t.Errorf("leakage %v far exceeded 1-bit budget", d.Leakage.TotalBits)
	}
	// After freezing, all later assessments must be Maintains.
	frozenSeen := false
	for _, a := range d.Trace {
		if frozenSeen && a.Visible {
			t.Error("visible action after freeze")
		}
		if !a.Visible {
			continue
		}
		_ = a
	}
}

func TestBandwidthContentionSlowsHeavyTraffic(t *testing.T) {
	run := func(bandwidth float64) float64 {
		cfg := testConfig(partition.Static)
		cfg.MemBandwidth = bandwidth
		// Two DRAM-heavy domains (working sets far beyond their partitions).
		s, err := New(cfg, []DomainSpec{
			specDomain(t, "mcf_0", 400_000),
			specDomain(t, "lbm_0", 400_000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].IPC
	}
	unconstrained := run(0)
	// A deliberately tight channel: 1 GB/s shared across both domains.
	constrained := run(1e9)
	if constrained >= unconstrained {
		t.Errorf("bandwidth cap did not slow the workload: %v >= %v", constrained, unconstrained)
	}
	// A generous channel changes nothing measurable.
	generous := run(1e12)
	if generous < unconstrained*0.999 {
		t.Errorf("generous bandwidth still slowed the workload: %v vs %v", generous, unconstrained)
	}
}

func TestBandwidthStallsPreserveUntangleActionSequence(t *testing.T) {
	run := func(bandwidth float64) []int64 {
		cfg := testConfig(partition.Untangle)
		cfg.MemBandwidth = bandwidth
		s, err := New(cfg, []DomainSpec{specDomain(t, "mcf_0", 400_000)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].Trace.ActionSizes()
	}
	free, tight := run(0), run(1e9)
	if len(free) == 0 || len(free) != len(tight) {
		t.Fatalf("action counts differ under bandwidth stalls: %d vs %d", len(free), len(tight))
	}
	for i := range free {
		if free[i] != tight[i] {
			t.Fatalf("action %d changed under bandwidth stalls (timing must not leak into actions)", i)
		}
	}
}

func TestIPCSamplesAlignWithPartitionSamples(t *testing.T) {
	cfg := testConfig(partition.Untangle)
	s, err := New(cfg, []DomainSpec{specDomain(t, "mcf_0", 300_000)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Domains[0]
	if len(d.IPCSamples) == 0 {
		t.Fatal("no IPC samples")
	}
	if len(d.IPCSamples) != len(d.PartitionSamples) {
		t.Fatalf("IPC samples %d, partition samples %d; want aligned", len(d.IPCSamples), len(d.PartitionSamples))
	}
	for i, v := range d.IPCSamples {
		if v < 0 || v > 8 {
			t.Fatalf("sample %d IPC %v out of range", i, v)
		}
	}
}

func TestNextLinePrefetchHelpsStreaming(t *testing.T) {
	// A streaming-heavy workload gains from next-line prefetch; the action
	// sequence of Untangle does not change (prefetching is pure timing).
	mk := func(prefetch bool) (float64, []int64) {
		cfg := testConfig(partition.Untangle)
		cfg.NextLinePrefetch = prefetch
		p, err := workload.SPECByName("bwaves_0")
		if err != nil {
			t.Fatal(err)
		}
		p.StreamFrac = 0.6 // amplify the sequential component
		g, err := workload.NewGenerator(p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, []DomainSpec{{
			Name: "stream", Stream: isa.NewLimited(g, 400_000), CPU: p.CPUParams(),
		}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].IPC, res.Domains[0].Trace.ActionSizes()
	}
	offIPC, offActions := mk(false)
	onIPC, onActions := mk(true)
	if onIPC <= offIPC {
		t.Errorf("prefetch did not help streaming: %v <= %v", onIPC, offIPC)
	}
	if len(offActions) != len(onActions) {
		t.Fatalf("action counts differ: %d vs %d", len(offActions), len(onActions))
	}
	for i := range offActions {
		if offActions[i] != onActions[i] {
			t.Fatalf("action %d changed with prefetching", i)
		}
	}
}

func TestTieredDomainsChargeAsymmetrically(t *testing.T) {
	// Section 6.4 end to end: a low-tier domain among strictly-higher-tier
	// peers resizes for free; the high-tier domain is charged because the
	// low one observes it.
	run := func(tiers []core.Tier) (low, high float64) {
		cfg := testConfig(partition.Untangle)
		cfg.Tiers = tiers
		s, err := New(cfg, []DomainSpec{
			specDomain(t, "mcf_0", 500_000),    // low tier: demand swings
			specDomain(t, "parest_0", 500_000), // high tier: also swings
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].Leakage.TotalBits, res.Domains[1].Leakage.TotalBits
	}
	low, high := run([]core.Tier{0, 1})
	if low != 0 {
		t.Errorf("low-tier domain charged %v bits for allowed upward flows", low)
	}
	if high <= 0 {
		t.Errorf("high-tier domain charged %v; it has a lower-tier observer", high)
	}
	// Peer tiers: both charged (assuming both visibly resize, which this
	// contended pairing guarantees).
	pLow, pHigh := run([]core.Tier{0, 0})
	if pLow <= 0 || pHigh <= 0 {
		t.Errorf("peer-tier charges = %v/%v, want both positive", pLow, pHigh)
	}
}

func TestTiersLengthValidated(t *testing.T) {
	cfg := testConfig(partition.Untangle)
	cfg.Tiers = []core.Tier{0}
	if _, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 1000),
		specDomain(t, "imagick_0", 1000),
	}); err == nil {
		t.Error("mismatched tier count accepted")
	}
}
