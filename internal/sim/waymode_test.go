package sim

import (
	"testing"

	"untangle/internal/partition"
)

func wayConfig(kind partition.Kind) Config {
	cfg := testConfig(kind)
	cfg.WayPartitioned = true
	cfg.Sizes = cfg.WaySizes()
	return cfg
}

func TestWaySizes(t *testing.T) {
	cfg := testConfig(partition.Static)
	sizes := cfg.WaySizes()
	if len(sizes) != 8 {
		t.Fatalf("%d way sizes, want 8 (half of 16 ways)", len(sizes))
	}
	if sizes[0] != 1<<20 || sizes[7] != 8<<20 {
		t.Errorf("way sizes range [%d, %d], want [1MB, 8MB]", sizes[0], sizes[7])
	}
}

func TestWayModeRejectsFractionalSizes(t *testing.T) {
	cfg := testConfig(partition.Untangle)
	cfg.WayPartitioned = true // keeps the default 128kB..8MB sizes: invalid
	if _, err := New(cfg, []DomainSpec{specDomain(t, "imagick_0", 1000)}); err == nil {
		t.Error("fractional-way sizes accepted under way partitioning")
	}
}

func TestWayModeRunsAndAdapts(t *testing.T) {
	cfg := wayConfig(partition.Untangle)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 500_000),
		specDomain(t, "imagick_0", 500_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.wayLLC == nil {
		t.Fatal("way-partitioned LLC not built")
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Domains {
		if d.IPC <= 0 {
			t.Errorf("%s: IPC %v", d.Name, d.IPC)
		}
		for _, sz := range d.PartitionSamples {
			if sz%(1<<20) != 0 {
				t.Fatalf("%s: partition sample %d not whole ways", d.Name, sz)
			}
		}
	}
	// The hungry domain should have claimed more ways than the tiny one by
	// the end of the run.
	if got0, got1 := s.domains[0].committed, s.domains[1].committed; got0 <= got1 {
		t.Errorf("mcf_0 ended with %d bytes, imagick_0 with %d; expected concentration", got0, got1)
	}
	// Physical grants track the committed sizes after the final resizes.
	totalWays := s.wayLLC.Ways(0) + s.wayLLC.Ways(1)
	if totalWays > 16 {
		t.Errorf("granted %d ways, only 16 exist", totalWays)
	}
}

func TestWayModeCoarserActionsLeakFewerBitsPerAssessmentUnderTime(t *testing.T) {
	// The granularity ablation's accounting side: with 8 supported actions
	// the Time baseline charges log2(8) = 3 bits instead of log2(9).
	cfg := wayConfig(partition.TimeBased)
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 300_000),
		specDomain(t, "imagick_0", 300_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Domains[0]
	if d.Leakage.Assessments == 0 {
		t.Fatal("no assessments")
	}
	if got := d.Leakage.PerAssessment(); got < 2.99 || got > 3.01 {
		t.Errorf("per-assessment = %v, want log2 8 = 3", got)
	}
}

func TestWayModeDeterministic(t *testing.T) {
	run := func() []int64 {
		cfg := wayConfig(partition.Untangle)
		s, err := New(cfg, []DomainSpec{
			specDomain(t, "mcf_0", 300_000),
			specDomain(t, "imagick_0", 300_000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Domains[0].Trace.ActionSizes()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs", i)
		}
	}
}
