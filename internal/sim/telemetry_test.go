package sim

import (
	"bytes"
	"testing"

	"untangle/internal/partition"
	"untangle/internal/telemetry"
)

// tracedRun runs a small two-domain mix under the given scheme with a
// buffer-sink tracer and metrics registry attached, returning the JSONL
// serialization of the trace and the metrics snapshot JSON.
func tracedRun(t *testing.T, kind partition.Kind) (trace, metrics []byte, res *Result) {
	t.Helper()
	cfg := testConfig(kind)
	buf := telemetry.NewBuffer()
	cfg.Tracer = telemetry.New(buf, nil, kind.String())
	cfg.Metrics = telemetry.NewRegistry()
	s, err := New(cfg, []DomainSpec{
		specDomain(t, "mcf_0", 400_000),
		specDomain(t, "imagick_0", 400_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := buf.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	snap, err := cfg.Metrics.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), snap, res
}

func TestTelemetryTraceByteIdenticalAcrossRuns(t *testing.T) {
	// The determinism invariant extends to telemetry: two identical runs
	// must serialize byte-identical event streams and metric snapshots.
	// Timestamps come from simulated time, so wall-clock jitter cannot
	// appear anywhere in the output.
	for _, kind := range []partition.Kind{partition.TimeBased, partition.Untangle} {
		a, am, _ := tracedRun(t, kind)
		b, bm, _ := tracedRun(t, kind)
		if len(a) == 0 {
			t.Fatalf("%v: traced run emitted no events", kind)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%v: telemetry traces differ across identical runs", kind)
		}
		if !bytes.Equal(am, bm) {
			t.Errorf("%v: metric snapshots differ across identical runs", kind)
		}
	}
}

func TestTelemetryTimestampsAreSimulatedTime(t *testing.T) {
	trace, _, res := tracedRun(t, partition.Untangle)
	events, err := telemetry.ReadJSONL(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events decoded")
	}
	// Simulated time starts at zero and a run lasts well under a second;
	// a wall-clock stamp (nanoseconds since 1970) would be ~1e18.
	horizon := 2 * res.Duration // pending actions may apply slightly late
	for _, ev := range events {
		at := ev.Hdr().At()
		if at < 0 || at > horizon {
			t.Fatalf("%s event at %v outside simulated-time range [0, %v]", ev.Kind(), at, horizon)
		}
	}
}

func TestTelemetryCoversEventKinds(t *testing.T) {
	// A short contended Untangle run plus a TimeBased run must exercise
	// the full event vocabulary between them.
	kinds := map[string]bool{}
	for _, k := range []partition.Kind{partition.TimeBased, partition.Untangle} {
		trace, _, _ := tracedRun(t, k)
		events, err := telemetry.ReadJSONL(bytes.NewReader(trace))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			kinds[ev.Kind()] = true
		}
	}
	for _, want := range telemetry.EventKinds() {
		if !kinds[want] {
			t.Errorf("no %s event emitted; want at least one of every kind", want)
		}
	}
}

func TestTelemetryObservesWithoutParticipating(t *testing.T) {
	// Attaching a tracer must not change what the simulation does: action
	// traces, leakage, and IPC stay identical to an uninstrumented run.
	bare := func() *Result {
		cfg := testConfig(partition.Untangle)
		s, err := New(cfg, []DomainSpec{
			specDomain(t, "mcf_0", 400_000),
			specDomain(t, "imagick_0", 400_000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	_, _, traced := tracedRun(t, partition.Untangle)
	for i := range bare.Domains {
		bd, td := bare.Domains[i], traced.Domains[i]
		if bd.IPC != td.IPC {
			t.Errorf("domain %d: IPC changed under instrumentation: %v vs %v", i, bd.IPC, td.IPC)
		}
		if bd.Leakage.TotalBits != td.Leakage.TotalBits {
			t.Errorf("domain %d: leakage changed under instrumentation", i)
		}
		if len(bd.Trace) != len(td.Trace) {
			t.Fatalf("domain %d: assessment counts differ: %d vs %d", i, len(bd.Trace), len(td.Trace))
		}
		for j := range bd.Trace {
			if bd.Trace[j] != td.Trace[j] {
				t.Fatalf("domain %d assessment %d changed under instrumentation", i, j)
			}
		}
	}
}
