package tracecache

// Lane-outcome sidecars: the second memoization level of the front-end
// cache. The event stream (.fetrace) removes the generator and the private
// L1 from warm passes, but the dominant cost of a replay is still the nine
// LLC lane walks — and those outcomes are just as deterministic: a pure
// function of the stream's miss-address order and the lane geometry, with
// no feedback from the timing fold. A .felanes sidecar stores each lane's
// hit/miss bit sequence (one bit per L1 miss, stream order, one bitset per
// partition size), so a warm pass that finds a valid sidecar skips the LLC
// probes entirely and runs only the timing folds.
//
// Unlike the event stream, a sidecar is never the source of truth: it is
// rederivable from the (CRC-verified) stream it rides next to. A missing,
// corrupt, or mismatched sidecar therefore does not fail the run — the
// warm pass silently re-probes the verified stream and rewrites the
// sidecar. Stale data is still never served: every load validates the full
// event key, the LLC geometry, the miss count, and a CRC-32C over the
// payload, and anything short of a perfect match is discarded.
//
// File layout (all integers little-endian):
//
//	magic "UNTGLN01" (8 bytes)
//	headerLen uint32, then headerLen bytes of JSON
//	  {"version":V,"key":{...},"ways":W,"sizes":[...],"misses":N}
//	payload: len(sizes) bitsets, each ceil(N/64) uint64 words —
//	  bit i of bitset s set = the i-th L1 miss hits in lane s
//	footer: uint32 CRC-32C over the payload bytes

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"

	"untangle/internal/fsutil"
)

var lanesMagic = [8]byte{'U', 'N', 'T', 'G', 'L', 'N', '0', '1'}

type lanesHeader struct {
	Version int     `json:"version"`
	Key     Key     `json:"key"`
	Ways    int     `json:"ways"`
	Sizes   []int64 `json:"sizes"`
	Misses  uint64  `json:"misses"`
}

// LaneOutcomePath is the sidecar file for key's entry.
func (s *Store) LaneOutcomePath(key Key) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%d.felanes", key.Benchmark, key.Instructions))
}

// outcomeWords is the bitset length, in uint64 words, for one lane.
func outcomeWords(misses uint64) int { return int((misses + 63) / 64) }

// SaveLaneOutcomes atomically writes the sidecar for key: one hit/miss
// bitset per lane size, misses bits each. bits must hold exactly
// ceil(misses/64) words per lane — the engine's probe/tee loops produce
// exactly that shape.
func (s *Store) SaveLaneOutcomes(key Key, ways int, sizes []int64, misses uint64, bits [][]uint64) error {
	if len(bits) != len(sizes) {
		return fmt.Errorf("tracecache: %d bitsets for %d lane sizes", len(bits), len(sizes))
	}
	words := outcomeWords(misses)
	for i := range bits {
		if len(bits[i]) < words {
			return fmt.Errorf("tracecache: lane %d bitset has %d words, want %d", i, len(bits[i]), words)
		}
	}
	doc, err := json.Marshal(lanesHeader{Version: FormatVersion, Key: key, Ways: ways, Sizes: sizes, Misses: misses})
	if err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	af, err := fsutil.CreateAtomic(s.LaneOutcomePath(key))
	if err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	defer af.Close()
	bw := bufio.NewWriterSize(af, 1<<16)
	var pre [12]byte
	copy(pre[:], lanesMagic[:])
	binary.LittleEndian.PutUint32(pre[8:], uint32(len(doc)))
	bw.Write(pre[:])
	bw.Write(doc)
	crc := uint32(0)
	var scratch [8]byte
	for _, lane := range bits {
		for _, w := range lane[:words] {
			binary.LittleEndian.PutUint64(scratch[:], w)
			bw.Write(scratch[:])
			crc = crc32.Update(crc, castagnoli, scratch[:])
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := af.Commit(); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	s.bytesWritten.Add(int64(12 + len(doc) + len(bits)*words*8 + 4))
	return nil
}

// OpenLaneOutcomes loads the sidecar for key if — and only if — it matches
// the expected geometry exactly: same key, format version, way count, lane
// sizes, and miss count, with an intact payload CRC. Any shortfall returns
// ok=false (counted on the store), never an error: the caller re-probes
// the verified event stream, which is always safe.
func (s *Store) OpenLaneOutcomes(key Key, ways int, sizes []int64, misses uint64) (bits [][]uint64, ok bool) {
	path := s.LaneOutcomePath(key)
	words := outcomeWords(misses)
	fi, err := os.Stat(path)
	if err != nil {
		s.outcomeMisses.Add(1)
		return nil, false
	}
	// The expected size bounds the read: header JSON is small, payload is
	// fixed by the geometry. A wildly different size is damage; don't read it.
	if expect := int64(12 + len(sizes)*words*8 + 4); fi.Size() < expect || fi.Size() > expect+4096 {
		s.outcomeMisses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		s.outcomeMisses.Add(1)
		return nil, false
	}
	bits = decodeLaneOutcomes(raw, key, ways, sizes, misses)
	if bits == nil {
		s.outcomeMisses.Add(1)
		return nil, false
	}
	s.bytesRead.Add(int64(len(raw)))
	s.outcomeHits.Add(1)
	return bits, true
}

// decodeLaneOutcomes parses and validates a sidecar; nil means reject.
func decodeLaneOutcomes(raw []byte, key Key, ways int, sizes []int64, misses uint64) [][]uint64 {
	if len(raw) < 12 || [8]byte(raw[0:8]) != lanesMagic {
		return nil
	}
	hLen := int(binary.LittleEndian.Uint32(raw[8:12]))
	if hLen <= 0 || 12+hLen > len(raw) {
		return nil
	}
	var h lanesHeader
	if err := json.Unmarshal(raw[12:12+hLen], &h); err != nil {
		return nil
	}
	if h.Version != FormatVersion || h.Key != key || h.Ways != ways ||
		!slices.Equal(h.Sizes, sizes) || h.Misses != misses {
		return nil
	}
	words := outcomeWords(misses)
	payload := raw[12+hLen:]
	if len(payload) != len(sizes)*words*8+4 {
		return nil
	}
	body := payload[:len(payload)-4]
	if crc32.Update(0, castagnoli, body) != binary.LittleEndian.Uint32(payload[len(payload)-4:]) {
		return nil
	}
	bits := make([][]uint64, len(sizes))
	for i := range bits {
		lane := make([]uint64, words)
		for j := range lane {
			lane[j] = binary.LittleEndian.Uint64(body[(i*words+j)*8:])
		}
		bits[i] = lane
	}
	return bits
}
