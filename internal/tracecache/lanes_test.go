package tracecache

import (
	"math/rand"
	"os"
	"testing"
)

// randomBits builds lanes deterministic pseudo-random outcome bitsets of
// misses bits each.
func randomBits(lanes int, misses uint64, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	words := outcomeWords(misses)
	bits := make([][]uint64, lanes)
	for i := range bits {
		lane := make([]uint64, words)
		for j := range lane {
			lane[j] = rng.Uint64()
		}
		// Clear the bits past misses so round-tripped data compares exactly.
		if tail := misses % 64; tail != 0 && words > 0 {
			lane[words-1] &= (1 << tail) - 1
		}
		bits[i] = lane
	}
	return bits
}

func TestLaneOutcomesRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("mcf_0")
	sizes := []int64{128 << 10, 1 << 20, 8 << 20}
	for _, misses := range []uint64{0, 1, 63, 64, 65, 12_345} {
		bits := randomBits(len(sizes), misses, int64(misses)+1)
		if err := st.SaveLaneOutcomes(key, 16, sizes, misses, bits); err != nil {
			t.Fatalf("misses=%d: %v", misses, err)
		}
		got, ok := st.OpenLaneOutcomes(key, 16, sizes, misses)
		if !ok {
			t.Fatalf("misses=%d: no hit on just-written sidecar", misses)
		}
		for i := range bits {
			for j := range bits[i] {
				if got[i][j] != bits[i][j] {
					t.Fatalf("misses=%d: lane %d word %d = %#x, want %#x", misses, i, j, got[i][j], bits[i][j])
				}
			}
		}
	}
	if c := st.Counters(); c.OutcomeHits != 6 || c.OutcomeMisses != 0 {
		t.Fatalf("counters = %+v, want 6 outcome hits", c)
	}
}

// TestLaneOutcomesRejectsMismatch: a sidecar loads only under exactly the
// geometry it was written for — any drift in key, ways, sizes, or miss
// count is a silent (counted) miss, never wrong data.
func TestLaneOutcomesRejectsMismatch(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("mcf_0")
	sizes := []int64{128 << 10, 1 << 20}
	const misses = 1000
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, randomBits(len(sizes), misses, 7)); err != nil {
		t.Fatal(err)
	}

	stale := key
	stale.ParamsTag = "00000000deadbeef"
	cases := []struct {
		name string
		ok   bool
	}{{"stale key", false}, {"other ways", false}, {"other sizes", false}, {"other misses", false}, {"exact", true}}
	results := []bool{}
	_, ok := st.OpenLaneOutcomes(stale, 16, sizes, misses)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 8, sizes, misses)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 16, []int64{128 << 10, 2 << 20}, misses)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 16, sizes, misses+1)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 16, sizes, misses)
	results = append(results, ok)
	for i, c := range cases {
		if results[i] != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.name, results[i], c.ok)
		}
	}
}

// TestLaneOutcomesRejectsDamage: bit flips anywhere (magic, header, payload,
// CRC) and truncation all reject the sidecar.
func TestLaneOutcomesRejectsDamage(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("xz_1")
	sizes := []int64{256 << 10}
	const misses = 500
	bits := randomBits(len(sizes), misses, 3)
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, bits); err != nil {
		t.Fatal(err)
	}
	path := st.LaneOutcomePath(key)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int{0, 9, 20, len(pristine) / 2, len(pristine) - 2} {
		raw := append([]byte(nil), pristine...)
		raw[off] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); ok {
			t.Errorf("flip at %d: damaged sidecar served", off)
		}
	}
	if err := os.WriteFile(path, pristine[:len(pristine)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); ok {
		t.Error("truncated sidecar served")
	}

	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); !ok {
		t.Error("pristine sidecar rejected")
	}
}

// mixTestKey is a key with every mix-stream extension field set, as the
// fused mix engine produces them.
func mixTestKey() Key {
	return Key{
		Benchmark:    "mix-bwaves_1+AES-256-d1",
		Instructions: 110_000,
		L1Bytes:      32 << 10,
		L1Ways:       8,
		ParamsTag:    "0123456789abcdef",
		Flavor:       "mix",
		Domain:       1,
		CryptoPhase:  1000,
		SpecPhase:    2000,
		Secret:       7,
		Unannotated:  true,
	}
}

// TestLaneSidecarMixKeyedCorruptionRecomputed: sidecars under mix-style
// keys round-trip, the mix extension fields participate in matching (a
// mix-keyed sidecar must never serve the classic key sharing its path, or
// vice versa), and a corrupt mix-keyed sidecar is a counted miss that a
// fresh Save repairs — the engine's recompute-and-rewrite path.
func TestLaneSidecarMixKeyedCorruptionRecomputed(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := mixTestKey()
	sizes := []int64{512 << 10, 4 << 20}
	const misses = 777
	bits := randomBits(len(sizes), misses, 11)
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, bits); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); !ok {
		t.Fatal("mix-keyed sidecar did not round-trip")
	}

	// A classic key with the same benchmark and instruction count maps to
	// the same sidecar path; only full-key matching keeps them apart.
	classic := key
	classic.Flavor = ""
	classic.Domain = 0
	classic.CryptoPhase = 0
	classic.SpecPhase = 0
	classic.Secret = 0
	classic.Unannotated = false
	if st.LaneOutcomePath(classic) != st.LaneOutcomePath(key) {
		t.Fatalf("test premise broken: keys map to different paths")
	}
	if _, ok := st.OpenLaneOutcomes(classic, 16, sizes, misses); ok {
		t.Error("mix-keyed sidecar served a classic key")
	}

	// Corrupt the payload: the open is a silent counted miss...
	path := st.LaneOutcomePath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	before := st.Counters()
	if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); ok {
		t.Fatal("corrupt mix-keyed sidecar served")
	}
	// ...and the recompute path (Save again) restores service.
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, bits); err != nil {
		t.Fatal(err)
	}
	got, ok := st.OpenLaneOutcomes(key, 16, sizes, misses)
	if !ok {
		t.Fatal("rewritten sidecar rejected")
	}
	for i := range bits {
		for j := range bits[i] {
			if got[i][j] != bits[i][j] {
				t.Fatalf("lane %d word %d = %#x, want %#x", i, j, got[i][j], bits[i][j])
			}
		}
	}
	after := st.Counters()
	if after.OutcomeMisses != before.OutcomeMisses+1 {
		t.Errorf("corrupt open counted %d misses, want 1", after.OutcomeMisses-before.OutcomeMisses)
	}
}

// FuzzLaneSidecar hardens the sidecar decoder against arbitrary on-disk
// bytes: decodeLaneOutcomes must never panic, and anything it accepts must
// have exactly the requested geometry — the engine indexes the returned
// bitsets without further checks.
func FuzzLaneSidecar(f *testing.F) {
	st, err := NewStore(f.TempDir(), false)
	if err != nil {
		f.Fatal(err)
	}
	key := mixTestKey()
	sizes := []int64{512 << 10, 4 << 20}
	const misses = 777
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, randomBits(len(sizes), misses, 11)); err != nil {
		f.Fatal(err)
	}
	pristine, err := os.ReadFile(st.LaneOutcomePath(key))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	f.Add(pristine[:12])
	f.Add(pristine[:len(pristine)-4])
	f.Add([]byte("UNTGLN01"))
	mut := append([]byte(nil), pristine...)
	mut[30] ^= 0xff // inside the JSON header
	f.Add(mut)
	mut2 := append([]byte(nil), pristine...)
	mut2[8] = 0xff // absurd header length
	f.Add(mut2)

	words := outcomeWords(misses)
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := decodeLaneOutcomes(raw, key, 16, sizes, misses)
		if bits == nil {
			return
		}
		if len(bits) != len(sizes) {
			t.Fatalf("accepted %d lanes, want %d", len(bits), len(sizes))
		}
		for i, lane := range bits {
			if len(lane) != words {
				t.Fatalf("lane %d has %d words, want %d", i, len(lane), words)
			}
		}
	})
}
