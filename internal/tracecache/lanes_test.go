package tracecache

import (
	"math/rand"
	"os"
	"testing"
)

// randomBits builds lanes deterministic pseudo-random outcome bitsets of
// misses bits each.
func randomBits(lanes int, misses uint64, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	words := outcomeWords(misses)
	bits := make([][]uint64, lanes)
	for i := range bits {
		lane := make([]uint64, words)
		for j := range lane {
			lane[j] = rng.Uint64()
		}
		// Clear the bits past misses so round-tripped data compares exactly.
		if tail := misses % 64; tail != 0 && words > 0 {
			lane[words-1] &= (1 << tail) - 1
		}
		bits[i] = lane
	}
	return bits
}

func TestLaneOutcomesRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("mcf_0")
	sizes := []int64{128 << 10, 1 << 20, 8 << 20}
	for _, misses := range []uint64{0, 1, 63, 64, 65, 12_345} {
		bits := randomBits(len(sizes), misses, int64(misses)+1)
		if err := st.SaveLaneOutcomes(key, 16, sizes, misses, bits); err != nil {
			t.Fatalf("misses=%d: %v", misses, err)
		}
		got, ok := st.OpenLaneOutcomes(key, 16, sizes, misses)
		if !ok {
			t.Fatalf("misses=%d: no hit on just-written sidecar", misses)
		}
		for i := range bits {
			for j := range bits[i] {
				if got[i][j] != bits[i][j] {
					t.Fatalf("misses=%d: lane %d word %d = %#x, want %#x", misses, i, j, got[i][j], bits[i][j])
				}
			}
		}
	}
	if c := st.Counters(); c.OutcomeHits != 6 || c.OutcomeMisses != 0 {
		t.Fatalf("counters = %+v, want 6 outcome hits", c)
	}
}

// TestLaneOutcomesRejectsMismatch: a sidecar loads only under exactly the
// geometry it was written for — any drift in key, ways, sizes, or miss
// count is a silent (counted) miss, never wrong data.
func TestLaneOutcomesRejectsMismatch(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("mcf_0")
	sizes := []int64{128 << 10, 1 << 20}
	const misses = 1000
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, randomBits(len(sizes), misses, 7)); err != nil {
		t.Fatal(err)
	}

	stale := key
	stale.ParamsTag = "00000000deadbeef"
	cases := []struct {
		name string
		ok   bool
	}{{"stale key", false}, {"other ways", false}, {"other sizes", false}, {"other misses", false}, {"exact", true}}
	results := []bool{}
	_, ok := st.OpenLaneOutcomes(stale, 16, sizes, misses)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 8, sizes, misses)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 16, []int64{128 << 10, 2 << 20}, misses)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 16, sizes, misses+1)
	results = append(results, ok)
	_, ok = st.OpenLaneOutcomes(key, 16, sizes, misses)
	results = append(results, ok)
	for i, c := range cases {
		if results[i] != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.name, results[i], c.ok)
		}
	}
}

// TestLaneOutcomesRejectsDamage: bit flips anywhere (magic, header, payload,
// CRC) and truncation all reject the sidecar.
func TestLaneOutcomesRejectsDamage(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("xz_1")
	sizes := []int64{256 << 10}
	const misses = 500
	bits := randomBits(len(sizes), misses, 3)
	if err := st.SaveLaneOutcomes(key, 16, sizes, misses, bits); err != nil {
		t.Fatal(err)
	}
	path := st.LaneOutcomePath(key)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int{0, 9, 20, len(pristine) / 2, len(pristine) - 2} {
		raw := append([]byte(nil), pristine...)
		raw[off] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); ok {
			t.Errorf("flip at %d: damaged sidecar served", off)
		}
	}
	if err := os.WriteFile(path, pristine[:len(pristine)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); ok {
		t.Error("truncated sidecar served")
	}

	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.OpenLaneOutcomes(key, 16, sizes, misses); !ok {
		t.Error("pristine sidecar rejected")
	}
}
