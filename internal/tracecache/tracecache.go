// Package tracecache persists the multi-lane engine's post-L1 front-end
// event streams on disk, so repeated sensitivity studies replay the LLC
// reference stream instead of re-deriving it. The stream is a pure
// deterministic function of the benchmark parameters, the instruction
// budget, and the L1 geometry — after the multi-lane fusion the generator +
// private L1 front-end dominates Figure 11 wall clock (docs/PERFORMANCE.md),
// and every study recomputes it from scratch. A warm cache turns those
// passes into pure replay.
//
// Correctness discipline:
//
//   - Entries are keyed (Key) by benchmark name, instruction budget, L1
//     geometry, and the compiled-in parameter-table fingerprint
//     (experiments.ParamsFingerprint); the format version rides in the file
//     header. Any drift — edited benchmark tables, different budget, new
//     format — fails loudly naming both keys. A stale entry is never
//     silently served; regeneration requires the explicit rebuild flag.
//   - Files are written via fsutil.CreateAtomic: a crash mid-write leaves
//     the old entry or none, never a torn one. Torn or bit-flipped files
//     are caught structurally (size / footer sentinel / per-block bounds)
//     and by an end-to-end CRC + event count in the footer.
//   - The replayed stream is proven bitwise equivalent to the cold path
//     across all 36 benchmarks (TestTraceCacheWarmColdEquivalence).
//
// File layout (all integers little-endian):
//
//	magic "UNTGFE01" (8 bytes)
//	headerLen uint32, then headerLen bytes of JSON {"version":V,"key":{...}},
//	  zero-padded so the data region starts on a 64-byte boundary
//	data blocks: 64 bytes each — byte[63] = payload length n (0..63),
//	  bytes[0:n] = packed events, events never split across blocks
//	  (the batching discipline of SNIPPETS.md Snippet 3's CacheLineBuffer:
//	  fixed cache-line-sized records with the size in the last slot)
//	footer: one final 64-byte block — byte[63] = 0xFF sentinel,
//	  bytes[0:8] = event count, bytes[8:12] = CRC-32C over every event's
//	  encoded bytes
//
// Event encoding (within a block's payload): a control byte whose low two
// bits are the kind and whose high six bits inline non-mem runs < 63 (63
// escapes to a following uvarint), then — for L1 misses only — the address
// as a zigzag-encoded delta uvarint, the same discipline as
// internal/isa/tracefile.go. Typical events are one byte; an L1 miss in a
// strided scan is two or three.
package tracecache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"untangle/internal/fsutil"
	"untangle/internal/telemetry"
)

// Event is one front-end op after L1 resolution: a run of NonMem
// non-memory instructions, then (for KindL1Hit/KindL1Miss) one memory
// access. In the classic encoding only L1 misses carry an address — they
// are the only events whose cost differs between LLC lanes. The rich
// encoding (mix streams, see CreateRich) additionally carries the Flags
// bits and an address for monitor-observed hits, so a full sim back-end
// can be replayed from the stream. The experiments engine's feEvent is an
// alias of this type.
type Event struct {
	Addr   uint64
	NonMem uint32
	Kind   uint8
	Flags  uint8 // rich entries only; zero in classic entries
	// MonMask is in-memory annotation only, never persisted: the monitor
	// shadow-array hit vector (monitor.Monitor.HitMask) the fused mix
	// engine precomputes for FlagMonObserve events so replay lanes apply
	// it via ObserveMask instead of re-simulating the shadow arrays.
	// Writers ignore it; readers return it zero — the engine recomputes
	// masks from the decoded stream.
	MonMask uint16
}

// Event kinds. The values are part of the on-disk format; never renumber.
const (
	KindNoMem       uint8 = iota // no memory access (or the access was truncated away)
	KindL1Hit                    // access served by the private L1
	KindL1Miss                   // access missed the L1; lanes look it up in their LLC
	KindMeasuredEnd              // rich entries only: marker separating the measured stream from the pressure tail
)

// Event flag bits (rich encoding only). The values are part of the on-disk
// format; never renumber. FlagMonObserve is the precomputed monitor gate:
// the op passed the secret-use annotation filter AND missed the monitor's
// L1-sized filter cache — both scheme-independent — so dynamic lanes feed
// the access straight to their monitors. FlagPublic is the precomputed
// secret-progress gate for the public retired-instruction counter.
const (
	FlagWrite       uint8 = 1 << iota // the access is a write
	FlagMonObserve                    // dynamic lanes call mon.Observe(addr, write)
	FlagPublic                        // op counts toward publicRetired
	FlagL1Evict                       // the access evicted a private-L1 line
	FlagL1Writeback                   // the eviction wrote a dirty line back
)

// flagsMask covers every defined flag bit; the control byte's spare bit
// must be zero, which catches garbage on decode.
const flagsMask uint8 = FlagWrite | FlagMonObserve | FlagPublic | FlagL1Evict | FlagL1Writeback

// FormatVersion is bumped on any change to the file layout or event
// encoding; entries written by another version fail loudly on open.
const FormatVersion = 1

// Key identifies one cacheable front-end stream. Every field that can
// change the stream participates: the benchmark (its parameter row), the
// instruction budget (the generator is limited to 2x instructions), the L1
// geometry (hit/miss resolution), and ParamsTag — the compiled-in
// parameter-table fingerprint (experiments.ParamsFingerprint), which
// invalidates every entry when the benchmark tables themselves are edited.
// The scale knob enters through Instructions (commands derive the budget
// from scale before the engine runs).
type Key struct {
	Benchmark    string `json:"benchmark"`
	Instructions uint64 `json:"instructions"`
	L1Bytes      int64  `json:"l1_bytes"`
	L1Ways       int    `json:"l1_ways"`
	ParamsTag    string `json:"params_tag"`

	// Mix-stream fields (rich entries, see CreateRich). Flavor is "mix";
	// Domain is the domain slot (the address offset hashes into L1 set
	// selection, so the same pair in different slots produces different
	// streams); CryptoPhase/SpecPhase pin the loop interleave; Secret and
	// Unannotated pin the crypto-side knobs that change the op stream.
	// All zero for the classic sensitivity-study streams, so existing
	// entries keep matching.
	Flavor      string `json:"flavor,omitempty"`
	Domain      int    `json:"domain,omitempty"`
	CryptoPhase uint64 `json:"crypto_phase,omitempty"`
	SpecPhase   uint64 `json:"spec_phase,omitempty"`
	Secret      uint64 `json:"secret,omitempty"`
	Unannotated bool   `json:"unannotated,omitempty"`
}

// String renders the key for error messages.
func (k Key) String() string {
	s := fmt.Sprintf("{bench=%s instructions=%d l1=%dB/%dw params=%s",
		k.Benchmark, k.Instructions, k.L1Bytes, k.L1Ways, k.ParamsTag)
	if k.Flavor != "" {
		s += fmt.Sprintf(" flavor=%s domain=%d phases=%d/%d", k.Flavor, k.Domain, k.CryptoPhase, k.SpecPhase)
		if k.Secret != 0 {
			s += fmt.Sprintf(" secret=%#x", k.Secret)
		}
		if k.Unannotated {
			s += " unannotated"
		}
	}
	return s + "}"
}

// Sentinel errors. ErrCorrupt covers structural damage (bad magic, torn
// size, failed CRC or count); ErrKeyMismatch covers a well-formed entry
// written under a different key or format version. Both are "the cache
// cannot serve this" conditions: fatal by default, treated as a miss (and
// counted as a rebuild) when the store was opened with rebuild enabled.
var (
	ErrCorrupt     = errors.New("tracecache: corrupt entry")
	ErrKeyMismatch = errors.New("tracecache: key mismatch")
)

// Store is an on-disk cache directory of front-end streams. All methods
// are safe for concurrent use; per-entry locks (Lock) give callers
// single-flight generation. A nil *Store is not valid — callers model
// "cache off" as the absence of a store.
type Store struct {
	dir     string
	rebuild bool

	mu    sync.Mutex
	locks map[string]*sync.Mutex

	hits          atomic.Int64
	misses        atomic.Int64
	rebuilds      atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	outcomeHits   atomic.Int64 // lane-outcome sidecar loads (see lanes.go)
	outcomeMisses atomic.Int64 // sidecar absent/mismatched/corrupt, re-probed
}

// NewStore opens (creating if needed) the cache directory. rebuild selects
// the recovery policy for corrupt or mismatched entries: false fails
// loudly, true treats them as misses and overwrites them with freshly
// generated streams.
func NewStore(dir string, rebuild bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	return &Store{dir: dir, rebuild: rebuild, locks: map[string]*sync.Mutex{}}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// RebuildEnabled reports whether corrupt/mismatched entries may be
// regenerated instead of failing the run.
func (s *Store) RebuildEnabled() bool { return s.rebuild }

// EntryPath is the file an entry lives at. Benchmark names are
// filesystem-safe by construction ([a-z0-9_], see internal/workload), and
// the instruction budget is in the name so differently-scaled campaigns
// coexist in one directory.
func (s *Store) EntryPath(key Key) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%d.fetrace", key.Benchmark, key.Instructions))
}

// Lock takes the entry's single-flight lock and returns the unlock func.
// Callers hold it across the whole open-or-generate sequence, so a
// parallel 36-way fan-out that maps two workers onto the same benchmark
// generates the stream once: the second worker blocks, then hits.
//
// The lock has two layers. An in-process mutex serializes goroutines of
// one process; an advisory flock on `<entry>.lock` (fsutil.LockFile)
// serializes the worker *processes* of a sharded campaign, which share the
// cache directory read-mostly. The flock layer is best-effort: if the
// filesystem refuses it, generation proceeds without cross-process
// exclusion — atomic publication keeps the cache sound either way, the
// lock only prevents duplicate generation work (and the kernel drops it
// automatically when a worker dies, so a killed worker never wedges the
// campaign).
func (s *Store) Lock(key Key) func() {
	path := s.EntryPath(key)
	s.mu.Lock()
	l, ok := s.locks[path]
	if !ok {
		l = &sync.Mutex{}
		s.locks[path] = l
	}
	s.mu.Unlock()
	l.Lock()
	unlockFile, err := fsutil.LockFile(path + ".lock")
	if err != nil {
		unlockFile = nil
	}
	return func() {
		if unlockFile != nil {
			unlockFile()
		}
		l.Unlock()
	}
}

// Open returns a reader over the entry for key, or (nil, nil) on a cache
// miss. A corrupt or key-mismatched entry is an error naming both keys —
// unless the store was opened with rebuild, which demotes it to a counted
// miss so the caller regenerates.
func (s *Store) Open(key Key) (*Reader, error) {
	path := s.EntryPath(key)
	r, err := openReader(path, s)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.misses.Add(1)
			return nil, nil
		}
		if s.rebuild && errors.Is(err, ErrCorrupt) {
			s.rebuilds.Add(1)
			s.misses.Add(1)
			return nil, nil
		}
		return nil, err
	}
	if r.key != key || r.version != FormatVersion {
		r.Close()
		if s.rebuild {
			s.rebuilds.Add(1)
			s.misses.Add(1)
			return nil, nil
		}
		return nil, fmt.Errorf("%w: %s holds key %s (format v%d), want %s (format v%d) — delete it or rerun with -fe-cache-rebuild",
			ErrKeyMismatch, path, r.key, r.version, key, FormatVersion)
	}
	s.hits.Add(1)
	return r, nil
}

// Create starts writing the entry for key. The bytes stage in a temporary
// file (fsutil.CreateAtomic); only Commit publishes them, so a crash or an
// error mid-generation leaves the previous entry (or none) intact.
func (s *Store) Create(key Key) (*Writer, error) {
	return newWriter(s, key, false)
}

// CreateRich starts writing a rich-encoded entry (mix streams): events
// carry the Flags bits, monitor-observed hits carry addresses, and a
// KindMeasuredEnd marker separates the measured stream from the pressure
// tail. Same staging and atomic-publish discipline as Create.
func (s *Store) CreateRich(key Key) (*Writer, error) {
	return newWriter(s, key, true)
}

// NoteRebuild counts one mid-stream rebuild: a replay that began from a
// structurally valid entry but hit corruption partway and fell back to
// regeneration (only possible with rebuild enabled).
func (s *Store) NoteRebuild() { s.rebuilds.Add(1) }

// Counters is a snapshot of the store's lifetime counters.
type Counters struct {
	Hits          int64
	Misses        int64
	Rebuilds      int64
	BytesRead     int64
	BytesWritten  int64
	OutcomeHits   int64 // warm passes that skipped LLC probes via a sidecar
	OutcomeMisses int64 // warm passes that re-probed (sidecar absent or rejected)
}

// Counters snapshots the store's counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Rebuilds:      s.rebuilds.Load(),
		BytesRead:     s.bytesRead.Load(),
		BytesWritten:  s.bytesWritten.Load(),
		OutcomeHits:   s.outcomeHits.Load(),
		OutcomeMisses: s.outcomeMisses.Load(),
	}
}

// RegisterMetrics exposes the counters on a telemetry registry (the one
// internal/obs serves at /metrics) as lazy gauges — sampled at scrape
// time, costing nothing between scrapes. Nil-safe in both arguments.
func (s *Store) RegisterMetrics(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.GaugeFunc("obs.fecache.hits", func() float64 { return float64(s.hits.Load()) })
	reg.GaugeFunc("obs.fecache.misses", func() float64 { return float64(s.misses.Load()) })
	reg.GaugeFunc("obs.fecache.rebuilds", func() float64 { return float64(s.rebuilds.Load()) })
	reg.GaugeFunc("obs.fecache.bytes_read", func() float64 { return float64(s.bytesRead.Load()) })
	reg.GaugeFunc("obs.fecache.bytes_written", func() float64 { return float64(s.bytesWritten.Load()) })
	reg.GaugeFunc("obs.fecache.outcome_hits", func() float64 { return float64(s.outcomeHits.Load()) })
	reg.GaugeFunc("obs.fecache.outcome_misses", func() float64 { return float64(s.outcomeMisses.Load()) })
}
