package tracecache

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"untangle/internal/telemetry"
)

func testKey(bench string) Key {
	return Key{Benchmark: bench, Instructions: 100_000, L1Bytes: 32 << 10, L1Ways: 8, ParamsTag: "deadbeefdeadbeef"}
}

// randomEvents builds a deterministic pseudo-random stream exercising every
// encoding path: all three kinds, inline and escaped non-mem runs, small
// and huge address deltas (forward and backward).
func randomEvents(n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	addr := uint64(1 << 40)
	for i := range events {
		ev := Event{Kind: uint8(rng.Intn(3))}
		switch rng.Intn(4) {
		case 0:
			ev.NonMem = uint32(rng.Intn(nonMemEscape)) // inline
		case 1:
			ev.NonMem = nonMemEscape + uint32(rng.Intn(100)) // escaped, small
		case 2:
			ev.NonMem = uint32(rng.Uint64()) // escaped, up to 32 bits
		}
		if ev.Kind == KindL1Miss {
			switch rng.Intn(3) {
			case 0:
				addr += 64
			case 1:
				addr -= uint64(rng.Intn(1 << 20))
			case 2:
				addr = rng.Uint64()
			}
			ev.Addr = addr
		}
		events[i] = ev
	}
	return events
}

func writeEntry(t *testing.T, st *Store, key Key, events []Event) {
	t.Helper()
	w, err := st.Create(key)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Split into uneven batches to exercise batch-boundary handling.
	for i := 0; i < len(events); {
		n := 1 + (i*7)%513
		if i+n > len(events) {
			n = len(events) - i
		}
		if err := w.WriteEvents(events[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func readAll(r *Reader, batch int) ([]Event, error) {
	var out []Event
	buf := make([]Event, batch)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

func TestRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("mcf_0")
	events := randomEvents(20_000, 1)
	writeEntry(t, st, key, events)

	// Batch size must not matter: the reader carries state across Read calls.
	for _, batch := range []int{1, 7, 4096, 100_000} {
		r, err := st.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			t.Fatal("expected a hit")
		}
		got, err := readAll(r, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		r.Close()
		if len(got) != len(events) {
			t.Fatalf("batch %d: decoded %d events, want %d", batch, len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("batch %d: event %d = %+v, want %+v", batch, i, got[i], events[i])
			}
		}
	}

	c := st.Counters()
	if c.Misses != 0 || c.Hits != 4 {
		t.Fatalf("counters = %+v, want 4 hits, 0 misses", c)
	}
	if c.BytesWritten == 0 || c.BytesRead == 0 {
		t.Fatalf("byte counters not advanced: %+v", c)
	}
}

func TestEmptyStream(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("empty")
	writeEntry(t, st, key, nil)
	r, err := st.Open(key)
	if err != nil || r == nil {
		t.Fatalf("open: %v, %v", r, err)
	}
	defer r.Close()
	got, err := readAll(r, 16)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d events, err %v", len(got), err)
	}
}

func TestMissThenHit(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("lbm_0")
	if r, err := st.Open(key); err != nil || r != nil {
		t.Fatalf("expected a clean miss, got %v, %v", r, err)
	}
	writeEntry(t, st, key, randomEvents(100, 2))
	r, err := st.Open(key)
	if err != nil || r == nil {
		t.Fatalf("expected a hit, got %v, %v", r, err)
	}
	r.Close()
	if c := st.Counters(); c.Misses != 1 || c.Hits != 1 {
		t.Fatalf("counters = %+v, want 1 miss then 1 hit", c)
	}
}

func TestUncommittedWriteLeavesNoEntry(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("gcc_0")
	w, err := st.Create(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents(randomEvents(1000, 3)); err != nil {
		t.Fatal(err)
	}
	w.Close() // abort: no Commit
	if _, err := os.Stat(st.EntryPath(key)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted write left an entry: %v", err)
	}
	if r, err := st.Open(key); err != nil || r != nil {
		t.Fatalf("expected a miss after aborted write, got %v, %v", r, err)
	}
}

func TestKeyMismatchFailsLoudlyNamingBothKeys(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("xz_0")
	writeEntry(t, st, key, randomEvents(50, 4))

	want := key
	want.ParamsTag = "0123456789abcdef" // parameter tables drifted
	_, err = st.Open(want)
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
	for _, tag := range []string{key.ParamsTag, want.ParamsTag, "-fe-cache-rebuild"} {
		if !strings.Contains(err.Error(), tag) {
			t.Fatalf("error %q does not name %q", err, tag)
		}
	}

	// With rebuild enabled the mismatch demotes to a counted miss.
	st2, err := NewStore(st.Dir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := st2.Open(want); err != nil || r != nil {
		t.Fatalf("rebuild store: got %v, %v, want miss", r, err)
	}
	if c := st2.Counters(); c.Rebuilds != 1 || c.Misses != 1 {
		t.Fatalf("rebuild counters = %+v", c)
	}
}

// corruptions damages a committed entry in every structural way the format
// must catch.
func TestCorruptionDetected(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, path string)
		// openFails: damage visible at Open; otherwise it must surface
		// from Read as ErrCorrupt.
		openFails bool
	}{
		{"bad magic", func(t *testing.T, path string) { patch(t, path, 0, []byte{'X'}) }, true},
		{"truncated to torn block", func(t *testing.T, path string) { truncateBy(t, path, 13) }, true},
		{"footer block removed", func(t *testing.T, path string) { truncateBy(t, path, blockSize) }, true},
		{"oversized header length", func(t *testing.T, path string) {
			patch(t, path, 8, []byte{0xFF, 0xFF, 0xFF, 0x7F})
		}, true},
		{"flipped payload bit", func(t *testing.T, path string) {
			flipDataByte(t, path, 0)
		}, false},
		{"block length out of range", func(t *testing.T, path string) {
			// First data block's length slot -> 0x7F > payloadMax.
			patchDataBlockLen(t, path)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := NewStore(t.TempDir(), false)
			if err != nil {
				t.Fatal(err)
			}
			key := testKey("nab_0")
			writeEntry(t, st, key, randomEvents(5000, 5))
			tc.mutate(t, st.EntryPath(key))
			r, err := st.Open(key)
			if tc.openFails {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open err = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer r.Close()
			if _, err := readAll(r, 4096); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Read err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// patch overwrites bytes at off in path.
func patch(t *testing.T, path string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// dataStart locates the first data block (after the padded header).
func dataStart(t *testing.T, path string) int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var pre [12]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil {
		t.Fatal(err)
	}
	hLen := int64(uint32(pre[8]) | uint32(pre[9])<<8 | uint32(pre[10])<<16 | uint32(pre[11])<<24)
	return (12 + hLen + blockSize - 1) / blockSize * blockSize
}

func flipDataByte(t *testing.T, path string, idx int64) {
	t.Helper()
	off := dataStart(t, path) + idx
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func patchDataBlockLen(t *testing.T, path string) {
	t.Helper()
	patch(t, path, dataStart(t, path)+payloadMax, []byte{0x7F})
}

func TestSingleFlightLock(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("roms_0")
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			unlock := st.Lock(key)
			defer unlock()
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			r, err := st.Open(key)
			if err != nil {
				t.Error(err)
			}
			if r == nil {
				w, err := st.Create(key)
				if err != nil {
					t.Error(err)
					return
				}
				defer w.Close()
				if err := w.WriteEvents(randomEvents(200, 6)); err != nil {
					t.Error(err)
				}
				if err := w.Commit(); err != nil {
					t.Error(err)
				}
			} else {
				r.Close()
			}
			mu.Lock()
			inFlight--
			mu.Unlock()
		}()
	}
	wg.Wait()
	if maxInFlight != 1 {
		t.Fatalf("lock admitted %d concurrent holders", maxInFlight)
	}
	if c := st.Counters(); c.Misses != 1 || c.Hits != 7 {
		t.Fatalf("counters = %+v, want exactly one generation", c)
	}
}

func TestReadInfo(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("bwaves_0")
	events := []Event{
		{Kind: KindNoMem, NonMem: 10},
		{Kind: KindL1Hit, NonMem: 3},
		{Kind: KindL1Miss, NonMem: 0, Addr: 0x1000},
		{Kind: KindL1Miss, NonMem: 100, Addr: 0x2000},
	}
	writeEntry(t, st, key, events)
	path := st.EntryPath(key)

	if ok, err := IsCacheFile(path); err != nil || !ok {
		t.Fatalf("IsCacheFile = %v, %v", ok, err)
	}
	info, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Key != key || info.Version != FormatVersion {
		t.Fatalf("info key/version = %+v", info)
	}
	if info.Events != 4 || info.ByKind != [4]uint64{1, 1, 2, 0} || info.MemOps() != 3 {
		t.Fatalf("info counts = %+v", info)
	}
	if want := uint64(10 + 3 + 1 + 1 + 100 + 1); info.Instructions != want {
		t.Fatalf("instructions = %d, want %d", info.Instructions, want)
	}
}

func TestRegisterMetrics(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	st.RegisterMetrics(nil) // nil-safe
	key := testKey("povray_0")
	writeEntry(t, st, key, randomEvents(10, 7))
	r, err := st.Open(key)
	if err != nil || r == nil {
		t.Fatalf("open: %v, %v", r, err)
	}
	if _, err := readAll(r, 8); err != nil {
		t.Fatal(err)
	}
	r.Close()
	reg := telemetry.NewRegistry()
	st.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["obs.fecache.hits"]; got != 1 {
		t.Fatalf("obs.fecache.hits = %v, want 1", got)
	}
	if got := snap.Gauges["obs.fecache.bytes_written"]; got <= 0 {
		t.Fatalf("obs.fecache.bytes_written = %v, want > 0", got)
	}
}

func BenchmarkWriteEvents(b *testing.B) {
	st, err := NewStore(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	events := randomEvents(1<<16, 8)
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := testKey("bench")
		w, err := st.Create(key)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteEvents(events); err != nil {
			b.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
}

func BenchmarkReadEvents(b *testing.B) {
	st, err := NewStore(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	events := randomEvents(1<<16, 9)
	key := testKey("bench")
	w, err := st.Create(key)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.WriteEvents(events); err != nil {
		b.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		b.Fatal(err)
	}
	buf := make([]Event, 4096)
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := st.Open(key)
		if err != nil || r == nil {
			b.Fatalf("open: %v, %v", r, err)
		}
		for {
			_, err := r.Read(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
}
