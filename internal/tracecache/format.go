package tracecache

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"untangle/internal/fsutil"
)

const (
	blockSize      = 64            // one cache line per record block
	payloadMax     = blockSize - 1 // last byte holds the payload length
	footerSentinel = 0xFF          // payload-length slot value marking the footer
	// maxEventSize bounds one encoded event: control byte + escaped non-mem
	// uvarint + address-delta uvarint. Events never split across blocks, so
	// this must fit in payloadMax (it does, with room: 16 <= 63).
	maxEventSize = 1 + binary.MaxVarintLen32 + binary.MaxVarintLen64

	// nonMemEscape in the control byte's high six bits means the run length
	// did not fit inline and follows as a uvarint.
	nonMemEscape = 63
)

var magic = [8]byte{'U', 'N', 'T', 'G', 'F', 'E', '0', '1'}

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zigzag/unzigzag map signed address deltas to unsigned varint space — the
// same discipline as internal/isa/tracefile.go's trace records.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// header is the JSON document after the magic: the format version, the
// full key, and the event encoding ("rich" for mix streams; absent for the
// classic encoding), so a mismatch diagnostic can name what the file
// actually holds and `tracegen -info` can print it.
type header struct {
	Version int    `json:"version"`
	Key     Key    `json:"key"`
	Events  string `json:"events,omitempty"`
}

// richEvents is the header.Events value selecting the rich encoding.
const richEvents = "rich"

// headerBytes renders the file prefix: magic, headerLen, JSON, zero padding
// to a block boundary so the data region is 64-byte aligned.
func headerBytes(key Key, rich bool) ([]byte, error) {
	h := header{Version: FormatVersion, Key: key}
	if rich {
		h.Events = richEvents
	}
	doc, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	n := len(magic) + 4 + len(doc)
	padded := (n + blockSize - 1) / blockSize * blockSize
	buf := make([]byte, padded)
	copy(buf, magic[:])
	binary.LittleEndian.PutUint32(buf[len(magic):], uint32(len(doc)))
	copy(buf[len(magic)+4:], doc)
	return buf, nil
}

// Writer streams events into a staged cache entry. Events accumulate into
// 64-byte blocks; Commit seals the footer (count + CRC) and atomically
// publishes the file. Close without Commit discards everything.
type Writer struct {
	st   *Store
	af   *fsutil.AtomicFile
	bw   *bufio.Writer
	rich bool

	block    [blockSize]byte
	n        int // payload bytes staged in block
	prevAddr uint64
	count    uint64
	crc      uint32
	written  int64
}

func newWriter(st *Store, key Key, rich bool) (*Writer, error) {
	hdr, err := headerBytes(key, rich)
	if err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	af, err := fsutil.CreateAtomic(st.EntryPath(key))
	if err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	bw := bufio.NewWriterSize(af, 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		af.Close()
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	return &Writer{st: st, af: af, bw: bw, rich: rich, written: int64(len(hdr))}, nil
}

// WriteEvents appends a batch of events. Safe to call with the engine's
// reused chunk buffer — bytes are copied out before returning.
func (w *Writer) WriteEvents(events []Event) error {
	if w.rich {
		return w.writeRichEvents(events)
	}
	var scratch [maxEventSize]byte
	for _, ev := range events {
		if ev.Kind > KindL1Miss {
			return fmt.Errorf("tracecache: invalid event kind %d", ev.Kind)
		}
		if ev.Flags != 0 {
			// The classic encoding has no flag bits; dropping them silently
			// would decode to a different stream.
			return fmt.Errorf("tracecache: event flags %#x need the rich encoding (CreateRich)", ev.Flags)
		}
		scratch[0] = ev.Kind
		n := 1
		if ev.NonMem < nonMemEscape {
			scratch[0] |= uint8(ev.NonMem) << 2
		} else {
			scratch[0] |= nonMemEscape << 2
			n += binary.PutUvarint(scratch[n:], uint64(ev.NonMem))
		}
		if ev.Kind == KindL1Miss {
			delta := int64(ev.Addr) - int64(w.prevAddr)
			n += binary.PutUvarint(scratch[n:], zigzag(delta))
			w.prevAddr = ev.Addr
		}
		if err := w.put(scratch[:n]); err != nil {
			return err
		}
	}
	return nil
}

// writeRichEvents encodes the rich layout: control byte = kind (low two
// bits) | flags (bits 2..6, bit 7 spare and zero), then the non-mem run as
// a plain uvarint, then — when the event carries an address (an L1 miss,
// or any access the monitor observes) — the address as a zigzag delta
// uvarint on the writer's single delta chain.
func (w *Writer) writeRichEvents(events []Event) error {
	var scratch [maxEventSize]byte
	for _, ev := range events {
		if ev.Kind > KindMeasuredEnd {
			return fmt.Errorf("tracecache: invalid event kind %d", ev.Kind)
		}
		if ev.Flags&^flagsMask != 0 {
			return fmt.Errorf("tracecache: invalid event flags %#x", ev.Flags)
		}
		if ev.Kind == KindMeasuredEnd && (ev.Flags != 0 || ev.NonMem != 0 || ev.Addr != 0) {
			return fmt.Errorf("tracecache: measured-end marker must be empty")
		}
		scratch[0] = ev.Kind | ev.Flags<<2
		n := 1 + binary.PutUvarint(scratch[1:], uint64(ev.NonMem))
		if richHasAddr(ev.Kind, ev.Flags) {
			delta := int64(ev.Addr) - int64(w.prevAddr)
			n += binary.PutUvarint(scratch[n:], zigzag(delta))
			w.prevAddr = ev.Addr
		}
		if err := w.put(scratch[:n]); err != nil {
			return err
		}
	}
	return nil
}

// richHasAddr reports whether a rich event carries an address field.
func richHasAddr(kind, flags uint8) bool {
	return kind == KindL1Miss || flags&FlagMonObserve != 0
}

// put stages one encoded event, flushing the block first if it would not
// fit (events never split across blocks).
func (w *Writer) put(enc []byte) error {
	if w.n+len(enc) > payloadMax {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	copy(w.block[w.n:], enc)
	w.n += len(enc)
	w.crc = crc32.Update(w.crc, castagnoli, enc)
	w.count++
	return nil
}

// flushBlock seals the staged payload into one 64-byte record: zero the
// slack, stamp the payload length in the last slot, emit.
func (w *Writer) flushBlock() error {
	for i := w.n; i < payloadMax; i++ {
		w.block[i] = 0
	}
	w.block[payloadMax] = byte(w.n)
	if _, err := w.bw.Write(w.block[:]); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	w.written += blockSize
	w.n = 0
	return nil
}

// Count returns the events written so far.
func (w *Writer) Count() uint64 { return w.count }

// Commit seals the entry — partial block, footer (sentinel, event count,
// CRC-32C), flush, fsync, atomic rename — and records the bytes written on
// the store. After Commit the writer is spent.
func (w *Writer) Commit() error {
	if w.n > 0 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	var footer [blockSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], w.count)
	binary.LittleEndian.PutUint32(footer[8:12], w.crc)
	footer[payloadMax] = footerSentinel
	if _, err := w.bw.Write(footer[:]); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	w.written += blockSize
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := w.af.Commit(); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	if w.st != nil {
		w.st.bytesWritten.Add(w.written)
	}
	return nil
}

// Close discards an uncommitted entry (no-op after Commit). Always safe to
// defer next to a conditional Commit.
func (w *Writer) Close() error { return w.af.Close() }

// Reader streams events back out of a cache entry. The footer's event
// count and CRC are verified when the stream drains: mid-file bit flips
// surface as ErrCorrupt from Read, never as silently wrong events.
type Reader struct {
	st *Store
	f  *os.File
	br *bufio.Reader

	key     Key
	version int
	rich    bool

	block    [blockSize]byte
	pos, n   int
	prevAddr uint64

	decoded   uint64
	wantCount uint64
	crc       uint32
	wantCRC   uint32
	dataLeft  int64
	read      int64
	finished  bool
}

// openReader validates the file's structure and header and positions the
// stream at the first data block. st may be nil (ReadInfo's path); key
// comparison is the caller's job — this layer only guarantees the file is
// structurally sound end to end.
func openReader(path string, st *Store) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := prepareReader(f, st)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return r, nil
}

func prepareReader(f *os.File, st *Store) (*Reader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size%blockSize != 0 || size < 2*blockSize {
		return nil, fmt.Errorf("size %d is not a positive multiple of %d — torn or truncated", size, blockSize)
	}
	var pre [12]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil {
		return nil, err
	}
	if [8]byte(pre[0:8]) != magic {
		return nil, fmt.Errorf("bad magic %q", pre[0:8])
	}
	hLen := int64(binary.LittleEndian.Uint32(pre[8:12]))
	headerEnd := (12 + hLen + blockSize - 1) / blockSize * blockSize
	if hLen <= 0 || headerEnd+blockSize > size {
		return nil, fmt.Errorf("header length %d exceeds file", hLen)
	}
	doc := make([]byte, hLen)
	if _, err := io.ReadFull(f, doc); err != nil {
		return nil, err
	}
	var h header
	if err := json.Unmarshal(doc, &h); err != nil {
		return nil, fmt.Errorf("bad header JSON: %v", err)
	}
	if h.Events != "" && h.Events != richEvents {
		return nil, fmt.Errorf("unknown event encoding %q", h.Events)
	}
	var footer [blockSize]byte
	if _, err := f.ReadAt(footer[:], size-blockSize); err != nil {
		return nil, err
	}
	if footer[payloadMax] != footerSentinel {
		return nil, fmt.Errorf("missing footer sentinel — torn or truncated")
	}
	if _, err := f.Seek(headerEnd, io.SeekStart); err != nil {
		return nil, err
	}
	dataLen := size - headerEnd - blockSize
	return &Reader{
		st:        st,
		f:         f,
		br:        bufio.NewReaderSize(io.LimitReader(f, dataLen), 1<<16),
		key:       h.Key,
		version:   h.Version,
		rich:      h.Events == richEvents,
		wantCount: binary.LittleEndian.Uint64(footer[0:8]),
		wantCRC:   binary.LittleEndian.Uint32(footer[8:12]),
		dataLeft:  dataLen,
		read:      headerEnd + blockSize, // header and footer count as read
	}, nil
}

// Key returns the key embedded in the entry's header.
func (r *Reader) Key() Key { return r.key }

// Version returns the format version the entry was written with.
func (r *Reader) Version() int { return r.version }

// Rich reports whether the entry uses the rich event encoding (flags +
// measured-end marker; mix streams).
func (r *Reader) Rich() bool { return r.rich }

// Count returns the footer's event count.
func (r *Reader) Count() uint64 { return r.wantCount }

// Read decodes up to len(buf) events, returning the number decoded.
// io.EOF (possibly alongside a final short batch) signals a cleanly
// verified end of stream; any structural damage, count or CRC mismatch
// wraps ErrCorrupt.
func (r *Reader) Read(buf []Event) (int, error) {
	if r.finished {
		return 0, io.EOF
	}
	for i := range buf {
		for r.pos == r.n {
			ok, err := r.nextBlock()
			if err != nil {
				return i, err
			}
			if !ok {
				return i, r.finish()
			}
		}
		start := r.pos
		var ev Event
		if r.rich {
			var err error
			if ev, err = r.decodeRich(); err != nil {
				return i, err
			}
		} else {
			var err error
			if ev, err = r.decodeClassic(); err != nil {
				return i, err
			}
		}
		r.crc = crc32.Update(r.crc, castagnoli, r.block[start:r.pos])
		r.decoded++
		buf[i] = ev
	}
	return len(buf), nil
}

// decodeClassic decodes one event in the classic (sensitivity-study)
// layout: inline non-mem run in the control byte, addresses on misses only.
func (r *Reader) decodeClassic() (Event, error) {
	c := r.block[r.pos]
	r.pos++
	kind := c & 3
	if kind > KindL1Miss {
		return Event{}, fmt.Errorf("%w: invalid event kind %d", ErrCorrupt, kind)
	}
	ev := Event{Kind: kind, NonMem: uint32(c >> 2)}
	if ev.NonMem == nonMemEscape {
		v, n := binary.Uvarint(r.block[r.pos:r.n])
		if n <= 0 || v > 0xFFFFFFFF {
			return Event{}, fmt.Errorf("%w: bad non-mem run at event %d", ErrCorrupt, r.decoded)
		}
		r.pos += n
		ev.NonMem = uint32(v)
	}
	if kind == KindL1Miss {
		zz, n := binary.Uvarint(r.block[r.pos:r.n])
		if n <= 0 {
			return Event{}, fmt.Errorf("%w: bad address at event %d", ErrCorrupt, r.decoded)
		}
		r.pos += n
		ev.Addr = uint64(int64(r.prevAddr) + unzigzag(zz))
		r.prevAddr = ev.Addr
	}
	return ev, nil
}

// decodeRich decodes one event in the rich (mix-stream) layout; see
// writeRichEvents for the format.
func (r *Reader) decodeRich() (Event, error) {
	c := r.block[r.pos]
	r.pos++
	if c>>7 != 0 {
		return Event{}, fmt.Errorf("%w: control byte %#x has the spare bit set", ErrCorrupt, c)
	}
	ev := Event{Kind: c & 3, Flags: (c >> 2) & flagsMask}
	v, n := binary.Uvarint(r.block[r.pos:r.n])
	if n <= 0 || v > 0xFFFFFFFF {
		return Event{}, fmt.Errorf("%w: bad non-mem run at event %d", ErrCorrupt, r.decoded)
	}
	r.pos += n
	ev.NonMem = uint32(v)
	if ev.Kind == KindMeasuredEnd && (ev.Flags != 0 || ev.NonMem != 0) {
		return Event{}, fmt.Errorf("%w: non-empty measured-end marker at event %d", ErrCorrupt, r.decoded)
	}
	if richHasAddr(ev.Kind, ev.Flags) {
		zz, n := binary.Uvarint(r.block[r.pos:r.n])
		if n <= 0 {
			return Event{}, fmt.Errorf("%w: bad address at event %d", ErrCorrupt, r.decoded)
		}
		r.pos += n
		ev.Addr = uint64(int64(r.prevAddr) + unzigzag(zz))
		r.prevAddr = ev.Addr
	}
	return ev, nil
}

// nextBlock loads the next data block; false means the data region is
// exhausted.
func (r *Reader) nextBlock() (bool, error) {
	if r.dataLeft == 0 {
		return false, nil
	}
	if _, err := io.ReadFull(r.br, r.block[:]); err != nil {
		return false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	r.dataLeft -= blockSize
	r.read += blockSize
	n := int(r.block[payloadMax])
	if n > payloadMax {
		return false, fmt.Errorf("%w: block payload length %d", ErrCorrupt, n)
	}
	r.pos, r.n = 0, n
	return true, nil
}

// finish validates the drained stream against the footer.
func (r *Reader) finish() error {
	r.finished = true
	if r.decoded != r.wantCount {
		return fmt.Errorf("%w: decoded %d events, footer says %d", ErrCorrupt, r.decoded, r.wantCount)
	}
	if r.crc != r.wantCRC {
		return fmt.Errorf("%w: CRC mismatch (%08x != %08x)", ErrCorrupt, r.crc, r.wantCRC)
	}
	return io.EOF
}

// Close releases the file and records bytes consumed on the store.
func (r *Reader) Close() error {
	if r.st != nil {
		r.st.bytesRead.Add(r.read)
		r.st = nil
	}
	return r.f.Close()
}
