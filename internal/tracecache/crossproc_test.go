package tracecache

import (
	"testing"
	"time"
)

// Two Store instances over the same directory stand in for two worker
// processes of a sharded campaign: the single-flight lock must exclude
// them, not just goroutines of one process — otherwise both workers
// generate the same cold trace-cache entry.
func TestLockExcludesAcrossStores(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Benchmark: "bench_a", Instructions: 1000}

	unlock1 := s1.Lock(key)
	acquired := make(chan func(), 1)
	go func() { acquired <- s2.Lock(key) }()

	select {
	case <-acquired:
		t.Fatal("second store acquired the entry lock while the first held it")
	case <-time.After(100 * time.Millisecond):
	}

	unlock1()
	select {
	case unlock2 := <-acquired:
		unlock2()
	case <-time.After(5 * time.Second):
		t.Fatal("second store never acquired the lock after release")
	}
}
