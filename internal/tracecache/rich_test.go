package tracecache

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"testing"
)

// randomRichEvents builds a stream exercising the rich encoding: every
// kind, every flag combination, addresses both for misses and for
// monitor-observed hits, and a measured-end marker at the given position.
func randomRichEvents(n, marker int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	addr := uint64(3 << 44)
	for i := range events {
		if i == marker {
			events[i] = Event{Kind: KindMeasuredEnd}
			continue
		}
		ev := Event{Kind: uint8(rng.Intn(3)), NonMem: uint32(rng.Intn(1 << 20))}
		if ev.Kind != KindNoMem {
			ev.Flags = uint8(rng.Intn(int(flagsMask) + 1))
			if ev.Kind == KindL1Hit {
				// A hit carries no L1 eviction/writeback.
				ev.Flags &^= FlagL1Evict | FlagL1Writeback
			}
		} else {
			// Non-mem events carry only the public-progress flag.
			ev.Flags = uint8(rng.Intn(2)) * FlagPublic
		}
		if richHasAddr(ev.Kind, ev.Flags) {
			addr += uint64(rng.Intn(1<<24)) - 1<<23
			ev.Addr = addr
		}
		events[i] = ev
	}
	return events
}

func TestRichRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := mixTestKey()
	events := randomRichEvents(20_000, 15_000, 42)
	w, err := st.CreateRich(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(events); {
		n := 1 + (i*11)%487
		if i+n > len(events) {
			n = len(events) - i
		}
		if err := w.WriteEvents(events[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	for _, batch := range []int{1, 7, 4096, 100_000} {
		r, err := st.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			t.Fatal("expected a hit")
		}
		if !r.Rich() {
			t.Fatal("reader does not report the rich encoding")
		}
		got, err := readAll(r, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		r.Close()
		if len(got) != len(events) {
			t.Fatalf("batch %d: decoded %d events, want %d", batch, len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("batch %d: event %d = %+v, want %+v", batch, i, got[i], events[i])
			}
		}
	}
}

// TestRichWriterRejectsMalformedEvents: the writer validates what the
// decoder would reject, so a bug upstream cannot persist an undecodable
// entry.
func TestRichWriterRejectsMalformedEvents(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ev   Event
	}{
		{"kind out of range", Event{Kind: 4}},
		{"flags out of range", Event{Kind: KindL1Hit, Flags: 1 << 7}},
		{"marker with flags", Event{Kind: KindMeasuredEnd, Flags: FlagPublic}},
		{"marker with nonmem", Event{Kind: KindMeasuredEnd, NonMem: 1}},
		{"marker with addr", Event{Kind: KindMeasuredEnd, Addr: 64}},
	}
	for i, c := range cases {
		key := mixTestKey()
		key.Benchmark = key.Benchmark + string(rune('a'+i))
		w, err := st.CreateRich(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteEvents([]Event{c.ev}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		w.Close()
	}
}

// TestClassicWriterRejectsRichFields: the classic encoding cannot carry
// flags or the marker kind; writing them through Create must fail rather
// than silently drop bits.
func TestClassicWriterRejectsRichFields(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Create(testKey("mcf_0"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteEvents([]Event{{Kind: KindL1Hit, Flags: FlagWrite}}); err == nil {
		t.Error("classic writer accepted an event with flags")
	}
	if err := w.WriteEvents([]Event{{Kind: KindMeasuredEnd}}); err == nil {
		t.Error("classic writer accepted a measured-end marker")
	}
}

// TestRichSpareBitRejected: the encoding reserves control bit 7; a set
// spare bit on disk must surface as corruption, not decode as something.
func TestRichSpareBitRejected(t *testing.T) {
	st, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := mixTestKey()
	w, err := st.CreateRich(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents(randomRichEvents(100, 50, 9)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	path := st.EntryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Set the spare bit on the first control byte of the first data block
	// (the header is zero-padded to a block boundary). The decoder's
	// spare-bit check fires before the footer CRC would.
	hlen := int(binary.LittleEndian.Uint32(raw[8:12]))
	first := (8 + 4 + hlen + 63) / 64 * 64
	raw[first] |= 1 << 7
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := st.Open(key)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Skip("entry demoted on open") // rebuild-disabled stores surface it below
	}
	_, err = readAll(r, 4096)
	r.Close()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read error = %v, want ErrCorrupt", err)
	}
}
