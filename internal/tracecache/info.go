package tracecache

import (
	"errors"
	"io"
	"os"
)

// Info summarizes one cache entry for inspection (`tracegen -info`).
type Info struct {
	Key     Key
	Version int
	Rich    bool
	Bytes   int64
	Events  uint64
	// ByKind counts events per kind (index by
	// KindNoMem/KindL1Hit/KindL1Miss/KindMeasuredEnd).
	ByKind [4]uint64
	// Instructions is the instruction total the stream replays: every
	// event's non-mem run plus one for each memory access.
	Instructions uint64
	// Measured is the number of events before the measured-end marker
	// (rich entries); the remainder, Events - Measured - 1, is the
	// pressure tail. Zero when the entry has no marker.
	Measured uint64
}

// MemOps returns the number of memory accesses in the stream.
func (i Info) MemOps() uint64 { return i.ByKind[KindL1Hit] + i.ByKind[KindL1Miss] }

// IsCacheFile sniffs whether path starts with the front-end cache magic
// (cheaply — 8 bytes), so tools can route between this format and the isa
// trace format.
func IsCacheFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, nil // shorter than any valid entry — not ours
	}
	return m == magic, nil
}

// ReadInfo fully decodes (and therefore CRC-verifies) the entry at path.
func ReadInfo(path string) (Info, error) {
	r, err := openReader(path, nil)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	fi, err := os.Stat(path)
	if err != nil {
		return Info{}, err
	}
	info := Info{Key: r.Key(), Version: r.Version(), Rich: r.Rich(), Bytes: fi.Size()}
	buf := make([]Event, 4096)
	for {
		n, err := r.Read(buf)
		for _, ev := range buf[:n] {
			if ev.Kind == KindMeasuredEnd && info.Measured == 0 {
				info.Measured = info.Events
			}
			info.Events++
			info.ByKind[ev.Kind]++
			info.Instructions += uint64(ev.NonMem)
			if ev.Kind == KindL1Hit || ev.Kind == KindL1Miss {
				info.Instructions++
			}
		}
		if errors.Is(err, io.EOF) {
			return info, nil
		}
		if err != nil {
			return Info{}, err
		}
	}
}
