package campaign

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQueuePriorityAndFIFOWithin(t *testing.T) {
	q := NewQueue[string](16)
	ctx := context.Background()
	// Interleave priorities; FIFO must hold within each.
	for _, p := range []struct {
		pri int
		v   string
	}{{0, "a"}, {5, "b"}, {0, "c"}, {5, "d"}, {9, "e"}, {0, "f"}} {
		if err := q.Push(ctx, p.pri, p.v); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"e", "b", "d", "a", "c", "f"}
	for i, w := range want {
		v, err := q.Pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v != w {
			t.Fatalf("pop %d = %q, want %q", i, v, w)
		}
	}
}

func TestQueueBackpressureBlocksUntilPop(t *testing.T) {
	q := NewQueue[int](2)
	ctx := context.Background()
	if err := q.Push(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	pushed := make(chan error, 1)
	go func() { pushed <- q.Push(ctx, 0, 3) }()
	select {
	case err := <-pushed:
		t.Fatalf("push into a full queue returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := q.Pop(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-pushed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop did not unblock the pending push")
	}
}

func TestQueueTryPushRejectsWhenFull(t *testing.T) {
	q := NewQueue[int](1)
	if err := q.TryPush(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(0, 2); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if _, err := q.Pop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(0, 3); err != nil {
		t.Fatalf("queue did not recover capacity: %v", err)
	}
}

func TestQueueCloseUnblocksAndDrains(t *testing.T) {
	q := NewQueue[int](2)
	ctx := context.Background()
	q.Push(ctx, 1, 10)
	q.Push(ctx, 3, 30)
	blockedPush := make(chan error, 1)
	go func() { blockedPush <- q.Push(ctx, 0, 99) }()
	blockedPop := make(chan error, 1)
	q2 := NewQueue[int](1)
	go func() {
		_, err := q2.Pop(ctx)
		blockedPop <- err
	}()

	q.Close()
	q2.Close()
	if err := <-blockedPush; !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("blocked push err = %v", err)
	}
	if err := <-blockedPop; !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("blocked pop err = %v", err)
	}
	if err := q.Push(ctx, 0, 1); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close = %v", err)
	}
	if _, err := q.Pop(ctx); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("pop after close = %v", err)
	}
	// The queued items survive for the drain sweep, highest priority first.
	left := q.Drain()
	if len(left) != 2 || left[0] != 30 || left[1] != 10 {
		t.Fatalf("Drain = %v", left)
	}
	q.Close() // idempotent
}

func TestQueuePopHonorsContext(t *testing.T) {
	q := NewQueue[int](1)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueSnapshot(t *testing.T) {
	q := NewQueue[int](8)
	ctx := context.Background()
	q.Push(ctx, 2, 1)
	q.Push(ctx, 2, 2)
	q.Push(ctx, 7, 3)
	s := q.Snapshot()
	if s.Len != 3 || s.Cap != 8 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.ByPriority[2] != 2 || s.ByPriority[7] != 1 {
		t.Fatalf("by priority = %v", s.ByPriority)
	}
}

// Every pushed item is popped exactly once under concurrent producers and
// consumers, and the bound is never exceeded (run with -race).
func TestQueueConcurrentConservation(t *testing.T) {
	const (
		producers = 4
		perProd   = 200
		depth     = 8
	)
	q := NewQueue[int](depth)
	ctx := context.Background()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := q.Push(ctx, i%3, p*perProd+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	seen := make([]bool, producers*perProd)
	var seenMu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := q.Pop(ctx)
				if err != nil {
					return // closed after the producers finish
				}
				seenMu.Lock()
				if seen[v] {
					t.Errorf("item %d popped twice", v)
				}
				seen[v] = true
				seenMu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Let the consumers finish the backlog, then close to release them.
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cwg.Wait()
	got := 0
	for _, ok := range seen {
		if ok {
			got++
		}
	}
	// Close may strand up to depth items mid-handoff; everything else must
	// have been seen exactly once, and the leftovers must still be in Drain.
	got += len(q.Drain())
	if got != producers*perProd {
		t.Fatalf("conserved %d of %d items", got, producers*perProd)
	}
}
