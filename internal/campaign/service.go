// The resident campaign service. A Service owns a worker pool fed by one
// bounded priority queue; a submitted job decomposes into phases of keyed
// units that flow through the queue onto the workers. A unit that fails for
// real — exhausted retries inside its executor, or a panic — lands in the
// job's dead-letter journal (checkpoint.RecordDead) instead of failing the
// campaign: the job completes degraded, reporting how many units died, and
// a later replay submission (ReplayDead) re-drives exactly the dead keys.
// docs/ROBUSTNESS.md "Dead-letter journal" walks the lifecycle.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"untangle/internal/checkpoint"
	"untangle/internal/parallel"
	"untangle/internal/telemetry"
)

// DefaultQueueDepth bounds the unit queue when Options.QueueDepth is zero.
// Deep enough that a whole paper campaign (36 sensitivity passes + 16
// mixes) stages without blocking, small enough that a runaway submitter
// feels backpressure quickly.
const DefaultQueueDepth = 64

// ErrInterrupted marks a job a drain stopped: its in-flight units finished
// and journaled, its queued units were abandoned, and resubmitting the same
// campaign against the same journal resumes it.
var ErrInterrupted = errors.New("campaign: interrupted by drain")

// ErrDraining rejects submissions to a service that is shutting down.
var ErrDraining = errors.New("campaign: service draining")

// Job states.
const (
	StateRunning     = "running"
	StateCompleted   = "completed" // possibly degraded; see Status.Dead
	StateFailed      = "failed"    // journal or phase-assembly error, or rejected
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted" // drain; resubmit to resume
)

// Options configures a Service.
type Options struct {
	// Workers is the unit executor pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// QueueDepth bounds the unit queue; <= 0 uses DefaultQueueDepth.
	QueueDepth int
	// Reject makes a full queue reject a job's unit push (the job fails
	// with ErrQueueFull) instead of blocking the job's feeder.
	Reject bool
	// Registry, when set, receives the service's gauges and counters
	// (campaign.queue.depth, campaign.dlq.depth, campaign.units.*).
	Registry *telemetry.Registry
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// PhaseSpec is one stage of a job: an ordered key list plus an optional
// assembly callback that runs after every key has settled and before the
// next phase's units are enqueued — the seam where a campaign assembles
// phase-1 results (the sensitivity study) that phase-2 units consume.
type PhaseSpec struct {
	Name string
	Keys []string
	// Done runs on the job's feeder goroutine once the phase settles. An
	// error fails the job.
	Done func() error
}

// JobSpec describes one submitted campaign.
type JobSpec struct {
	// ID names the job; must be unique among live jobs.
	ID string
	// Priority orders this job's units against other jobs' at dequeue
	// (higher first; FIFO within a priority).
	Priority int
	Phases   []PhaseSpec
	// Exec runs one unit and returns its journal value. Exec owns unit
	// retries (the executors in internal/experiments wrap parallel.Retry);
	// the service classifies the final error, it does not retry.
	Exec func(ctx context.Context, key string) (json.RawMessage, error)
	// Journal is the job's checkpoint journal: results are recorded there,
	// completed keys are skipped as resumed, and poisoned units dead-letter
	// there. Required.
	Journal *checkpoint.Journal
	// ReplayDead re-drives keys the journal holds dead letters for. Without
	// it, dead keys are skipped (still dead, counted) so a resubmitted
	// campaign does not burn retries on a unit known to be poisoned.
	ReplayDead bool
	// Observe, when set, is notified as each unit begins, mirroring
	// experiments.UnitObserver. Outcomes: "" ran, "resumed" journal skip,
	// "dead" dead-lettered (fresh or skipped), "abandoned" never ran.
	Observe func(phase, key string) func(outcome string, err error)
	// PostRecord, when set, runs after a unit's result is journaled — the
	// kill-injection seam the drain tests use.
	PostRecord func(key string)
}

// Unit outcomes reported to JobSpec.Observe beyond the experiments ones.
const outcomeAbandoned = "abandoned"

// task is one queued unit.
type task struct {
	job   *Job
	phase string
	key   string
}

// Service is the resident campaign service: Submit jobs, watch them via
// Status, Drain on shutdown.
type Service struct {
	opts Options
	q    *Queue[*task]

	workerWG sync.WaitGroup
	feederWG sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool

	// Unit counters, mirrored to the registry when one is configured.
	unitsDone      atomic.Uint64
	unitsDead      atomic.Uint64
	unitsResumed   atomic.Uint64
	unitsAbandoned atomic.Uint64
}

// New starts a service: the worker pool runs until Drain.
func New(opts Options) *Service {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	s := &Service{
		opts: opts,
		q:    NewQueue[*task](opts.QueueDepth),
		jobs: make(map[string]*Job),
	}
	if reg := opts.Registry; reg != nil {
		reg.GaugeFunc("campaign.queue.depth", func() float64 { return float64(s.q.Len()) })
		reg.Gauge("campaign.queue.capacity").Set(float64(opts.QueueDepth))
		reg.GaugeFunc("campaign.dlq.depth", func() float64 { return float64(s.dlqDepth()) })
		reg.GaugeFunc("campaign.units.done", func() float64 { return float64(s.unitsDone.Load()) })
		reg.GaugeFunc("campaign.units.dead", func() float64 { return float64(s.unitsDead.Load()) })
		reg.GaugeFunc("campaign.units.resumed", func() float64 { return float64(s.unitsResumed.Load()) })
		reg.GaugeFunc("campaign.units.abandoned", func() float64 { return float64(s.unitsAbandoned.Load()) })
	}
	s.workerWG.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Service) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// dlqDepth sums live dead letters across the distinct journals of
// registered jobs.
func (s *Service) dlqDepth() int {
	s.mu.Lock()
	journals := make(map[*checkpoint.Journal]struct{}, len(s.jobs))
	for _, job := range s.jobs {
		journals[job.spec.Journal] = struct{}{}
	}
	s.mu.Unlock()
	n := 0
	for j := range journals {
		n += j.DeadLen()
	}
	return n
}

// Queue returns the unit queue's instantaneous state.
func (s *Service) Queue() QueueSnapshot { return s.q.Snapshot() }

// Draining reports whether Drain has begun. Once true, the queue is closed
// — no worker will dequeue another unit — and submissions are rejected.
func (s *Service) Draining() bool { return s.isDraining() }

// Submit registers the job and starts feeding its units through the queue.
// It returns immediately; watch the job via Wait/Done/Status.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	if spec.ID == "" {
		return nil, errors.New("campaign: job needs an ID")
	}
	if spec.Exec == nil {
		return nil, errors.New("campaign: job needs an Exec")
	}
	if spec.Journal == nil {
		return nil, fmt.Errorf("campaign: job %s needs a Journal (the dead-letter store)", spec.ID)
	}
	total := 0
	for _, ph := range spec.Phases {
		total += len(ph.Keys)
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		svc:    s,
		state:  StateRunning,
		total:  total,
		doneCh: make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	if prev, ok := s.jobs[spec.ID]; ok && !prev.terminal() {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("campaign: job %s already running", spec.ID)
	}
	s.jobs[spec.ID] = job
	s.order = append(s.order, spec.ID)
	s.feederWG.Add(1)
	s.mu.Unlock()
	go s.feed(job)
	return job, nil
}

// Job returns a registered job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// Jobs returns every registered job's status in submission order (a
// resubmitted ID keeps its first position).
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(s.jobs))
	out := make([]Status, 0, len(s.jobs))
	for _, id := range s.order {
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, s.jobs[id].Status())
	}
	return out
}

// Cancel cancels a job: queued and unstarted units are abandoned, in-flight
// ones see their context end. Reports whether the ID was known.
func (s *Service) Cancel(id string) bool {
	job, ok := s.Job(id)
	if !ok {
		return false
	}
	job.Cancel()
	return true
}

// Drain shuts the service down gracefully: no further submissions, no
// further dequeues. In-flight units finish and journal; queued units are
// abandoned — their jobs end StateInterrupted, resumable from their
// journals. Drain waits for workers and job feeders up to ctx.
func (s *Service) Drain(ctx context.Context) error {
	// Close the queue before raising the draining flag: once Draining()
	// reports true, no worker can dequeue another unit — the ordering the
	// serve-mode term hook relies on to leave a deterministic remainder.
	s.q.Close()
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		// Workers are gone: nothing races the sweep of the queued leftovers.
		for _, t := range s.q.Drain() {
			t.job.settle(t, outcomeAbandoned, nil)
		}
		s.feederWG.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("campaign: drain: %w", ctx.Err())
	}
}

// feed is the job's feeder goroutine: it walks the phases, skips keys the
// journal already settles (done or dead), pushes the rest through the
// queue, waits for the phase to settle, and runs the phase's assembly.
func (s *Service) feed(job *Job) {
	defer s.feederWG.Done()
	defer job.finish()
	for _, ph := range job.spec.Phases {
		if job.ctx.Err() != nil || job.Err() != nil {
			return
		}
		job.beginPhase(ph.Name)
		for _, key := range ph.Keys {
			if job.ctx.Err() != nil {
				job.settleSkip(ph.Name, key, outcomeAbandoned, job.ctx.Err())
				continue
			}
			if job.spec.Journal.Done(key) {
				job.settleSkip(ph.Name, key, "resumed", nil)
				continue
			}
			if dl, dead := job.spec.Journal.Dead(key); dead && !job.spec.ReplayDead {
				job.settleSkip(ph.Name, key, "dead", errors.New(dl.Error))
				continue
			}
			if err := s.enqueue(job, &task{job: job, phase: ph.Name, key: key}); err != nil {
				switch {
				case errors.Is(err, ErrQueueFull):
					// Reject-mode backpressure: the job is refused, not
					// queued. Cancel so workers skip any already-queued
					// units of this job.
					job.fail(fmt.Errorf("campaign: job %s rejected: %w", job.spec.ID, err))
					job.cancel()
				case errors.Is(err, ErrQueueClosed):
					// Drain landed mid-feed; remaining keys are abandoned.
				}
				job.settleSkip(ph.Name, key, outcomeAbandoned, err)
			}
		}
		job.waitPhase()
		if job.ctx.Err() != nil || job.Err() != nil || s.isDraining() {
			return
		}
		if ph.Done != nil {
			if err := ph.Done(); err != nil {
				job.fail(fmt.Errorf("campaign: job %s phase %s: %w", job.spec.ID, ph.Name, err))
				return
			}
		}
	}
}

func (s *Service) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// enqueue pushes one unit, honoring the service's backpressure policy.
func (s *Service) enqueue(job *Job, t *task) error {
	job.notePushed()
	var err error
	if s.opts.Reject {
		err = s.q.TryPush(job.spec.Priority, t)
	} else {
		err = s.q.Push(job.ctx, job.spec.Priority, t)
	}
	if err != nil {
		job.unpush()
	}
	return err
}

// worker pops units until the queue closes.
func (s *Service) worker() {
	defer s.workerWG.Done()
	for {
		t, err := s.q.Pop(context.Background())
		if err != nil {
			return
		}
		s.runUnit(t)
	}
}

// runUnit executes one popped unit and classifies its outcome:
//
//   - nil error: the result is journaled; a journal write failure fails the
//     whole job (the journal is the campaign's ground truth).
//   - context ended (the job was canceled or the executor saw the
//     cancellation): the unit is abandoned, untouched in the journal, so a
//     resume re-runs it in full.
//   - anything else — exhausted retries, a panic, a hard error: the unit is
//     poisoned. It dead-letters with its attempt count and stack, and the
//     campaign carries on degraded.
func (s *Service) runUnit(t *task) {
	job := t.job
	if job.ctx.Err() != nil {
		job.settle(t, outcomeAbandoned, job.ctx.Err())
		return
	}
	raw, err := execGuarded(job, t.key)
	switch {
	case err == nil:
		if recErr := job.spec.Journal.Record(t.key, raw); recErr != nil {
			recErr = fmt.Errorf("campaign: journal %s: %w", t.key, recErr)
			job.fail(recErr)
			job.cancel()
			job.settle(t, outcomeAbandoned, recErr)
			return
		}
		if job.spec.PostRecord != nil {
			job.spec.PostRecord(t.key)
		}
		job.settle(t, "", nil)
	case job.ctx.Err() != nil, errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		job.settle(t, outcomeAbandoned, err)
	default:
		dl := newDeadLetter(t.key, err)
		if recErr := job.spec.Journal.RecordDead(dl); recErr != nil {
			recErr = fmt.Errorf("campaign: dead-letter %s: %w", t.key, recErr)
			job.fail(recErr)
			job.cancel()
			job.settle(t, outcomeAbandoned, recErr)
			return
		}
		s.logf("campaign: job %s unit %s dead-lettered after %d attempts: %s",
			job.spec.ID, t.key, dl.Attempts, dl.Error)
		job.settle(t, "dead", err)
	}
}

// execGuarded runs the job's executor with a panic guard: a panicking unit
// becomes a diagnosable *parallel.PanicError (Index -1: no pool index here)
// destined for the dead-letter journal, never a crashed service.
func execGuarded(job *Job, key string) (raw json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &parallel.PanicError{Index: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return job.spec.Exec(job.ctx, key)
}

// newDeadLetter shapes a unit's terminal error into its journal record:
// exhausted retries carry their attempt count, panics carry their stack.
func newDeadLetter(key string, err error) checkpoint.DeadLetter {
	dl := checkpoint.DeadLetter{Key: key, Attempts: 1, Error: err.Error()}
	var re *parallel.RetryExhaustedError
	if errors.As(err, &re) {
		dl.Attempts = re.Attempts
		dl.Error = re.Error()
	}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		dl.Error = fmt.Sprintf("panic: %v", pe.Value)
		dl.Stack = string(pe.Stack)
	}
	return dl
}

// Job is one submitted campaign.
type Job struct {
	spec   JobSpec
	svc    *Service
	ctx    context.Context
	cancel context.CancelFunc

	mu           sync.Mutex
	state        string
	err          error
	userCanceled bool
	phase        string // current phase name
	total        int
	done         int // units with journaled results (run or resumed)
	resumed      int
	dead         int
	abandoned    int
	deadKeys     []string
	// Per-phase settlement: pushed counts units handed to the queue this
	// phase, settled counts those that came back (run, dead, or abandoned).
	// allPushed gates the phaseDone close — without it a fast worker
	// settling the units pushed so far would release the feeder early.
	pushed, settled int
	allPushed       bool
	phaseDone       chan struct{}
	doneCh          chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Err returns the job's failure, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Cancel stops the job: in-flight units see their context end, queued ones
// are skipped when popped.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == StateRunning {
		j.userCanceled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// Wait blocks until the job is terminal or ctx ends. It returns the job's
// error: nil for completed (even degraded), ErrInterrupted for a drain,
// context.Canceled for a cancel, the failure otherwise.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.doneCh:
	case <-ctx.Done():
		return ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateFailed:
		return j.err
	case StateCanceled:
		return context.Canceled
	case StateInterrupted:
		return ErrInterrupted
	}
	return nil
}

// Status is a job's frozen progress, shaped for the /campaigns JSON.
type Status struct {
	ID       string `json:"id"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	Phase    string `json:"phase,omitempty"`
	// Done counts units whose results are journaled (run or resumed), out
	// of Total across all phases. Dead and Abandoned units are neither.
	Done      int      `json:"done"`
	Total     int      `json:"total"`
	Resumed   int      `json:"resumed,omitempty"`
	Dead      int      `json:"dead,omitempty"`
	Abandoned int      `json:"abandoned,omitempty"`
	DeadKeys  []string `json:"dead_keys,omitempty"`
	Error     string   `json:"error,omitempty"`
	// Summary is the manifest line: "completed 15/16 (1 dead-lettered)".
	Summary string `json:"summary"`
}

// Status freezes the job's progress.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.spec.ID,
		Priority:  j.spec.Priority,
		State:     j.state,
		Phase:     j.phase,
		Done:      j.done,
		Total:     j.total,
		Resumed:   j.resumed,
		Dead:      j.dead,
		Abandoned: j.abandoned,
		DeadKeys:  append([]string(nil), j.deadKeys...),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	st.Summary = fmt.Sprintf("%s %d/%d", j.state, j.done, j.total)
	if j.dead > 0 {
		st.Summary += fmt.Sprintf(" (%d dead-lettered)", j.dead)
	}
	return st
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state != StateRunning
}

// fail records the job's first hard error (journal write, phase assembly,
// rejection). Unit failures never come here — they dead-letter.
func (j *Job) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

func (j *Job) beginPhase(name string) {
	j.mu.Lock()
	j.phase = name
	j.pushed, j.settled = 0, 0
	j.allPushed = false
	j.phaseDone = make(chan struct{})
	j.mu.Unlock()
}

func (j *Job) notePushed() {
	j.mu.Lock()
	j.pushed++
	j.mu.Unlock()
}

// unpush reverses notePushed for a push the queue refused; the feeder
// settles the unit as skipped instead.
func (j *Job) unpush() {
	j.mu.Lock()
	j.pushed--
	j.mu.Unlock()
}

// waitPhase blocks the feeder until every pushed unit of the current phase
// has settled. Settlement always converges: workers settle every popped
// unit (even skips), and Drain settles whatever never left the queue.
func (j *Job) waitPhase() {
	j.mu.Lock()
	j.allPushed = true
	if j.settled == j.pushed {
		j.mu.Unlock()
		return
	}
	ch := j.phaseDone
	j.mu.Unlock()
	<-ch
}

// settle records a queued unit's outcome and wakes the feeder when the
// phase is fully settled.
func (j *Job) settle(t *task, outcome string, err error) {
	done := j.observe(t.phase, t.key)
	j.mu.Lock()
	j.account(t.key, outcome)
	j.settled++
	if j.allPushed && j.settled == j.pushed && j.phaseDone != nil {
		close(j.phaseDone)
		j.phaseDone = nil
	}
	j.mu.Unlock()
	if done != nil {
		done(outcome, err)
	}
}

// settleSkip records a unit that never entered the queue (journal skip,
// dead skip, abandoned at feed time).
func (j *Job) settleSkip(phase, key, outcome string, err error) {
	done := j.observe(phase, key)
	j.mu.Lock()
	j.account(key, outcome)
	j.mu.Unlock()
	if done != nil {
		done(outcome, err)
	}
}

// account applies one settled unit to the job and service counters. Caller
// holds j.mu.
func (j *Job) account(key, outcome string) {
	switch outcome {
	case "":
		j.done++
		j.svc.unitsDone.Add(1)
	case "resumed":
		j.done++
		j.resumed++
		j.svc.unitsResumed.Add(1)
	case "dead":
		j.dead++
		j.deadKeys = append(j.deadKeys, key)
		j.svc.unitsDead.Add(1)
	case outcomeAbandoned:
		j.abandoned++
		j.svc.unitsAbandoned.Add(1)
	}
}

// observe opens the unit's observation span, if the job has an observer.
func (j *Job) observe(phase, key string) func(outcome string, err error) {
	if j.spec.Observe == nil {
		return nil
	}
	return j.spec.Observe(phase, key)
}

// finish moves the job to its terminal state once the feeder returns.
func (j *Job) finish() {
	j.cancel() // release the context either way
	j.mu.Lock()
	switch {
	case j.err != nil:
		j.state = StateFailed
	case j.userCanceled:
		j.state = StateCanceled
	case j.abandoned > 0:
		j.state = StateInterrupted
	default:
		j.state = StateCompleted
	}
	st := j.state
	done, dead, total := j.done, j.dead, j.total
	close(j.doneCh)
	j.mu.Unlock()
	j.svc.logf("campaign: job %s %s: %d/%d units done, %d dead-lettered", j.spec.ID, st, done, total, dead)
}
