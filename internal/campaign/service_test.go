package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"untangle/internal/checkpoint"
	"untangle/internal/parallel"
	"untangle/internal/telemetry"
)

func testJournal(t *testing.T, dir string) *checkpoint.Journal {
	t.Helper()
	j, err := checkpoint.Open(filepath.Join(dir, "svc.ckpt"),
		checkpoint.Fingerprint{Scale: 0.5, Instructions: 1000, Units: "svc", ParamsTag: "tag"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func drainAll(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// okExec journals each key's value as its key string.
func okExec(ctx context.Context, key string) (json.RawMessage, error) {
	return json.Marshal("ran:" + key)
}

func TestServiceRunsPhasesInOrder(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 4, QueueDepth: 8})
	defer drainAll(t, s)

	var mu sync.Mutex
	var order []string
	assembled := false
	job, err := s.Submit(JobSpec{
		ID:      "c1",
		Journal: j,
		Phases: []PhaseSpec{
			{Name: "sens", Keys: []string{"sens/a", "sens/b", "sens/c"}, Done: func() error {
				mu.Lock()
				assembled = true
				mu.Unlock()
				return nil
			}},
			{Name: "mix", Keys: []string{"mix/1", "mix/2"}},
		},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			mu.Lock()
			if strings.HasPrefix(key, "mix/") && !assembled {
				mu.Unlock()
				return nil, errors.New("mix unit ran before phase-1 assembly")
			}
			order = append(order, key)
			mu.Unlock()
			return okExec(ctx, key)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if st.State != StateCompleted || st.Done != 5 || st.Total != 5 || st.Dead != 0 {
		t.Fatalf("status = %+v", st)
	}
	for _, key := range []string{"sens/a", "sens/b", "sens/c", "mix/1", "mix/2"} {
		var v string
		if ok, err := j.Lookup(key, &v); err != nil || !ok || v != "ran:"+key {
			t.Fatalf("journal %s: ok=%v err=%v v=%q", key, ok, err, v)
		}
	}
	if !strings.Contains(st.Summary, "completed 5/5") {
		t.Errorf("summary = %q", st.Summary)
	}
}

// A unit that exhausts its executor's retries dead-letters with its attempt
// count; the rest of the campaign completes untouched and the job ends
// completed-degraded, not failed.
func TestServicePoisonedUnitDeadLetters(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 2})
	defer drainAll(t, s)

	poison := errors.New("disk on fire")
	job, err := s.Submit(JobSpec{
		ID:      "c1",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: []string{"mix/1", "mix/2", "mix/3"}}},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			if key == "mix/2" {
				// The executor's own bounded retry, exhausted — the shape
				// experiments.RunSensitivityUnit hands back.
				return nil, parallel.RetryUnit(ctx, key, 3, time.Nanosecond,
					func(context.Context, int) error { return poison })
			}
			return okExec(ctx, key)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatalf("degraded completion must not error: %v", err)
	}
	st := job.Status()
	if st.State != StateCompleted || st.Done != 2 || st.Dead != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.DeadKeys) != 1 || st.DeadKeys[0] != "mix/2" {
		t.Fatalf("dead keys = %v", st.DeadKeys)
	}
	if !strings.Contains(st.Summary, "(1 dead-lettered)") {
		t.Errorf("summary = %q", st.Summary)
	}
	dl, ok := j.Dead("mix/2")
	if !ok || dl.Attempts != 3 || !strings.Contains(dl.Error, "disk on fire") {
		t.Fatalf("dead letter = %+v ok=%v", dl, ok)
	}
	if j.Done("mix/2") {
		t.Error("poisoned unit recorded as done")
	}
}

// A panicking unit is a bug, not a crash: it dead-letters with the stack
// and the service keeps running.
func TestServicePanickingUnitDeadLettersWithStack(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 2})
	defer drainAll(t, s)

	job, err := s.Submit(JobSpec{
		ID:      "c1",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: []string{"mix/1", "mix/2"}}},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			if key == "mix/1" {
				panic("index out of range in the point")
			}
			return okExec(ctx, key)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	dl, ok := j.Dead("mix/1")
	if !ok {
		t.Fatal("panicking unit not dead-lettered")
	}
	if !strings.Contains(dl.Error, "index out of range") || dl.Stack == "" {
		t.Fatalf("dead letter = %+v", dl)
	}
	if !strings.Contains(dl.Stack, "goroutine") {
		t.Errorf("stack = %q", dl.Stack)
	}
	if !j.Done("mix/2") {
		t.Error("healthy sibling did not complete")
	}
}

// Without ReplayDead a resubmission skips known-dead keys (no retry burn);
// with it, the dead keys are re-driven and a now-healthy unit's record
// supersedes the dead letter — the replay repair.
func TestServiceDeadSkipAndReplay(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 2})
	defer drainAll(t, s)

	spec := func(id string, replay bool, execCount *int, fixed bool) JobSpec {
		var mu sync.Mutex
		return JobSpec{
			ID:         id,
			Journal:    j,
			ReplayDead: replay,
			Phases:     []PhaseSpec{{Name: "mix", Keys: []string{"mix/1", "mix/2"}}},
			Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
				mu.Lock()
				*execCount++
				mu.Unlock()
				if key == "mix/2" && !fixed {
					return nil, errors.New("still poisoned")
				}
				return okExec(ctx, key)
			},
		}
	}

	var n1 int
	job, err := s.Submit(spec("c1", false, &n1, false))
	if err != nil {
		t.Fatal(err)
	}
	job.Wait(context.Background())
	if j.DeadLen() != 1 {
		t.Fatalf("DeadLen = %d", j.DeadLen())
	}

	// Resubmission: mix/1 resumes, mix/2 skips as dead — zero executions.
	var n2 int
	job, err = s.Submit(spec("c2", false, &n2, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if n2 != 0 || st.Resumed != 1 || st.Dead != 1 {
		t.Fatalf("skip run: execs=%d status=%+v", n2, st)
	}

	// Replay: only the dead key re-runs; success clears the DLQ.
	var n3 int
	job, err = s.Submit(spec("c3", true, &n3, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = job.Status()
	if n3 != 1 || st.Dead != 0 || st.Done != 2 {
		t.Fatalf("replay run: execs=%d status=%+v", n3, st)
	}
	if j.DeadLen() != 0 {
		t.Fatalf("DLQ not cleared: %d", j.DeadLen())
	}
	var v string
	if ok, _ := j.Lookup("mix/2", &v); !ok || v != "ran:mix/2" {
		t.Fatalf("replayed unit value = %q ok=%v", v, ok)
	}
}

// Cancellation abandons units — they are neither journaled nor
// dead-lettered, so a resume re-runs them in full.
func TestServiceCancelAbandonsUnits(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 1, QueueDepth: 8})
	defer drainAll(t, s)

	started := make(chan struct{})
	var once sync.Once
	job, err := s.Submit(JobSpec{
		ID:      "c1",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: []string{"mix/1", "mix/2", "mix/3"}}},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	job.Cancel()
	if err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v", err)
	}
	st := job.Status()
	if st.State != StateCanceled || st.Abandoned != 3 || st.Dead != 0 {
		t.Fatalf("status = %+v", st)
	}
	if j.Len() != 0 || j.DeadLen() != 0 {
		t.Fatalf("canceled units touched the journal: len=%d dead=%d", j.Len(), j.DeadLen())
	}
}

// Reject mode: a job whose units cannot fit the remaining queue depth is
// refused with ErrQueueFull instead of blocking the feeder.
func TestServiceRejectModeFailsFast(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 1, QueueDepth: 1, Reject: true})
	defer drainAll(t, s)

	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := s.Submit(JobSpec{
		ID:      "blocker",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: []string{"b/1"}}},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			close(started)
			<-gate
			return okExec(ctx, key)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // b/1 in flight on the only worker; the queue is empty again

	// filler occupies the queue's single slot behind the pinned worker.
	filler, err := s.Submit(JobSpec{
		ID:      "filler",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: []string{"f/1"}}},
		Exec:    okExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s.Queue().Len == 0 {
		time.Sleep(time.Millisecond)
	}
	victim, err := s.Submit(JobSpec{
		ID:      "victim",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: []string{"v/1"}}},
		Exec:    okExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Wait(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Wait = %v, want ErrQueueFull", err)
	}
	if st := victim.Status(); st.State != StateFailed {
		t.Fatalf("status = %+v", st)
	}
	close(gate)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := filler.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Blocking mode: a job bigger than the queue completes — the feeder blocks
// on backpressure and progresses as workers free slots.
func TestServiceBackpressureBlockingMode(t *testing.T) {
	j := testJournal(t, t.TempDir())
	s := New(Options{Workers: 2, QueueDepth: 2})
	defer drainAll(t, s)

	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("u/%d", i)
	}
	job, err := s.Submit(JobSpec{
		ID:      "big",
		Journal: j,
		Phases:  []PhaseSpec{{Name: "mix", Keys: keys}},
		Exec:    okExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := job.Status(); st.Done != 20 {
		t.Fatalf("status = %+v", st)
	}
}

// Higher-priority jobs preempt at dequeue: with one worker pinned, queued
// high-priority units run before earlier-queued low-priority ones.
func TestServicePriorityPreemptsAtDequeue(t *testing.T) {
	jdir := t.TempDir()
	j := testJournal(t, jdir)
	s := New(Options{Workers: 1, QueueDepth: 16})
	defer drainAll(t, s)

	gate := make(chan struct{})
	started := make(chan struct{})
	var mu sync.Mutex
	var order []string
	exec := func(ctx context.Context, key string) (json.RawMessage, error) {
		if key == "pin" {
			close(started)
			<-gate
		} else {
			mu.Lock()
			order = append(order, key)
			mu.Unlock()
		}
		return okExec(ctx, key)
	}
	pin, err := s.Submit(JobSpec{
		ID: "pin", Journal: j, Priority: 0,
		Phases: []PhaseSpec{{Name: "mix", Keys: []string{"pin"}}},
		Exec:   exec,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	lo, err := s.Submit(JobSpec{
		ID: "lo", Journal: j, Priority: 0,
		Phases: []PhaseSpec{{Name: "mix", Keys: []string{"lo/1", "lo/2"}}},
		Exec:   exec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the low-priority units are queued, then submit high.
	for s.Queue().Len < 2 {
		time.Sleep(time.Millisecond)
	}
	hi, err := s.Submit(JobSpec{
		ID: "hi", Journal: j, Priority: 9,
		Phases: []PhaseSpec{{Name: "mix", Keys: []string{"hi/1", "hi/2"}}},
		Exec:   exec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s.Queue().Len < 4 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for _, job := range []*Job{pin, lo, hi} {
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"hi/1", "hi/2", "lo/1", "lo/2"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Drain: the in-flight unit finishes and journals; queued units are
// abandoned; the job ends interrupted; a fresh service over the same
// journal resumes exactly the abandoned remainder.
func TestServiceDrainInterruptsThenResumes(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, dir)
	s := New(Options{Workers: 1, QueueDepth: 8})

	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	exec := func(ctx context.Context, key string) (json.RawMessage, error) {
		once.Do(func() { close(started) })
		<-release
		return okExec(ctx, key)
	}
	keys := []string{"u/1", "u/2", "u/3", "u/4"}
	job, err := s.Submit(JobSpec{
		ID: "c1", Journal: j,
		Phases: []PhaseSpec{{Name: "mix", Keys: keys}},
		Exec:   exec,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	<-s.q.done // queue closed: no further dequeues can happen
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Wait = %v, want ErrInterrupted", err)
	}
	st := job.Status()
	if st.State != StateInterrupted || st.Done != 1 || st.Abandoned != 3 {
		t.Fatalf("status = %+v", st)
	}
	if !j.Done("u/1") || j.Done("u/2") {
		t.Fatalf("journal: u/1 done=%v u/2 done=%v", j.Done("u/1"), j.Done("u/2"))
	}

	// Submissions to a draining service are refused.
	if _, err := s.Submit(JobSpec{ID: "late", Journal: j, Exec: okExec}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v", err)
	}

	// Restart: a fresh service over the same journal resumes the remainder.
	s2 := New(Options{Workers: 2})
	defer drainAll(t, s2)
	job2, err := s2.Submit(JobSpec{
		ID: "c1", Journal: j,
		Phases: []PhaseSpec{{Name: "mix", Keys: keys}},
		Exec:   okExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = job2.Status()
	if st.State != StateCompleted || st.Done != 4 || st.Resumed != 1 {
		t.Fatalf("resumed status = %+v", st)
	}
	for _, key := range keys {
		if !j.Done(key) {
			t.Fatalf("%s missing after resume", key)
		}
	}
}

// The observer sees every unit with the right outcome, and the registry
// gauges reflect queue capacity and DLQ depth.
func TestServiceObserverAndMetrics(t *testing.T) {
	j := testJournal(t, t.TempDir())
	reg := telemetry.NewRegistry()
	s := New(Options{Workers: 2, QueueDepth: 5, Registry: reg})
	defer drainAll(t, s)

	var mu sync.Mutex
	outcomes := map[string]string{}
	job, err := s.Submit(JobSpec{
		ID: "c1", Journal: j,
		Phases: []PhaseSpec{{Name: "mix", Keys: []string{"mix/1", "mix/2"}}},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			if key == "mix/2" {
				return nil, errors.New("poison")
			}
			return okExec(ctx, key)
		},
		Observe: func(phase, key string) func(string, error) {
			return func(outcome string, err error) {
				mu.Lock()
				outcomes[phase+":"+key] = outcome
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if outcomes["mix:mix/1"] != "" || outcomes["mix:mix/2"] != "dead" {
		t.Fatalf("outcomes = %v", outcomes)
	}
	mu.Unlock()

	g := reg.Snapshot().Gauges
	if got := g["campaign.queue.capacity"]; got != 5 {
		t.Errorf("queue capacity gauge = %v", got)
	}
	if got := g["campaign.dlq.depth"]; got != 1 {
		t.Errorf("dlq depth gauge = %v", got)
	}
	if got := g["campaign.units.dead"]; got != 1 {
		t.Errorf("units dead gauge = %v", got)
	}
}
