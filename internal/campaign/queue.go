// Package campaign is the resident campaign service: a bounded concurrent
// priority queue of campaign units feeding a fixed worker pool, with a
// dead-letter journal for poisoned units (see service.go). The queue is the
// backpressure boundary — its depth bounds how much work a burst of
// submissions can stage, and a full queue either blocks the producer or
// rejects the push with a typed error, per the service's policy.
package campaign

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

var (
	// ErrQueueFull is returned by TryPush when the queue is at depth — the
	// reject-mode backpressure signal.
	ErrQueueFull = errors.New("campaign: queue full")
	// ErrQueueClosed is returned by Push and Pop after Close: the service is
	// draining and hands out no further work.
	ErrQueueClosed = errors.New("campaign: queue closed")
)

// item is one queued entry. seq breaks priority ties FIFO, so equal-priority
// units dequeue in submission order — the property that keeps a single-job
// campaign's unit order deterministic.
type item[T any] struct {
	v   T
	pri int
	seq uint64
}

// Queue is a bounded concurrent priority queue: Pop always returns the
// highest-priority queued item (FIFO within a priority), Push blocks — or
// TryPush rejects — when depth items are already queued. Close stops both
// ends; Drain recovers whatever was still queued so the service can settle
// those units as abandoned instead of leaking them.
//
// The bound is enforced with a token channel (space) and item availability
// with a second (ready); the heap under the mutex only orders what the
// tokens admit. Tokens are conserved — every queued item holds exactly one
// of each — so neither channel send can block.
type Queue[T any] struct {
	mu    sync.Mutex
	heap  pq[T]
	seq   uint64
	space chan struct{}
	ready chan struct{}
	done  chan struct{}
	once  sync.Once
}

// NewQueue builds a queue bounded to depth items (minimum 1).
func NewQueue[T any](depth int) *Queue[T] {
	if depth < 1 {
		depth = 1
	}
	q := &Queue[T]{
		space: make(chan struct{}, depth),
		ready: make(chan struct{}, depth),
		done:  make(chan struct{}),
	}
	for i := 0; i < depth; i++ {
		q.space <- struct{}{}
	}
	return q
}

// Push enqueues v at the given priority, blocking while the queue is full.
// It returns ctx.Err() if the context ends first and ErrQueueClosed once
// the queue is closed.
func (q *Queue[T]) Push(ctx context.Context, pri int, v T) error {
	select {
	case <-q.done:
		return ErrQueueClosed
	default:
	}
	select {
	case <-q.space:
	case <-ctx.Done():
		return ctx.Err()
	case <-q.done:
		return ErrQueueClosed
	}
	return q.admit(pri, v)
}

// TryPush enqueues v without blocking, returning ErrQueueFull when the
// queue is at depth.
func (q *Queue[T]) TryPush(pri int, v T) error {
	select {
	case <-q.space:
	default:
		select {
		case <-q.done:
			return ErrQueueClosed
		default:
		}
		return ErrQueueFull
	}
	return q.admit(pri, v)
}

// admit inserts a token-holding push into the heap. The closed check runs
// under the mutex so no item can slip in after Drain has swept the heap.
func (q *Queue[T]) admit(pri int, v T) error {
	q.mu.Lock()
	select {
	case <-q.done:
		q.mu.Unlock()
		q.space <- struct{}{} // hand the token back; nobody will use it
		return ErrQueueClosed
	default:
	}
	q.seq++
	heap.Push(&q.heap, item[T]{v: v, pri: pri, seq: q.seq})
	q.mu.Unlock()
	q.ready <- struct{}{}
	return nil
}

// Pop dequeues the highest-priority item, blocking while the queue is
// empty. It returns ctx.Err() if the context ends first and ErrQueueClosed
// once the queue is closed — even if items remain queued; Close means "stop
// handing out work", and Drain recovers the leftovers.
func (q *Queue[T]) Pop(ctx context.Context) (T, error) {
	var zero T
	select {
	case <-q.done:
		return zero, ErrQueueClosed
	default:
	}
	select {
	case <-q.ready:
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-q.done:
		return zero, ErrQueueClosed
	}
	q.mu.Lock()
	select {
	case <-q.done:
		// Closed while we held the ready token; leave the item for Drain.
		q.mu.Unlock()
		return zero, ErrQueueClosed
	default:
	}
	it := heap.Pop(&q.heap).(item[T])
	q.mu.Unlock()
	q.space <- struct{}{}
	return it.v, nil
}

// Close stops the queue: subsequent pushes and pops fail with
// ErrQueueClosed, and blocked ones unblock with it. Idempotent. Items still
// queued stay queued until Drain collects them.
func (q *Queue[T]) Close() {
	q.once.Do(func() { close(q.done) })
}

// Drain removes and returns every still-queued item in priority order.
// Meaningful only after Close (concurrent pushes and pops are fenced out by
// then); the service settles the returned units as abandoned.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]T, 0, len(q.heap))
	for len(q.heap) > 0 {
		out = append(out, heap.Pop(&q.heap).(item[T]).v)
	}
	return out
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// QueueSnapshot is the /queue JSON document: instantaneous depth against
// capacity, broken down by priority.
type QueueSnapshot struct {
	Len        int         `json:"len"`
	Cap        int         `json:"cap"`
	ByPriority map[int]int `json:"by_priority,omitempty"`
}

// Snapshot freezes the queue's state.
func (q *Queue[T]) Snapshot() QueueSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueSnapshot{Len: len(q.heap), Cap: cap(q.space)}
	if len(q.heap) > 0 {
		s.ByPriority = make(map[int]int)
		for _, it := range q.heap {
			s.ByPriority[it.pri]++
		}
	}
	return s
}

// pq implements container/heap ordered by priority descending, then seq
// ascending (FIFO within a priority).
type pq[T any] []item[T]

func (h pq[T]) Len() int { return len(h) }
func (h pq[T]) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h pq[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq[T]) Push(x any)         { *h = append(*h, x.(item[T])) }
func (h *pq[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = item[T]{}
	*h = old[:n-1]
	return it
}
