package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"untangle/internal/isa"
	"untangle/internal/workload"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadValidation(t *testing.T) {
	cases := []string{
		`{"scheme":"bogus","domains":[{"benchmark":"mcf_0","instructions":1000}]}`,
		`{"scheme":"untangle","domains":[]}`,
		`{"scheme":"untangle","domains":[{"name":"x","instructions":10}]}`,                       // no source
		`{"scheme":"untangle","domains":[{"benchmark":"mcf_0","trace":"t","instructions":10}]}`,  // two sources
		`{"scheme":"untangle","domains":[{"benchmark":"mcf_0"}]}`,                                // no budget
		`{"scheme":"untangle","unknown_field":1,"domains":[{"benchmark":"a","instructions":1}]}`, // unknown field
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildBenchmarkAndCryptoDomains(t *testing.T) {
	sc, err := Read(strings.NewReader(`{
		"scheme": "untangle",
		"scale": 0.002,
		"domains": [
			{"name": "spec", "benchmark": "mcf_0", "instructions": 200000},
			{"name": "crypto", "benchmark": "AES-128", "instructions": 200000},
			{"name": "tuned", "benchmark": "imagick_0", "instructions": 200000,
			 "cpu": {"mlp": 7.5, "base_cpi": 0.2}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Domains) != 3 {
		t.Fatalf("%d domains", len(res.Domains))
	}
	for _, d := range res.Domains {
		if d.IPC <= 0 {
			t.Errorf("%s: IPC %v", d.Name, d.IPC)
		}
	}
}

func TestBuildProgramAndTraceDomains(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "victim.unt", `
array tbl[256]
secret key
param n
for i in 0..n {
    load v = tbl[(i + key) % 256]
}
`)
	// Record a trace file from a benchmark.
	p, err := workload.SPECByName("imagick_0")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := os.Create(filepath.Join(dir, "rec.trace"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := isa.NewTraceWriter(tf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteStream(isa.NewLimited(g, 150_000), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	scPath := writeFile(t, dir, "scenario.json", `{
		"scheme": "untangle",
		"scale": 0.002,
		"domains": [
			{"name": "victim", "program": {"file": "victim.unt", "inputs": {"key": 9, "n": 30000}},
			 "instructions": 150000},
			{"name": "replayed", "trace": "rec.trace"}
		]
	}`)
	sc, err := Load(scPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains[0].Instructions == 0 || res.Domains[1].Instructions == 0 {
		t.Errorf("instructions: %d / %d", res.Domains[0].Instructions, res.Domains[1].Instructions)
	}
}

func TestBuildPairDomain(t *testing.T) {
	sc, err := Read(strings.NewReader(`{
		"scheme": "time",
		"scale": 0.002,
		"domains": [
			{"name": "paired", "pair": {"spec": "gcc_2", "crypto": "AES-128", "secret": 7},
			 "instructions": 200000}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	// Unknown benchmark.
	sc, err := Read(strings.NewReader(`{"scheme":"static","domains":[{"benchmark":"nope","instructions":1000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Build(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	// Missing program file.
	sc, err = Read(strings.NewReader(`{"scheme":"static","domains":[{"program":{"file":"/nonexistent.unt"},"instructions":1000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Build(); err == nil {
		t.Error("missing program file accepted")
	}
	// Missing trace file.
	sc, err = Read(strings.NewReader(`{"scheme":"static","domains":[{"trace":"/nonexistent.trace"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Build(); err == nil {
		t.Error("missing trace accepted")
	}
	// Bad pair.
	sc, err = Read(strings.NewReader(`{"scheme":"static","domains":[{"pair":{"spec":"nope","crypto":"AES-128"},"instructions":1000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Build(); err == nil {
		t.Error("bad pair accepted")
	}
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Error("missing scenario file accepted")
	}
}

func TestSchemeDefaultsToStatic(t *testing.T) {
	sc, err := Read(strings.NewReader(`{"domains":[{"benchmark":"imagick_0","instructions":50000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	k, err := sc.kind()
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "Static" {
		t.Errorf("default scheme = %v", k)
	}
}

func TestTieredScenario(t *testing.T) {
	sc, err := Read(strings.NewReader(`{
		"scheme": "untangle",
		"scale": 0.002,
		"tiered": true,
		"domains": [
			{"name": "low", "benchmark": "mcf_0", "instructions": 300000, "tier": 0},
			{"name": "high", "benchmark": "parest_0", "instructions": 300000, "tier": 1}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains[0].Leakage.TotalBits != 0 {
		t.Errorf("low-tier domain charged %v bits", res.Domains[0].Leakage.TotalBits)
	}
}
