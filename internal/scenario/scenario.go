// Package scenario loads experiment definitions from JSON files and builds
// runnable simulations from them. A scenario combines any mixture of domain
// sources — named synthetic benchmarks, crypto+SPEC pairs, recorded binary
// traces, and victim programs in the mini-language — with a scheme
// configuration, so custom experiments need no Go code.
//
// Example:
//
//	{
//	  "scheme": "untangle",
//	  "scale": 0.005,
//	  "domains": [
//	    {"name": "victim", "program": {"file": "victim.unt", "inputs": {"key": 90}},
//	     "instructions": 1000000},
//	    {"name": "neighbour", "benchmark": "mcf_0", "instructions": 2000000},
//	    {"name": "recorded", "trace": "mcf.trace"},
//	    {"name": "paired", "pair": {"spec": "gcc_2", "crypto": "AES-128"},
//	     "instructions": 2000000}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"untangle/internal/core"
	"untangle/internal/cpu"
	"untangle/internal/isa"
	"untangle/internal/lang"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

// Scenario is the top-level definition.
type Scenario struct {
	// Scheme is one of "static", "time", "untangle", "shared".
	Scheme string `json:"scheme"`
	// Scale is the usual scale factor (default 0.01).
	Scale float64 `json:"scale"`
	// BudgetBits is the per-domain leakage budget (0 = unlimited).
	BudgetBits float64 `json:"budget_bits"`
	// WorstCase disables the Maintain optimization.
	WorstCase bool `json:"worst_case"`
	// NoAnnotations disables annotation support (the ablation).
	NoAnnotations bool `json:"no_annotations"`
	// WayPartitioned switches to whole-way granularity.
	WayPartitioned bool `json:"way_partitioned"`
	// MemBandwidth models a finite shared DRAM bandwidth (bytes/second).
	MemBandwidth float64 `json:"mem_bandwidth_bytes_per_sec"`
	// Tiered enables the Section 6.4 security lattice using each domain's
	// Tier field.
	Tiered bool `json:"tiered,omitempty"`
	// Domains lists the security domains (1-8).
	Domains []Domain `json:"domains"`

	// dir resolves relative file references.
	dir string
}

// Domain is one security domain; exactly one source field must be set.
type Domain struct {
	Name string `json:"name"`
	// Benchmark names a synthetic SPEC-like or crypto benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Pair builds the paper's crypto+SPEC interleaved workload.
	Pair *PairSource `json:"pair,omitempty"`
	// Trace replays a recorded binary trace file.
	Trace string `json:"trace,omitempty"`
	// Program executes a mini-language victim.
	Program *ProgramSource `json:"program,omitempty"`
	// Instructions bounds the measured stream (required except for traces,
	// which end on their own).
	Instructions uint64 `json:"instructions,omitempty"`
	// Tier is the domain's Section 6.4 security tier; meaningful only when
	// the scenario sets "tiered": true.
	Tier int `json:"tier,omitempty"`
	// CPU optionally overrides the timing model.
	CPU *CPUOverride `json:"cpu,omitempty"`
}

// PairSource mirrors workload.Pair.
type PairSource struct {
	SPEC   string `json:"spec"`
	Crypto string `json:"crypto"`
	Secret uint64 `json:"secret,omitempty"`
}

// ProgramSource points at a .unt file with its inputs.
type ProgramSource struct {
	File   string           `json:"file"`
	Inputs map[string]int64 `json:"inputs,omitempty"`
}

// CPUOverride tweaks the per-workload timing parameters.
type CPUOverride struct {
	MLP     float64 `json:"mlp,omitempty"`
	BaseCPI float64 `json:"base_cpi,omitempty"`
}

// Load reads a scenario from a JSON file; relative paths inside it resolve
// against the file's directory.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	sc.dir = filepath.Dir(path)
	return sc, nil
}

// Read parses a scenario from a reader (relative paths resolve against the
// working directory unless the caller sets dir via Load).
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

func (sc *Scenario) validate() error {
	if _, err := sc.kind(); err != nil {
		return err
	}
	if len(sc.Domains) == 0 || len(sc.Domains) > 8 {
		return fmt.Errorf("scenario: %d domains, want 1-8", len(sc.Domains))
	}
	for i, d := range sc.Domains {
		sources := 0
		if d.Benchmark != "" {
			sources++
		}
		if d.Pair != nil {
			sources++
		}
		if d.Trace != "" {
			sources++
		}
		if d.Program != nil {
			sources++
		}
		if sources != 1 {
			return fmt.Errorf("scenario: domain %d needs exactly one source, has %d", i, sources)
		}
		if d.Trace == "" && d.Instructions == 0 {
			return fmt.Errorf("scenario: domain %d needs an instruction count", i)
		}
	}
	return nil
}

// kind maps the scheme string.
func (sc *Scenario) kind() (partition.Kind, error) {
	switch strings.ToLower(sc.Scheme) {
	case "static", "":
		return partition.Static, nil
	case "time":
		return partition.TimeBased, nil
	case "untangle":
		return partition.Untangle, nil
	case "shared":
		return partition.Shared, nil
	default:
		return 0, fmt.Errorf("scenario: unknown scheme %q", sc.Scheme)
	}
}

// Build materializes the simulation.
func (sc *Scenario) Build() (*sim.Sim, error) {
	kind, err := sc.kind()
	if err != nil {
		return nil, err
	}
	scale := sc.Scale
	if scale <= 0 || scale > 1 {
		scale = 0.01
	}
	scheme := partition.DefaultScheme(kind)
	scheme.Annotated = !sc.NoAnnotations
	cfg := sim.Scaled(scheme, scale)
	cfg.OptimizeMaintain = !sc.WorstCase
	cfg.Budget = sc.BudgetBits
	cfg.MemBandwidth = sc.MemBandwidth
	if sc.WayPartitioned {
		cfg.WayPartitioned = true
		cfg.Sizes = cfg.WaySizes()
	}
	if sc.Tiered {
		tiers := make([]core.Tier, len(sc.Domains))
		for i, d := range sc.Domains {
			tiers[i] = core.Tier(d.Tier)
		}
		cfg.Tiers = tiers
	}
	specs := make([]sim.DomainSpec, 0, len(sc.Domains))
	for i, d := range sc.Domains {
		spec, err := sc.buildDomain(i, d, scale)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return sim.New(cfg, specs)
}

func (sc *Scenario) buildDomain(i int, d Domain, scale float64) (sim.DomainSpec, error) {
	name := d.Name
	if name == "" {
		name = fmt.Sprintf("domain-%d", i)
	}
	spec := sim.DomainSpec{Name: name, CPU: cpu.DefaultParams()}
	switch {
	case d.Benchmark != "":
		params, err := workload.SPECByName(d.Benchmark)
		if err != nil {
			params, err = workload.CryptoByName(d.Benchmark)
			if err != nil {
				return spec, fmt.Errorf("scenario: domain %d: unknown benchmark %q", i, d.Benchmark)
			}
		}
		g, err := workload.NewGenerator(params)
		if err != nil {
			return spec, err
		}
		spec.Stream = isa.NewLimited(g, d.Instructions)
		pressureParams := params
		pressureParams.Seed += 0xA5A5
		pressure, err := workload.NewGenerator(pressureParams)
		if err != nil {
			return spec, err
		}
		spec.Pressure = pressure
		spec.CPU = params.CPUParams()
	case d.Pair != nil:
		pair := workload.Pair{SPEC: d.Pair.SPEC, Crypto: d.Pair.Crypto}
		crypto := uint64(float64(1_000_000) * scale)
		specPhase := uint64(float64(10_000_000) * scale)
		stream, err := pair.PairStream(max64(crypto, 1000), max64(specPhase, 10_000), d.Instructions, d.Pair.Secret)
		if err != nil {
			return spec, fmt.Errorf("scenario: domain %d: %w", i, err)
		}
		spec.Stream = stream
		params, err := workload.SPECByName(d.Pair.SPEC)
		if err != nil {
			return spec, err
		}
		spec.CPU = params.CPUParams()
	case d.Trace != "":
		f, err := os.Open(sc.resolve(d.Trace))
		if err != nil {
			return spec, fmt.Errorf("scenario: domain %d: %w", i, err)
		}
		// The reader owns the file for the duration of the run; simulations
		// are short-lived processes, so the descriptor is reclaimed at exit.
		r, err := isa.NewTraceReader(f)
		if err != nil {
			return spec, fmt.Errorf("scenario: domain %d: %w", i, err)
		}
		spec.Stream = r
	case d.Program != nil:
		src, err := os.ReadFile(sc.resolve(d.Program.File))
		if err != nil {
			return spec, fmt.Errorf("scenario: domain %d: %w", i, err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			return spec, fmt.Errorf("scenario: domain %d: %w", i, err)
		}
		exec, err := lang.NewExec(prog, d.Program.Inputs, 0)
		if err != nil {
			return spec, fmt.Errorf("scenario: domain %d: %w", i, err)
		}
		spec.Stream = isa.NewLimitedPublic(exec, d.Instructions)
	}
	if d.CPU != nil {
		if d.CPU.MLP > 0 {
			spec.CPU.MLP = d.CPU.MLP
		}
		if d.CPU.BaseCPI > 0 {
			spec.CPU.BaseCPI = d.CPU.BaseCPI
		}
	}
	return spec, nil
}

func (sc *Scenario) resolve(path string) string {
	if filepath.IsAbs(path) || sc.dir == "" {
		return path
	}
	return filepath.Join(sc.dir, path)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
