package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func wayCfg() Config { return Config{SizeBytes: 1 << 20, Ways: 16} } // 1024 sets

func TestWayPartitionedValidation(t *testing.T) {
	if _, err := NewWayPartitioned(wayCfg(), []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWayPartitioned(wayCfg(), []int{0, 8}); err == nil {
		t.Error("zero-way grant accepted")
	}
	if _, err := NewWayPartitioned(wayCfg(), []int{12, 8}); err == nil {
		t.Error("over-committed grants accepted")
	}
	if _, err := NewWayPartitioned(Config{SizeBytes: 7, Ways: 3}, []int{1}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestWayPartitionedIsolation(t *testing.T) {
	w, err := NewWayPartitioned(wayCfg(), []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Domain 0 inserts a line; domain 1 must not see it even at the same
	// address — partitions are exclusive.
	w.Access(0, 0x4000, false)
	if !w.Contains(0, 0x4000) {
		t.Fatal("inserted line not present")
	}
	if w.Contains(1, 0x4000) {
		t.Error("line visible across the partition boundary")
	}
	if w.Access(1, 0x4000, false) {
		t.Error("cross-domain hit")
	}
	if w.Stats(0).Misses != 1 || w.Stats(1).Misses != 1 {
		t.Errorf("stats = %+v / %+v", w.Stats(0), w.Stats(1))
	}
}

func TestWayPartitionedHitAfterInsert(t *testing.T) {
	w, _ := NewWayPartitioned(wayCfg(), []int{4, 12})
	for i := 0; i < 100; i++ {
		a := uint64(i) * LineBytes
		w.Access(0, a, false)
		if !w.Access(0, a, false) {
			t.Fatalf("immediate re-access missed at %#x", a)
		}
	}
}

func TestWayPartitionedSizes(t *testing.T) {
	w, _ := NewWayPartitioned(wayCfg(), []int{4, 12})
	if w.Ways(0) != 4 || w.Ways(1) != 12 {
		t.Errorf("ways = %d/%d", w.Ways(0), w.Ways(1))
	}
	// 1024 sets * 4 ways * 64B = 256kB.
	if w.SizeBytes(0) != 256<<10 {
		t.Errorf("size = %d", w.SizeBytes(0))
	}
}

func TestWayPartitionedResizePreservesMRU(t *testing.T) {
	w, _ := NewWayPartitioned(wayCfg(), []int{8, 8})
	// Fill domain 0 with a working set that fits 8 ways.
	var addrs []uint64
	for i := 0; i < 2000; i++ {
		a := uint64(i) * LineBytes
		w.Access(0, a, false)
		addrs = append(addrs, a)
	}
	// Grow domain 0 to 12 ways (shrink 1 to 4): everything must survive.
	if err := w.Resize([]int{12, 4}); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if !w.Contains(0, a) {
			t.Fatalf("line %#x lost on grow", a)
		}
	}
	// Shrink back to 2 ways: recent lines survive preferentially.
	recent := addrs[len(addrs)-200:]
	if err := w.Resize([]int{2, 14}); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, a := range recent {
		if w.Contains(0, a) {
			kept++
		}
	}
	if kept < 150 {
		t.Errorf("only %d/200 recent lines survived the shrink", kept)
	}
}

func TestWayPartitionedResizeValidation(t *testing.T) {
	w, _ := NewWayPartitioned(wayCfg(), []int{8, 8})
	if err := w.Resize([]int{8}); err == nil {
		t.Error("wrong grant count accepted")
	}
	if err := w.Resize([]int{0, 16}); err == nil {
		t.Error("zero grant accepted")
	}
	if err := w.Resize([]int{10, 10}); err == nil {
		t.Error("over-commit accepted")
	}
}

func TestWayPartitionedWritebackOnShrinkDrop(t *testing.T) {
	w, _ := NewWayPartitioned(wayCfg(), []int{8, 8})
	// Dirty a large working set, then shrink hard.
	for i := 0; i < 3000; i++ {
		w.Access(0, uint64(i)*LineBytes, true)
	}
	before := w.Stats(0).Writebacks
	if err := w.Resize([]int{1, 15}); err != nil {
		t.Fatal(err)
	}
	if w.Stats(0).Writebacks <= before {
		t.Error("dropping dirty lines on shrink must count writebacks")
	}
}

func TestPropertyWayPartitionedNeverCrosses(t *testing.T) {
	f := func(seed int64) bool {
		w, err := NewWayPartitioned(Config{SizeBytes: 64 << 10, Ways: 8}, []int{3, 5})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		// Interleave accesses; then verify no address inserted only by one
		// domain is visible to the other.
		mine := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			d := r.Intn(2)
			a := uint64(r.Intn(1 << 14))
			w.Access(d, a, r.Intn(4) == 0)
			if d == 0 {
				mine[a/LineBytes] = true
			}
		}
		for la := range mine {
			if w.Contains(1, la*LineBytes) {
				// Only a violation if domain 1 never touched the line; the
				// random stream may have. Re-check cheaply: domain 1's
				// partition can only contain lines it inserted, so hits
				// here mean the address collided across domains — allowed
				// only if domain 1 accessed it too. We cannot distinguish
				// here, so just ensure the two partitions never alias the
				// same slot: probing domain 0 must still also see it.
				if !w.Contains(0, la*LineBytes) && !mine[la] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWayResizeCapacityInvariant(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		w, err := NewWayPartitioned(Config{SizeBytes: 128 << 10, Ways: 8}, []int{4, 4})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for s := 0; s < int(steps)%10; s++ {
			for i := 0; i < 500; i++ {
				w.Access(r.Intn(2), uint64(r.Intn(1<<16)), r.Intn(8) == 0)
			}
			a := r.Intn(7) + 1
			if err := w.Resize([]int{a, 8 - a}); err != nil {
				return false
			}
			if w.Ways(0)+w.Ways(1) != 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
