package cache

// Lane is a stripped-down set-associative LRU cache for multi-size sweep
// engines: one Lane per candidate partition size, all fed the same reference
// stream. It keeps only the state that can influence hit/miss outcomes on
// the Static single-domain path — packed tags, per-line LRU ticks, and the
// fastmod reciprocal — and drops everything a full Cache carries that cannot
// (dirty/writeback bookkeeping, policy dispatch, statistics, telemetry).
// Dropping dirty state is exact, not an approximation: LRU victim selection
// never consults dirty bits, so the hit/miss sequence of a Lane is bitwise
// the sequence a default-policy Cache produces for the same accesses.
//
// Lane intentionally has no Resize: a sweep fixes each lane's geometry up
// front and Reset()s it between runs.
type Lane struct {
	ways         int
	sets         int
	tags         []uint64
	lru          []uint64
	modHi, modLo uint64
	tick         uint64
}

// NewLane builds a lane with the given geometry.
func NewLane(cfg Config) (*Lane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Lane{ways: cfg.Ways, sets: cfg.Sets()}
	l.tags = make([]uint64, l.sets*l.ways)
	l.lru = make([]uint64, l.sets*l.ways)
	l.modHi, l.modLo = reciprocal(uint64(l.sets))
	return l, nil
}

// MustNewLane builds a lane and panics on invalid geometry.
func MustNewLane(cfg Config) *Lane {
	l, err := NewLane(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// SizeBytes returns the lane's capacity.
func (l *Lane) SizeBytes() int64 { return int64(l.sets) * int64(l.ways) * LineBytes }

// Reset invalidates every line and rewinds the LRU clock, restoring the
// freshly-constructed state without reallocating.
func (l *Lane) Reset() {
	clear(l.tags)
	clear(l.lru)
	l.tick = 0
}

// Access performs an access to the line containing addr and reports hit.
// It mirrors Cache.Access under the default LRU policy exactly — same set
// index (same hash and fastmod reciprocal), same tag encoding, same
// empty-way preference, and the same min-LRU first-index-wins victim scan —
// so the returned hit/miss sequence is bit-for-bit what a Cache would give.
func (l *Lane) Access(addr uint64) bool {
	lineAddr := addr / LineBytes
	h := lineAddr * 0x9E3779B97F4A7C15
	h ^= h >> 32
	base := int(fastmod(h, l.modHi, l.modLo, uint64(l.sets))) * l.ways
	tags := l.tags[base : base+l.ways]
	tag := lineAddr + 1
	l.tick++
	empty := -1
	for i, t := range tags {
		if t == tag {
			l.lru[base+i] = l.tick
			return true
		}
		if t == 0 && empty < 0 {
			empty = i
		}
	}
	slot := empty
	if slot < 0 {
		lru := l.lru[base : base+l.ways]
		victim, oldest := 0, ^uint64(0)
		for i, v := range lru {
			if v < oldest {
				oldest = v
				victim = i
			}
		}
		slot = victim
	}
	l.tags[base+slot] = tag
	l.lru[base+slot] = l.tick
	return false
}
