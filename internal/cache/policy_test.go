package cache

import (
	"math/rand"
	"testing"
)

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{LRU: "LRU", TreePLRU: "TreePLRU", Random: "Random", Policy(9): "Policy(?)"} {
		if got := p.String(); got != want {
			t.Errorf("%d -> %q", int(p), got)
		}
	}
}

// hitRateFor runs a fixed access pattern under a policy.
func hitRateFor(policy Policy, pattern func(i int) uint64, n int) float64 {
	c := MustNew(Config{SizeBytes: 64 << 10, Ways: 8})
	c.SetPolicy(policy)
	for i := 0; i < n; i++ {
		c.Access(pattern(i), false)
	}
	return c.Stats().HitRate()
}

func TestTreePLRUTracksLRUOnReuseHeavyPattern(t *testing.T) {
	// A working set that fits: every policy should converge to ~100%.
	fits := func(i int) uint64 { return uint64(i%512) * LineBytes }
	lru := hitRateFor(LRU, fits, 50000)
	plru := hitRateFor(TreePLRU, fits, 50000)
	if lru < 0.98 || plru < 0.98 {
		t.Errorf("fitting working set: LRU %v, TreePLRU %v, want ~1", lru, plru)
	}
	// A mixed hot/cold pattern: TreePLRU should stay within a few percent
	// of LRU (it is the standard hardware approximation).
	r := rand.New(rand.NewSource(9))
	addrs := make([]uint64, 100000)
	for i := range addrs {
		if r.Intn(100) < 70 {
			addrs[i] = uint64(r.Intn(256)) * LineBytes // hot
		} else {
			addrs[i] = uint64(4096+r.Intn(8192)) * LineBytes // cold
		}
	}
	mixed := func(i int) uint64 { return addrs[i%len(addrs)] }
	lru = hitRateFor(LRU, mixed, len(addrs))
	plru = hitRateFor(TreePLRU, mixed, len(addrs))
	if diff := lru - plru; diff > 0.05 || diff < -0.05 {
		t.Errorf("TreePLRU diverged from LRU: %v vs %v", plru, lru)
	}
}

func TestRandomReplacementRetainsLessReuse(t *testing.T) {
	// On an over-capacity cyclic scan LRU gets zero hits but random gets a
	// few (it sometimes keeps old lines); on a slightly-over-capacity hot
	// loop LRU+PLRU thrash while random salvages some hits. The key
	// property asserted: the policies genuinely differ, and the cache stays
	// correct (capacity respected) under all of them.
	c := MustNew(Config{SizeBytes: 8 << 10, Ways: 4})
	c.SetPolicy(Random)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		c.Access(uint64(r.Intn(1<<14)), r.Intn(4) == 0)
	}
	if c.ValidLines() > c.Sets()*c.Ways() {
		t.Error("capacity exceeded under random replacement")
	}
	// Determinism: the same seed state gives the same result.
	run := func() uint64 {
		c := MustNew(Config{SizeBytes: 8 << 10, Ways: 4})
		c.SetPolicy(Random)
		for i := 0; i < 5000; i++ {
			c.Access(uint64(i*37%4096)*LineBytes, false)
		}
		return c.Stats().Hits
	}
	if run() != run() {
		t.Error("random policy not deterministic across identical runs")
	}
}

func TestPLRUSurvivesResize(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128 << 10, Ways: 16})
	c.SetPolicy(TreePLRU)
	for a := uint64(0); a < 256<<10; a += LineBytes {
		c.Access(a, false)
	}
	if err := c.Resize(512 << 10); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 256<<10; a += LineBytes {
		c.Access(a, false)
	}
	if err := c.Resize(128 << 10); err != nil {
		t.Fatal(err)
	}
	if c.ValidLines() > c.Sets()*c.Ways() {
		t.Error("capacity invariant broken after PLRU resizes")
	}
	if c.Policy() != TreePLRU {
		t.Error("policy lost across resize")
	}
}
