// Package cache implements the set-associative cache models used by the
// simulator: the private L1s, the set-partitioned shared LLC of Section 8,
// and the resize semantics that dynamic partitioning relies on.
//
// Partitioning follows the paper's evaluation: the LLC is set-partitioned
// (following Bespoke/Chunked-cache-style designs [15, 37, 46]), so a domain's
// partition is an independent region of sets and resizing changes the number
// of sets a domain owns. Lines are remapped on resize: lines whose new set
// index still exists are reinserted (respecting associativity), the rest are
// written back and dropped.
//
// Access is the simulator's hottest function (every simulated memory
// reference passes through an L1, often an LLC partition, and the monitor's
// shadow arrays), so its state is laid out for the scan, not the object
// model: tags live in a packed []uint64 scanned 8-per-cache-line, LRU/dirty
// metadata is only touched on the way that hits, and the set index uses a
// precomputed Lemire reciprocal instead of a hardware divide.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"untangle/internal/telemetry"
)

// LineBytes is the line size used throughout the simulated hierarchy
// (Table 3: 64 B lines everywhere).
const LineBytes = 64

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int64
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	if c.Ways <= 0 {
		return 0
	}
	return int(c.SizeBytes / int64(LineBytes*c.Ways))
}

// Validate checks the geometry is realizable.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways = %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%int64(LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not a multiple of way capacity %d", c.SizeBytes, LineBytes*c.Ways)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	// Prefetches counts lines installed by Prefetch (not demand traffic).
	Prefetches uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns the hit fraction, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Prefetches += other.Prefetches
}

// Sub subtracts a baseline snapshot from s (interval statistics).
func (s *Stats) Sub(base Stats) {
	s.Hits -= base.Hits
	s.Misses -= base.Misses
	s.Evictions -= base.Evictions
	s.Writebacks -= base.Writebacks
	s.Prefetches -= base.Prefetches
}

// line is one cache line in array-of-structs form. Both the resizable Cache
// and WayPartitioned store their state split (tags packed apart from
// metadata); line remains the working representation for the transient
// survivor list a Resize builds.
type line struct {
	lineAddr uint64
	lru      uint64
	valid    bool
	dirty    bool
}

// Cache is a set-associative, true-LRU, write-back cache with a resizable
// number of sets.
//
// State is laid out structure-of-arrays: tags holds lineAddr+1 for valid
// lines (0 = invalid) so the scan needs no separate valid bit, lru holds
// the per-line LRU tick (scanned only on eviction), and dirty the
// write-back flag (read only for the evicted way). All are sets*ways,
// set-major, and each scan — tag match, LRU victim — walks one packed
// array: 8 entries per cache line instead of the 2⅔ the old
// array-of-structs layout gave.
type Cache struct {
	ways  int
	sets  int
	tags  []uint64
	lru   []uint64
	dirty []bool
	// modHi/modLo form the 128-bit Lemire reciprocal ceil(2^128/sets),
	// recomputed on Resize; setIndex uses it to replace the % divide.
	modHi, modLo uint64
	tick         uint64
	stats        Stats
	// replacement-policy state (see policy.go); LRU needs none beyond the
	// per-line tick.
	policy Policy
	plru   []uint32
	rng    uint64
}

// New builds a cache with the given geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{ways: cfg.Ways, sets: cfg.Sets()}
	c.tags = make([]uint64, c.sets*c.ways)
	c.lru = make([]uint64, c.sets*c.ways)
	c.dirty = make([]bool, c.sets*c.ways)
	c.modHi, c.modLo = reciprocal(uint64(c.sets))
	return c, nil
}

// MustNew builds a cache and panics on invalid geometry. For tests and
// static tables whose configs are compile-time constants.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the current number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the current capacity.
func (c *Cache) SizeBytes() int64 { return int64(c.sets) * int64(c.ways) * LineBytes }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (used after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// RegisterMetrics exposes the cache's hit/miss/eviction counters and
// current geometry on a telemetry registry under prefix, as
// lazily-evaluated gauges: Access stays untouched and the counters are
// read only when the registry snapshots (after the run, or at another
// quiescent point).
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.GaugeFunc(prefix+".hits", func() float64 { return float64(c.stats.Hits) })
	reg.GaugeFunc(prefix+".misses", func() float64 { return float64(c.stats.Misses) })
	reg.GaugeFunc(prefix+".evictions", func() float64 { return float64(c.stats.Evictions) })
	reg.GaugeFunc(prefix+".writebacks", func() float64 { return float64(c.stats.Writebacks) })
	reg.GaugeFunc(prefix+".prefetches", func() float64 { return float64(c.stats.Prefetches) })
	reg.GaugeFunc(prefix+".size_bytes", func() float64 { return float64(c.SizeBytes()) })
}

// reciprocal computes ceil(2^128/d) as a 128-bit value (hi, lo). With it,
// fastmod reduces any 64-bit value mod d without a divide. d == 1 wraps to
// (0, 0), for which fastmod correctly yields 0 everywhere.
func reciprocal(d uint64) (hi, lo uint64) {
	// floor((2^128 - 1) / d) by schoolbook two-word division, then + 1.
	hi = ^uint64(0) / d
	rem := ^uint64(0) % d
	lo, _ = bits.Div64(rem, ^uint64(0), d)
	lo++
	if lo == 0 {
		hi++
	}
	return hi, lo
}

// fastmod returns x % d given the precomputed reciprocal (mHi, mLo) for d.
// This is the 64-bit variant of Lemire/Kaser/Kurz "Faster Remainder by
// Direct Computation": frac = x * ceil(2^128/d) mod 2^128, result =
// floor(frac * d / 2^128). Exact for every x and every d >= 1 (the error
// term e*x with e < d stays below 2^128), three multiplies instead of a
// 20-40 cycle hardware divide.
func fastmod(x, mHi, mLo, d uint64) uint64 {
	fracHi, fracLo := bits.Mul64(mLo, x)
	fracHi += mHi * x
	aHi, _ := bits.Mul64(fracLo, d)
	bHi, bLo := bits.Mul64(fracHi, d)
	_, carry := bits.Add64(aHi, bLo, 0)
	return bHi + carry
}

// setIndex maps a line address to its set.
func (c *Cache) setIndex(lineAddr uint64) int {
	// Mix the upper bits into the index so strided patterns spread across
	// sets the way physical indexing does. The mix must be consistent across
	// resizes only in that it is a pure function of the line address.
	h := lineAddr * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(fastmod(h, c.modHi, c.modLo, uint64(c.sets)))
}

// Access performs a load or store of the line containing addr. It returns
// true on hit. Misses allocate (write-allocate policy) and evict LRU.
//
// The way scan reads only the packed tag array; LRU/dirty updates and the
// replacement-policy branches happen after the scan, on the single way
// involved.
func (c *Cache) Access(addr uint64, write bool) bool {
	lineAddr := addr / LineBytes
	set := c.setIndex(lineAddr)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	tag := lineAddr + 1
	c.tick++
	hit, empty := -1, -1
	for i, t := range tags {
		if t == tag {
			hit = i
			break
		}
		if t == 0 && empty < 0 {
			empty = i
		}
	}
	if hit >= 0 {
		c.lru[base+hit] = c.tick
		if write {
			c.dirty[base+hit] = true
		}
		if c.policy == TreePLRU {
			c.plruTouch(set, hit, c.ways)
		}
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	slot := empty
	if slot < 0 {
		slot = c.victimFor(set, base)
		c.stats.Evictions++
		if c.dirty[base+slot] {
			c.stats.Writebacks++
		}
	}
	c.tags[base+slot] = tag
	c.lru[base+slot] = c.tick
	c.dirty[base+slot] = write
	if c.policy == TreePLRU {
		c.plruTouch(set, slot, c.ways)
	}
	return false
}

// ShadowAccess is Access for monitor shadow-tag arrays: the same lookup,
// LRU bookkeeping, and replacement decisions — the hit/miss sequence and
// resident-line evolution are identical to Access's — but no statistics or
// dirty-line tracking, which shadow arrays never read (they have no lower
// level to write back to). The behavioural alignment is what keeps
// monitors fed through recorded hit masks (monitor.HitMask/ObserveMask)
// bitwise-equal to live ones.
func (c *Cache) ShadowAccess(addr uint64) bool {
	lineAddr := addr / LineBytes
	set := c.setIndex(lineAddr)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	tag := lineAddr + 1
	c.tick++
	hit, empty := -1, -1
	for i, t := range tags {
		if t == tag {
			hit = i
			break
		}
		if t == 0 && empty < 0 {
			empty = i
		}
	}
	if hit >= 0 {
		c.lru[base+hit] = c.tick
		if c.policy == TreePLRU {
			c.plruTouch(set, hit, c.ways)
		}
		return true
	}
	slot := empty
	if slot < 0 {
		slot = c.victimFor(set, base)
	}
	c.tags[base+slot] = tag
	c.lru[base+slot] = c.tick
	if c.policy == TreePLRU {
		c.plruTouch(set, slot, c.ways)
	}
	return false
}

// Prefetch installs the line containing addr if absent, inserting it in LRU
// position below the most-recent line (conservative insertion, so useless
// prefetches are evicted first). It does not touch demand hit/miss counters.
func (c *Cache) Prefetch(addr uint64) {
	lineAddr := addr / LineBytes
	set := c.setIndex(lineAddr)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	tag := lineAddr + 1
	var victim, empty = -1, -1
	var oldest uint64 = ^uint64(0)
	for i, t := range tags {
		if t == tag {
			return // already resident; leave LRU state alone
		}
		if t == 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if m := c.lru[base+i]; m < oldest {
			oldest = m
			victim = i
		}
	}
	slot := empty
	if slot < 0 {
		slot = victim
		c.stats.Evictions++
		if c.dirty[base+slot] {
			c.stats.Writebacks++
		}
	}
	c.stats.Prefetches++
	// Insert one tick below the current time so a demand access dominates.
	lru := c.tick
	if lru > 0 {
		lru--
	}
	c.tags[base+slot] = tag
	c.lru[base+slot] = lru
	c.dirty[base+slot] = false
}

// Contains reports whether the line holding addr is present, without
// touching LRU state or statistics (a "probe" for tests and attackers).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / LineBytes
	base := c.setIndex(lineAddr) * c.ways
	tag := lineAddr + 1
	for _, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// ValidLines returns the number of valid lines (for invariant checks).
func (c *Cache) ValidLines() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}

// Reset returns the cache to its freshly-constructed state at the current
// geometry: all lines invalid, the LRU clock and statistics zeroed, and any
// replacement-policy state (PLRU tree bits, random seed) back to its initial
// value. Unlike Flush it counts nothing — it exists so long-running studies
// can reuse one allocation across independent runs, and the contract is that
// a Reset cache behaves bit-identically to a new one.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.lru)
	clear(c.dirty)
	clear(c.plru)
	c.tick = 0
	c.rng = 0
	c.stats = Stats{}
}

// Flush invalidates everything, counting writebacks for dirty lines.
func (c *Cache) Flush() {
	for i := range c.tags {
		if c.tags[i] != 0 && c.dirty[i] {
			c.stats.Writebacks++
		}
		c.tags[i] = 0
		c.lru[i] = 0
		c.dirty[i] = false
	}
}

// Resize changes the number of sets to match newSize, preserving lines
// whose new set has room (LRU order decides who survives an over-full set).
// Dirty dropped lines count as writebacks. Resizing to the current size is
// a no-op so Maintain actions cost nothing.
func (c *Cache) Resize(newSize int64) error {
	cfg := Config{SizeBytes: newSize, Ways: c.ways}
	if err := cfg.Validate(); err != nil {
		return err
	}
	newSets := cfg.Sets()
	if newSets == c.sets {
		return nil
	}
	oldTags, oldLRU, oldDirty := c.tags, c.lru, c.dirty
	c.sets = newSets
	c.modHi, c.modLo = reciprocal(uint64(newSets))
	c.tags = make([]uint64, newSets*c.ways)
	c.lru = make([]uint64, newSets*c.ways)
	c.dirty = make([]bool, newSets*c.ways)
	if c.plru != nil {
		c.plru = make([]uint32, newSets)
	}
	// Reinsert surviving lines in LRU order (oldest first) so that when a
	// new set overflows, the most recently used lines win.
	survivors := make([]line, 0, len(oldTags))
	for i, t := range oldTags {
		if t != 0 {
			survivors = append(survivors, line{
				lineAddr: t - 1, lru: oldLRU[i], valid: true, dirty: oldDirty[i],
			})
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].lru < survivors[j].lru })
	for _, l := range survivors {
		set := c.setIndex(l.lineAddr)
		base := set * c.ways
		placed := false
		slot, oldest := -1, ^uint64(0)
		for i := 0; i < c.ways; i++ {
			if c.tags[base+i] == 0 {
				c.tags[base+i] = l.lineAddr + 1
				c.lru[base+i] = l.lru
				c.dirty[base+i] = l.dirty
				placed = true
				break
			}
			if m := c.lru[base+i]; m < oldest {
				oldest = m
				slot = i
			}
		}
		if !placed {
			// Set over-full after shrink: replace the LRU occupant (which
			// is older because we insert oldest-first). The displaced line
			// is dropped; count its writeback if dirty.
			if oldest < l.lru {
				if c.dirty[base+slot] {
					c.stats.Writebacks++
				}
				c.tags[base+slot] = l.lineAddr + 1
				c.lru[base+slot] = l.lru
				c.dirty[base+slot] = l.dirty
			} else if l.dirty {
				c.stats.Writebacks++
			}
		}
	}
	return nil
}
