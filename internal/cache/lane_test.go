package cache

import (
	"math/rand"
	"testing"
)

// randTrace builds a deterministic pseudo-random access trace that mixes
// hot reuse (small address pool) with streaming (fresh addresses), so both
// the hit path and the victim scan are exercised.
func randTrace(rng *rand.Rand, n int) []uint64 {
	trace := make([]uint64, n)
	for i := range trace {
		if rng.Intn(3) == 0 {
			trace[i] = uint64(rng.Intn(512)) * LineBytes // hot pool
		} else {
			trace[i] = rng.Uint64() >> 8
		}
	}
	return trace
}

// TestLaneMatchesCache: a Lane must produce the exact hit/miss sequence of a
// default-policy Cache with the same geometry — including the
// non-power-of-two set counts of the 3MB/6MB partition sizes.
func TestLaneMatchesCache(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 32 << 10, Ways: 8},  // the L1 geometry
		{SizeBytes: 3 << 20, Ways: 16},  // non-power-of-two sets
		{SizeBytes: 128 << 10, Ways: 16}, // smallest partition size
	} {
		c := MustNew(cfg)
		l := MustNewLane(cfg)
		if l.SizeBytes() != c.SizeBytes() {
			t.Fatalf("geometry %+v: lane size %d != cache size %d", cfg, l.SizeBytes(), c.SizeBytes())
		}
		rng := rand.New(rand.NewSource(7))
		for i, addr := range randTrace(rng, 40_000) {
			write := rng.Intn(4) == 0
			if ch, lh := c.Access(addr, write), l.Access(addr); ch != lh {
				t.Fatalf("geometry %+v, access %d (addr %#x): cache hit=%v, lane hit=%v", cfg, i, addr, ch, lh)
			}
		}
	}
}

// TestCacheResetEquivalentToFresh is the Reset contract: after Reset, a
// cache must behave bit-identically to a freshly constructed one on an
// arbitrary trace — hit sequence, statistics, and residency — for every
// replacement policy (TreePLRU tree bits and the Random policy's RNG are
// part of the state Reset must rewind).
func TestCacheResetEquivalentToFresh(t *testing.T) {
	cfg := Config{SizeBytes: 64 << 10, Ways: 8}
	for _, policy := range []Policy{LRU, TreePLRU, Random} {
		used := MustNew(cfg)
		used.SetPolicy(policy)
		// Dirty the state thoroughly, then reset.
		rng := rand.New(rand.NewSource(11))
		for _, addr := range randTrace(rng, 30_000) {
			used.Access(addr, rng.Intn(2) == 0)
		}
		used.Reset()

		fresh := MustNew(cfg)
		fresh.SetPolicy(policy)
		if used.ValidLines() != 0 || used.Stats() != (Stats{}) {
			t.Fatalf("%v: Reset left %d valid lines, stats %+v", policy, used.ValidLines(), used.Stats())
		}
		rng = rand.New(rand.NewSource(13))
		for i, addr := range randTrace(rng, 30_000) {
			write := rng.Intn(3) == 0
			if uh, fh := used.Access(addr, write), fresh.Access(addr, write); uh != fh {
				t.Fatalf("%v: access %d (addr %#x): reset cache hit=%v, fresh hit=%v", policy, i, addr, uh, fh)
			}
		}
		if used.Stats() != fresh.Stats() {
			t.Errorf("%v: reset cache stats %+v != fresh %+v", policy, used.Stats(), fresh.Stats())
		}
	}
}

// TestLaneResetEquivalentToFresh: same property for the lean Lane.
func TestLaneResetEquivalentToFresh(t *testing.T) {
	cfg := Config{SizeBytes: 3 << 20, Ways: 16}
	used := MustNewLane(cfg)
	rng := rand.New(rand.NewSource(17))
	for _, addr := range randTrace(rng, 30_000) {
		used.Access(addr)
	}
	used.Reset()

	fresh := MustNewLane(cfg)
	rng = rand.New(rand.NewSource(19))
	for i, addr := range randTrace(rng, 30_000) {
		if uh, fh := used.Access(addr), fresh.Access(addr); uh != fh {
			t.Fatalf("access %d (addr %#x): reset lane hit=%v, fresh hit=%v", i, addr, uh, fh)
		}
	}
}

func TestNewLaneRejectsBadGeometry(t *testing.T) {
	if _, err := NewLane(Config{SizeBytes: 1000, Ways: 16}); err == nil {
		t.Error("NewLane accepted a size that is not a multiple of way capacity")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewLane with invalid geometry did not panic")
		}
	}()
	MustNewLane(Config{SizeBytes: 0, Ways: 0})
}
