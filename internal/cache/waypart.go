package cache

import (
	"fmt"
)

// WayPartitioned is the classic way-partitioned shared cache (Catalyst [28],
// Intel CAT style): every set's ways are divided into contiguous per-domain
// regions, so a domain's partition size moves in increments of one way
// (1 MB for the Table 3 LLC). The evaluation uses set partitioning because
// its 9 supported sizes go down to 128 kB; this type exists as the
// comparison point for the granularity ablation — same total capacity,
// coarser resizing alphabet.
//
// State shares the resizable Cache's hot-path layout: packed tags
// (lineAddr+1, 0 = invalid) scanned apart from the LRU/dirty metadata, and
// a precomputed Lemire reciprocal in place of the set-index divide. The
// access semantics — scan order, empty-way preference, min-LRU
// first-index-wins victims, and the Resize migration's most-recently-used
// selection — are those of the original array-of-structs implementation.
type WayPartitioned struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways, set-major
	lru   []uint64
	dirty []bool
	// modHi/modLo form the 128-bit Lemire reciprocal ceil(2^128/sets); the
	// set count never changes, so it is computed once.
	modHi, modLo uint64
	tick         uint64
	// wayStart/wayCount give each domain its contiguous way range.
	wayStart []int
	wayCount []int
	stats    []Stats
	// scratch marks selected source ways during a Resize migration; one
	// allocation reused across every set × domain instead of one per call.
	scratch []bool
}

// NewWayPartitioned builds the shared structure and grants each domain an
// initial number of ways; the grants must fit the associativity.
func NewWayPartitioned(cfg Config, initialWays []int) (*WayPartitioned, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for d, w := range initialWays {
		if w < 1 {
			return nil, fmt.Errorf("cache: domain %d granted %d ways", d, w)
		}
		total += w
	}
	if total > cfg.Ways {
		return nil, fmt.Errorf("cache: %d ways granted, only %d exist", total, cfg.Ways)
	}
	w := &WayPartitioned{
		sets:     cfg.Sets(),
		ways:     cfg.Ways,
		wayStart: make([]int, len(initialWays)),
		wayCount: append([]int(nil), initialWays...),
		stats:    make([]Stats, len(initialWays)),
	}
	w.tags = make([]uint64, w.sets*w.ways)
	w.lru = make([]uint64, w.sets*w.ways)
	w.dirty = make([]bool, w.sets*w.ways)
	w.modHi, w.modLo = reciprocal(uint64(w.sets))
	w.layout()
	return w, nil
}

// layout recomputes contiguous way ranges from the counts, packing domains
// in index order. Lines that fall outside their domain's new range are
// invalidated by Resize before calling layout.
func (w *WayPartitioned) layout() {
	start := 0
	for d := range w.wayCount {
		w.wayStart[d] = start
		start += w.wayCount[d]
	}
}

// Ways returns the number of ways currently granted to a domain.
func (w *WayPartitioned) Ways(domain int) int { return w.wayCount[domain] }

// SizeBytes returns a domain's partition size.
func (w *WayPartitioned) SizeBytes(domain int) int64 {
	return int64(w.wayCount[domain]) * int64(w.sets) * LineBytes
}

// Stats returns a domain's counters.
func (w *WayPartitioned) Stats(domain int) Stats { return w.stats[domain] }

// setBase returns the index of addr's set-major row and the line tag.
func (w *WayPartitioned) setBase(addr uint64) (base int, tag uint64) {
	lineAddr := addr / LineBytes
	h := lineAddr * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(fastmod(h, w.modHi, w.modLo, uint64(w.sets))) * w.ways, lineAddr + 1
}

// Access performs a load/store for a domain, confined to its ways.
func (w *WayPartitioned) Access(domain int, addr uint64, write bool) bool {
	row, tag := w.setBase(addr)
	base := row + w.wayStart[domain]
	count := w.wayCount[domain]
	tags := w.tags[base : base+count]
	w.tick++
	st := &w.stats[domain]
	empty := -1
	for i, t := range tags {
		if t == tag {
			w.lru[base+i] = w.tick
			if write {
				w.dirty[base+i] = true
			}
			st.Hits++
			return true
		}
		if t == 0 && empty < 0 {
			empty = i
		}
	}
	st.Misses++
	slot := empty
	if slot < 0 {
		// No empty way, so every entry is valid: the plain min-LRU scan
		// (first index wins ties) matches the valid-only scan it replaces.
		lru := w.lru[base : base+count]
		victim, oldest := 0, ^uint64(0)
		for i, v := range lru {
			if v < oldest {
				oldest = v
				victim = i
			}
		}
		slot = victim
		st.Evictions++
		if w.dirty[base+slot] {
			st.Writebacks++
		}
	}
	w.tags[base+slot] = tag
	w.lru[base+slot] = w.tick
	w.dirty[base+slot] = write
	return false
}

// Contains probes a domain's partition without side effects.
func (w *WayPartitioned) Contains(domain int, addr uint64) bool {
	row, tag := w.setBase(addr)
	base := row + w.wayStart[domain]
	for _, t := range w.tags[base : base+w.wayCount[domain]] {
		if t == tag {
			return true
		}
	}
	return false
}

// Resize changes every domain's way grant at once (way repartitioning is a
// global operation: ranges shift). Each domain keeps the most-recently-used
// lines that fit its new range; the rest are invalidated, with dirty victims
// counted as writebacks against their owner.
func (w *WayPartitioned) Resize(newWays []int) error {
	if len(newWays) != len(w.wayCount) {
		return fmt.Errorf("cache: %d grants for %d domains", len(newWays), len(w.wayCount))
	}
	total := 0
	for d, n := range newWays {
		if n < 1 {
			return fmt.Errorf("cache: domain %d granted %d ways", d, n)
		}
		total += n
	}
	if total > w.ways {
		return fmt.Errorf("cache: %d ways granted, only %d exist", total, w.ways)
	}
	same := true
	for d, n := range newWays {
		if n != w.wayCount[d] {
			same = false
			break
		}
	}
	if same {
		// Maintain: nothing moves, skip the migration entirely.
		return nil
	}
	// Compute new starts, then migrate set by set: for each domain, copy the
	// most-recently-used lines of its old range into its new range.
	oldStart := append([]int(nil), w.wayStart...)
	oldCount := append([]int(nil), w.wayCount...)
	w.wayCount = append(w.wayCount[:0], newWays...)
	w.layout()
	newTags := make([]uint64, len(w.tags))
	newLRU := make([]uint64, len(w.lru))
	newDirty := make([]bool, len(w.dirty))
	if w.scratch == nil {
		w.scratch = make([]bool, w.ways)
	}
	for set := 0; set < w.sets; set++ {
		base := set * w.ways
		for d := range newWays {
			w.migrate(base+oldStart[d], oldCount[d],
				newTags, newLRU, newDirty, base+w.wayStart[d], w.wayCount[d],
				&w.stats[d])
		}
	}
	w.tags, w.lru, w.dirty = newTags, newLRU, newDirty
	return nil
}

// migrate copies the most-recently-used valid lines of the source range
// (srcN ways at srcBase in the current arrays) into the destination range,
// charging writebacks for dropped dirty lines. Selection is by repeated max
// with first-index tie wins — way counts are at most the associativity, so
// the quadratic scan is trivial.
func (w *WayPartitioned) migrate(srcBase, srcN int, dstTags, dstLRU []uint64, dstDirty []bool, dstBase, dstN int, st *Stats) {
	used := w.scratch[:srcN]
	for i := range used {
		used[i] = false
	}
	for slot := 0; slot < dstN; slot++ {
		best, bestLRU := -1, uint64(0)
		for i := 0; i < srcN; i++ {
			if used[i] || w.tags[srcBase+i] == 0 {
				continue
			}
			if best < 0 || w.lru[srcBase+i] > bestLRU {
				best, bestLRU = i, w.lru[srcBase+i]
			}
		}
		if best < 0 {
			break
		}
		dstTags[dstBase+slot] = w.tags[srcBase+best]
		dstLRU[dstBase+slot] = w.lru[srcBase+best]
		dstDirty[dstBase+slot] = w.dirty[srcBase+best]
		used[best] = true
	}
	for i := 0; i < srcN; i++ {
		if w.tags[srcBase+i] != 0 && !used[i] && w.dirty[srcBase+i] {
			st.Writebacks++
		}
	}
}
