package cache

import (
	"fmt"
)

// WayPartitioned is the classic way-partitioned shared cache (Catalyst [28],
// Intel CAT style): every set's ways are divided into contiguous per-domain
// regions, so a domain's partition size moves in increments of one way
// (1 MB for the Table 3 LLC). The evaluation uses set partitioning because
// its 9 supported sizes go down to 128 kB; this type exists as the
// comparison point for the granularity ablation — same total capacity,
// coarser resizing alphabet.
type WayPartitioned struct {
	sets  int
	ways  int
	lines []line // sets*ways, set-major
	tick  uint64
	// wayStart/wayCount give each domain its contiguous way range.
	wayStart []int
	wayCount []int
	stats    []Stats
}

// NewWayPartitioned builds the shared structure and grants each domain an
// initial number of ways; the grants must fit the associativity.
func NewWayPartitioned(cfg Config, initialWays []int) (*WayPartitioned, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for d, w := range initialWays {
		if w < 1 {
			return nil, fmt.Errorf("cache: domain %d granted %d ways", d, w)
		}
		total += w
	}
	if total > cfg.Ways {
		return nil, fmt.Errorf("cache: %d ways granted, only %d exist", total, cfg.Ways)
	}
	w := &WayPartitioned{
		sets:     cfg.Sets(),
		ways:     cfg.Ways,
		wayStart: make([]int, len(initialWays)),
		wayCount: append([]int(nil), initialWays...),
		stats:    make([]Stats, len(initialWays)),
	}
	w.lines = make([]line, w.sets*w.ways)
	w.layout()
	return w, nil
}

// layout recomputes contiguous way ranges from the counts, packing domains
// in index order. Lines that fall outside their domain's new range are
// invalidated by Resize before calling layout.
func (w *WayPartitioned) layout() {
	start := 0
	for d := range w.wayCount {
		w.wayStart[d] = start
		start += w.wayCount[d]
	}
}

// Ways returns the number of ways currently granted to a domain.
func (w *WayPartitioned) Ways(domain int) int { return w.wayCount[domain] }

// SizeBytes returns a domain's partition size.
func (w *WayPartitioned) SizeBytes(domain int) int64 {
	return int64(w.wayCount[domain]) * int64(w.sets) * LineBytes
}

// Stats returns a domain's counters.
func (w *WayPartitioned) Stats(domain int) Stats { return w.stats[domain] }

// Access performs a load/store for a domain, confined to its ways.
func (w *WayPartitioned) Access(domain int, addr uint64, write bool) bool {
	lineAddr := addr / LineBytes
	h := lineAddr * 0x9E3779B97F4A7C15
	h ^= h >> 32
	set := int(h % uint64(w.sets))
	base := set*w.ways + w.wayStart[domain]
	ways := w.lines[base : base+w.wayCount[domain]]
	w.tick++
	st := &w.stats[domain]
	var victim, empty = -1, -1
	var oldest uint64 = ^uint64(0)
	for i := range ways {
		l := &ways[i]
		if !l.valid {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if l.lineAddr == lineAddr {
			l.lru = w.tick
			if write {
				l.dirty = true
			}
			st.Hits++
			return true
		}
		if l.lru < oldest {
			oldest = l.lru
			victim = i
		}
	}
	st.Misses++
	slot := empty
	if slot < 0 {
		slot = victim
		st.Evictions++
		if ways[slot].dirty {
			st.Writebacks++
		}
	}
	ways[slot] = line{lineAddr: lineAddr, lru: w.tick, valid: true, dirty: write}
	return false
}

// Contains probes a domain's partition without side effects.
func (w *WayPartitioned) Contains(domain int, addr uint64) bool {
	lineAddr := addr / LineBytes
	h := lineAddr * 0x9E3779B97F4A7C15
	h ^= h >> 32
	set := int(h % uint64(w.sets))
	base := set*w.ways + w.wayStart[domain]
	for _, l := range w.lines[base : base+w.wayCount[domain]] {
		if l.valid && l.lineAddr == lineAddr {
			return true
		}
	}
	return false
}

// Resize changes every domain's way grant at once (way repartitioning is a
// global operation: ranges shift). Lines are preserved where a domain's new
// range overlaps its old one positionally; the rest are invalidated, with
// dirty victims counted as writebacks against their owner.
func (w *WayPartitioned) Resize(newWays []int) error {
	if len(newWays) != len(w.wayCount) {
		return fmt.Errorf("cache: %d grants for %d domains", len(newWays), len(w.wayCount))
	}
	total := 0
	for d, n := range newWays {
		if n < 1 {
			return fmt.Errorf("cache: domain %d granted %d ways", d, n)
		}
		total += n
	}
	if total > w.ways {
		return fmt.Errorf("cache: %d ways granted, only %d exist", total, w.ways)
	}
	same := true
	for d, n := range newWays {
		if n != w.wayCount[d] {
			same = false
			break
		}
	}
	if same {
		// Maintain: nothing moves, skip the migration entirely.
		return nil
	}
	// Compute new starts, then migrate set by set: for each domain, copy the
	// most-recently-used lines of its old range into its new range.
	oldStart := append([]int(nil), w.wayStart...)
	oldCount := append([]int(nil), w.wayCount...)
	w.wayCount = append(w.wayCount[:0], newWays...)
	w.layout()
	newLines := make([]line, len(w.lines))
	for set := 0; set < w.sets; set++ {
		base := set * w.ways
		for d := range newWays {
			src := w.lines[base+oldStart[d] : base+oldStart[d]+oldCount[d]]
			dst := newLines[base+w.wayStart[d] : base+w.wayStart[d]+w.wayCount[d]]
			keepTopLRU(src, dst, &w.stats[d])
		}
	}
	w.lines = newLines
	return nil
}

// keepTopLRU copies the most-recently-used valid lines of src into dst
// (which holds len(dst) slots), charging writebacks for dropped dirty lines.
func keepTopLRU(src, dst []line, st *Stats) {
	// Selection by repeated max; way counts are at most 16.
	used := make([]bool, len(src))
	for slot := range dst {
		best, bestLRU := -1, uint64(0)
		for i := range src {
			if used[i] || !src[i].valid {
				continue
			}
			if best < 0 || src[i].lru > bestLRU {
				best, bestLRU = i, src[i].lru
			}
		}
		if best < 0 {
			break
		}
		dst[slot] = src[best]
		used[best] = true
	}
	for i := range src {
		if src[i].valid && !used[i] && src[i].dirty {
			st.Writebacks++
		}
	}
}
