package cache

// Replacement policies. The paper's evaluation (and this repository's
// default everywhere) is true LRU; hardware LLCs typically approximate it.
// The alternatives exist for the replacement-policy ablation: tree-PLRU
// tracks LRU closely, random replacement degrades re-use retention, and the
// monitor's shadow tags — which assume stack-like behaviour — approximate
// real utilities less well under random replacement.

// Policy selects the victim within a set.
type Policy int

const (
	// LRU evicts the least-recently-used line (the default).
	LRU Policy = iota
	// TreePLRU approximates LRU with a binary decision tree per set, the
	// common hardware implementation for 8/16-way sets.
	TreePLRU
	// Random evicts a pseudo-random way (deterministically seeded).
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case TreePLRU:
		return "TreePLRU"
	case Random:
		return "Random"
	default:
		return "Policy(?)"
	}
}

// SetPolicy switches the cache's replacement policy. It may be called only
// before the first access (policy state is lazily initialized).
func (c *Cache) SetPolicy(p Policy) {
	c.policy = p
	if p == TreePLRU && c.plru == nil {
		// One bit per internal tree node, ways-1 nodes per set.
		c.plru = make([]uint32, c.sets)
	}
}

// Policy returns the active replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// victimFor picks the eviction way index for a full set under the active
// policy. base is the set's first index into the metadata array; used only
// when no empty way exists.
func (c *Cache) victimFor(set, base int) int {
	switch c.policy {
	case TreePLRU:
		return c.plruVictim(set, c.ways)
	case Random:
		c.rng = c.rng*6364136223846793005 + 1442695040888963407
		return int((c.rng >> 33) % uint64(c.ways))
	default:
		lru := c.lru[base : base+c.ways]
		victim, oldest := 0, ^uint64(0)
		for i, v := range lru {
			if v < oldest {
				oldest = v
				victim = i
			}
		}
		return victim
	}
}

// plruTouch updates the tree bits on an access to way w: each node on the
// path is pointed AWAY from the accessed leaf.
func (c *Cache) plruTouch(set, w, ways int) {
	if c.plru == nil {
		return
	}
	bits := c.plru[set]
	node := 1
	// Walk from the root: the tree has `ways` leaves (power of two assumed;
	// non-power-of-two associativities fall back to modulo leaf mapping).
	for span := ways; span > 1; span /= 2 {
		half := span / 2
		if w < half {
			bits |= 1 << uint(node-1) // point to the right half
			node = node * 2
		} else {
			bits &^= 1 << uint(node-1) // point to the left half
			node = node*2 + 1
			w -= half
		}
	}
	c.plru[set] = bits
}

// plruVictim follows the tree bits to the pseudo-LRU leaf.
func (c *Cache) plruVictim(set, ways int) int {
	bits := c.plru[set]
	node := 1
	w := 0
	for span := ways; span > 1; span /= 2 {
		half := span / 2
		if bits&(1<<uint(node-1)) != 0 {
			// Bit points right: the colder half is the right one.
			node = node*2 + 1
			w += half
		} else {
			node = node * 2
		}
	}
	if w >= ways {
		w = ways - 1
	}
	return w
}
