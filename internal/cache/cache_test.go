package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 64 B = 512 B.
	return MustNew(Config{SizeBytes: 512, Ways: 2})
}

func TestConfigSetsAndValidate(t *testing.T) {
	cfg := Config{SizeBytes: 2 << 20, Ways: 16}
	if got := cfg.Sets(); got != 2048 {
		t.Errorf("2MB/16-way sets = %d, want 2048", got)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Config{
		{SizeBytes: 0, Ways: 16},
		{SizeBytes: 1000, Ways: 16}, // not a multiple of way capacity
		{SizeBytes: 1 << 20, Ways: 0},
		{SizeBytes: -64, Ways: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	// Table 3 geometries must all validate.
	for _, kb := range []int64{128, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192} {
		cfg := Config{SizeBytes: kb << 10, Ways: 16}
		if err := cfg.Validate(); err != nil {
			t.Errorf("supported size %dkB: %v", kb, err)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Error("second access missed")
	}
	if !c.Access(0x103F, false) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040, false) {
		t.Error("next-line access hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits 2 misses", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Find three addresses in the same set.
	var sameSet []uint64
	set0 := c.setIndex(0x1000 / LineBytes)
	for a := uint64(0x1000); len(sameSet) < 3; a += LineBytes {
		if c.setIndex(a/LineBytes) == set0 {
			sameSet = append(sameSet, a)
		}
	}
	a, b, d := sameSet[0], sameSet[1], sameSet[2]
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU, b is LRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
	if !c.Contains(d) {
		t.Error("inserted line missing")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small()
	set0 := c.setIndex(0)
	var sameSet []uint64
	for a := uint64(0); len(sameSet) < 3; a += LineBytes {
		if c.setIndex(a/LineBytes) == set0 {
			sameSet = append(sameSet, a)
		}
	}
	c.Access(sameSet[0], true) // dirty
	c.Access(sameSet[1], false)
	c.Access(sameSet[2], false) // evicts dirty sameSet[0]
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0x40, true)
	c.Access(0x80, false)
	c.Flush()
	if c.ValidLines() != 0 {
		t.Error("flush left valid lines")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1 (one dirty line)", c.Stats().Writebacks)
	}
}

func TestResizeNoopKeepsContents(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128 << 10, Ways: 16})
	for a := uint64(0); a < 64<<10; a += LineBytes {
		c.Access(a, false)
	}
	before := c.ValidLines()
	if err := c.Resize(128 << 10); err != nil {
		t.Fatal(err)
	}
	if c.ValidLines() != before {
		t.Error("no-op resize changed contents")
	}
}

func TestResizeGrowPreservesLines(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128 << 10, Ways: 16})
	var addrs []uint64
	for a := uint64(0); a < 64<<10; a += LineBytes {
		c.Access(a, false)
		addrs = append(addrs, a)
	}
	if err := c.Resize(512 << 10); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if !c.Contains(a) {
			t.Fatalf("line %#x lost on grow", a)
		}
	}
	if c.Sets() != (Config{SizeBytes: 512 << 10, Ways: 16}).Sets() {
		t.Error("set count not updated")
	}
}

func TestResizeShrinkBoundsCapacityAndPrefersRecent(t *testing.T) {
	c := MustNew(Config{SizeBytes: 512 << 10, Ways: 16})
	// Fill well beyond the shrink target.
	for a := uint64(0); a < 512<<10; a += LineBytes {
		c.Access(a, false)
	}
	if err := c.Resize(128 << 10); err != nil {
		t.Fatal(err)
	}
	maxLines := int((128 << 10) / LineBytes)
	if got := c.ValidLines(); got > maxLines {
		t.Errorf("valid lines %d exceed shrunk capacity %d", got, maxLines)
	}
}

func TestResizeRejectsInvalid(t *testing.T) {
	c := small()
	if err := c.Resize(0); err == nil {
		t.Error("resize to 0 accepted")
	}
	if err := c.Resize(100); err == nil {
		t.Error("resize to non-multiple accepted")
	}
}

func TestResizeNonPowerOfTwoSizes(t *testing.T) {
	// 3MB and 6MB are supported sizes that are not powers of two.
	c := MustNew(Config{SizeBytes: 3 << 20, Ways: 16})
	for a := uint64(0); a < 1<<20; a += LineBytes {
		c.Access(a, false)
	}
	if err := c.Resize(6 << 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(128 << 10); err != nil {
		t.Fatal(err)
	}
	if got, max := c.ValidLines(), (128<<10)/LineBytes; got > max {
		t.Errorf("lines %d exceed capacity %d", got, max)
	}
}

func TestStatsAddAndRates(t *testing.T) {
	var s Stats
	s.Add(Stats{Hits: 3, Misses: 1, Evictions: 1, Writebacks: 1})
	s.Add(Stats{Hits: 1, Misses: 3})
	if s.Accesses() != 8 {
		t.Errorf("accesses = %d, want 8", s.Accesses())
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than the cache must reach a 100% steady-state
	// hit rate — the property the LLC-sensitivity study depends on.
	c := MustNew(Config{SizeBytes: 256 << 10, Ways: 16})
	ws := uint64(128 << 10)
	for a := uint64(0); a < ws; a += LineBytes {
		c.Access(a, false)
	}
	c.ResetStats()
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < ws; a += LineBytes {
			c.Access(a, false)
		}
	}
	if hr := c.Stats().HitRate(); hr != 1 {
		t.Errorf("steady-state hit rate = %v, want 1", hr)
	}
}

func TestPropertyValidLinesNeverExceedCapacity(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		c := MustNew(Config{SizeBytes: 8 << 10, Ways: 4})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(ops)%2000; i++ {
			c.Access(uint64(r.Intn(1<<16))*8, r.Intn(4) == 0)
		}
		return c.ValidLines() <= c.Sets()*c.Ways()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAccessAfterAccessHits(t *testing.T) {
	// Immediately re-accessing an address always hits (LRU makes the line
	// MRU, so it cannot have been evicted).
	f := func(seed int64) bool {
		c := MustNew(Config{SizeBytes: 4 << 10, Ways: 2})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			a := uint64(r.Intn(1 << 14))
			c.Access(a, false)
			if !c.Access(a, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResizeRoundTripKeepsInvariants(t *testing.T) {
	sizes := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 3 << 20}
	f := func(seed int64, steps uint8) bool {
		c := MustNew(Config{SizeBytes: 512 << 10, Ways: 16})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(steps)%12; i++ {
			for j := 0; j < 300; j++ {
				c.Access(uint64(r.Intn(1<<22)), r.Intn(8) == 0)
			}
			if err := c.Resize(sizes[r.Intn(len(sizes))]); err != nil {
				return false
			}
			if c.ValidLines() > c.Sets()*c.Ways() {
				return false
			}
			// Every resident line must still be findable via Access (hit).
			// Sample a few random probes for liveness of the structure.
			for j := 0; j < 50; j++ {
				a := uint64(r.Intn(1 << 22))
				if c.Contains(a) && !c.Access(a, false) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHot(b *testing.B) {
	c := MustNew(Config{SizeBytes: 2 << 20, Ways: 16})
	for i := 0; b.Loop(); i++ {
		c.Access(uint64(i%1024)*LineBytes, false)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	c := MustNew(Config{SizeBytes: 2 << 20, Ways: 16})
	for i := 0; b.Loop(); i++ {
		c.Access(uint64(i)*LineBytes, false)
	}
}

func TestPrefetchInstallsWithoutDemandStats(t *testing.T) {
	c := small()
	c.Prefetch(0x1000)
	if !c.Contains(0x1000) {
		t.Fatal("prefetched line absent")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("prefetch touched demand stats: %+v", s)
	}
	if s.Prefetches != 1 {
		t.Errorf("prefetches = %d", s.Prefetches)
	}
	// The subsequent demand access hits.
	if !c.Access(0x1000, false) {
		t.Error("demand access after prefetch missed")
	}
	// Prefetching a resident line is a no-op.
	c.Prefetch(0x1000)
	if c.Stats().Prefetches != 1 {
		t.Error("resident prefetch counted")
	}
}

func TestPrefetchEvictsLRUAndCountsWriteback(t *testing.T) {
	c := small() // 4 sets x 2 ways
	set0 := c.setIndex(0x1000 / LineBytes)
	var sameSet []uint64
	for a := uint64(0x1000); len(sameSet) < 3; a += LineBytes {
		if c.setIndex(a/LineBytes) == set0 {
			sameSet = append(sameSet, a)
		}
	}
	c.Access(sameSet[0], true) // dirty
	c.Access(sameSet[1], false)
	c.Prefetch(sameSet[2]) // evicts the dirty LRU line
	s := c.Stats()
	if s.Writebacks != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want one eviction with writeback", s)
	}
	// The prefetched line is below the MRU line in LRU order: another
	// conflicting demand access should evict the prefetch, not the MRU.
	c.Access(sameSet[0], false)
	if !c.Contains(sameSet[1]) {
		t.Error("MRU demand line evicted instead of the prefetched one")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Hits: 10, Misses: 5, Evictions: 3, Writebacks: 2, Prefetches: 7}
	a.Sub(Stats{Hits: 4, Misses: 1, Evictions: 1, Writebacks: 1, Prefetches: 2})
	if a != (Stats{Hits: 6, Misses: 4, Evictions: 2, Writebacks: 1, Prefetches: 5}) {
		t.Errorf("Sub = %+v", a)
	}
}

// reachableSets enumerates every set count the simulator can configure: the
// 9 Table-3 LLC partition sizes at 16 ways, the L1 geometries, and the
// monitor's sampled shadow sizes, plus adversarial small counts.
func reachableSets(t *testing.T) []uint64 {
	t.Helper()
	var sets []uint64
	for _, kb := range []int64{128, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192} {
		cfg := Config{SizeBytes: kb << 10, Ways: 16}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		sets = append(sets, uint64(cfg.Sets()))
	}
	// L1 (32kB/8-way), shadow arrays (down-sampled partitions), tiny caches.
	for _, s := range []uint64{1, 2, 3, 4, 8, 64, 96, 512} {
		sets = append(sets, s)
	}
	return sets
}

func TestFastmodAgreesWithModulo(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, d := range reachableSets(t) {
		mHi, mLo := reciprocal(d)
		// Edge operands plus a random spray of full-width line-address hashes.
		xs := []uint64{0, 1, d - 1, d, d + 1, ^uint64(0), ^uint64(0) - 1, 1 << 63}
		for i := 0; i < 5000; i++ {
			xs = append(xs, r.Uint64())
		}
		for _, x := range xs {
			if got, want := fastmod(x, mHi, mLo, d), x%d; got != want {
				t.Fatalf("fastmod(%#x, d=%d) = %d, want %d", x, d, got, want)
			}
		}
	}
}

func TestSetIndexMatchesModuloThroughResizes(t *testing.T) {
	// The property the simulator actually relies on: after any Resize chain,
	// setIndex still equals the mixed hash reduced by % over the live set
	// count — i.e. the reciprocal is recomputed, never stale.
	c := MustNew(Config{SizeBytes: 2 << 20, Ways: 16})
	r := rand.New(rand.NewSource(7))
	sizes := []int64{128 << 10, 3 << 20, 8 << 20, 256 << 10, 6 << 20, 1 << 20}
	for _, size := range sizes {
		if err := c.Resize(size); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			lineAddr := r.Uint64() >> 6
			h := lineAddr * 0x9E3779B97F4A7C15
			h ^= h >> 32
			if got, want := c.setIndex(lineAddr), int(h%uint64(c.sets)); got != want {
				t.Fatalf("after Resize(%d): setIndex(%#x) = %d, want %d", size, lineAddr, got, want)
			}
		}
	}
}

func TestResizeThenAccessRegression(t *testing.T) {
	// Regression for the reciprocal lifecycle: grow and shrink across
	// non-power-of-two sizes, then verify accesses behave (hit after miss,
	// capacity bounded, Contains consistent with Access).
	c := MustNew(Config{SizeBytes: 512 << 10, Ways: 16})
	r := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 400)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 24))
	}
	for _, size := range []int64{3 << 20, 128 << 10, 6 << 20, 256 << 10, 8 << 20} {
		if err := c.Resize(size); err != nil {
			t.Fatal(err)
		}
		for _, a := range addrs {
			c.Access(a, false)
			if !c.Access(a, false) {
				t.Fatalf("size %d: immediate re-access of %#x missed", size, a)
			}
			if !c.Contains(a) {
				t.Fatalf("size %d: Contains(%#x) false right after hit", size, a)
			}
		}
		if got, max := c.ValidLines(), c.Sets()*c.Ways(); got > max {
			t.Fatalf("size %d: %d valid lines exceed capacity %d", size, got, max)
		}
	}
}

func BenchmarkSetIndex(b *testing.B) {
	c := MustNew(Config{SizeBytes: 3 << 20, Ways: 16}) // non-power-of-two sets
	var sink int
	for i := 0; b.Loop(); i++ {
		sink = c.setIndex(uint64(i) * 977)
	}
	_ = sink
}
