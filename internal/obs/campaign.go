package obs

import (
	"runtime"
	"strings"
	"sync"
	"time"

	"untangle/internal/parallel"
	"untangle/internal/telemetry"
)

// unitSecondsBuckets spans 1ms to ~70min exponentially — wide enough for a
// smoke-scale benchmark pass and a paper-fidelity one in the same layout.
var unitSecondsBuckets = telemetry.ExpBuckets(0.001, 4, 12)

// Campaign binds the observability surfaces for one campaign run: a span
// tracer (may be nil — spans off), a progress tracker, and a telemetry
// registry holding the obs metrics (worker-pool gauges, per-phase unit
// latency histograms). A nil *Campaign disables everything it touches.
type Campaign struct {
	Tracer   *Tracer
	Progress *Progress
	Registry *telemetry.Registry

	root *Span

	mu         sync.Mutex
	phaseSpans map[string]*Span
}

// NewCampaign opens a campaign named name. The root span is emitted
// immediately (if tracer is non-nil); worker-pool gauges are registered on
// the registry as lazy GaugeFuncs sampling internal/parallel's process-wide
// counters, so they cost nothing until a snapshot or scrape evaluates them.
func NewCampaign(name string, tracer *Tracer, progress *Progress, reg *telemetry.Registry) *Campaign {
	c := &Campaign{
		Tracer:     tracer,
		Progress:   progress,
		Registry:   reg,
		phaseSpans: map[string]*Span{},
	}
	c.root = tracer.Start(nil, "campaign", name)
	if reg != nil {
		reg.GaugeFunc("obs.pool.active_workers", func() float64 {
			return float64(parallel.Stats().Active)
		})
		reg.GaugeFunc("obs.pool.queue_depth", func() float64 {
			return float64(parallel.Stats().Queued)
		})
		reg.GaugeFunc("obs.pool.tasks_started", func() float64 {
			return float64(parallel.Stats().Started)
		})
		reg.GaugeFunc("obs.pool.tasks_completed", func() float64 {
			return float64(parallel.Stats().Completed)
		})
		reg.GaugeFunc("obs.pool.tasks_failed", func() float64 {
			return float64(parallel.Stats().Failed)
		})
		// Utilization: active tasks over the machine's parallelism budget.
		// Can exceed 1 with nested pools; that over-subscription is itself
		// the signal an operator wants to see.
		reg.GaugeFunc("obs.pool.utilization", func() float64 {
			return float64(parallel.Stats().Active) / float64(runtime.GOMAXPROCS(0))
		})
	}
	return c
}

// Phase declares a counted phase with a known unit total: it registers the
// phase on the progress tracker and opens a phase span under the campaign
// root, which subsequent units of that phase nest under. Nil-safe.
func (c *Campaign) Phase(name string, total int) {
	if c == nil {
		return
	}
	c.Progress.Phase(name, total)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.phaseSpans[name]; !ok {
		c.phaseSpans[name] = c.Tracer.Start(c.root, "phase", name)
	}
}

// Unit opens one unit of work and returns the completion callback. Its
// signature is the experiments.UnitObserver contract: the engine calls
// Unit(phase, name) when a unit begins and the returned func(outcome, err)
// when it ends, where outcome is UnitGenerated, UnitResumed
// (checkpoint-journal replay), or UnitReplayed (front-end trace-cache
// replay).
//
// Counted phases (declared via Phase) advance the progress tracker and feed
// the per-phase latency histogram "obs.<phase>.unit_seconds" — resumed and
// replayed units are counted as done but kept out of the histogram and the
// rate estimate, since replay latency says nothing about simulation
// latency. Sub-unit phases — names containing '/', like "sensitivity/pass"
// for one retry attempt inside a benchmark unit — are traced as spans but
// neither counted nor histogrammed: their parent unit already accounts for
// the work.
//
// Unit on a nil *Campaign returns nil; callers treat a nil callback as
// "observability off" (see experiments.ObserveUnit).
func (c *Campaign) Unit(phase, name string) func(outcome string, err error) {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	parent := c.phaseSpans[phase]
	c.mu.Unlock()
	if parent == nil {
		parent = c.root
	}
	span := c.Tracer.Start(parent, phase, name)
	start := time.Now()
	subUnit := strings.ContainsRune(phase, '/')
	var ph *Phase
	if !subUnit && c.Progress != nil {
		c.Progress.mu.Lock()
		ph = c.Progress.byName[phase]
		c.Progress.mu.Unlock()
	}
	return func(outcome string, err error) {
		if span != nil {
			span.Outcome = outcome
			span.End(err)
		}
		if subUnit {
			return
		}
		ph.UnitDone(outcome)
		if outcome == UnitGenerated && c.Registry != nil {
			c.Registry.Histogram("obs."+phase+".unit_seconds", unitSecondsBuckets).
				Observe(time.Since(start).Seconds())
		}
	}
}

// End closes every open phase span and the campaign root. Call once, after
// the campaign's last unit. Nil-safe.
func (c *Campaign) End(err error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	spans := c.phaseSpans
	c.phaseSpans = map[string]*Span{}
	c.mu.Unlock()
	for _, s := range spans {
		s.End(nil)
	}
	c.root.End(err)
}
