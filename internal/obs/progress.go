package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// emaDecay is the weight of the newest per-unit rate observation in the
// decaying estimate. 0.25 reacts within ~4 units to a workload phase change
// (big benchmarks after small ones) while smoothing worker-completion
// bursts.
const emaDecay = 0.25

// Progress tracks a campaign's units done/total per phase and derives ETAs
// from a decaying completion-rate estimate. It is the data source for the
// /progress endpoint, the stderr reporter, and the heartbeat journal. All
// methods are safe for concurrent use; a nil *Progress no-ops everywhere.
type Progress struct {
	mu     sync.Mutex
	start  time.Time
	prior  time.Duration // elapsed in previous sessions of a resumed campaign
	phases []*Phase
	byName map[string]*Phase
	now    func() time.Time
}

// NewProgress builds an empty progress tracker; phases register via Phase.
func NewProgress() *Progress {
	now := time.Now
	return &Progress{start: now(), byName: map[string]*Phase{}, now: now}
}

// SetPrior records wall-clock time spent by previous sessions of this
// campaign (recovered from the heartbeat journal), so a resumed run's
// elapsed accounting is continuous instead of restarting at zero.
func (p *Progress) SetPrior(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.prior = d
	p.mu.Unlock()
}

// Phase registers (or returns) the named phase with the given unit total.
// Registration order is display order. A later call may correct the total
// (a campaign that prunes units re-declares with the smaller count).
func (p *Progress) Phase(name string, total int) *Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ph, ok := p.byName[name]; ok {
		ph.mu.Lock()
		ph.total = total
		ph.mu.Unlock()
		return ph
	}
	ph := &Phase{name: name, total: total, started: p.now(), now: p.now}
	p.phases = append(p.phases, ph)
	p.byName[name] = ph
	return ph
}

// Phase is one stage of a campaign (the sensitivity study, the mix sweep)
// with a known unit count.
type Phase struct {
	mu       sync.Mutex
	name     string
	total    int
	done     int
	resumed  int
	replayed int
	dead     int
	started  time.Time
	last     time.Time
	// ratePerSec is the decaying estimate of units completed per second,
	// updated at every generated (not resumed/replayed) completion from the
	// inter-completion gap.
	ratePerSec float64
	now        func() time.Time
}

// UnitDone records one completed unit. outcome distinguishes units that
// skipped their work: UnitResumed (checkpoint-journal replay) and
// UnitReplayed (front-end trace-cache replay) advance done but not the rate
// estimate, so a resume that replays 30 journaled units in a millisecond —
// or a warm cache that replays a front-end pass in a fraction of its
// generation time — does not fake an absurd ETA for the remaining cold work.
// UnitDead (a unit written to the dead-letter journal) likewise counts as
// done — the campaign will not run it again — without feeding the rate.
func (ph *Phase) UnitDone(outcome string) {
	if ph == nil {
		return
	}
	now := ph.now()
	ph.mu.Lock()
	defer ph.mu.Unlock()
	ph.done++
	switch outcome {
	case UnitResumed:
		ph.resumed++
		return
	case UnitReplayed:
		ph.replayed++
		return
	case UnitDead:
		ph.dead++
		return
	}
	ref := ph.last
	if ref.IsZero() {
		ref = ph.started
	}
	ph.last = now
	gap := now.Sub(ref).Seconds()
	if gap <= 0 {
		gap = 1e-6 // two completions on the same clock reading
	}
	inst := 1 / gap
	if ph.ratePerSec == 0 {
		ph.ratePerSec = inst
	} else {
		ph.ratePerSec = emaDecay*inst + (1-emaDecay)*ph.ratePerSec
	}
}

// PhaseSnapshot is one phase's frozen progress, shaped for the /progress
// JSON document and the heartbeat record.
type PhaseSnapshot struct {
	Name    string `json:"name"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Resumed int    `json:"resumed,omitempty"`
	// Replayed counts units served from the front-end trace cache; like
	// Resumed, they are done but excluded from the rate estimate.
	Replayed int `json:"replayed,omitempty"`
	// Dead counts units that exhausted their retry budget and were written
	// to the dead-letter journal; the campaign completed degraded by this
	// many units.
	Dead int `json:"dead,omitempty"`
	// RatePerSec is the decaying completion-rate estimate; 0 until the
	// phase's first non-cached completion.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// ETASeconds estimates the remaining wall-clock time; -1 when unknown
	// (no rate observed yet).
	ETASeconds float64 `json:"eta_seconds"`
}

// Snapshot is the whole campaign's frozen progress.
type Snapshot struct {
	// ElapsedSeconds is this session's wall-clock age; TotalElapsedSeconds
	// adds time recovered from the heartbeat of interrupted predecessors.
	ElapsedSeconds      float64         `json:"elapsed_seconds"`
	TotalElapsedSeconds float64         `json:"total_elapsed_seconds"`
	Done                int             `json:"done"`
	Total               int             `json:"total"`
	ETASeconds          float64         `json:"eta_seconds"`
	Phases              []PhaseSnapshot `json:"phases"`
}

// Snapshot freezes the current progress. Nil-safe (returns a zero snapshot
// with a non-nil empty phase list, so JSON consumers always see "phases").
func (p *Progress) Snapshot() Snapshot {
	s := Snapshot{Phases: []PhaseSnapshot{}, ETASeconds: -1}
	if p == nil {
		return s
	}
	p.mu.Lock()
	phases := append([]*Phase(nil), p.phases...)
	elapsed := p.now().Sub(p.start)
	prior := p.prior
	p.mu.Unlock()
	s.ElapsedSeconds = elapsed.Seconds()
	s.TotalElapsedSeconds = (elapsed + prior).Seconds()
	var etaKnown bool
	var eta float64
	for _, ph := range phases {
		ph.mu.Lock()
		ps := PhaseSnapshot{
			Name:       ph.name,
			Done:       ph.done,
			Total:      ph.total,
			Resumed:    ph.resumed,
			Replayed:   ph.replayed,
			Dead:       ph.dead,
			RatePerSec: ph.ratePerSec,
			ETASeconds: -1,
		}
		ph.mu.Unlock()
		if remaining := ps.Total - ps.Done; remaining <= 0 {
			ps.ETASeconds = 0
		} else if ps.RatePerSec > 0 {
			ps.ETASeconds = float64(remaining) / ps.RatePerSec
		}
		if ps.ETASeconds >= 0 {
			etaKnown = true
			eta += ps.ETASeconds
		} else if ps.Total > ps.Done {
			// A pending phase with no rate makes the campaign ETA unknown.
			etaKnown = false
			eta = 0
			s.Done += ps.Done
			s.Total += ps.Total
			s.Phases = append(s.Phases, ps)
			for _, rest := range phases[len(s.Phases):] {
				rest.mu.Lock()
				rs := PhaseSnapshot{
					Name: rest.name, Done: rest.done, Total: rest.total,
					Resumed: rest.resumed, Replayed: rest.replayed, Dead: rest.dead,
					RatePerSec: rest.ratePerSec, ETASeconds: -1,
				}
				rest.mu.Unlock()
				if rem := rs.Total - rs.Done; rem <= 0 {
					rs.ETASeconds = 0
				} else if rs.RatePerSec > 0 {
					rs.ETASeconds = float64(rem) / rs.RatePerSec
				}
				s.Done += rs.Done
				s.Total += rs.Total
				s.Phases = append(s.Phases, rs)
			}
			s.ETASeconds = -1
			return s
		}
		s.Done += ps.Done
		s.Total += ps.Total
		s.Phases = append(s.Phases, ps)
	}
	if etaKnown {
		s.ETASeconds = eta
	}
	return s
}

// String renders the snapshot as a one-line status, the stderr reporter's
// format: "sensitivity 12/36 · mix 0/16 · 34s elapsed · eta 1m04s".
func (s Snapshot) String() string {
	var b strings.Builder
	for _, ph := range s.Phases {
		if b.Len() > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(&b, "%s %d/%d", ph.Name, ph.Done, ph.Total)
	}
	if b.Len() == 0 {
		b.WriteString("working")
	}
	fmt.Fprintf(&b, " · %s elapsed", roundDuration(time.Duration(s.TotalElapsedSeconds*float64(time.Second))))
	if s.ETASeconds >= 0 {
		fmt.Fprintf(&b, " · eta %s", roundDuration(time.Duration(s.ETASeconds*float64(time.Second))))
	} else {
		b.WriteString(" · eta ?")
	}
	return b.String()
}

// roundDuration trims a duration for display: sub-second granularity is
// noise in a progress line.
func roundDuration(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	if d >= time.Minute {
		return d.Round(time.Second)
	}
	return d.Round(100 * time.Millisecond)
}
