package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"untangle/internal/telemetry"
)

// NamedRegistry pairs a telemetry registry with the namespace its metrics
// are exposed under on /metrics. Campaign commands pass one registry (the
// obs registry, namespace "untangle"); cmd/untangle-sim additionally passes
// its per-scheme simulation registries so a scrape sees both layers.
type NamedRegistry struct {
	Namespace string
	Registry  *telemetry.Registry
}

// Server is the embedded observability HTTP server. It serves:
//
//	/metrics      Prometheus text exposition of every named registry
//	/healthz      200 "ok" — liveness only
//	/progress     the Progress snapshot as JSON (units done/total, ETA)
//	/debug/pprof  the standard Go profiling endpoints
//
// It reads process state and writes nothing, so it can run concurrently
// with a campaign without perturbing any output file.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Endpoint is an extra route mounted on the observability server — the
// campaign service's job API (/campaigns, /queue) rides on the same listener
// as /metrics and /progress so an operator watches and drives a resident
// process through one port.
type Endpoint struct {
	// Pattern is an http.ServeMux pattern ("/campaigns", "/campaigns/").
	Pattern string
	Handler http.Handler
}

// StartServer binds addr (":0" for an ephemeral test port) and serves in a
// background goroutine. The returned server is ready to scrape when
// StartServer returns; call Shutdown to stop it.
func StartServer(addr string, progress *Progress, regs ...NamedRegistry) (*Server, error) {
	return StartServerEndpoints(addr, progress, nil, regs...)
}

// StartServerEndpoints is StartServer plus caller-supplied routes. Pattern
// conflicts are not checked — callers own their namespace and must not
// shadow /metrics, /healthz, /progress, or /debug/pprof.
func StartServerEndpoints(addr string, progress *Progress, extra []Endpoint, regs ...NamedRegistry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	for _, e := range extra {
		mux.Handle(e.Pattern, e.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, nr := range regs {
			if nr.Registry == nil {
				continue
			}
			if err := nr.Registry.Snapshot().WritePrometheus(w, nr.Namespace); err != nil {
				return // client went away mid-scrape; nothing to clean up
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(progress.Snapshot())
	})
	// The pprof handlers are wired explicitly because the server runs its
	// own mux — importing net/http/pprof only registers on the default one.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43721"), useful when the
// server was started on an ephemeral port.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully, letting in-flight scrapes finish up
// to a short deadline. Nil-safe, so the campaign teardown path can call it
// unconditionally.
func (s *Server) Shutdown() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
