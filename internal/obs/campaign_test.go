package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"untangle/internal/telemetry"
)

func TestCampaignUnitCountsAndTraces(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	reg := telemetry.NewRegistry()
	c := NewCampaign("experiments", tr, NewProgress(), reg)
	c.Phase("sensitivity", 3)

	// A real unit with a traced-but-uncounted engine pass inside it.
	done := c.Unit("sensitivity", "mcf_0")
	passDone := c.Unit("sensitivity/pass", "mcf_0#1")
	passDone(UnitGenerated, nil)
	done(UnitGenerated, nil)

	// A journal-resumed unit, a trace-cache-replayed unit, and a failed one.
	c.Phase("sensitivity", 4)
	c.Unit("sensitivity", "lbm_0")(UnitResumed, nil)
	c.Unit("sensitivity", "xz_1")(UnitReplayed, nil)
	c.Unit("sensitivity", "omnetpp_0")(UnitGenerated, errors.New("transient"))

	s := c.Progress.Snapshot()
	if s.Done != 4 || s.Total != 4 {
		t.Fatalf("done/total = %d/%d, want 4/4", s.Done, s.Total)
	}
	if s.Phases[0].Resumed != 1 {
		t.Fatalf("resumed = %d, want 1", s.Phases[0].Resumed)
	}
	if s.Phases[0].Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", s.Phases[0].Replayed)
	}
	// The sub-unit pass must not have minted a phase of its own.
	if len(s.Phases) != 1 {
		t.Fatalf("phases = %d, want 1 (pass is uncounted)", len(s.Phases))
	}

	// The latency histogram holds the two generated units; the resumed and
	// replayed ones stayed out.
	h := reg.Histogram("obs.sensitivity.unit_seconds", unitSecondsBuckets)
	if got := h.Count(); got != 2 {
		t.Fatalf("histogram count = %d, want 2 (resumed/replayed excluded)", got)
	}

	c.End(nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := decodeSpans(t, &buf)
	// 1 campaign + 1 phase + 4 units + 1 pass, each with start and end.
	if len(recs) != 14 {
		t.Fatalf("got %d span records, want 14", len(recs))
	}
	var rootID, phaseID uint64
	byID := map[uint64]spanRecord{}
	for _, r := range recs {
		if r.Ev != "start" {
			continue
		}
		byID[r.ID] = r
		switch r.Phase {
		case "campaign":
			rootID = r.ID
		case "phase":
			phaseID = r.ID
		}
	}
	if rootID == 0 || phaseID == 0 {
		t.Fatalf("missing campaign or phase span: %+v", recs)
	}
	for _, r := range byID {
		switch r.Phase {
		case "sensitivity":
			if r.Parent != phaseID {
				t.Errorf("unit %s parented under %d, want phase %d", r.Name, r.Parent, phaseID)
			}
		case "sensitivity/pass":
			// The pass phase was never declared, so it nests under the root.
			if r.Parent != rootID {
				t.Errorf("pass %s parented under %d, want root %d", r.Name, r.Parent, rootID)
			}
		}
	}
}

func TestCampaignPoolGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCampaign("x", nil, NewProgress(), reg)
	defer c.End(nil)
	s := reg.Snapshot()
	for _, name := range []string{
		"obs.pool.active_workers", "obs.pool.queue_depth", "obs.pool.utilization",
		"obs.pool.tasks_started", "obs.pool.tasks_completed", "obs.pool.tasks_failed",
	} {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("gauge %q not registered", name)
		}
	}
	var out strings.Builder
	if err := s.WritePrometheus(&out, "untangle"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "untangle_obs_pool_active_workers") {
		t.Errorf("prometheus output missing pool gauge:\n%s", out.String())
	}
}

func TestCampaignNilSafety(t *testing.T) {
	var c *Campaign
	c.Phase("p", 1)
	done := c.Unit("p", "n")
	if done != nil {
		t.Fatal("nil campaign returned a callback")
	}
	c.End(nil)

	// Tracer-less campaign still counts.
	c2 := NewCampaign("x", nil, NewProgress(), nil)
	c2.Phase("p", 1)
	c2.Unit("p", "n")(UnitGenerated, nil)
	if s := c2.Progress.Snapshot(); s.Done != 1 {
		t.Fatalf("done = %d, want 1", s.Done)
	}
	c2.End(nil)
}
