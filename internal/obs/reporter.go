package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// IsTTY reports whether f is a character device — the gate for the live
// progress line, which is operator chrome and must never land in a
// redirected log or a pipeline.
func IsTTY(f *os.File) bool {
	if f == nil {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// Reporter periodically renders the campaign's progress line to a terminal
// and pulses the heartbeat journal. It runs its own ticker goroutine; Stop
// waits for it. A nil *Reporter no-ops, so callers construct one only when
// some surface (TTY line, heartbeat) is wanted.
type Reporter struct {
	progress *Progress
	hb       *Heartbeat
	out      io.Writer // nil: no terminal line, heartbeat only

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartReporter launches the ticker. out is where the live line goes (pass
// nil when stderr is not a TTY or -quiet is set); hb may be nil when no
// checkpoint journal is in play. interval <= 0 defaults to one second.
func StartReporter(progress *Progress, hb *Heartbeat, out io.Writer, interval time.Duration) *Reporter {
	if out == nil && hb == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	r := &Reporter{
		progress: progress,
		hb:       hb,
		out:      out,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go r.loop(interval)
	return r
}

func (r *Reporter) loop(interval time.Duration) {
	defer close(r.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			s := r.progress.Snapshot()
			r.hb.Beat(s)
			if r.out != nil {
				// \r + clear-to-EOL keeps the line in place on a TTY.
				fmt.Fprintf(r.out, "\r\x1b[K%s", s.String())
			}
		}
	}
}

// Stop halts the ticker, waits for the loop to exit, emits one final
// heartbeat, and (on a TTY) clears the live line so the campaign's normal
// output resumes on a clean row. Nil-safe and idempotent.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.once.Do(func() {
		close(r.stop)
		<-r.done
		r.hb.Beat(r.progress.Snapshot())
		if r.out != nil {
			fmt.Fprint(r.out, "\r\x1b[K")
		}
	})
}
