package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestHeartbeatPriorRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl.heartbeat")

	// Session 1: fresh file, no prior.
	h1, err := OpenHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Prior() != 0 {
		t.Fatalf("fresh heartbeat prior = %v, want 0", h1.Prior())
	}
	h1.Beat(Snapshot{ElapsedSeconds: 10, TotalElapsedSeconds: 10, Done: 3, Total: 36})
	h1.Beat(Snapshot{ElapsedSeconds: 25, TotalElapsedSeconds: 25, Done: 8, Total: 36})
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-beat: a torn trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"at_unix_ns":123,"total_se`)
	f.Close()

	// Session 2 recovers the last complete beat's total.
	h2, err := OpenHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got := h2.Prior(); got != 25*time.Second {
		t.Fatalf("prior = %v, want 25s", got)
	}

	// And its beats stack the recovered prior into total_seconds.
	h2.Beat(Snapshot{ElapsedSeconds: 5, TotalElapsedSeconds: 30, Done: 12, Total: 36})
	h3, err := OpenHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close()
	if got := h3.Prior(); got != 30*time.Second {
		t.Fatalf("prior after second session = %v, want 30s", got)
	}
}

func TestHeartbeatNilSafety(t *testing.T) {
	var h *Heartbeat
	if h.Prior() != 0 {
		t.Fatal("nil heartbeat has a prior")
	}
	h.Beat(Snapshot{}) // must not panic
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatPathConvention(t *testing.T) {
	if got := HeartbeatPath(nil); got != "" {
		t.Fatalf("HeartbeatPath(nil) = %q, want empty", got)
	}
}
