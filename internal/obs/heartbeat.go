package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"time"
)

// HeartbeatRecord is one JSONL line in the heartbeat sidecar: a periodic
// wall-clock pulse journaled next to the checkpoint so a resumed campaign
// can recover how long its predecessors ran. Unlike the checkpoint journal
// the heartbeat is advisory — a torn or missing file costs nothing but the
// prior-elapsed figure — so it is buffered-written without fsync.
type HeartbeatRecord struct {
	// AtUnixNs is the wall-clock instant of the beat.
	AtUnixNs int64 `json:"at_unix_ns"`
	// SessionSeconds is the emitting session's wall-clock age at the beat.
	SessionSeconds float64 `json:"session_seconds"`
	// TotalSeconds is SessionSeconds plus the prior elapsed recovered when
	// this session's heartbeat opened — the campaign's cumulative runtime.
	TotalSeconds float64 `json:"total_seconds"`
	// Done and Total mirror the progress snapshot at the beat.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Heartbeat appends HeartbeatRecords to a sidecar file. A nil *Heartbeat
// no-ops everywhere, like the rest of the package.
type Heartbeat struct {
	mu    sync.Mutex
	f     *os.File
	prior time.Duration
}

// OpenHeartbeat opens (appending) the heartbeat file at path and recovers
// the prior cumulative elapsed time from its last valid line. A missing,
// empty, or wholly corrupt file yields a zero prior — the campaign simply
// starts its clock fresh.
func OpenHeartbeat(path string) (*Heartbeat, error) {
	prior, tornTail := readPrior(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if tornTail {
		// The previous session died mid-beat, leaving a line without its
		// newline. Terminate it so this session's beats start on a clean
		// line instead of gluing onto the fragment.
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Heartbeat{f: f, prior: prior}, nil
}

// readPrior scans path backwards for the last parseable record and returns
// its TotalSeconds. Torn final lines (the beat a kill interrupted) are
// expected and skipped; tornTail reports whether the file ends mid-line so
// the opener can terminate the fragment before appending.
func readPrior(path string) (prior time.Duration, tornTail bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	tornTail = len(data) > 0 && data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte("\n"))
	for i := len(lines) - 1; i >= 0; i-- {
		line := bytes.TrimSpace(lines[i])
		if len(line) == 0 {
			continue
		}
		var rec HeartbeatRecord
		if json.Unmarshal(line, &rec) == nil && rec.TotalSeconds >= 0 {
			return time.Duration(rec.TotalSeconds * float64(time.Second)), tornTail
		}
	}
	return 0, tornTail
}

// LastBeat returns the wall-clock instant of the last parseable beat in
// the sidecar at path, and whether one was found. The sharded-campaign
// coordinator uses it post-mortem: when a worker is declared dead, its
// shard journal's sidecar says when the worker last made progress, which
// distinguishes a crash (recent beat) from a long wedge (stale beat) in
// the campaign log.
func LastBeat(path string) (time.Time, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return time.Time{}, false
	}
	lines := bytes.Split(data, []byte("\n"))
	for i := len(lines) - 1; i >= 0; i-- {
		line := bytes.TrimSpace(lines[i])
		if len(line) == 0 {
			continue
		}
		var rec HeartbeatRecord
		if json.Unmarshal(line, &rec) == nil && rec.AtUnixNs > 0 {
			return time.Unix(0, rec.AtUnixNs), true
		}
	}
	return time.Time{}, false
}

// Prior returns the cumulative elapsed time recovered from previous
// sessions' beats — feed it to Progress.SetPrior. Nil-safe.
func (h *Heartbeat) Prior() time.Duration {
	if h == nil {
		return 0
	}
	return h.prior
}

// Beat appends one pulse derived from the progress snapshot. Errors are
// deliberately swallowed: a heartbeat that cannot be written must never
// fail the campaign it is observing. Nil-safe.
func (h *Heartbeat) Beat(s Snapshot) {
	if h == nil {
		return
	}
	rec := HeartbeatRecord{
		AtUnixNs:       time.Now().UnixNano(),
		SessionSeconds: s.ElapsedSeconds,
		TotalSeconds:   s.TotalElapsedSeconds,
		Done:           s.Done,
		Total:          s.Total,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return
	}
	h.f.Write(append(line, '\n'))
}

// Close releases the heartbeat file. Nil-safe.
func (h *Heartbeat) Close() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return nil
	}
	err := h.f.Close()
	h.f = nil
	return err
}
