package obs

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer for the reporter goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}
func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestReporterRendersAndHeartbeats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hb")
	hb, err := OpenHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()

	p := NewProgress()
	ph := p.Phase("mix", 16)
	ph.UnitDone(UnitGenerated)
	ph.UnitDone(UnitGenerated)

	var out syncBuffer
	r := StartReporter(p, hb, &out, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "mix 2/16") {
		if time.Now().After(deadline) {
			t.Fatalf("reporter never rendered; got %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent

	// Stop's final beat is recoverable by the next session.
	hb.Close()
	h2, err := OpenHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.Prior() <= 0 {
		t.Errorf("no heartbeat recovered after reporter ran")
	}
	// The live line ends with a clear so the terminal is left clean.
	if !strings.HasSuffix(out.String(), "\r\x1b[K") {
		t.Errorf("reporter did not clear its line on stop")
	}
}

func TestStartReporterNoSurfacesIsNil(t *testing.T) {
	if r := StartReporter(NewProgress(), nil, nil, time.Millisecond); r != nil {
		t.Fatal("reporter with no surfaces should be nil")
	}
	var r *Reporter
	r.Stop() // nil-safe
}
